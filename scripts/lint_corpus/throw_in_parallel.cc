// Corpus: throw-in-parallel must fire on throw expressions inside worker
// lambdas handed to parallel_for / run_wavefront_level, and stay silent on
// throws outside parallel regions, per-slot status recording, and justified
// waivers.
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace util {
template <typename Body>
void parallel_for(std::size_t total, std::size_t chunk, std::size_t threads, Body&& body);
}
namespace sta {
template <typename Body>
void run_wavefront_level(const std::vector<int>& level, std::size_t width,
                         std::size_t cutoff, std::size_t chunk, std::size_t threads,
                         Body&& body);
}

void throwing_worker(std::size_t n, const std::vector<double>& in) {
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      if (in[i] < 0.0) {
        throw std::runtime_error("negative");  // expect-lint: throw-in-parallel
      }
    }
  });
}

void throwing_wavefront(const std::vector<int>& level, const std::vector<double>& in) {
  sta::run_wavefront_level(level, level.size(), 16, 64, 0, [&](std::size_t i) {
    if (in[i] < 0.0) {
      throw std::logic_error("negative");  // expect-lint: throw-in-parallel
    }
  });
}

// Throwing before the parallel region is the sanctioned pattern: validate
// serially, then dispatch workers that cannot fail.
void validate_then_dispatch(std::size_t n, const std::vector<double>& in,
                            std::vector<double>& out) {
  if (in.size() < n) {
    throw std::invalid_argument("short input");  // silent: outside any worker
  }
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = in[i] * 2.0;  // silent: no throw in the body
    }
  });
}

// Per-slot status recording: workers note failure, the join decides.
void per_slot_status(std::size_t n, const std::vector<double>& in,
                     std::vector<unsigned char>& bad) {
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      bad[i] = in[i] < 0.0 ? 1 : 0;  // silent: deterministic post-join failure
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (bad[i]) throw std::runtime_error("negative input");  // silent: after join
  }
}

// Waived: a worker that throws on a provably impossible branch, justified.
void waived_throw(std::size_t n, std::vector<double>& out) {
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i >= out.size()) {
        // lint-ok: throw-in-parallel corpus example of a justified waiver
        throw std::logic_error("unreachable");
      }
      out[i] = 1.0;
    }
  });
}
