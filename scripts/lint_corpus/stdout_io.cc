// Corpus: stdout-io must fire on every direct console-I/O pattern in library
// code, and stay silent on snprintf-into-buffer formatting.
#include <cstdio>
#include <iostream>  // expect-lint: stdout-io
#include <string>

void cout_use(const std::string& msg) {
  std::cout << msg << "\n";  // expect-lint: stdout-io
}

void cerr_use(const std::string& msg) {
  std::cerr << msg << "\n";  // expect-lint: stdout-io
}

void printf_use(int x) {
  printf("%d\n", x);  // expect-lint: stdout-io
}

void fprintf_use(int x) {
  fprintf(stderr, "%d\n", x);  // expect-lint: stdout-io
}

void puts_use() {
  puts("hello");  // expect-lint: stdout-io
}

// Formatting into a caller-provided buffer is allowed (liberty/writer.cpp,
// util/table.cpp do exactly this).
std::string snprintf_is_fine(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// Waived: e.g. a temporary dump behind a debug flag, justified inline.
void waived_dump(int x) {
  fprintf(stderr, "dbg %d\n", x);  // lint-ok: stdout-io corpus example of a justified waiver
}
