// Corpus: unordered-iter must fire on range-for over unordered containers —
// locals, members, and parameters — and stay silent on ordered containers
// and on waived membership loops.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int iterate_local(const std::vector<int>& keys) {
  std::unordered_map<std::string, int> counts;
  int total = 0;
  for (const auto& [name, n] : counts) {  // expect-lint: unordered-iter
    total += n;
  }
  for (const int k : keys) total += k;  // vectors are ordered: silent
  return total;
}

struct Registry {
  std::unordered_set<std::string> names_;

  int size_via_iteration() const {
    int n = 0;
    for (const auto& name : names_) {  // expect-lint: unordered-iter
      n += static_cast<int>(name.size());
    }
    return n;
  }
};

int iterate_param(const std::unordered_map<std::string, int>& table) {
  int total = 0;
  for (const auto& [k, v] : table) {  // expect-lint: unordered-iter
    total += v;
  }
  return total;
}

// Note the linter tracks names at file granularity: an ordered container
// that *shares a name* with an unordered one elsewhere in the file would
// false-positive (waive it). Distinct names are silent:
int iterate_ordered(const std::map<std::string, int>& sorted_table) {
  int total = 0;
  for (const auto& [k, v] : sorted_table) total += v;  // ordered: silent
  return total;
}

// Order-insensitive accumulation may be waived with a justification.
int waived_count(const std::unordered_set<int>& s) {
  int n = 0;
  // lint-ok: unordered-iter pure count, result independent of bucket order
  for (const int x : s) n += (x > 0);
  return n;
}
