// Corpus: rng-stray must fire on every wall-clock / unseeded randomness
// pattern, and the waiver syntax must silence a justified use.
#include <cstdlib>
#include <ctime>
#include <random>

int stray_rand() {
  return std::rand();  // expect-lint: rng-stray
}

void stray_srand() {
  srand(42);  // expect-lint: rng-stray
}

unsigned stray_device() {
  std::random_device rd;  // expect-lint: rng-stray
  return rd();
}

long stray_time_seed() {
  return time(nullptr);  // expect-lint: rng-stray
}

long stray_std_time_seed() {
  return std::time(0);  // expect-lint: rng-stray
}

// A justified waiver stays silent (e.g. a one-off tool that intentionally
// wants an OS entropy source).
unsigned waived_device() {
  std::random_device rd;  // lint-ok: rng-stray corpus example of a justified waiver
  return rd();
}

// Comments and strings never fire: std::rand() inside this comment is fine,
// and so is the literal below.
const char* kDoc = "call std::rand() and srand( time(NULL) ) at your peril";
