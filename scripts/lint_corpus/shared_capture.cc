// Corpus: shared-mutable-capture must fire on parallel worker lambdas that
// grow or accumulate into by-reference captured state, and stay silent on
// per-slot writes, per-chunk locals, and by-value captures.
#include <cstddef>
#include <vector>

namespace util {
template <typename Body>
void parallel_for(std::size_t total, std::size_t chunk, std::size_t threads, Body&& body);
}

void racy_push_back(std::size_t n) {
  std::vector<double> results;
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      results.push_back(static_cast<double>(i));  // expect-lint: shared-mutable-capture
    }
  });
}

void racy_accumulate(std::size_t n) {
  double total = 0.0;
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      total += static_cast<double>(i);  // expect-lint: shared-mutable-capture
    }
  });
}

void racy_counter(std::size_t n) {
  std::size_t hits = 0;
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      ++hits;  // expect-lint: shared-mutable-capture
    }
  });
}

// Per-slot writes are the sanctioned pattern: each index owns its element.
void per_slot_write(std::size_t n) {
  std::vector<double> results(n, 0.0);
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = static_cast<double>(i);  // silent: subscripted per-slot write
    }
  });
}

// Per-chunk locals merged after the join are fine too (the local is declared
// inside the body, so it is per-invocation by construction).
void per_chunk_local(std::size_t n, std::vector<double>& partial) {
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      local += static_cast<double>(i);  // silent: body-local accumulator
    }
    partial[chunk] = local;  // silent: per-slot write keyed by chunk index
  });
}

// Waived: a deliberately shared atomic-like pattern, justified inline.
void waived_shared(std::size_t n, std::vector<double>& bins) {
  util::parallel_for(n, 16, 0, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      // lint-ok: shared-mutable-capture corpus example of a justified waiver
      bins.resize(end);
    }
  });
}
