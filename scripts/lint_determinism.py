#!/usr/bin/env python3
"""Repo-specific determinism/hygiene linter for the statsizer library code.

Every parallel kernel in this codebase carries a bitwise
thread-count-invariance contract (docs/ARCHITECTURE.md, "Concurrency &
determinism contracts"). The contract is enforced dynamically by identity
tests; this linter statically rejects the *source patterns* that historically
break it before they ever reach a test:

  rng-stray               std::rand / srand / std::random_device / time()-
                          seeded randomness anywhere outside util/rng.h.
                          Unseeded or wall-clock-seeded draws are
                          irreproducible by construction; all randomness must
                          flow through util::Rng / util::stream_seed.

  unordered-iter          Range-for iteration over a std::unordered_map /
                          std::unordered_set. Bucket order is
                          implementation-defined and changes with load
                          factor, libstdc++ version, and insertion history,
                          so any result assembled from such a loop is not
                          deterministic. Iterate a vector / std::map, or sort
                          first. (Pure membership/counting loops may be
                          waived — see below.)

  stdout-io               std::cout / std::cerr / std::clog, printf /
                          fprintf / puts / putchar, or #include <iostream>
                          in library code outside util/log.*. Library
                          diagnostics go through STATSIZER_LOG so callers
                          control verbosity and streams; snprintf into a
                          caller buffer is formatting, not I/O, and stays
                          allowed.

  shared-mutable-capture  An inline by-reference-capturing lambda handed to
                          parallel_for / run_wavefront_level whose body grows
                          a captured container (push_back / emplace_back /
                          insert / ...) or compound-assigns a captured
                          scalar. Worker bodies must write per-slot
                          (v[i] = ...) or into per-chunk locals merged after
                          the join.

  throw-in-parallel       A throw expression inside an inline lambda handed
                          to parallel_for / run_wavefront_level. An exception
                          escaping a pool worker is std::terminate (and even
                          a caught-and-rethrown one races the other workers
                          for which failure wins), so the abort behavior
                          depends on thread scheduling. Record the failure in
                          a per-slot status and fail deterministically after
                          the join.

Waivers: append `// lint-ok: <rule-id> <justification>` to the offending
line (or place it on the immediately preceding line). The justification is
mandatory — a bare waiver is itself a finding.

Exit status: 0 = clean, 1 = findings, 2 = usage error.

Self-test: `lint_determinism.py --self-test` runs the linter over the seeded
corpus in scripts/lint_corpus/ and verifies that every `// expect-lint:
<rule-id>` line fires exactly that rule, that nothing else fires, and that
waived lines stay silent. check.sh --lint runs the self-test before the real
sweep, so a silently dead rule fails the gate.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

RULES = ("rng-stray", "unordered-iter", "stdout-io", "shared-mutable-capture",
         "throw-in-parallel")

# Files exempt from specific rules: the façade a rule funnels everything into
# is the one legitimate user of the forbidden pattern.
RNG_EXEMPT = ("src/util/rng.h",)
IO_EXEMPT = ("src/util/log.h", "src/util/log.cpp")

WAIVER_RE = re.compile(r"//\s*lint-ok:\s*([\w-]+)(?:\s+(\S.*))?")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure so
    offsets keep mapping to the original line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# rule: rng-stray
# ---------------------------------------------------------------------------

RNG_PATTERNS = (
    (re.compile(r"\bstd::rand\b|(?<![\w:])rand\s*\("), "std::rand"),
    (re.compile(r"(?<!\w)srand\s*\("), "srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)?\s*\)"),
     "wall-clock time() seeding"),
)


def check_rng(path_rel: str, code: str, findings: list, path: Path) -> None:
    if path_rel in RNG_EXEMPT:
        return
    for pattern, what in RNG_PATTERNS:
        for m in pattern.finditer(code):
            findings.append(Finding(
                path, line_of(code, m.start()), "rng-stray",
                f"{what}: non-reproducible randomness; draw through util::Rng / "
                f"util::stream_seed (util/rng.h) instead"))


# ---------------------------------------------------------------------------
# rule: stdout-io
# ---------------------------------------------------------------------------

IO_PATTERNS = (
    (re.compile(r"\bstd::c(?:out|err|log)\b"), "std::cout/cerr/clog"),
    (re.compile(r"(?<![\w])f?printf\s*\("), "printf-family output"),
    (re.compile(r"(?<![\w])put(?:s|char)\s*\("), "puts/putchar"),
    (re.compile(r"#\s*include\s*<iostream>"), "#include <iostream>"),
)


def check_io(path_rel: str, code: str, findings: list, path: Path) -> None:
    if path_rel in IO_EXEMPT:
        return
    for pattern, what in IO_PATTERNS:
        for m in pattern.finditer(code):
            findings.append(Finding(
                path, line_of(code, m.start()), "stdout-io",
                f"{what}: direct console I/O in library code; route diagnostics "
                f"through STATSIZER_LOG (util/log.h)"))


# ---------------------------------------------------------------------------
# rule: unordered-iter
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def skip_template_args(code: str, lt: int) -> int:
    """Returns the offset one past the '>' matching the '<' at @p lt."""
    depth = 0
    i = lt
    while i < len(code):
        if code[i] == "<":
            depth += 1
        elif code[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def unordered_names(code: str) -> set:
    """Names declared in this file (variables, members, parameters) whose type
    is an unordered associative container."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        after = skip_template_args(code, code.index("<", m.start()))
        tail = code[after:after + 200]
        dm = re.match(r"\s*(?:&|\*)?\s*([A-Za-z_]\w*)\s*(?:[;=,({)\[]|$)", tail)
        if dm:
            names.add(dm.group(1))
    return names


def check_unordered(code: str, findings: list, path: Path) -> None:
    names = unordered_names(code)
    if not names:
        return
    for m in RANGE_FOR_RE.finditer(code):
        # Extract the parenthesized head of the for and look for `: name)`.
        depth = 0
        i = code.index("(", m.start())
        start = i
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        head = code[start + 1:i]
        rm = re.search(r":\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\s*$", head.strip())
        if rm and rm.group(1) in names:
            findings.append(Finding(
                path, line_of(code, m.start()), "unordered-iter",
                f"range-for over unordered container '{rm.group(1)}': bucket order "
                f"is implementation-defined; iterate a vector/std::map or sort "
                f"first (waivable for order-insensitive membership loops)"))


# ---------------------------------------------------------------------------
# rule: shared-mutable-capture
# ---------------------------------------------------------------------------

PARALLEL_CALL_RE = re.compile(r"\b(?:util\s*::\s*)?(?:parallel_for|run_wavefront_level)\s*\(")
GROWTH_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\.\s*(push_back|emplace_back|emplace|insert|erase|clear|resize)\s*\(")
COMPOUND_RE = re.compile(
    r"(?:\+\+|--)\s*([A-Za-z_]\w*)\b(?!\s*[\[.])"
    r"|(?<![\w\]\).])\b([A-Za-z_]\w*)\s*(?:\+\+|--|[+\-*/%|&^]=|<<=|>>=)")


def lambda_args_of_call(code: str, call_start: int):
    """Yields (capture_list, body, body_offset) for each inline lambda in the
    argument list of the call whose '(' follows @p call_start."""
    i = code.index("(", call_start)
    depth = 0
    end = i
    while end < len(code):
        if code[end] == "(":
            depth += 1
        elif code[end] == ")":
            depth -= 1
            if depth == 0:
                break
        end += 1
    args = code[i + 1:end]
    base = i + 1
    j = 0
    while j < len(args):
        if args[j] == "[":
            close = args.index("]", j) if "]" in args[j:] else -1
            if close < 0:
                break
            capture = args[j + 1:close]
            brace = args.find("{", close)
            if brace < 0:
                break
            depth = 0
            k = brace
            while k < len(args):
                if args[k] == "{":
                    depth += 1
                elif args[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            yield capture, args[brace + 1:k], base + brace + 1
            j = k + 1
        else:
            j += 1


def locals_of_body(body: str) -> set:
    """Heuristic set of names declared inside a lambda body (or taken as its
    parameters — handled by the caller)."""
    names = set()
    decl_re = re.compile(
        r"(?:^|[;{(,])\s*(?:const\s+)?(?:auto|bool|int|unsigned|float|double|"
        r"std?\s*::\s*\w+(?:\s*<[^<>;{}]*>)?|[A-Za-z_]\w*(?:::\w+)*(?:\s*<[^<>;{}]*>)?)"
        r"\s*[&*]?\s+([A-Za-z_]\w*)\s*(?:[=;{(]|:)")
    for m in decl_re.finditer(body):
        names.add(m.group(1))
    return names


def check_shared_capture(code: str, findings: list, path: Path) -> None:
    for call in PARALLEL_CALL_RE.finditer(code):
        for capture, body, body_offset in lambda_args_of_call(code, call.start()):
            if "&" not in capture:
                continue  # by-value captures cannot race through the capture
            declared = locals_of_body(body)
            # Lambda parameters are per-invocation, hence safe: parse the
            # (...) between the capture list and the body open-brace.
            pre = code[:body_offset]
            paren_close = pre.rfind(")")
            paren_open = pre.rfind("(", 0, paren_close) if paren_close > 0 else -1
            if 0 <= paren_open < paren_close:
                for p in pre[paren_open + 1:paren_close].split(","):
                    pm = re.search(r"([A-Za-z_]\w*)\s*$", p.strip())
                    if pm:
                        declared.add(pm.group(1))
            for gm in GROWTH_RE.finditer(body):
                name = gm.group(1)
                if name in declared:
                    continue
                findings.append(Finding(
                    path, line_of(code, body_offset + gm.start()), "shared-mutable-capture",
                    f"'{name}.{gm.group(2)}' grows a by-reference captured container "
                    f"inside a parallel worker body; write per-slot or merge "
                    f"per-chunk locals after the join"))
            for cm in COMPOUND_RE.finditer(body):
                name = cm.group(1) or cm.group(2)
                if name in declared:
                    continue
                findings.append(Finding(
                    path, line_of(code, body_offset + cm.start()), "shared-mutable-capture",
                    f"compound update of by-reference captured '{name}' inside a "
                    f"parallel worker body; accumulate into a per-chunk local or "
                    f"a per-slot element instead"))


# ---------------------------------------------------------------------------
# rule: throw-in-parallel
# ---------------------------------------------------------------------------

THROW_RE = re.compile(r"\bthrow\b")


def check_throw_in_parallel(code: str, findings: list, path: Path) -> None:
    for call in PARALLEL_CALL_RE.finditer(code):
        for _capture, body, body_offset in lambda_args_of_call(code, call.start()):
            for tm in THROW_RE.finditer(body):
                findings.append(Finding(
                    path, line_of(code, body_offset + tm.start()), "throw-in-parallel",
                    "throw inside a parallel worker body: an exception escaping a "
                    "pool thread is std::terminate, and which worker's failure "
                    "surfaces depends on scheduling; record a per-slot status and "
                    "fail deterministically after the join"))


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def lint_file(path: Path, root: Path) -> list:
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    rel = path.resolve().relative_to(root.resolve()).as_posix()

    findings: list = []
    check_rng(rel, code, findings, path)
    check_io(rel, code, findings, path)
    check_unordered(code, findings, path)
    check_shared_capture(code, findings, path)
    check_throw_in_parallel(code, findings, path)

    # Apply waivers (same line or the immediately preceding line). A waiver
    # without a justification is converted into its own finding.
    raw_lines = raw.splitlines()
    kept = []
    for f in findings:
        waived = False
        for ln in (f.line, f.line - 1):
            if 1 <= ln <= len(raw_lines):
                wm = WAIVER_RE.search(raw_lines[ln - 1])
                if wm and wm.group(1) == f.rule:
                    if not wm.group(2):
                        kept.append(Finding(path, ln, f.rule,
                                            "waiver without a justification"))
                    waived = True
                    break
        if not waived:
            kept.append(f)
    return kept


def collect_sources(paths) -> list:
    files = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.h")))
            files.extend(sorted(p.rglob("*.cpp")))
            files.extend(sorted(p.rglob("*.cc")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"lint_determinism: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def self_test(corpus_dir: Path, root: Path) -> int:
    """Every `// expect-lint: rule` line in the corpus must produce exactly
    that finding; nothing unexpected may fire; waived lines stay silent."""
    failures = []
    fired_rules = set()
    for path in collect_sources([corpus_dir]):
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        expected = {}  # line -> rule
        for idx, line in enumerate(raw_lines, start=1):
            m = EXPECT_RE.search(line)
            if m:
                expected[idx] = m.group(1)
        got = {}  # line -> set of rules
        for f in lint_file(path, root):
            got.setdefault(f.line, set()).add(f.rule)
        for ln, rule in expected.items():
            if rule not in got.get(ln, set()):
                failures.append(f"{path}:{ln}: expected [{rule}] to fire, it did not")
            else:
                fired_rules.add(rule)
        for ln, rules in got.items():
            for rule in rules - {expected.get(ln)}:
                failures.append(f"{path}:{ln}: unexpected finding [{rule}]")
    for rule in RULES:
        if rule not in fired_rules:
            failures.append(f"corpus has no firing example for rule [{rule}]")
    if failures:
        print("lint_determinism --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint_determinism: self-test ok ({len(RULES)} rules verified against "
          f"{corpus_dir})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on the seeded corpus")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="repo root for rule exemption paths")
    args = parser.parse_args()

    root = Path(args.root)
    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "lint_corpus", root)

    paths = args.paths or [root / "src"]
    findings = []
    files = collect_sources(paths)
    for path in files:
        findings.extend(lint_file(path, root))
    for f in findings:
        print(f)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
