#!/usr/bin/env bash
# Perf trajectory snapshot: builds the selected benchmark binary (by default
# bench_perf_engines) and records its benchmarks (serial + wavefront
# update()/FULLSSTA kernels and their thread sweeps) as machine-readable
# JSON.
#
#   scripts/bench_snapshot.sh                 # writes BENCH_update_levelized.json
#   scripts/bench_snapshot.sh out.json        # custom output path
#   scripts/bench_snapshot.sh out.json REGEX  # custom --benchmark_filter
#
# An output path matching *isle_yield* defaults the filter to the
# importance-sampled yield head-to-head (BM_IsleYield|BM_PlainMcYield, whose
# draws/yield_se counters are the draws-to-target-CI record):
#   scripts/bench_snapshot.sh BENCH_isle_yield.json
#
# An output path matching *drc_sweep* defaults the filter to the full
# design-rule sweep (BM_DrcFullSweep: preflight cost + wavefront scaling):
#   scripts/bench_snapshot.sh BENCH_drc_sweep.json
#
# An output path matching *server* selects the bench_server binary instead
# (BM_ServerMixed: jobs/sec + p50/p99 client latency at 1/2/8 concurrent
# clients against a shared serving session):
#   scripts/bench_snapshot.sh BENCH_server.json
#
# The JSON (google-benchmark schema: per-benchmark real_time / cpu_time plus
# the run context) is the repo's perf trajectory — commit a snapshot per perf
# PR so later sessions can diff kernels against it. Numbers are only
# comparable between snapshots taken on the same host; the committed file
# also records the host context for exactly that reason, plus the git SHA
# and the workload set (--context entries in the JSON header) so a snapshot
# is traceable to the exact code and circuits that produced it.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_update_levelized.json}"
BIN=bench_perf_engines
case "${OUT}" in
  *isle_yield*) DEFAULT_FILTER='BM_IsleYield|BM_PlainMcYield' ;;
  *drc_sweep*) DEFAULT_FILTER='BM_DrcFullSweep' ;;
  *server*)
    BIN=bench_server
    DEFAULT_FILTER='BM_ServerMixed'
    ;;
  *) DEFAULT_FILTER='BM_TimingUpdate|BM_UpdateThreads|BM_FullSstaThreads|BM_Fullssta/c880' ;;
esac
FILTER="${2:-${DEFAULT_FILTER}}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then
  GIT_SHA="${GIT_SHA}-dirty"
fi

cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}" --target "${BIN}" >/dev/null

# The workload names embedded in the filtered benchmark set (BM_Foo/<name>).
WORKLOADS="$("./build/${BIN}" --benchmark_list_tests \
               --benchmark_filter="${FILTER}" 2>/dev/null |
             sed -n 's|^BM_[^/]*/\([A-Za-z0-9_]*\).*|\1|p' | sort -u |
             paste -sd, - || echo unknown)"

"./build/${BIN}" --json "${OUT}" \
  --context "git_sha=${GIT_SHA}" \
  --context "workloads=${WORKLOADS}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2

echo "bench_snapshot.sh: wrote ${OUT} (git_sha=${GIT_SHA}, workloads=${WORKLOADS})"
