#!/usr/bin/env bash
# Perf trajectory snapshot: builds bench_perf_engines and records the
# propagation-kernel benchmarks (serial + wavefront update()/FULLSSTA and
# their thread sweeps) as machine-readable JSON.
#
#   scripts/bench_snapshot.sh                 # writes BENCH_update_levelized.json
#   scripts/bench_snapshot.sh out.json        # custom output path
#   scripts/bench_snapshot.sh out.json REGEX  # custom --benchmark_filter
#
# The JSON (google-benchmark schema: per-benchmark real_time / cpu_time plus
# the run context) is the repo's perf trajectory — commit a snapshot per perf
# PR so later sessions can diff kernels against it. Numbers are only
# comparable between snapshots taken on the same host; the committed file
# also records the host context for exactly that reason.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_update_levelized.json}"
FILTER="${2:-BM_TimingUpdate|BM_UpdateThreads|BM_FullSstaThreads|BM_Fullssta/c880}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}" --target bench_perf_engines >/dev/null

./build/bench_perf_engines --json "${OUT}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2

echo "bench_snapshot.sh: wrote ${OUT}"
