#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full gtest suite through CTest.
#
#   scripts/check.sh                 # RelWithDebInfo build + ctest
#   scripts/check.sh --asan          # additionally run the fast tests under
#                                    # AddressSanitizer + UBSan
#   scripts/check.sh --table1-smoke  # additionally run
#                                    # bench_table1 --quick --threads 2 as a
#                                    # post-ctest end-to-end smoke check
#   scripts/check.sh --parser-smoke  # additionally drive example_ingest over
#                                    # the malformed corpus: every file must
#                                    # fail with a loud error (exit 1), never
#                                    # crash or parse silently
#   scripts/check.sh --yield-smoke   # additionally run the importance-sampled
#                                    # yield cross-check (isle vs plain MC on
#                                    # c432, tight draw budget) via
#                                    # example_yield_quickstart --check
#
# Flags compose. Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" "${CTEST_EXTRA[@]}"
}

ASAN=0
SMOKE=0
PARSER=0
YIELD=0
for arg in "$@"; do
  case "${arg}" in
    --asan) ASAN=1 ;;
    --table1-smoke) SMOKE=1 ;;
    --parser-smoke) PARSER=1 ;;
    --yield-smoke) YIELD=1 ;;
    *)
      echo "usage: scripts/check.sh [--asan] [--table1-smoke] [--parser-smoke] [--yield-smoke]" >&2
      exit 2
      ;;
  esac
done

CTEST_EXTRA=()
run_suite build

if [[ "${ASAN}" == 1 ]]; then
  # Sanitized pass over the fast tests (the long end-to-end flows are covered
  # by the normal build; under ASan they would dominate the wall clock).
  # SizerParallel stays in: it exercises the concurrent candidate-scoring
  # kernel, per-worker scratch reuse, AND the parallel speculative what-if
  # confirmations — exactly where memory bugs would surface — at ~10 s
  # sanitized. AnalyzerConformance/FullSstaWhatIf stay in too: the overlay
  # engine's private-state discipline is what the sanitizer should see.
  # AreaRecovery{Parallel,Equivalence,Rollback,Options} stay in as well: the
  # screening waves' per-speculation overlays, the incremental snapshot
  # patching (TimingContext::apply_snapshot_patch), and the chunk-rollback
  # restore path are all concurrent-lifetime code the sanitizer should walk.
  # LevelizedUpdate/LevelizedWhatIf stay in too: the wavefront update()/
  # FULLSSTA/cone-replay kernels write shared preallocated arrays from pool
  # workers with level barriers between waves — exactly the code whose
  # races/overruns only a sanitized multithreaded run would catch.
  # IsleYield/IsleDegeneracy stay in too — the importance sampler's sharded
  # draw loop writes per-slot weight/delay vectors from pool workers — except
  # the mesh8 SDC point, whose 12.8k-gate Monte-Carlo reference would
  # dominate a sanitized run like the other excluded end-to-end flows.
  CTEST_EXTRA=(-E 'FlowRegression|Table1|StatisticalSizer|IsleYield.ResolvesSdcClockOnMesh8')
  run_suite build-asan -DSTATSIZER_SANITIZE=ON -DSTATSIZER_BUILD_BENCHES=OFF \
    -DSTATSIZER_BUILD_EXAMPLES=OFF
fi

if [[ "${SMOKE}" == 1 ]]; then
  # End-to-end Table-1 sweep on the CI-sized circuits, sharded across two
  # workers. bench_table1 exits nonzero on unknown circuits or failed runs,
  # so this catches whole-flow breakage the unit suites can miss.
  echo "check.sh: table1 smoke (--quick --threads 2)"
  ./build/bench_table1 --quick --threads 2 >/dev/null
fi

if [[ "${PARSER}" == 1 ]]; then
  # Malformed-input sweep through the real ingestion entry point. Every
  # corpus file must make example_ingest exit with status 1 (a Status error
  # printed to stderr) — exit 0 means a malformed file parsed silently,
  # anything >= 128 means the parser crashed. SDC files ride on a valid
  # netlist so the failure is attributable to the constraints.
  echo "check.sh: parser smoke (tests/corpus/malformed)"
  VALID_BENCH=tests/corpus/valid_small.bench
  for f in tests/corpus/malformed/*; do
    case "${f}" in
      *.sdc) set +e; ./build/example_ingest "${VALID_BENCH}" --sdc "${f}" >/dev/null 2>&1 ;;
      *)     set +e; ./build/example_ingest "${f}" >/dev/null 2>&1 ;;
    esac
    rc=$?
    set -e
    if [[ "${rc}" -ne 1 ]]; then
      echo "check.sh: parser smoke FAILED: ${f} exited ${rc} (want 1)" >&2
      exit 1
    fi
  done
  # And the valid pairing netlist must still go through cleanly.
  ./build/example_ingest "${VALID_BENCH}" >/dev/null
  echo "check.sh: parser smoke ok ($(ls tests/corpus/malformed | wc -l) files)"
fi

if [[ "${YIELD}" == 1 ]]; then
  # Estimator cross-check through the public flow API: a tight-budget ISLE
  # estimate must agree with a larger plain-MC reference on c432 (3 * SE +
  # discreteness budget) and must not be flagged degenerate. Exits nonzero on
  # disagreement.
  echo "check.sh: yield smoke (isle vs mc on c432)"
  ./build/example_yield_quickstart --check
fi

echo "check.sh: all green"
