#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full gtest suite through CTest.
#
#   scripts/check.sh                 # RelWithDebInfo build + ctest
#   scripts/check.sh --asan          # additionally run the fast tests under
#                                    # AddressSanitizer + UBSan
#   scripts/check.sh --tsan          # additionally run the concurrency suites
#                                    # (wavefront update/FULLSSTA, parallel
#                                    # sizer/recovery/MC/ISLE, analyzer
#                                    # conformance, pool primitives) under
#                                    # ThreadSanitizer with scripts/tsan.supp
#   scripts/check.sh --paranoid      # additionally build with
#                                    # -DSTATSIZER_PARANOID=ON (deep invariant
#                                    # validators compiled into the hot paths)
#                                    # and run the fast tests against it
#   scripts/check.sh --lint          # run the determinism linter self-test,
#                                    # then lint src/ (scripts/
#                                    # lint_determinism.py)
#   scripts/check.sh --tidy          # clang-tidy over the library sources
#                                    # (.clang-tidy); skipped with a warning
#                                    # when clang-tidy is not installed
#   scripts/check.sh --format        # clang-format --dry-run diff gate over
#                                    # tracked C++ sources (.clang-format);
#                                    # skipped with a warning when
#                                    # clang-format is not installed
#   scripts/check.sh --table1-smoke  # additionally run
#                                    # bench_table1 --quick --threads 2 as a
#                                    # post-ctest end-to-end smoke check
#   scripts/check.sh --parser-smoke  # additionally drive example_ingest over
#                                    # the malformed corpus: every file must
#                                    # fail with a loud error (exit 1), never
#                                    # crash or parse silently
#   scripts/check.sh --yield-smoke   # additionally run the importance-sampled
#                                    # yield cross-check (isle vs plain MC on
#                                    # c432, tight draw budget) via
#                                    # example_yield_quickstart --check
#   scripts/check.sh --drc           # additionally drive example_ingest
#                                    # --lint over the semantic DRC corpus
#                                    # (every expect-drc marker must fire,
#                                    # exit codes must match severity) and
#                                    # over every builtin workload (must be
#                                    # clean under --strict)
#   scripts/check.sh --serve-smoke   # additionally drive statsizer_serve
#                                    # over a scripted newline-JSON session
#                                    # (load/whatif/yield, malformed input,
#                                    # unknown op, expired deadline — each
#                                    # must answer with its structured code)
#                                    # and bench_table1 --inject (a poisoned
#                                    # shard must fail its row, exit 1)
#
# CHECK_REQUIRE_TOOLS=1 turns the clang-tidy / clang-format "not installed,
# gate SKIPPED" warnings into hard failures (for CI images that bake the
# tools in).
#
# Flags compose. Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" "${CTEST_EXTRA[@]}"
}

ASAN=0
TSAN=0
PARANOID=0
LINT=0
TIDY=0
FORMAT=0
SMOKE=0
PARSER=0
YIELD=0
DRC=0
SERVE=0
for arg in "$@"; do
  case "${arg}" in
    --asan) ASAN=1 ;;
    --tsan) TSAN=1 ;;
    --paranoid) PARANOID=1 ;;
    --lint) LINT=1 ;;
    --tidy) TIDY=1 ;;
    --format) FORMAT=1 ;;
    --table1-smoke) SMOKE=1 ;;
    --parser-smoke) PARSER=1 ;;
    --yield-smoke) YIELD=1 ;;
    --drc) DRC=1 ;;
    --serve-smoke) SERVE=1 ;;
    *)
      echo "usage: scripts/check.sh [--asan] [--tsan] [--paranoid] [--lint] [--tidy]" \
           "[--format] [--table1-smoke] [--parser-smoke] [--yield-smoke] [--drc]" \
           "[--serve-smoke]" >&2
      exit 2
      ;;
  esac
done

# The static gates run first: they are cheap and fail fastest.
if [[ "${LINT}" == 1 ]]; then
  echo "check.sh: determinism lint (self-test + src/)"
  python3 scripts/lint_determinism.py --self-test
  python3 scripts/lint_determinism.py
fi

if [[ "${FORMAT}" == 1 ]]; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "check.sh: clang-format diff gate"
    git ls-files 'src/*.h' 'src/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp' \
      | xargs clang-format --dry-run -Werror
  elif [[ "${CHECK_REQUIRE_TOOLS:-0}" == 1 ]]; then
    echo "check.sh: FAILED: clang-format not installed (CHECK_REQUIRE_TOOLS=1)" >&2
    exit 1
  else
    echo "check.sh: WARNING: clang-format not installed; format gate SKIPPED" >&2
  fi
fi

# Fast-test filter shared by the sanitized and paranoid passes (the long
# end-to-end flows are covered by the normal build; instrumented they would
# dominate the wall clock). SizerParallel stays in: it exercises the
# concurrent candidate-scoring kernel, per-worker scratch reuse, AND the
# parallel speculative what-if confirmations — exactly where memory bugs
# would surface — at ~10 s sanitized. AnalyzerConformance/FullSstaWhatIf stay
# in too: the overlay engine's private-state discipline is what the sanitizer
# should see. AreaRecovery{Parallel,Equivalence,Rollback,Options} stay in as
# well: the screening waves' per-speculation overlays, the incremental
# snapshot patching (TimingContext::apply_snapshot_patch), and the
# chunk-rollback restore path are all concurrent-lifetime code the sanitizer
# should walk. LevelizedUpdate/LevelizedWhatIf stay in too: the wavefront
# update()/FULLSSTA/cone-replay kernels write shared preallocated arrays from
# pool workers with level barriers between waves — exactly the code whose
# races/overruns only a sanitized multithreaded run would catch.
# IsleYield/IsleDegeneracy stay in too — the importance sampler's sharded
# draw loop writes per-slot weight/delay vectors from pool workers — except
# the mesh8 SDC point, whose 12.8k-gate Monte-Carlo reference would dominate
# an instrumented run like the other excluded end-to-end flows.
FAST_FILTER=(-E 'FlowRegression|Table1|StatisticalSizer|IsleYield.ResolvesSdcClockOnMesh8')

CTEST_EXTRA=()
run_suite build

if [[ "${ASAN}" == 1 ]]; then
  CTEST_EXTRA=("${FAST_FILTER[@]}")
  run_suite build-asan -DSTATSIZER_SANITIZE=address -DSTATSIZER_BUILD_BENCHES=OFF \
    -DSTATSIZER_BUILD_EXAMPLES=OFF
fi

if [[ "${TSAN}" == 1 ]]; then
  # Race-check the code that actually runs concurrently: the parallel_for /
  # ThreadPool primitives, the wavefront propagation kernels, the parallel
  # speculative scoring waves of the sizer and area recovery, the sharded
  # MC/ISLE draw loops, and the analyzer conformance suite (which drives
  # concurrent speculations through every engine). TSan detects races through
  # happens-before analysis, so findings do not depend on the host's core
  # count. scripts/tsan.supp documents every tolerated report (currently
  # none); halt_on_error makes any unsuppressed report fail the run loudly.
  # The serving suites (JobManager, BatchIsolation, ServeSession, ServeServer)
  # are in: the job system's pool handoffs, the session's shared/exclusive
  # lock discipline under concurrent what-ifs, and the server's reader/writer/
  # worker triangle are exactly the lifetimes TSan should walk.
  echo "check.sh: tsan pass (concurrency suites)"
  CTEST_EXTRA=(
    -R 'AnalyzerRegistry|EngineSelection|IsleDegeneracy|LevelizedUpdate|LevelizedWhatIf|SizerParallel|AreaRecovery|MonteCarloParallel|ParallelFor|StreamSeed|ThreadPool|IsleYield|JobManager|BatchIsolation|ServeSession|ServeServer'
    -E 'IsleYield.ResolvesSdcClockOnMesh8'
  )
  export TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp halt_on_error=1 second_deadlock_stack=1"
  run_suite build-tsan -DSTATSIZER_SANITIZE=thread -DSTATSIZER_BUILD_BENCHES=OFF \
    -DSTATSIZER_BUILD_EXAMPLES=OFF
  unset TSAN_OPTIONS
fi

if [[ "${PARANOID}" == 1 ]]; then
  # Deep invariant validators compiled into the hot paths (util/check.h,
  # debug/validate.h): levelization + load-term CSR audits on every
  # update(), pdf normalization/CDF monotonicity on every sum/max, epoch
  # discipline in the analyzer layer. The corruption-seeding tests in
  # paranoid_check_test verify each validator trips; this pass verifies the
  # *clean* code never trips one.
  echo "check.sh: paranoid pass (STATSIZER_PARANOID=ON, fast tests)"
  CTEST_EXTRA=("${FAST_FILTER[@]}")
  run_suite build-paranoid -DSTATSIZER_PARANOID=ON -DSTATSIZER_BUILD_BENCHES=OFF \
    -DSTATSIZER_BUILD_EXAMPLES=OFF
fi

if [[ "${TIDY}" == 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "check.sh: clang-tidy gate (.clang-tidy over src/)"
    # compile_commands.json is exported by the main configure above.
    git ls-files 'src/*.cpp' | xargs clang-tidy -p build --quiet
  elif [[ "${CHECK_REQUIRE_TOOLS:-0}" == 1 ]]; then
    echo "check.sh: FAILED: clang-tidy not installed (CHECK_REQUIRE_TOOLS=1)" >&2
    exit 1
  else
    echo "check.sh: WARNING: clang-tidy not installed; tidy gate SKIPPED" >&2
  fi
fi

if [[ "${SMOKE}" == 1 ]]; then
  # End-to-end Table-1 sweep on the CI-sized circuits, sharded across two
  # workers. bench_table1 exits nonzero on unknown circuits or failed runs,
  # so this catches whole-flow breakage the unit suites can miss.
  echo "check.sh: table1 smoke (--quick --threads 2)"
  ./build/bench_table1 --quick --threads 2 >/dev/null
fi

if [[ "${PARSER}" == 1 ]]; then
  # Malformed-input sweep through the real ingestion entry point. Every
  # corpus file must make example_ingest exit with status 1 (a Status error
  # printed to stderr) — exit 0 means a malformed file parsed silently,
  # anything >= 128 means the parser crashed. SDC files ride on a valid
  # netlist so the failure is attributable to the constraints.
  echo "check.sh: parser smoke (tests/corpus/malformed)"
  VALID_BENCH=tests/corpus/valid_small.bench
  for f in tests/corpus/malformed/*; do
    case "${f}" in
      *.sdc) set +e; ./build/example_ingest "${VALID_BENCH}" --sdc "${f}" >/dev/null 2>&1 ;;
      *)     set +e; ./build/example_ingest "${f}" >/dev/null 2>&1 ;;
    esac
    rc=$?
    set -e
    if [[ "${rc}" -ne 1 ]]; then
      echo "check.sh: parser smoke FAILED: ${f} exited ${rc} (want 1)" >&2
      exit 1
    fi
  done
  # And the valid pairing netlist must still go through cleanly.
  ./build/example_ingest "${VALID_BENCH}" >/dev/null
  echo "check.sh: parser smoke ok ($(ls tests/corpus/malformed | wc -l) files)"
fi

if [[ "${DRC}" == 1 ]]; then
  # Design-rule sweep through the real CLI. Two halves:
  #   1. Semantic corpus: every `expect-drc: <rule-id>` marker in the file
  #      must appear as [rule-id] in the lint output, and the exit code must
  #      match the findings' severity (1 with error-severity findings, 0 for
  #      warnings-only under the default non-strict mode).
  #   2. Builtin workloads: all must lint clean even under --strict.
  echo "check.sh: drc gate (tests/corpus/semantic + builtin workloads)"
  VALID_BENCH=tests/corpus/valid_small.bench
  for f in tests/corpus/semantic/*; do
    case "${f}" in
      *.sdc) args=(--lint "${VALID_BENCH}" --sdc "${f}") ;;
      *)     args=(--lint "${f}") ;;
    esac
    set +e
    out="$(./build/example_ingest "${args[@]}" 2>&1)"
    rc=$?
    set -e
    if [[ "${rc}" -gt 1 ]]; then
      echo "check.sh: drc gate FAILED: ${f} exited ${rc}" >&2
      echo "${out}" >&2
      exit 1
    fi
    while read -r rule; do
      if ! grep -qF "[${rule}]" <<< "${out}"; then
        echo "check.sh: drc gate FAILED: ${f} did not report [${rule}]" >&2
        echo "${out}" >&2
        exit 1
      fi
    done < <(grep -oE 'expect-drc: [a-z-]+' "${f}" | awk '{print $2}')
    if grep -qE ': error: ' <<< "${out}"; then want=1; else want=0; fi
    if [[ "${rc}" -ne "${want}" ]]; then
      echo "check.sh: drc gate FAILED: ${f} exited ${rc} (want ${want})" >&2
      echo "${out}" >&2
      exit 1
    fi
  done
  for w in alu1 alu2 alu3 c432 c499 c880 c1355 c1908 c2670 c3540 c5315 c6288 c7552 \
           mul32 mul64 pipe64 mesh8; do
    if ! ./build/example_ingest --lint --strict --workload "${w}" >/dev/null; then
      echo "check.sh: drc gate FAILED: builtin workload ${w} is not DRC-clean" >&2
      exit 1
    fi
  done
  echo "check.sh: drc gate ok ($(ls tests/corpus/semantic | wc -l) corpus cases, 17 workloads)"
fi

if [[ "${YIELD}" == 1 ]]; then
  # Estimator cross-check through the public flow API: a tight-budget ISLE
  # estimate must agree with a larger plain-MC reference on c432 (3 * SE +
  # discreteness budget) and must not be flagged degenerate. Exits nonzero on
  # disagreement.
  echo "check.sh: yield smoke (isle vs mc on c432)"
  ./build/example_yield_quickstart --check
fi

if [[ "${SERVE}" == 1 ]]; then
  # End-to-end serving smoke through the real binary and the real protocol.
  # A scripted newline-JSON session must produce one response per request, in
  # request order, with structured codes on every failure path; then a fault
  # injection into one bench_table1 shard must fail exactly that row (exit 1)
  # while a clean run stays green.
  echo "check.sh: serve smoke (statsizer_serve protocol + bench_table1 --inject)"
  SERVE_OUT="$(./build/statsizer_serve --queue-depth 8 <<'EOF'
{"id":1,"op":"load","workload":"c432"}
{"id":2,"op":"whatif","gate":"g10","size":1}
this line is not json
{"id":4,"op":"frobnicate"}
{"id":5,"op":"yield","deadline_ms":1}
{"id":6,"op":"status"}
{"id":7,"op":"quit"}
EOF
)"
  if [[ "$(wc -l <<< "${SERVE_OUT}")" -ne 7 ]]; then
    echo "check.sh: serve smoke FAILED: expected 7 response lines" >&2
    echo "${SERVE_OUT}" >&2
    exit 1
  fi
  for needle in '"circuit":"c432"' '"delta_sigma_ps"' '"code":"invalid_argument"' \
                'unknown op' '"code":"deadline_exceeded"' '"submitted"'; do
    if ! grep -qF "${needle}" <<< "${SERVE_OUT}"; then
      echo "check.sh: serve smoke FAILED: missing ${needle} in responses" >&2
      echo "${SERVE_OUT}" >&2
      exit 1
    fi
  done
  set +e
  INJECT_OUT="$(./build/bench_table1 --threads 2 \
      --inject 'site=serve/job/start,scope=0' c432 c499 2>&1 >/dev/null)"
  rc=$?
  set -e
  if [[ "${rc}" -ne 1 ]] || \
     ! grep -qE '^c432: unavailable: injected fault' <<< "${INJECT_OUT}"; then
    echo "check.sh: serve smoke FAILED: --inject run exited ${rc} (want 1 + structured fault)" >&2
    echo "${INJECT_OUT}" >&2
    exit 1
  fi
  # Isolation: only the poisoned shard's row may fail ("[table1] c499: ..."
  # progress lines are fine; an anchored "c499: <error>" line is not).
  if grep -qE '^c499: ' <<< "${INJECT_OUT}"; then
    echo "check.sh: serve smoke FAILED: fault leaked into the c499 sibling row" >&2
    echo "${INJECT_OUT}" >&2
    exit 1
  fi
  echo "check.sh: serve smoke ok"
fi

echo "check.sh: all green"
