#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full gtest suite through CTest.
#
#   scripts/check.sh             # RelWithDebInfo build + ctest
#   scripts/check.sh --asan      # additionally run the fast tests under
#                                # AddressSanitizer + UBSan
#
# Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" "${CTEST_EXTRA[@]}"
}

if [[ -n "${1:-}" && "${1}" != "--asan" ]]; then
  echo "usage: scripts/check.sh [--asan]" >&2
  exit 2
fi

CTEST_EXTRA=()
run_suite build

if [[ "${1:-}" == "--asan" ]]; then
  # Sanitized pass over the fast tests (the long end-to-end flows are covered
  # by the normal build; under ASan they would dominate the wall clock).
  CTEST_EXTRA=(-E 'FlowRegression|Table1|Sizer')
  run_suite build-asan -DSTATSIZER_SANITIZE=ON -DSTATSIZER_BUILD_BENCHES=OFF \
    -DSTATSIZER_BUILD_EXAMPLES=OFF
fi

echo "check.sh: all green"
