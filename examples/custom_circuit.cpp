// Building and optimizing a custom datapath through the public API:
//   * assemble a netlist with circuits::Builder (a 12-bit saturating
//     accumulator slice: adder + overflow clamp),
//   * map it onto the synthetic 90nm library,
//   * run the statistical flow,
//   * export the optimized design as .bench and the library as Liberty text.
#include <cstdio>
#include <fstream>

#include "bench_format/bench_writer.h"
#include "circuits/generators.h"
#include "core/flow.h"
#include "liberty/writer.h"
#include "netlist/topo.h"

using namespace statsizer;

namespace {

/// 12-bit saturating add: y = min(a + b, 0xFFF) — a carry-select clamp.
netlist::Netlist make_saturating_adder(unsigned bits) {
  circuits::Builder b("sat_add" + std::to_string(bits));
  const auto a = b.bus("a", bits);
  const auto bb = b.bus("b", bits);
  const auto zero = b.netlist().add_gate(netlist::GateFunc::kConst0, {});
  const circuits::AdderBits sum = circuits::cla_adder(b, a, bb, zero);
  // On carry-out, force all ones.
  for (unsigned i = 0; i < bits; ++i) {
    b.output("y" + std::to_string(i), b.or_(sum.sum[i], sum.carry_out));
  }
  b.output("sat", sum.carry_out);
  return b.take();
}

}  // namespace

int main() {
  auto nl = make_saturating_adder(12);
  std::printf("built %s: %zu gates, depth %u\n", nl.name().c_str(),
              nl.logic_gate_count(), netlist::depth(nl));

  core::Flow flow;
  if (const Status s = flow.load_circuit(std::move(nl)); !s.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();
  const auto original = flow.analyze();
  const auto rec = flow.optimize(6.0);
  std::printf("original: mu %.1f ps, sigma %.2f ps | optimized: mu %.1f, sigma %.2f "
              "(sigma %+.0f %%, area %+.0f %%)\n",
              original.mean_ps, original.sigma_ps, rec.after.mean_ps,
              rec.after.sigma_ps, 100 * rec.sigma_change, 100 * rec.area_change);

  // Export artifacts.
  if (const Status s =
          bench_format::write_bench_file(flow.netlist(), "sat_add12_optimized.bench");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::ofstream lib_file("statsizer_synth90.lib");
  lib_file << liberty::write_library(flow.library());
  std::printf("wrote sat_add12_optimized.bench and statsizer_synth90.lib\n");

  // Per-size usage summary of the optimized design.
  std::size_t by_drive[32] = {};
  for (netlist::GateId id = 0; id < flow.netlist().node_count(); ++id) {
    if (flow.netlist().gate(id).cell_group != netlist::kUnmapped) {
      by_drive[flow.netlist().gate(id).size_index]++;
    }
  }
  std::printf("size-index histogram:");
  for (int i = 0; i < 8; ++i) std::printf(" %zu", by_drive[i]);
  std::printf("\n");
  return 0;
}
