// The katana-style ingestion flow as a command-line tool: cell library +
// netlist (+ optional SDC constraints) -> timing graph -> STA -> statistical
// sizing -> sized write-back.
//
//   ingest <netlist.(bench|v)> [--sdc file.sdc] [--optimize lambda]
//          [--out sized.v] [--threads n]
//   ingest --lint <netlist.(bench|v)> [--sdc file.sdc] [--json] [--strict]
//   ingest --lint --workload <name> [--json] [--strict]
//
// The netlist format is picked by extension: .bench (ISCAS, mapped with the
// default mapper) or .v (structural Verilog, cell bindings adopted as-is).
// Exits non-zero with the parser's line-numbered message on any malformed
// input — scripts/check.sh --parser-smoke drives this binary over a corpus
// of malformed files and expects exactly that.
//
// --lint runs the static design-rule sweep (src/drc) instead of the sizing
// flow and prints every diagnostic with file:line provenance (--json for the
// machine-readable form). Exit codes: 0 = clean or warnings only, 1 = any
// error-severity finding (or unparseable input), 2 = usage; --strict
// promotes warnings to exit 1. scripts/check.sh --drc drives this mode over
// the semantic corpus and the builtin workloads.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/flow.h"
#include "core/lint.h"
#include "netlist/topo.h"
#include "sta/dsta.h"

using namespace statsizer;

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <netlist.(bench|v)> [--sdc file.sdc] [--optimize lambda] "
               "[--out sized.v] [--threads n]\n"
               "       %s --lint (<netlist.(bench|v)> | --workload name) [--sdc file.sdc] "
               "[--json] [--strict] [--threads n]\n",
               argv0, argv0);
  return 2;
}

int run_lint(const std::string& netlist_path, const std::string& workload,
             const std::string& sdc_path, bool json, bool strict, std::size_t threads) {
  core::LintOptions options;
  options.drc.threads = threads;
  options.sdc_path = sdc_path;
  const core::LintResult result = workload.empty() ? core::lint_file(netlist_path, options)
                                                   : core::lint_workload(workload, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status.message().c_str());
    return 1;
  }
  if (json) {
    std::fputs(drc::format_json(result.report).c_str(), stdout);
  } else {
    std::fputs(drc::format_text(result.report).c_str(), stdout);
    std::printf("%zu error(s), %zu warning(s)\n", result.report.errors(),
                result.report.warnings());
  }
  if (result.report.has_errors()) return 1;
  if (strict && result.report.warnings() > 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string netlist_path;
  std::string workload;
  std::string sdc_path;
  std::string out_path;
  double lambda = 0.0;
  bool optimize = false;
  bool lint = false;
  bool json = false;
  bool strict = false;
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sdc" && i + 1 < argc) {
      sdc_path = argv[++i];
    } else if (arg == "--optimize" && i + 1 < argc) {
      lambda = std::atof(argv[++i]);
      optimize = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--workload" && i + 1 < argc) {
      workload = argv[++i];
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (!arg.empty() && arg[0] != '-' && netlist_path.empty()) {
      netlist_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (lint) {
    if (netlist_path.empty() == workload.empty()) return usage(argv[0]);
    return run_lint(netlist_path, workload, sdc_path, json, strict, threads);
  }
  if (netlist_path.empty() || !workload.empty()) return usage(argv[0]);

  core::FlowOptions options;
  options.timing.threads = threads;
  options.sizer_threads = threads;
  core::Flow flow(options);

  // 1. Ingest: library is the synthetic 90nm; netlist by extension.
  Status load = ends_with(netlist_path, ".v") ? flow.load_verilog_file(netlist_path)
              : ends_with(netlist_path, ".bench")
                  ? flow.load_bench_file(netlist_path)
                  : Status::error("unknown netlist extension (want .bench or .v): " +
                                  netlist_path);
  if (!load.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", netlist_path.c_str(), load.message().c_str());
    return 1;
  }
  const auto& nl = flow.netlist();
  std::printf("loaded %s: %zu inputs, %zu outputs, %zu gates, depth %u\n",
              nl.name().c_str(), nl.inputs().size(), nl.outputs().size(),
              nl.logic_gate_count(), netlist::depth(nl));

  // 2. Constraints (optional).
  if (!sdc_path.empty()) {
    if (const Status s = flow.apply_sdc_file(sdc_path); !s.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", sdc_path.c_str(), s.message().c_str());
      return 1;
    }
    std::printf("applied constraints from %s\n", sdc_path.c_str());
  }

  // 3. STA + statistical analysis of the ingested state.
  const sta::DstaResult dsta = sta::run_dsta(flow.timing());
  const opt::CircuitStats before = flow.analyze();
  std::printf("ingested: arrival %.1f ps, wns %.1f ps | mean %.1f ps, sigma %.1f ps, "
              "area %.1f um2\n",
              dsta.max_arrival_ps, dsta.wns_ps, before.mean_ps, before.sigma_ps,
              before.area_um2);

  // 4. Statistical sizing (optional).
  if (optimize) {
    (void)flow.run_baseline();
    const core::OptimizationRecord rec = flow.optimize(lambda);
    std::printf("optimized (lambda=%.1f): mean %+.1f%%, sigma %+.1f%%, area %+.1f%% "
                "(%zu resizes)\n",
                lambda, 100.0 * rec.mean_change, 100.0 * rec.sigma_change,
                100.0 * rec.area_change, rec.resizes);
  }

  // 5. Write-back (optional): the sized netlist as structural Verilog.
  if (!out_path.empty()) {
    if (const Status s = flow.write_verilog_file(out_path); !s.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", out_path.c_str(), s.message().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
