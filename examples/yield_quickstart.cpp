// Yield quickstart — importance-sampled timing yield through the flow's
// front door:
//
//   core::Flow flow;
//   flow.load_table1("c432");
//   auto report = flow.estimate_yield();   // ISLE, clock resolved per options
//   std::cout << report.yield();
//
// Report mode prints Y(T), its standard error, the draw count, and the
// weight diagnostics for both engines ("isle" importance sampling vs "mc"
// plain Monte Carlo through the same machinery), so the draws-to-CI gap is
// visible directly.
//
// `--check` is the scripts/check.sh --yield-smoke entry point: on c432 under
// the inter-die variation scenario, a tight-budget ISLE estimate must agree
// with a larger plain-MC reference within 3 * combined standard error plus a
// 0.02 discreteness budget, and must not be flagged degenerate — exit 1
// (loudly) otherwise.
//
// Usage:
//   example_yield_quickstart [circuit]   # report mode (default c432)
//   example_yield_quickstart --check     # smoke mode, exit 0/1
#include <cmath>
#include <cstdio>
#include <string>

#include "core/flow.h"
#include "ssta/isle.h"
#include "util/table.h"

using namespace statsizer;

namespace {

void print_report(const core::YieldReport& r) {
  const ssta::IsleResult& y = r.result;
  std::printf("  %-5s T=%.1fps yield=%.4f +- %.4f  draws=%-6zu ess=%.0f "
              "max_w=%.2f%s\n",
              r.engine.c_str(), y.clock_period_ps, y.yield, y.std_error, y.draws,
              y.ess, y.max_weight, y.degenerate ? "  [DEGENERATE]" : "");
}

int report_mode(const std::string& circuit) {
  core::FlowOptions options;
  options.variation.global_fraction = 0.5;  // inter-die variation scenario
  options.isle.target_yield_se = 2e-3;
  options.isle.samples = 16384;  // adaptive cap; isle stops far earlier
  core::Flow flow(options);
  if (const Status s = flow.load_table1(circuit); !s.ok()) {
    std::fprintf(stderr, "load_table1(%s): %s\n", circuit.c_str(), s.message().c_str());
    return 1;
  }
  std::printf("%s: timing yield at the surrogate 2-sigma clock\n", circuit.c_str());
  print_report(flow.estimate_yield());            // importance sampling
  print_report(flow.estimate_yield(0.0, "mc"));   // plain MC, same machinery
  return 0;
}

int check_mode() {
  core::FlowOptions options;
  options.variation.global_fraction = 0.5;
  core::Flow flow(options);
  if (const Status s = flow.load_table1("c432"); !s.ok()) {
    std::fprintf(stderr, "yield-smoke: load_table1(c432): %s\n", s.message().c_str());
    return 1;
  }

  // Clock from the surrogate: T = m + 2.5 sigma (one draw builds it).
  ssta::IsleOptions probe;
  probe.samples = 1;
  probe.proposal = ssta::IsleProposal::kNominal;
  const ssta::IsleResult sur = ssta::run_isle(flow.timing(), probe);
  const double period = sur.surrogate_mean_ps + 2.5 * sur.surrogate_sigma_ps;

  ssta::IsleOptions isle;
  isle.clock_period_ps = period;
  isle.samples = 1024;  // the tight budget under test
  const ssta::IsleResult fast = ssta::run_isle(flow.timing(), isle);

  ssta::IsleOptions mc = isle;
  mc.proposal = ssta::IsleProposal::kNominal;
  mc.samples = 8192;  // the reference
  const ssta::IsleResult ref = ssta::run_isle(flow.timing(), mc);

  const double gap = std::abs(fast.yield - ref.yield);
  const double bound =
      3.0 * std::sqrt(fast.std_error * fast.std_error + ref.std_error * ref.std_error) +
      0.02;
  std::printf("yield-smoke: c432 T=%.1fps isle=%.4f+-%.4f (%zu draws) "
              "mc=%.4f+-%.4f (%zu draws) gap=%.4f bound=%.4f\n",
              period, fast.yield, fast.std_error, fast.draws, ref.yield,
              ref.std_error, ref.draws, gap, bound);
  if (fast.degenerate) {
    std::fprintf(stderr, "yield-smoke: FAILED: isle estimate flagged degenerate\n");
    return 1;
  }
  if (gap > bound) {
    std::fprintf(stderr, "yield-smoke: FAILED: isle and mc disagree beyond 3*SE\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--check") return check_mode();
  return report_mode(argc > 1 ? argv[1] : "c432");
}
