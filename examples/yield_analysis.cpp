// Yield analysis — the paper's Fig. 1 motivation in executable form.
//
// "Decreasing variance can increase the overall yield of a design": for a
// clock period T, timing yield is P(delay <= T). This example measures that
// probability for a Table-1 workload before and after statistical sizing,
// with the analysis engine selected by registry name through the
// timing::Analyzer interface. Engines that publish the full delay pdf
// (fullssta) yield exact CDF reads; moment-only engines (fassta, canonical)
// fall back to the normal approximation. Monte Carlo cross-checks one
// operating point either way.
//
// Usage: yield_analysis [circuit] [lambda] [engine]
//        (default: c880, 9, fullssta)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/flow.h"
#include "ssta/monte_carlo.h"
#include "timing/analyzer.h"
#include "util/numeric.h"
#include "util/table.h"

using namespace statsizer;

namespace {

/// Delay distribution read through whichever payload the engine provides:
/// the discrete pdf when available, the (mu, sigma) normal fit otherwise.
struct DelayModel {
  bool has_pdf = false;
  pdf::DiscretePdf pdf;
  double mean_ps = 0.0;
  double sigma_ps = 0.0;

  static DelayModel from(const timing::Analyzer& analyzer, const timing::Summary& s) {
    DelayModel m;
    m.has_pdf = analyzer.capabilities().output_pdf;
    if (m.has_pdf) m.pdf = s.output_pdf;
    m.mean_ps = s.mean_ps;
    m.sigma_ps = s.sigma_ps;
    return m;
  }

  [[nodiscard]] double cdf(double x) const {
    if (has_pdf) return pdf.cdf(x);
    if (sigma_ps <= 0.0) return x >= mean_ps ? 1.0 : 0.0;
    return util::normal_cdf((x - mean_ps) / sigma_ps);
  }
  [[nodiscard]] double quantile(double q) const {
    if (has_pdf) return pdf.quantile(q);
    if (sigma_ps <= 0.0) return mean_ps;
    return mean_ps + sigma_ps * util::normal_inv_cdf(q);
  }
};

double monte_carlo_yield(core::Flow& flow, double period_ps) {
  ssta::MonteCarloOptions mc_opt;
  mc_opt.samples = 5000;
  const auto mc = ssta::run_monte_carlo(flow.timing(), mc_opt);
  double below = 0;
  for (const double s : mc.circuit_samples) {
    if (s <= period_ps) ++below;
  }
  return below / static_cast<double>(mc.circuit_samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c880";
  const double lambda = argc > 2 ? std::atof(argv[2]) : 9.0;
  const std::string engine = argc > 3 ? argv[3] : "fullssta";

  core::Flow flow;
  if (const Status s = flow.load_table1(name); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::unique_ptr<timing::Analyzer> analyzer;
  try {
    analyzer = flow.make_analyzer(engine);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  (void)flow.run_baseline();
  const DelayModel original = DelayModel::from(*analyzer, analyzer->analyze(flow.timing()));
  const auto original_sizes = flow.netlist().sizes();

  (void)flow.optimize(lambda);
  const DelayModel optimized = DelayModel::from(*analyzer, analyzer->analyze(flow.timing()));

  std::printf("%s via %s%s: original  mu %.1f ps sigma %.2f ps | optimized (lambda=%.0f) "
              "mu %.1f sigma %.2f\n\n",
              name.c_str(), engine.c_str(), original.has_pdf ? "" : " (normal approx)",
              original.mean_ps, original.sigma_ps, lambda, optimized.mean_ps,
              optimized.sigma_ps);

  // Yield curve over periods bracketing both designs. The paper's point: at a
  // period T near the mean, the narrow design yields many more good parts.
  util::Table t({"period (ps)", "orig yield", "opt yield", "gain"});
  const double lo = std::min(original.quantile(0.05), optimized.quantile(0.05));
  const double hi = std::max(original.quantile(0.999), optimized.quantile(0.999));
  for (int i = 0; i <= 10; ++i) {
    const double period = lo + (hi - lo) * i / 10.0;
    const double y_orig = original.cdf(period);
    const double y_opt = optimized.cdf(period);
    t.add_row({util::fmt(period, 0), util::fmt(100.0 * y_orig, 1) + " %",
               util::fmt(100.0 * y_opt, 1) + " %",
               util::fmt_pct(y_opt - y_orig, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Cross-check one operating point against Monte Carlo, for both designs.
  const double period = original.quantile(0.95);
  const auto optimized_sizes = flow.netlist().sizes();
  flow.timing().mutable_netlist().set_sizes(original_sizes);
  flow.timing().update();
  const double mc_before = monte_carlo_yield(flow, period);
  flow.timing().mutable_netlist().set_sizes(optimized_sizes);
  flow.timing().update();
  const double mc_after = monte_carlo_yield(flow, period);
  std::printf("at T = %.0f ps: original %.1f %% (MC %.1f %%) -> optimized %.1f %% (MC %.1f %%)\n",
              period, 100 * original.cdf(period), 100 * mc_before,
              100 * optimized.cdf(period), 100 * mc_after);
  std::printf("99th-percentile delay: %.1f ps -> %.1f ps\n", original.quantile(0.99),
              optimized.quantile(0.99));
  return 0;
}
