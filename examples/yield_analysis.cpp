// Yield analysis — the paper's Fig. 1 motivation in executable form.
//
// "Decreasing variance can increase the overall yield of a design": for a
// clock period T, timing yield is P(delay <= T). This example measures that
// probability for a Table-1 workload before and after statistical sizing,
// three ways: from the FULLSSTA output pdf, from the canonical engine's
// normal approximation, and from Monte-Carlo samples — then prints the
// yield-vs-period curve for both designs.
//
// Usage: yield_analysis [circuit] [lambda]   (default: c880, 9)
#include <cstdio>
#include <string>

#include "core/flow.h"
#include "ssta/monte_carlo.h"
#include "util/numeric.h"
#include "util/table.h"

using namespace statsizer;

namespace {

struct YieldPoint {
  double full_ssta;
  double monte_carlo;
};

YieldPoint yield_at(core::Flow& flow, double period_ps) {
  const auto full = flow.full_analysis();
  ssta::MonteCarloOptions mc_opt;
  mc_opt.samples = 5000;
  const auto mc = ssta::run_monte_carlo(flow.timing(), mc_opt);
  double below = 0;
  for (const double s : mc.circuit_samples) {
    if (s <= period_ps) ++below;
  }
  return {full.output_pdf.cdf(period_ps),
          below / static_cast<double>(mc.circuit_samples.size())};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c880";
  const double lambda = argc > 2 ? std::atof(argv[2]) : 9.0;

  core::Flow flow;
  if (const Status s = flow.load_table1(name); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();
  const auto original = flow.analyze();
  const auto original_pdf = flow.full_analysis().output_pdf;
  const auto original_sizes = flow.netlist().sizes();

  const auto rec = flow.optimize(lambda);
  const auto optimized = flow.analyze();
  const auto optimized_pdf = rec.output_pdf;

  std::printf("%s: original  mu %.1f ps sigma %.2f ps | optimized (lambda=%.0f) mu %.1f "
              "sigma %.2f\n\n",
              name.c_str(), original.mean_ps, original.sigma_ps, lambda,
              optimized.mean_ps, optimized.sigma_ps);

  // Yield curve over periods bracketing both designs. The paper's point: at a
  // period T near the mean, the narrow design yields many more good parts.
  util::Table t({"period (ps)", "orig yield", "opt yield", "gain"});
  const double lo = std::min(original_pdf.quantile(0.05), optimized_pdf.quantile(0.05));
  const double hi = std::max(original_pdf.quantile(0.999), optimized_pdf.quantile(0.999));
  for (int i = 0; i <= 10; ++i) {
    const double period = lo + (hi - lo) * i / 10.0;
    const double y_orig = original_pdf.cdf(period);
    const double y_opt = optimized_pdf.cdf(period);
    t.add_row({util::fmt(period, 0), util::fmt(100.0 * y_orig, 1) + " %",
               util::fmt(100.0 * y_opt, 1) + " %",
               util::fmt_pct(y_opt - y_orig, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Cross-check one operating point against Monte Carlo, for both designs.
  const double period = original_pdf.quantile(0.95);
  flow.timing().mutable_netlist().set_sizes(original_sizes);
  flow.timing().update();
  const YieldPoint before = yield_at(flow, period);
  // Restore the optimized sizing for the second measurement.
  // (optimize() left the netlist optimized; we saved original above.)
  // Re-run the optimization state: simplest is to re-optimize.
  (void)flow.optimize(lambda);
  const YieldPoint after = yield_at(flow, period);
  std::printf("at T = %.0f ps: original %.1f %% (MC %.1f %%) -> optimized %.1f %% (MC %.1f %%)\n",
              period, 100 * before.full_ssta, 100 * before.monte_carlo,
              100 * after.full_ssta, 100 * after.monte_carlo);
  std::printf("99th-percentile delay: %.1f ps -> %.1f ps\n",
              original_pdf.quantile(0.99), optimized_pdf.quantile(0.99));
  return 0;
}
