// Quickstart: the whole statsizer flow in ~40 lines.
//
// Loads a Table-1 workload (the c432-class interrupt controller), establishes
// the paper's "original" operating point (deterministic mean-delay sizing),
// then runs StatisticalGreedy at lambda = 3 and lambda = 9 and prints the
// mean/sigma/area movements — a miniature of the paper's Table 1 row.
#include <cstdio>

#include "core/flow.h"

int main() {
  using namespace statsizer;

  core::Flow flow;
  if (const Status s = flow.load_table1("c432"); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("circuit: %s, %zu gates\n", flow.netlist().name().c_str(),
              flow.netlist().logic_gate_count());

  // Baseline: minimize mean delay (this is what a deterministic flow does —
  // and it leaves the circuit with the widest performance spread).
  const auto baseline = flow.run_baseline();
  const auto original = flow.analyze();
  std::printf("baseline sizing: %zu resizes, arrival %.1f -> %.1f ps\n", baseline.resizes,
              baseline.initial_arrival_ps, baseline.final_arrival_ps);
  std::printf("original: mu = %.1f ps, sigma = %.2f ps, sigma/mu = %.4f, area = %.0f um^2\n",
              original.mean_ps, original.sigma_ps, original.sigma_over_mu(),
              original.area_um2);

  // Statistical optimization, increasing emphasis on variance.
  auto sizes = flow.netlist().sizes();  // snapshot to restart from the same point
  for (const double lambda : {3.0, 9.0}) {
    flow.timing().mutable_netlist().set_sizes(sizes);
    flow.timing().update();
    const core::OptimizationRecord rec = flow.optimize(lambda);
    std::printf(
        "lambda=%.0f: mu %+5.1f%%  sigma %+6.1f%%  area %+5.1f%%  "
        "(sigma/mu %.4f -> %.4f, %zu iterations, %.2f s)\n",
        lambda, 100.0 * rec.mean_change, 100.0 * rec.sigma_change,
        100.0 * rec.area_change, rec.before.sigma_over_mu(), rec.after.sigma_over_mu(),
        rec.iterations, rec.runtime_seconds);
  }
  return 0;
}
