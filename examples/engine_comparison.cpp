// Side-by-side of the statistical timing engines on one workload — every
// engine selected by registry name through the unified timing::Analyzer
// interface (timing::make_analyzer), no per-engine plumbing:
//   fullssta   — discrete-pdf propagation (the paper's accurate outer engine)
//   fassta     — Clark-moment propagation  (the paper's fast inner engine)
//   canonical  — first-order form with a shared global variable (extension)
//   mc         — Monte-Carlo sampling reference
//   dsta       — deterministic STA (mean only; sigma = 0)
// Including what happens when a correlated (global) variation component is
// switched on: the independence-based engines underestimate sigma, the
// canonical engine tracks it.
//
// Usage: engine_comparison [circuit] [engine ...]
//        (default: alu2, every registered engine)
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/flow.h"
#include "timing/analyzer.h"
#include "util/table.h"

using namespace statsizer;

namespace {

template <typename Fn>
double time_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int compare(const std::string& name, const std::vector<std::string>& engines,
            double global_fraction) {
  core::FlowOptions options;
  options.variation.global_fraction = global_fraction;
  core::Flow flow(options);
  if (const Status s = flow.load_table1(name); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();

  util::Table t({"engine", "mu (ps)", "sigma (ps)", "runtime (ms)", "what-if"});
  for (const std::string& engine : engines) {
    // Names were validated up front in main().
    const std::unique_ptr<timing::Analyzer> analyzer = flow.make_analyzer(engine);
    // Copy: the timed re-analyze below invalidates the returned reference.
    const timing::Summary s = analyzer->analyze(flow.timing());
    const double ms = time_ms([&] { (void)analyzer->analyze(flow.timing()); });
    const timing::Capabilities caps = analyzer->capabilities();
    t.add_row({engine, util::fmt(s.mean_ps, 1), util::fmt(s.sigma_ps, 2),
               util::fmt(ms, 2),
               caps.concurrent_speculations ? "parallel"
                                            : (caps.what_if ? "serial" : "-")});
  }
  std::printf("global_fraction = %.1f\n%s\n", global_fraction, t.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "alu2";
  std::vector<std::string> engines;
  for (int i = 2; i < argc; ++i) engines.emplace_back(argv[i]);
  if (engines.empty()) engines = timing::analyzer_names();
  // Fail on a typo before paying for the baseline optimization.
  for (const std::string& engine : engines) {
    try {
      (void)timing::make_analyzer(engine);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  std::printf("engine comparison on %s\n\n", name.c_str());
  // Independent variation: all statistical engines should agree-ish.
  if (const int rc = compare(name, engines, 0.0); rc != 0) return rc;
  // Strong global correlation: canonical tracks MC.
  if (const int rc = compare(name, engines, 0.6); rc != 0) return rc;
  std::printf(
      "note: with correlated variation the independence-based engines\n"
      "(fullssta/fassta) underestimate sigma — the gap the paper's section\n"
      "4.3 assigns to the correlation-aware outer loop (PCA et al.).\n");
  return 0;
}
