// Side-by-side of the four statistical timing engines on one workload:
//   FULLSSTA   — discrete-pdf propagation (the paper's accurate outer engine)
//   FASSTA     — Clark-moment propagation  (the paper's fast inner engine)
//   canonical  — first-order form with a shared global variable (extension)
//   MonteCarlo — sampling reference
// Including what happens when a correlated (global) variation component is
// switched on: the independence-based engines underestimate sigma, the
// canonical engine tracks it.
//
// Usage: engine_comparison [circuit] (default alu2)
#include <chrono>
#include <cstdio>
#include <string>

#include "core/flow.h"
#include "fassta/engine.h"
#include "ssta/canonical.h"
#include "ssta/fullssta.h"
#include "ssta/monte_carlo.h"
#include "util/table.h"

using namespace statsizer;

namespace {

template <typename Fn>
double time_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void compare(const std::string& name, double global_fraction) {
  core::FlowOptions options;
  options.variation.global_fraction = global_fraction;
  core::Flow flow(options);
  if (const Status s = flow.load_table1(name); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return;
  }
  (void)flow.run_baseline();
  auto& ctx = flow.timing();

  util::Table t({"engine", "mu (ps)", "sigma (ps)", "runtime (ms)"});

  ssta::FullSstaResult full;
  t.add_row({"FULLSSTA (13 pdf samples)",
             util::fmt((full = ssta::run_fullssta(ctx)).mean_ps, 1),
             util::fmt(full.sigma_ps, 2),
             util::fmt(time_ms([&] { (void)ssta::run_fullssta(ctx); }), 2)});

  const fassta::Engine engine(ctx);
  sta::NodeMoments fm;
  (void)engine.run(&fm);
  t.add_row({"FASSTA (Clark moments)", util::fmt(fm.mean_ps, 1),
             util::fmt(fm.sigma_ps, 2), util::fmt(time_ms([&] {
               sta::NodeMoments m;
               (void)engine.run(&m);
             }),
                                                  2)});

  const ssta::CanonicalResult can = ssta::run_canonical(ctx);
  t.add_row({"canonical (1 global PC)", util::fmt(can.mean_ps, 1),
             util::fmt(can.sigma_ps, 2),
             util::fmt(time_ms([&] { (void)ssta::run_canonical(ctx); }), 2)});

  ssta::MonteCarloOptions mc_opt;
  mc_opt.samples = 10000;
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(ctx, mc_opt);
  t.add_row({"Monte Carlo (10k samples)", util::fmt(mc.mean_ps, 1),
             util::fmt(mc.sigma_ps, 2),
             util::fmt(time_ms([&] { (void)ssta::run_monte_carlo(ctx, mc_opt); }), 2)});

  std::printf("global_fraction = %.1f\n%s\n", global_fraction, t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "alu2";
  std::printf("engine comparison on %s\n\n", name.c_str());
  compare(name, 0.0);  // independent variation: all engines should agree-ish
  compare(name, 0.6);  // strong global correlation: canonical tracks MC
  std::printf(
      "note: with correlated variation the independence-based engines\n"
      "(FULLSSTA/FASSTA) underestimate sigma — the gap the paper's section\n"
      "4.3 assigns to the correlation-aware outer loop (PCA et al.).\n");
  return 0;
}
