// Reproduces the paper's Figure 4: the normalized mean-vs-sigma trade-off
// for the c432-class circuit as the objective weight lambda sweeps upward.
// Each lambda is run from the same mean-optimized baseline; the series
// traces the Pareto frontier the paper plots (mu normalized to the original,
// sigma/mu on the y axis).
//
// Usage: bench_fig4 [circuit] (default c432)
#include <cstdio>
#include <string>
#include <vector>

#include "core/flow.h"
#include "util/table.h"

using namespace statsizer;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c432";

  core::Flow flow;
  if (const Status s = flow.load_table1(name); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();
  const opt::CircuitStats original = flow.analyze();
  const auto baseline_sizes = flow.netlist().sizes();

  std::printf("Figure 4 — normalized mean vs sigma for %s (lambda sweep)\n\n",
              name.c_str());
  util::Table t({"lambda", "mu (ps)", "mu norm", "sigma (ps)", "sigma/mu",
                 "sigma vs orig", "area norm", "iters"});
  t.add_row({"orig", util::fmt(original.mean_ps, 1), "1.000",
             util::fmt(original.sigma_ps, 2), util::fmt(original.sigma_over_mu(), 4),
             "+0 %", "1.000", "-"});

  std::vector<std::pair<double, double>> series;  // (mu_norm, sigma/mu)
  series.emplace_back(1.0, original.sigma_over_mu());
  for (const double lambda : {1.0, 3.0, 6.0, 9.0, 12.0}) {
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    const core::OptimizationRecord rec = flow.optimize(lambda);
    t.add_row({util::fmt(lambda, 0), util::fmt(rec.after.mean_ps, 1),
               util::fmt(rec.after.mean_ps / original.mean_ps, 3),
               util::fmt(rec.after.sigma_ps, 2),
               util::fmt(rec.after.sigma_over_mu(), 4),
               util::fmt_pct(rec.sigma_change, 0),
               util::fmt(rec.after.area_um2 / original.area_um2, 3),
               std::to_string(rec.iterations)});
    series.emplace_back(rec.after.mean_ps / original.mean_ps,
                        rec.after.sigma_over_mu());
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("# series (mu_norm, sigma/mu) for plotting:\n");
  for (const auto& [x, y] : series) std::printf("%.4f, %.4f\n", x, y);

  // Shape check mirrors the paper's plot: the strongest lambda ends with a
  // markedly lower sigma/mu than the original.
  const bool improved = series.back().second < 0.9 * series.front().second;
  std::printf("\n# frontier check: sigma/mu at max lambda %s the original\n",
              improved ? "well below" : "NOT well below — inspect");
  return 0;
}
