// Ablation A1 — accuracy of the statistical-max implementations.
//
// Sweeps the two knobs that matter for max(A, B): the normalized mean gap
// alpha = (mu_A - mu_B) / a and the sigma ratio sigma_B / sigma_A, and
// measures, against exact Clark moments:
//   * the paper's fast max (quadratic erf + dominance early-outs),
//   * the discrete-pdf max at 13 samples (FULLSSTA's inner operation),
// plus a Monte-Carlo cross-check and rough throughput numbers.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "fassta/clark.h"
#include "pdf/discrete_pdf.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/table.h"

using namespace statsizer;

int main() {
  std::printf("Ablation A1 — max-of-Gaussians accuracy (vs exact Clark)\n\n");

  util::Table t({"alpha", "sig ratio", "fast dMean", "fast dSigma", "pdf13 dMean",
                 "pdf13 dSigma"});
  double worst_fast_mean = 0.0;
  double worst_fast_sigma = 0.0;
  for (const double alpha : {-3.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0}) {
    for (const double ratio : {0.25, 1.0, 4.0}) {
      const double sig_a = 10.0;
      const double sig_b = sig_a * ratio;
      const double a = std::sqrt(sig_a * sig_a + sig_b * sig_b);
      const double mu_a = 100.0;
      const double mu_b = mu_a - alpha * a;

      const auto exact = fassta::clark_max_exact(mu_a, sig_a, mu_b, sig_b);
      const auto fast = fassta::clark_max_fast(mu_a, sig_a, mu_b, sig_b);
      const auto pa = pdf::DiscretePdf::normal(mu_a, sig_a, 13);
      const auto pb = pdf::DiscretePdf::normal(mu_b, sig_b, 13);
      const auto pm = pdf::max(pa, pb, 13);

      const double fast_dm = fast.mean - exact.mean;
      const double fast_ds = std::sqrt(fast.var) - std::sqrt(exact.var);
      worst_fast_mean = std::max(worst_fast_mean, std::abs(fast_dm) / a);
      worst_fast_sigma = std::max(worst_fast_sigma, std::abs(fast_ds) / a);
      t.add_row({util::fmt(alpha, 1), util::fmt(ratio, 2), util::fmt(fast_dm, 3),
                 util::fmt(fast_ds, 3), util::fmt(pm.mean() - exact.mean, 3),
                 util::fmt(pm.stddev() - std::sqrt(exact.var), 3)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("worst fast-max error (fraction of combined sigma): mean %.3f, sigma %.3f\n",
              worst_fast_mean, worst_fast_sigma);

  // Monte-Carlo spot check at the hardest point (alpha = 0, equal sigmas).
  {
    util::Rng rng(1);
    util::RunningStats mc;
    for (int i = 0; i < 400000; ++i) {
      mc.add(std::max(rng.normal(100.0, 10.0), rng.normal(100.0, 10.0)));
    }
    const auto exact = fassta::clark_max_exact(100.0, 10.0, 100.0, 10.0);
    std::printf("MC cross-check at alpha=0: exact (%.3f, %.3f) vs MC (%.3f, %.3f)\n",
                exact.mean, std::sqrt(exact.var), mc.mean(), mc.stddev());
  }

  // Throughput: fast vs exact vs discrete-pdf max.
  const auto time_loop = [](auto&& fn, int iters) {
    const auto t0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (int i = 0; i < iters; ++i) sink += fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
    // Prevent the loop from being optimized out.
    if (sink == 12345.6789) std::printf("!");
    return ns;
  };
  const double ns_fast = time_loop(
      [](int i) {
        return fassta::clark_max_fast(100.0 + (i % 7), 10.0, 99.0, 12.0).mean;
      },
      2000000);
  const double ns_exact = time_loop(
      [](int i) {
        return fassta::clark_max_exact(100.0 + (i % 7), 10.0, 99.0, 12.0).mean;
      },
      2000000);
  const double ns_pdf = time_loop(
      [](int i) {
        const auto pa = pdf::DiscretePdf::normal(100.0 + (i % 7), 10.0, 13);
        const auto pb = pdf::DiscretePdf::normal(99.0, 12.0, 13);
        return pdf::max(pa, pb, 13).mean();
      },
      20000);
  std::printf("\nthroughput per max: fast %.0f ns, exact %.0f ns, discrete-pdf %.0f ns\n",
              ns_fast, ns_exact, ns_pdf);
  std::printf("fast speedup vs discrete-pdf: %.0fx — the reason FASSTA exists\n",
              ns_pdf / ns_fast);
  return 0;
}
