// Ablation A4 — FULLSSTA pdf sampling rate. The paper picked 10-15 samples
// per pdf "as a reasonable tradeoff between accuracy and speed"; this sweep
// quantifies that against a 20k-sample Monte-Carlo reference.
#include <chrono>
#include <cstdio>

#include "core/flow.h"
#include "ssta/fullssta.h"
#include "ssta/monte_carlo.h"
#include "util/table.h"

using namespace statsizer;

int main() {
  std::printf("Ablation A4 — FULLSSTA samples-per-pdf sweep (c880-class)\n\n");

  core::Flow flow;
  if (const Status s = flow.load_table1("c880"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();
  auto& ctx = flow.timing();

  ssta::MonteCarloOptions mc_opt;
  mc_opt.samples = 20000;
  const auto mc = ssta::run_monte_carlo(ctx, mc_opt);
  std::printf("Monte-Carlo reference (20k samples): mu %.1f ps, sigma %.2f ps\n\n",
              mc.mean_ps, mc.sigma_ps);

  util::Table t({"samples/pdf", "mu (ps)", "sigma (ps)", "dMu vs MC", "dSigma vs MC",
                 "time/pass (ms)"});
  for (const std::size_t samples : {5u, 7u, 10u, 13u, 15u, 19u, 25u}) {
    ssta::FullSstaOptions opt;
    opt.samples_per_pdf = samples;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 20;
    ssta::FullSstaResult r;
    for (int i = 0; i < kReps; ++i) r = ssta::run_fullssta(ctx, opt);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
    t.add_row({std::to_string(samples), util::fmt(r.mean_ps, 1),
               util::fmt(r.sigma_ps, 2), util::fmt_pct(r.mean_ps / mc.mean_ps - 1.0, 2),
               util::fmt_pct(r.sigma_ps / mc.sigma_ps - 1.0, 1), util::fmt(ms, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "# note: the residual sigma gap vs MC is the independence assumption at\n"
      "# reconvergent merges (paper section 4.3), not sampling resolution —\n"
      "# it does not close as samples increase.\n");
  return 0;
}
