// P2 — discrete-pdf operation microbenchmarks (google-benchmark): the cost
// of FULLSSTA's primitive sum/max at the paper's sampling rates.
#include <benchmark/benchmark.h>

#include "pdf/discrete_pdf.h"

namespace {

using statsizer::pdf::DiscretePdf;

void BM_NormalDiscretize(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscretePdf::normal(100.0, 10.0, samples));
  }
}
BENCHMARK(BM_NormalDiscretize)->Arg(10)->Arg(13)->Arg(15)->Arg(25);

void BM_Sum(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const DiscretePdf a = DiscretePdf::normal(100.0, 10.0, samples);
  const DiscretePdf b = DiscretePdf::normal(40.0, 6.0, samples);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sum(a, b, samples));
  }
}
BENCHMARK(BM_Sum)->Arg(10)->Arg(13)->Arg(15)->Arg(25);

void BM_Max(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const DiscretePdf a = DiscretePdf::normal(100.0, 10.0, samples);
  const DiscretePdf b = DiscretePdf::normal(98.0, 12.0, samples);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max(a, b, samples));
  }
}
BENCHMARK(BM_Max)->Arg(10)->Arg(13)->Arg(15)->Arg(25);

void BM_Resample(benchmark::State& state) {
  const DiscretePdf a = DiscretePdf::normal(100.0, 10.0, 41);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.resampled(13));
  }
}
BENCHMARK(BM_Resample);

void BM_Quantile(benchmark::State& state) {
  const DiscretePdf a = DiscretePdf::normal(100.0, 10.0, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.quantile(0.99));
  }
}
BENCHMARK(BM_Quantile);

}  // namespace

BENCHMARK_MAIN();
