// Ablation A3 — inner-loop scoring: the paper's literal k-level subcircuit
// window (k = 1, 2, 3) versus the global FASSTA pass this implementation
// defaults to. Demonstrates the window-truncation effect documented in
// DESIGN.md: windows score candidates by a local max that can miss
// slow-downs re-emerging beyond the cut, so the optimizer accepts fewer (or
// worse) moves; the global pass sees the whole max-over-paths objective.
#include <chrono>
#include <cstdio>

#include "core/flow.h"
#include "util/table.h"

using namespace statsizer;

int main() {
  std::printf("Ablation A3 — inner-loop scoring strategy (c432-class, lambda = 9)\n\n");

  core::Flow flow;
  if (const Status s = flow.load_table1("c432"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();
  const auto baseline_sizes = flow.netlist().sizes();
  const opt::CircuitStats original = flow.analyze();

  util::Table t({"scoring", "dMu", "dSigma", "dArea", "iters", "fast evals", "time (s)"});

  struct Config {
    const char* label;
    opt::InnerScoring scoring;
    unsigned levels;
  };
  const Config configs[] = {
      {"window k=1", opt::InnerScoring::kSubcircuit, 1},
      {"window k=2 (paper)", opt::InnerScoring::kSubcircuit, 2},
      {"window k=3", opt::InnerScoring::kSubcircuit, 3},
      {"global FASSTA", opt::InnerScoring::kGlobalFassta, 0},
  };
  for (const Config& cfg : configs) {
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();

    opt::StatisticalSizerOptions sizer;
    sizer.scoring = cfg.scoring;
    if (cfg.levels > 0) sizer.subcircuit_levels = cfg.levels;

    const auto t0 = std::chrono::steady_clock::now();
    const core::OptimizationRecord rec = flow.optimize(9.0, &sizer);
    const auto t1 = std::chrono::steady_clock::now();

    t.add_row({cfg.label, util::fmt_pct(rec.mean_change, 1),
               util::fmt_pct(rec.sigma_change, 0), util::fmt_pct(rec.area_change, 0),
               std::to_string(rec.iterations), std::to_string(rec.resizes),
               util::fmt(std::chrono::duration<double>(t1 - t0).count(), 2)});
  }
  std::printf("original: mu %.1f ps, sigma %.2f ps, area %.0f um^2\n\n",
              original.mean_ps, original.sigma_ps, original.area_um2);
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
