// Ablation A2 — the dominance threshold (paper eqs. 5/6 use 2.6, the point
// where the quadratic erf approximation saturates). Sweeps the threshold and
// measures full-netlist FASSTA moments against the exact-Clark engine, plus
// the runtime effect of taking the early-outs.
#include <chrono>
#include <cstdio>

#include "circuits/iscas_suite.h"
#include "core/flow.h"
#include "fassta/engine.h"
#include "util/table.h"

using namespace statsizer;

int main() {
  std::printf("Ablation A2 — dominance-threshold sweep (c880-class workload)\n\n");

  core::Flow flow;
  if (const Status s = flow.load_table1("c880"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();
  auto& ctx = flow.timing();

  // Reference: exact Clark everywhere.
  fassta::EngineOptions exact_opt;
  exact_opt.max_mode = fassta::MaxMode::kExact;
  sta::NodeMoments exact;
  (void)fassta::Engine(ctx, exact_opt).run(&exact);

  util::Table t({"threshold", "mu (ps)", "sigma (ps)", "dMu vs exact", "dSigma vs exact",
                 "time/pass (us)"});
  t.add_row({"exact", util::fmt(exact.mean_ps, 2), util::fmt(exact.sigma_ps, 3), "0",
             "0", "-"});

  for (const double threshold : {1.2, 1.6, 2.0, 2.6, 3.2, 4.0}) {
    fassta::EngineOptions opt;
    opt.max_mode = fassta::MaxMode::kFast;
    opt.dominance_threshold = threshold;
    const fassta::Engine engine(ctx, opt);

    sta::NodeMoments m;
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 200;
    for (int i = 0; i < kReps; ++i) (void)engine.run(&m);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;

    t.add_row({util::fmt(threshold, 1), util::fmt(m.mean_ps, 2),
               util::fmt(m.sigma_ps, 3), util::fmt(m.mean_ps - exact.mean_ps, 3),
               util::fmt(m.sigma_ps - exact.sigma_ps, 3), util::fmt(us, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "# expectation: accuracy is flat for thresholds >= ~2.6 (the quadratic\n"
      "# erf saturation point); lower thresholds trade accuracy for speed.\n");
  return 0;
}
