// P1 — engine throughput microbenchmarks (google-benchmark): how much
// cheaper is FASSTA than FULLSSTA and Monte Carlo on real workloads. These
// ratios justify the paper's two-engine nesting.
#include <benchmark/benchmark.h>

#include "core/flow.h"
#include "fassta/engine.h"
#include "ssta/canonical.h"
#include "ssta/fullssta.h"
#include "ssta/monte_carlo.h"

namespace {

using namespace statsizer;

/// Shared fixture: a baselined Table-1 workload per circuit name.
core::Flow& flow_for(const std::string& name) {
  static std::map<std::string, std::unique_ptr<core::Flow>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    auto flow = std::make_unique<core::Flow>();
    if (const Status s = flow->load_table1(name); !s.ok()) {
      throw std::runtime_error(s.message());
    }
    (void)flow->run_baseline();
    it = cache.emplace(name, std::move(flow)).first;
  }
  return *it->second;
}

void BM_Fassta(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const fassta::Engine engine(flow.timing());
  for (auto _ : state) {
    sta::NodeMoments m;
    benchmark::DoNotOptimize(engine.run(&m));
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel(std::to_string(flow.netlist().logic_gate_count()) + " gates");
}

void BM_FasstaCandidate(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const fassta::Engine engine(flow.timing());
  // Representative inner-loop call: re-scoring one candidate size.
  const auto g = flow.netlist().outputs()[0].driver;
  const auto& cell = flow.timing().cell(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_with_candidate(g, cell));
  }
}

void BM_Fullssta(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_fullssta(flow.timing()));
  }
}

void BM_Canonical(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_canonical(flow.timing()));
  }
}

void BM_MonteCarlo1k(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  ssta::MonteCarloOptions opt;
  opt.samples = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_monte_carlo(flow.timing(), opt));
  }
}

/// Parallel Monte-Carlo scaling: state.range(0) worker threads, plus a
/// one-shot check that every thread count reproduces the 1-thread result
/// bitwise (counter-based per-sample RNG streams).
void BM_MonteCarloThreads(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  ssta::MonteCarloOptions opt;
  opt.samples = 4000;
  opt.threads = static_cast<std::size_t>(state.range(0));

  ssta::MonteCarloOptions serial = opt;
  serial.threads = 1;
  const auto reference = ssta::run_monte_carlo(flow.timing(), serial);
  const auto parallel = ssta::run_monte_carlo(flow.timing(), opt);
  if (parallel.mean_ps != reference.mean_ps || parallel.sigma_ps != reference.sigma_ps ||
      parallel.circuit_samples != reference.circuit_samples) {
    state.SkipWithError("parallel Monte Carlo diverged from the serial reference");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_monte_carlo(flow.timing(), opt));
  }
  state.SetLabel("mean=" + std::to_string(reference.mean_ps) +
                 "ps sigma=" + std::to_string(reference.sigma_ps) + "ps");
}

/// Parallel StatisticalGreedy scaling: candidate scoring fans across
/// state.range(0) workers, with a one-shot check that every thread count
/// reproduces the 1-thread run bitwise (trajectory, stats, final sizes).
/// Each iteration restores the baseline sizes so successive runs optimize
/// the same starting point.
void BM_SizerThreads(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const auto baseline_sizes = flow.netlist().sizes();

  opt::StatisticalSizerOptions opt;
  opt.objective.lambda = 3.0;
  opt.max_iterations = 3;  // a few plan rounds: scoring-dominated, bench-sized
  const auto run_with = [&](std::size_t threads) {
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    auto o = opt;
    o.threads = threads;
    return opt::size_statistically(flow.timing(), o);
  };

  const auto reference = run_with(1);
  const auto ref_sizes = flow.netlist().sizes();
  const auto parallel = run_with(static_cast<std::size_t>(state.range(0)));
  if (parallel.resizes != reference.resizes ||
      parallel.fassta_evaluations != reference.fassta_evaluations ||
      parallel.final_.mean_ps != reference.final_.mean_ps ||
      parallel.final_.sigma_ps != reference.final_.sigma_ps ||
      flow.netlist().sizes() != ref_sizes) {
    state.SkipWithError("parallel sizer diverged from the serial reference");
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(run_with(static_cast<std::size_t>(state.range(0))));
  }
  state.SetLabel(std::to_string(reference.fassta_evaluations) + " fassta evals/run");

  // Leave the shared fixture at its baseline point for later benchmarks.
  flow.timing().mutable_netlist().set_sizes(baseline_sizes);
  flow.timing().update();
}

void BM_TimingUpdate(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  for (auto _ : state) {
    flow.timing().update();
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fassta, alu2, std::string("alu2"));
BENCHMARK_CAPTURE(BM_Fassta, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_FasstaCandidate, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_Fullssta, alu2, std::string("alu2"));
BENCHMARK_CAPTURE(BM_Fullssta, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_Canonical, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_MonteCarlo1k, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_MonteCarloThreads, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SizerThreads, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TimingUpdate, c880, std::string("c880"));

BENCHMARK_MAIN();
