// P1 — engine throughput microbenchmarks (google-benchmark): how much
// cheaper is FASSTA than FULLSSTA and Monte Carlo on real workloads. These
// ratios justify the paper's two-engine nesting.
//
// `--json <path>` writes the per-benchmark wall/CPU times as machine-
// readable JSON (google-benchmark's JSON schema) for the perf trajectory
// snapshots under scripts/bench_snapshot.sh.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/flow.h"
#include "drc/drc.h"
#include "fassta/engine.h"
#include "ssta/canonical.h"
#include "ssta/fullssta.h"
#include "ssta/monte_carlo.h"
#include "timing/analyzer.h"
#include "util/thread_pool.h"

namespace {

using namespace statsizer;

/// Shared fixture: a baselined Table-1 workload per circuit name.
core::Flow& flow_for(const std::string& name) {
  static std::map<std::string, std::unique_ptr<core::Flow>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    auto flow = std::make_unique<core::Flow>();
    if (const Status s = flow->load_table1(name); !s.ok()) {
      throw std::runtime_error(s.message());
    }
    (void)flow->run_baseline();
    it = cache.emplace(name, std::move(flow)).first;
  }
  return *it->second;
}

/// Lightweight fixture for the propagation-kernel benches: a mapped Table-1
/// workload with the context's wavefront threads pinned, no optimizer passes
/// (update()/run_fullssta cost does not depend on the sizing state).
core::Flow& raw_flow_for(const std::string& name, std::size_t threads) {
  static std::map<std::pair<std::string, std::size_t>, std::unique_ptr<core::Flow>> cache;
  const auto key = std::make_pair(name, threads);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::FlowOptions options;
    options.timing.threads = threads;
    auto flow = std::make_unique<core::Flow>(options);
    if (const Status s = flow->load_table1(name); !s.ok()) {
      throw std::runtime_error(s.message());
    }
    it = cache.emplace(key, std::move(flow)).first;
  }
  return *it->second;
}

void BM_Fassta(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const fassta::Engine engine(flow.timing());
  for (auto _ : state) {
    sta::NodeMoments m;
    benchmark::DoNotOptimize(engine.run(&m));
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel(std::to_string(flow.netlist().logic_gate_count()) + " gates");
}

void BM_FasstaCandidate(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const fassta::Engine engine(flow.timing());
  // Representative inner-loop call: re-scoring one candidate size.
  const auto g = flow.netlist().outputs()[0].driver;
  const auto& cell = flow.timing().cell(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_with_candidate(g, cell));
  }
}

void BM_Fullssta(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_fullssta(flow.timing()));
  }
}

void BM_Canonical(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_canonical(flow.timing()));
  }
}

void BM_MonteCarlo1k(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  ssta::MonteCarloOptions opt;
  opt.samples = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_monte_carlo(flow.timing(), opt));
  }
}

/// Parallel Monte-Carlo scaling: state.range(0) worker threads, plus a
/// one-shot check that every thread count reproduces the 1-thread result
/// bitwise (counter-based per-sample RNG streams).
void BM_MonteCarloThreads(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  ssta::MonteCarloOptions opt;
  opt.samples = 4000;
  opt.threads = static_cast<std::size_t>(state.range(0));

  ssta::MonteCarloOptions serial = opt;
  serial.threads = 1;
  const auto reference = ssta::run_monte_carlo(flow.timing(), serial);
  const auto parallel = ssta::run_monte_carlo(flow.timing(), opt);
  if (parallel.mean_ps != reference.mean_ps || parallel.sigma_ps != reference.sigma_ps ||
      parallel.circuit_samples != reference.circuit_samples) {
    state.SkipWithError("parallel Monte Carlo diverged from the serial reference");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_monte_carlo(flow.timing(), opt));
  }
  state.SetLabel("mean=" + std::to_string(reference.mean_ps) +
                 "ps sigma=" + std::to_string(reference.sigma_ps) + "ps");
}

/// Parallel StatisticalGreedy scaling: candidate scoring fans across
/// state.range(0) workers, with a one-shot check that every thread count
/// reproduces the 1-thread run bitwise (trajectory, stats, final sizes).
/// Each iteration restores the baseline sizes so successive runs optimize
/// the same starting point.
void BM_SizerThreads(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const auto baseline_sizes = flow.netlist().sizes();

  opt::StatisticalSizerOptions opt;
  opt.objective.lambda = 3.0;
  opt.max_iterations = 3;  // a few plan rounds: scoring-dominated, bench-sized
  const auto run_with = [&](std::size_t threads) {
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    auto o = opt;
    o.threads = threads;
    return opt::size_statistically(flow.timing(), o);
  };

  const auto reference = run_with(1);
  const auto ref_sizes = flow.netlist().sizes();
  const auto parallel = run_with(static_cast<std::size_t>(state.range(0)));
  if (parallel.resizes != reference.resizes ||
      parallel.fassta_evaluations != reference.fassta_evaluations ||
      parallel.final_.mean_ps != reference.final_.mean_ps ||
      parallel.final_.sigma_ps != reference.final_.sigma_ps ||
      flow.netlist().sizes() != ref_sizes) {
    state.SkipWithError("parallel sizer diverged from the serial reference");
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(run_with(static_cast<std::size_t>(state.range(0))));
  }
  state.SetLabel(std::to_string(reference.fassta_evaluations) + " fassta evals/run");

  // Leave the shared fixture at its baseline point for later benchmarks.
  flow.timing().mutable_netlist().set_sizes(baseline_sizes);
  flow.timing().update();
}

/// Parallel speculative FULLSSTA confirmation — the rescue-sweep pattern:
/// one wave of what-if speculations (every alternative size of the gates
/// with the fattest arc sigmas) is scored across state.range(0) workers
/// through timing::Analyzer, with a one-shot check that every thread count
/// reproduces the 1-thread scores bitwise (each speculation re-propagates
/// only its fanout cone against a private overlay; the shared base is
/// read-only).
void BM_WhatIfConfirm(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const auto analyzer = flow.make_analyzer("fullssta");
  (void)analyzer->analyze(flow.timing());

  // The wave: all alternative sizes of the 16 gates with the worst arc
  // sigmas (what a global rescue sweep confirms).
  const auto& nl = flow.netlist();
  const auto& ctx = flow.timing();
  std::vector<netlist::GateId> gates;
  for (netlist::GateId g = 0; g < nl.node_count(); ++g) {
    if (flow.timing().has_cell(g)) gates.push_back(g);
  }
  std::vector<double> worst_sigma(nl.node_count(), 0.0);
  for (const netlist::GateId g : gates) {
    for (std::size_t i = 0; i < nl.gate(g).fanins.size(); ++i) {
      worst_sigma[g] = std::max(worst_sigma[g], ctx.arc_sigma_ps(g, i));
    }
  }
  // Gate-id tie-break: identical instances tie on sigma, and the wave must
  // be the same on every platform for the numbers to be comparable.
  std::sort(gates.begin(), gates.end(), [&](netlist::GateId a, netlist::GateId b) {
    if (worst_sigma[a] != worst_sigma[b]) return worst_sigma[a] > worst_sigma[b];
    return a < b;
  });
  gates.resize(std::min<std::size_t>(gates.size(), 16));
  std::vector<timing::Resize> wave;
  for (const netlist::GateId g : gates) {
    const auto& group = flow.library().group(nl.gate(g).cell_group);
    for (std::uint16_t s = 0; s < group.size_count(); ++s) {
      if (s != nl.gate(g).size_index) wave.push_back(timing::Resize{g, s});
    }
  }

  const auto score_wave = [&](std::size_t threads) {
    std::vector<std::unique_ptr<timing::Speculation>> specs(wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      specs[i] = analyzer->propose(wave[i].gate, wave[i].size);
    }
    std::vector<double> costs(wave.size());
    util::parallel_for(wave.size(), 1, threads,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t i = begin; i < end; ++i) {
                           const timing::Summary& s = specs[i]->score();
                           costs[i] = s.mean_ps + 3.0 * s.sigma_ps;
                         }
                       });
    return costs;
  };

  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const auto reference = score_wave(1);
  if (score_wave(threads) != reference) {
    state.SkipWithError("parallel what-if scores diverged from the serial reference");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(score_wave(threads));
  }
  state.SetLabel(std::to_string(wave.size()) + " speculations/wave");
}

/// Parallel area recovery — the constrained-mode cleanup on the analyzer
/// what-if API: screening waves of per-gate downsize speculations fan across
/// state.range(0) workers (each holds a private fanout-cone overlay),
/// commits apply serially in descending-area order, and every kChunk
/// accepted downsizes are re-verified by one atomic multi-resize FULLSSTA
/// speculation. A one-shot check re-asserts that every thread count
/// reproduces the 1-thread run bitwise (sizes, stats, final summary).
void BM_AreaRecoveryThreads(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  const auto baseline_sizes = flow.netlist().sizes();

  opt::AreaRecoveryOptions opt;
  opt.criterion = opt::RecoveryCriterion::kStatisticalCost;
  opt.objective.lambda = 3.0;
  opt.tolerance = 0.01;  // enough budget for a bench-sized downsize stream
  opt.sigma_tolerance = 0.05;
  opt.fullssta = flow.options().fullssta;
  const auto run_with = [&](std::size_t threads) {
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    auto o = opt;
    o.threads = threads;
    return opt::recover_area(flow.timing(), o);
  };

  const auto reference = run_with(1);
  const auto ref_sizes = flow.netlist().sizes();
  const auto parallel = run_with(static_cast<std::size_t>(state.range(0)));
  if (parallel.downsizes != reference.downsizes ||
      parallel.screen_trials != reference.screen_trials ||
      parallel.area_after_um2 != reference.area_after_um2 ||
      parallel.final_summary.mean_ps != reference.final_summary.mean_ps ||
      parallel.final_summary.sigma_ps != reference.final_summary.sigma_ps ||
      flow.netlist().sizes() != ref_sizes) {
    state.SkipWithError("parallel area recovery diverged from the serial reference");
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(run_with(static_cast<std::size_t>(state.range(0))));
  }
  state.SetLabel(std::to_string(reference.downsizes) + " downsizes, " +
                 std::to_string(reference.screen_trials) + " screen trials/run");

  // Leave the shared fixture at its baseline point for later benchmarks.
  flow.timing().mutable_netlist().set_sizes(baseline_sizes);
  flow.timing().update();
}

void BM_TimingUpdate(benchmark::State& state, const std::string& name) {
  auto& flow = flow_for(name);
  for (auto _ : state) {
    flow.timing().update();
  }
}

/// Levelized wavefront update(): state.range(0) worker threads, with a
/// one-shot check that the parallel snapshot is bitwise-identical to the
/// serial one (loads, slews, arc delays/sigmas, area).
void BM_UpdateThreads(benchmark::State& state, const std::string& name) {
  auto& serial = raw_flow_for(name, 1);
  auto& flow = raw_flow_for(name, static_cast<std::size_t>(state.range(0)));
  serial.timing().update();
  flow.timing().update();
  const auto& a = serial.timing();
  const auto& b = flow.timing();
  bool identical = a.area_um2() == b.area_um2();
  for (netlist::GateId g = 0; identical && g < a.netlist().node_count(); ++g) {
    identical = a.load_ff(g) == b.load_ff(g) && a.slew_ps(g) == b.slew_ps(g);
    for (std::size_t i = 0; identical && i < a.netlist().gate(g).fanins.size(); ++i) {
      identical = a.arc_delay_ps(g, i) == b.arc_delay_ps(g, i) &&
                  a.arc_sigma_ps(g, i) == b.arc_sigma_ps(g, i);
    }
  }
  if (!identical) {
    state.SkipWithError("parallel update() diverged from the serial snapshot");
    return;
  }

  for (auto _ : state) {
    flow.timing().update();
  }
  const auto& lv = flow.timing().levelization();
  state.SetLabel(std::to_string(flow.netlist().logic_gate_count()) + " gates, " +
                 std::to_string(lv.level_count()) + " levels");
}

/// Levelized wavefront FULLSSTA: state.range(0) worker threads for the
/// arrival-pdf propagation, with a one-shot serial-identity check
/// (mean/sigma/per-node moments bitwise).
void BM_FullSstaThreads(benchmark::State& state, const std::string& name) {
  auto& flow = raw_flow_for(name, 1);
  ssta::FullSstaOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));

  ssta::FullSstaOptions serial = opt;
  serial.threads = 1;
  const auto reference = ssta::run_fullssta(flow.timing(), serial);
  const auto parallel = ssta::run_fullssta(flow.timing(), opt);
  bool identical = parallel.mean_ps == reference.mean_ps &&
                   parallel.sigma_ps == reference.sigma_ps &&
                   parallel.node.size() == reference.node.size();
  for (std::size_t i = 0; identical && i < reference.node.size(); ++i) {
    identical = parallel.node[i].mean_ps == reference.node[i].mean_ps &&
                parallel.node[i].sigma_ps == reference.node[i].sigma_ps;
  }
  if (!identical) {
    state.SkipWithError("parallel FULLSSTA diverged from the serial reference");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_fullssta(flow.timing(), opt));
  }
  state.SetLabel("mean=" + std::to_string(reference.mean_ps) +
                 "ps sigma=" + std::to_string(reference.sigma_ps) + "ps");
}

// ---------------------------------------------------------------------------
// Importance-sampled yield: draws-to-target-CI, ISLE vs plain Monte Carlo.
// ---------------------------------------------------------------------------

/// Yield-estimation fixture: a mapped workload under the inter-die variation
/// scenario ISLE targets (half the systematic variance global). No optimizer
/// passes — the estimators' cost does not depend on the sizing state.
core::Flow& yield_flow_for(const std::string& name) {
  static std::map<std::string, std::unique_ptr<core::Flow>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    core::FlowOptions options;
    options.variation.global_fraction = 0.5;
    auto flow = std::make_unique<core::Flow>(options);
    if (const Status s = flow->load_table1(name); !s.ok()) {
      throw std::runtime_error(s.message());
    }
    it = cache.emplace(name, std::move(flow)).first;
  }
  return *it->second;
}

/// Shared configuration for the two yield benches: a deep-tail clock and the
/// matched adaptive target both estimators must reach. Only `proposal`
/// differs between them. The clock is calibrated from a fixed-seed 1024-draw
/// plain-MC pilot (the surrogate underestimates mesh8's spread, which would
/// park the tail at p ~ 7e-2 where any proposal is as good as nominal):
/// T = pilot mean + 3 sigma pins the true p_fail near 1.3e-3 on every
/// workload, and the 5e-4 target then makes the MC baseline need
/// p(1-p)/se^2 ~ 5k draws — a tail deep enough that the proposal is doing
/// the work, shallow enough that the baseline stays runnable on mesh8.
ssta::IsleOptions yield_bench_options(core::Flow& flow, ssta::IsleProposal proposal) {
  ssta::IsleOptions pilot;
  pilot.samples = 1024;
  pilot.proposal = ssta::IsleProposal::kNominal;
  const ssta::IsleResult s = ssta::run_isle(flow.timing(), pilot);

  ssta::IsleOptions opt;
  opt.proposal = proposal;
  opt.clock_period_ps = s.weighted_mean_ps + 3.0 * s.weighted_sigma_ps;
  opt.target_yield_se = 5e-4;
  opt.min_draws = 64;
  opt.batch = 64;
  opt.samples = 65536;  // adaptive cap
  return opt;
}

/// One adaptive ISLE estimate per iteration, with a one-shot check that the
/// sharded sampler is bitwise-identical to the serial one (estimate, draws,
/// per-draw weights and delays).
void BM_IsleYield(benchmark::State& state, const std::string& name) {
  auto& flow = yield_flow_for(name);
  ssta::IsleOptions opt = yield_bench_options(flow, ssta::IsleProposal::kImportance);
  opt.threads = 1;
  const ssta::IsleResult reference = ssta::run_isle(flow.timing(), opt);
  opt.threads = 4;
  const ssta::IsleResult parallel = ssta::run_isle(flow.timing(), opt);
  if (parallel.yield != reference.yield || parallel.std_error != reference.std_error ||
      parallel.draws != reference.draws || parallel.weights != reference.weights ||
      parallel.delay_samples != reference.delay_samples) {
    state.SkipWithError("parallel ISLE diverged from the serial reference");
    return;
  }
  opt.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_isle(flow.timing(), opt));
  }
  state.counters["draws"] = static_cast<double>(reference.draws);
  state.counters["yield_se"] = reference.std_error;
  state.SetLabel("p_fail=" + std::to_string(reference.failure_probability) +
                 " draws=" + std::to_string(reference.draws));
}

/// The same adaptive loop with the nominal proposal (= plain Monte Carlo,
/// bitwise; see IsleYield.NominalProposalIsBitwisePlainMonteCarlo): the
/// Full static design-rule sweep (structural + binding + electrical + SDC
/// screen): state.range(0) worker threads for the electrical wavefront, with
/// a one-shot check that the parallel diagnostic vector is identical to the
/// serial one (the DRC determinism contract).
void BM_DrcFullSweep(benchmark::State& state, const std::string& name) {
  auto& flow = raw_flow_for(name, 1);
  drc::DrcOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  drc::DrcOptions serial = opt;
  serial.threads = 1;
  const drc::DrcReport reference = drc::run_drc(flow.timing(), serial);
  const drc::DrcReport parallel = drc::run_drc(flow.timing(), opt);
  if (parallel.diagnostics != reference.diagnostics) {
    state.SkipWithError("parallel DRC sweep diverged from the serial reference");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(drc::run_drc(flow.timing(), opt));
  }
  state.SetLabel(std::to_string(flow.netlist().logic_gate_count()) + " gates, " +
                 std::to_string(reference.diagnostics.size()) + " findings");
}

/// draws-to-target-CI baseline ISLE is measured against.
void BM_PlainMcYield(benchmark::State& state, const std::string& name) {
  auto& flow = yield_flow_for(name);
  const ssta::IsleOptions opt = yield_bench_options(flow, ssta::IsleProposal::kNominal);
  ssta::IsleResult last;
  for (auto _ : state) {
    last = ssta::run_isle(flow.timing(), opt);
    benchmark::DoNotOptimize(last);
  }
  state.counters["draws"] = static_cast<double>(last.draws);
  state.counters["yield_se"] = last.std_error;
  state.SetLabel("p_fail=" + std::to_string(last.failure_probability) +
                 " draws=" + std::to_string(last.draws));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fassta, alu2, std::string("alu2"));
BENCHMARK_CAPTURE(BM_Fassta, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_FasstaCandidate, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_Fullssta, alu2, std::string("alu2"));
BENCHMARK_CAPTURE(BM_Fullssta, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_Canonical, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_MonteCarlo1k, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_MonteCarloThreads, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SizerThreads, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WhatIfConfirm, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AreaRecoveryThreads, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TimingUpdate, c880, std::string("c880"));
BENCHMARK_CAPTURE(BM_UpdateThreads, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullSstaThreads, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
// Scaled-fabric wavefront benches: mesh8 (12.8k gates, median level width
// 140) keeps every level above the parallel cutoff, so these measure the
// kernels at the width they were built for — unlike c880, where most levels
// fall back to the serial path.
BENCHMARK_CAPTURE(BM_UpdateThreads, mesh8, std::string("mesh8"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSstaThreads, mesh8, std::string("mesh8"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
// Preflight cost on real workloads: the DRC must stay cheap enough to run
// on every load. c880 is mostly below the parallel cutoff (serial path);
// mesh8/mul64 exercise the wide-wavefront electrical sweep. The committed
// snapshot point is scripts/bench_snapshot.sh BENCH_drc_sweep.json.
BENCHMARK_CAPTURE(BM_DrcFullSweep, c880, std::string("c880"))
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DrcFullSweep, mesh8, std::string("mesh8"))
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DrcFullSweep, mul64, std::string("mul64"))
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
// Draws-to-target-CI head-to-head: both estimators run the identical
// adaptive loop to the same standard-error target; the draws/yield_se
// counters (not just the wall time) are the result. mesh8 is the committed
// snapshot point (scripts/bench_snapshot.sh BENCH_isle_yield.json).
BENCHMARK_CAPTURE(BM_IsleYield, c880, std::string("c880"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PlainMcYield, c880, std::string("c880"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_IsleYield, mesh8, std::string("mesh8"))->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PlainMcYield, mesh8, std::string("mesh8"))->Unit(benchmark::kMillisecond);

// Custom main: `--json <path>` is shorthand for google-benchmark's
// --benchmark_out=<path> --benchmark_out_format=json, so callers (and
// scripts/bench_snapshot.sh) get per-benchmark wall/CPU times as JSON
// without memorizing the long flags. `--context key=value` (repeatable)
// stamps the pair into the JSON header via benchmark::AddCustomContext —
// bench_snapshot.sh uses it to record the git SHA and workload.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      args.push_back("--benchmark_out_format=json");
      ++i;
    } else if (std::strcmp(argv[i], "--context") == 0 && i + 1 < argc) {
      const std::string pair = argv[i + 1];
      const std::size_t eq = pair.find('=');
      benchmark::AddCustomContext(pair.substr(0, eq),
                                  eq == std::string::npos ? "" : pair.substr(eq + 1));
      ++i;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (std::string& a : args) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
