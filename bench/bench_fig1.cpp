// Reproduces the paper's Figure 1: the circuit output-delay pdf at three
// operating points — "original" (mean-optimized, widest spread) and two
// statistical optimizations of increasing strength. Emits the three curves
// as aligned series suitable for plotting, plus their moments.
//
// Usage: bench_fig1 [circuit] (default c880)
#include <cstdio>
#include <string>

#include "core/flow.h"
#include "pdf/discrete_pdf.h"
#include "util/table.h"

using namespace statsizer;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c880";

  core::Flow flow;
  if (const Status s = flow.load_table1(name); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  (void)flow.run_baseline();
  const auto baseline_sizes = flow.netlist().sizes();

  struct Point {
    std::string label;
    pdf::DiscretePdf pdf;
    opt::CircuitStats stats;
  };
  std::vector<Point> points;
  points.push_back({"original", flow.full_analysis().output_pdf, flow.analyze()});

  for (const double lambda : {3.0, 9.0}) {
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    const auto rec = flow.optimize(lambda);
    points.push_back({"optimization lambda=" + util::fmt(lambda, 0), rec.output_pdf,
                      flow.analyze()});
  }

  std::printf("Figure 1 — circuit output delay pdfs for %s\n\n", name.c_str());
  for (const auto& p : points) {
    std::printf("# %s: mu = %.1f ps, sigma = %.2f ps, sigma/mu = %.4f\n",
                p.label.c_str(), p.stats.mean_ps, p.stats.sigma_ps,
                p.stats.sigma_over_mu());
  }
  std::printf("\n# curves: delay_ps, density (one block per operating point)\n");
  for (const auto& p : points) {
    std::printf("\n\"%s\"\n", p.label.c_str());
    const auto& pdf = p.pdf;
    const double step = pdf.step() > 0 ? pdf.step() : 1.0;
    for (std::size_t i = 0; i < pdf.size(); ++i) {
      std::printf("%.2f, %.6f\n", pdf.value_at(i), pdf.mass_at(i) / step);
    }
  }

  // The paper's qualitative claim: each optimization step narrows the pdf.
  std::printf("\n# narrowing check: sigma %s\n",
              (points[1].stats.sigma_ps <= points[0].stats.sigma_ps &&
               points[2].stats.sigma_ps <= points[1].stats.sigma_ps + 1e-9)
                  ? "monotonically non-increasing across operating points"
                  : "NOT monotone — inspect");
  return 0;
}
