// Reproduces the paper's Figure 3: tracing the worst-negative-statistical-
// slack (WNSS) input at a node X whose five upstream arrivals have the
// moments printed in the figure:
//
//     (320, 27)  (310, 45)  (357, 32)  (392, 35)  (190, 41)
//
// The deterministic rule would walk the (392, 35) input (highest mean). The
// statistical tournament (dominance tests + finite-difference variance
// sensitivities with coupled sigma steps) must rank inputs by their
// *contribution to output variance* — in particular the fat (310, 45) branch
// outranks the nominally-later (320, 27) one.
#include <cstdio>
#include <vector>

#include "fassta/clark.h"
#include "opt/wnss.h"
#include "util/table.h"

using namespace statsizer;

int main() {
  struct Input {
    const char* name;
    sta::NodeMoments m;
  };
  const std::vector<Input> inputs = {
      {"A (320, 27)", {320.0, 27.0}}, {"B (310, 45)", {310.0, 45.0}},
      {"C (357, 32)", {357.0, 32.0}}, {"D (392, 35)", {392.0, 35.0}},
      {"E (190, 41)", {190.0, 41.0}},
  };
  // The paper couples sigma to mean movements with the same coefficient used
  // in the variation model; Fig. 3's values have sigma/mu ~ 0.1.
  const double c = 0.1;
  const opt::WnssOptions options;

  std::printf("Figure 3 — WNSS input ranking at node X\n\n");

  // Pairwise tournament exactly as the tracer runs it.
  std::size_t winner = 0;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    const bool keep =
        opt::more_responsible(inputs[winner].m, inputs[i].m, c, c, options);
    std::printf("  compare %-12s vs %-12s -> %s\n", inputs[winner].name,
                inputs[i].name, keep ? inputs[winner].name : inputs[i].name);
    if (!keep) winner = i;
  }
  std::printf("\nWNSS input at X: %s\n", inputs[winner].name);

  // The paper's headline pair: the fat, lower-mean input must outrank the
  // thin, higher-mean one.
  const bool fat_wins =
      opt::more_responsible(inputs[1].m, inputs[0].m, c, c, options);
  std::printf("fat (310,45) vs thin (320,27): %s\n",
              fat_wins ? "fat branch more responsible (matches paper)"
                       : "thin branch picked — MISMATCH");

  // Show the sensitivity numbers behind one comparison.
  util::Table t({"input pair", "dVar/dmu (left)", "dVar/dmu (right)", "dominance"});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (std::size_t j = i + 1; j < inputs.size(); ++j) {
      const auto& a = inputs[i].m;
      const auto& b = inputs[j].m;
      const int dom = fassta::dominance(a.mean_ps, a.sigma_ps, b.mean_ps, b.sigma_ps);
      const double sa = fassta::max_var_sensitivity_mu_a(
          a.mean_ps, a.sigma_ps, b.mean_ps, b.sigma_ps, options.fd_step_fraction, c);
      const double sb = fassta::max_var_sensitivity_mu_a(
          b.mean_ps, b.sigma_ps, a.mean_ps, a.sigma_ps, options.fd_step_fraction, c);
      t.add_row({std::string(inputs[i].name) + " / " + inputs[j].name,
                 util::fmt(sa, 2), util::fmt(sb, 2),
                 dom > 0 ? "left" : (dom < 0 ? "right" : "none")});
    }
  }
  std::printf("\n%s\n", t.to_string().c_str());
  return fat_wins ? 0 : 1;
}
