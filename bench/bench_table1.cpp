// Reproduces the paper's Table 1: for each workload, the "original"
// (mean-delay-optimized) sigma/mu, then for lambda = 3 and lambda = 9 the
// change in mean, change in sigma, resulting sigma/mu, change in area, and
// runtime. The paper's values are printed alongside for comparison.
//
// Usage: bench_table1 [--quick] [circuit ...]
//   --quick   only the sub-1000-gate circuits (CI-friendly)
//   circuits  subset by name (default: all 13)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "circuits/iscas_suite.h"
#include "core/flow.h"
#include "netlist/topo.h"
#include "util/table.h"

using namespace statsizer;

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      selected.emplace_back(argv[i]);
    }
  }
  if (selected.empty()) selected = circuits::table1_names();

  util::Table table({"Circuit", "Gates", "Depth", "s/m orig", "s/m paper",  //
                     "L3 dMu", "L3 dSg", "L3 dSg paper", "L3 dA", "L3 t(s)",
                     "L9 dMu", "L9 dSg", "L9 dSg paper", "L9 dA", "L9 t(s)"});

  for (const std::string& name : selected) {
    const auto ref = circuits::table1_reference(name);
    if (!ref.has_value()) {
      std::fprintf(stderr, "unknown circuit '%s'\n", name.c_str());
      return 1;
    }
    if (quick && ref->paper_gates > 1000) continue;

    core::Flow flow;
    if (const Status s = flow.load_table1(name); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "[table1] %s: %zu gates, baseline...\n", name.c_str(),
                 flow.netlist().logic_gate_count());
    (void)flow.run_baseline();
    const opt::CircuitStats original = flow.analyze();
    const auto baseline_sizes = flow.netlist().sizes();

    std::vector<std::string> row = {
        name,
        std::to_string(flow.netlist().logic_gate_count()),
        std::to_string(netlist::depth(flow.netlist())),
        util::fmt(original.sigma_over_mu(), 4),
        util::fmt(ref->paper_sigma_over_mu, 3),
    };
    // Size-adaptive effort: the >1500-gate circuits get a bounded iteration
    // budget so the full table stays within a practical wall-clock (the
    // trends survive; see EXPERIMENTS.md).
    opt::StatisticalSizerOptions overrides;
    if (flow.netlist().logic_gate_count() > 1500) {
      overrides.max_iterations = 40;
      overrides.exact_fallback_gate_limit = 10;
      overrides.max_global_sweeps = 2;
    }
    for (const double lambda : {3.0, 9.0}) {
      flow.timing().mutable_netlist().set_sizes(baseline_sizes);
      flow.timing().update();
      std::fprintf(stderr, "[table1] %s: lambda = %.0f...\n", name.c_str(), lambda);
      const core::OptimizationRecord rec = flow.optimize(lambda, &overrides);
      row.push_back(util::fmt_pct(rec.mean_change, 1));
      row.push_back(util::fmt_pct(rec.sigma_change, 0));
      row.push_back(util::fmt_pct(lambda == 3.0 ? ref->paper_sigma_reduction_l3
                                                : ref->paper_sigma_reduction_l9,
                                  0));
      row.push_back(util::fmt_pct(rec.area_change, 0));
      row.push_back(util::fmt(rec.runtime_seconds, 2));
    }
    table.add_row(std::move(row));
  }

  std::printf("Table 1 — statistical gate sizing on Table-1 workloads\n");
  std::printf("(paper columns shown for reference; see EXPERIMENTS.md)\n\n");
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
