// Reproduces the paper's Table 1: for each workload, the "original"
// (mean-delay-optimized) sigma/mu, then for lambda = 3 and lambda = 9 the
// change in mean, change in sigma, resulting sigma/mu, change in area, and
// runtime. The paper's values are printed alongside for comparison.
//
// Usage: bench_table1 [--quick] [--threads N] [--inject SPEC] [circuit ...]
//   --quick       only the sub-1000-gate circuits (CI-friendly)
//   --threads N   shard circuits across N job-system workers (the
//                 serve::JobManager fan-out pattern); each sharded run then
//                 scores sizing candidates serially. With N = 1 (default)
//                 circuits run sequentially and the candidate scoring inside
//                 each run fans across hardware threads instead. Either way
//                 the table values are identical — the sizer is
//                 thread-count-invariant.
//   --inject SPEC deterministic fault rule (util::parse_fault_rule syntax;
//                 repeatable). Scope = the circuit's index in the work list.
//                 A poisoned circuit fails its row with the structured
//                 status; sibling rows are untouched. For exercising the
//                 per-job isolation path from automation.
//   circuits      subset by name (default: the 13 paper rows). The scaled
//                 fabrics (mul32/mul64/pipe64/mesh8) are also accepted; they
//                 have no paper reference, so those columns print "-".
//
// Exit status is nonzero when any circuit name is unknown or any run fails,
// so automation (scripts/check.sh --table1-smoke) can trust it.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "circuits/iscas_suite.h"
#include "core/flow.h"
#include "netlist/topo.h"
#include "serve/job.h"
#include "util/fault.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace statsizer;

namespace {

struct RowResult {
  std::vector<std::string> row;
  std::string error;  ///< non-empty when the run failed
};

/// @p ref is null for the scaled fabrics (circuits::scaled_workload_names),
/// which have no paper row — their reference columns print "-".
RowResult run_circuit(const std::string& name, const circuits::Table1Reference* ref,
                      std::size_t shards) {
  RowResult out;
  core::FlowOptions flow_options;
  // Inner scoring parallelism only when circuits are actually sharded.
  const std::size_t sizer_threads = shards > 1 ? 1 : 0;
  flow_options.sizer_threads = sizer_threads;
  // Yield-column estimator: importance sampling to a 0.2% standard error
  // (or the 4096-draw cap), at the clock fixed from the baseline 3-sigma
  // corner below.
  flow_options.isle.target_yield_se = 2e-3;
  flow_options.isle.threads = sizer_threads;

  core::Flow flow(flow_options);
  if (const Status s = flow.load_table1(name); !s.ok()) {
    out.error = s.message();
    return out;
  }
  std::fprintf(stderr, "[table1] %s: %zu gates, baseline...\n", name.c_str(),
               flow.netlist().logic_gate_count());
  (void)flow.run_baseline();
  const opt::CircuitStats original = flow.analyze();
  const auto baseline_sizes = flow.netlist().sizes();

  // Yield at the baseline 3-sigma corner, held fixed across the lambda runs
  // so the per-lambda yield columns show what the sigma harvest buys.
  const double yield_clock_ps = original.mean_ps + 3.0 * original.sigma_ps;
  const auto yield_cell = [&flow, yield_clock_ps]() {
    const core::YieldReport y = flow.estimate_yield(yield_clock_ps);
    return util::fmt(y.yield(), 4) + (y.result.degenerate ? "!" : "");
  };
  out.row = {
      name,
      std::to_string(flow.netlist().logic_gate_count()),
      std::to_string(netlist::depth(flow.netlist())),
      util::fmt(original.sigma_over_mu(), 4),
      ref ? util::fmt(ref->paper_sigma_over_mu, 3) : "-",
      yield_cell(),
  };
  // Size-adaptive effort: the >1500-gate circuits get a bounded iteration
  // budget so the full table stays within a practical wall-clock (the
  // trends survive; see EXPERIMENTS.md), and the 10k+-gate scaled fabrics a
  // tighter one still.
  opt::StatisticalSizerOptions overrides;
  overrides.threads = sizer_threads;
  if (flow.netlist().logic_gate_count() > 1500) {
    overrides.max_iterations = 40;
    overrides.exact_fallback_gate_limit = 10;
    overrides.max_global_sweeps = 2;
  }
  if (flow.netlist().logic_gate_count() > 8000) {
    overrides.max_iterations = 10;
    overrides.max_global_sweeps = 1;
  }
  for (const double lambda : {3.0, 9.0}) {
    flow.timing().mutable_netlist().set_sizes(baseline_sizes);
    flow.timing().update();
    std::fprintf(stderr, "[table1] %s: lambda = %.0f...\n", name.c_str(), lambda);
    const core::OptimizationRecord rec = flow.optimize(lambda, &overrides);
    out.row.push_back(util::fmt_pct(rec.mean_change, 1));
    out.row.push_back(util::fmt_pct(rec.sigma_change, 0));
    out.row.push_back(ref ? util::fmt_pct(lambda == 3.0 ? ref->paper_sigma_reduction_l3
                                                        : ref->paper_sigma_reduction_l9,
                                          0)
                          : "-");
    out.row.push_back(util::fmt_pct(rec.area_change, 0));
    out.row.push_back(yield_cell());
    out.row.push_back(util::fmt(rec.runtime_seconds, 2));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t threads = 1;
  util::FaultPlan faults;
  faults.seed = 1;
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--inject") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--inject requires a value\n");
        return 2;
      }
      auto rule = util::parse_fault_rule(argv[++i]);
      if (!rule.ok()) {
        std::fprintf(stderr, "--inject: %s\n", std::string(rule.status().message()).c_str());
        return 2;
      }
      faults.rules.push_back(std::move(rule.value()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        return 2;
      }
      const char* value = argv[++i];
      char* end = nullptr;
      threads = static_cast<std::size_t>(std::strtoul(value, &end, 10));
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "--threads: not a number: '%s'\n", value);
        return 2;
      }
      if (threads == 0) threads = util::ThreadPool::default_thread_count();
    } else {
      selected.emplace_back(argv[i]);
    }
  }
  if (selected.empty()) selected = circuits::table1_names();

  // Resolve and validate the workload list up front: an unknown name must
  // fail the whole invocation, not silently shrink the table. Scaled fabrics
  // (mul32/mul64/pipe64/mesh8) are valid workloads without a paper row.
  const auto& scaled = circuits::scaled_workload_names();
  std::vector<std::pair<std::string, std::optional<circuits::Table1Reference>>> work;
  bool bad_name = false;
  for (const std::string& name : selected) {
    const auto ref = circuits::table1_reference(name);
    const bool is_scaled = std::find(scaled.begin(), scaled.end(), name) != scaled.end();
    if (!ref.has_value() && !is_scaled) {
      std::fprintf(stderr, "unknown circuit '%s'\n", name.c_str());
      bad_name = true;
      continue;
    }
    // --quick keeps the CI-sized circuits only; every scaled fabric is 10k+.
    if (quick && (is_scaled || ref->paper_gates > 1000)) continue;
    work.emplace_back(name, ref);
  }
  if (bad_name) return 1;

  // Shard whole circuits across the job system: results land in
  // index-aligned slots, so the table order (and every value in it) is
  // independent of the thread count, and a failing circuit — including one
  // poisoned by --inject — is isolated to its own row's structured status.
  // The effective shard count is bounded by the work list: asking for 8
  // threads on one circuit must not serialize that circuit's inner candidate
  // scoring.
  const std::size_t shards = std::min(threads, std::max<std::size_t>(work.size(), 1));
  std::vector<RowResult> results(work.size());
  {
    serve::JobManagerOptions manager_options;
    manager_options.threads = shards;
    manager_options.limits.max_queue_depth = std::max<std::size_t>(work.size(), 1);
    manager_options.faults = faults.empty() ? nullptr : &faults;
    serve::JobManager manager(manager_options);
    std::vector<serve::JobRef> handles(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
      serve::JobOptions job_options;
      job_options.fault_scope = i;  // --inject addresses circuits by index
      handles[i] = manager.submit(
          [&work, &results, shards, i] {
            results[i] = run_circuit(work[i].first,
                                     work[i].second ? &*work[i].second : nullptr, shards);
            if (!results[i].error.empty()) {
              throw StatusError(Status::error(results[i].error));
            }
          },
          job_options);
    }
    manager.wait_all();
    for (std::size_t i = 0; i < work.size(); ++i) {
      const Status status = handles[i]->status();
      if (!status.ok()) {
        results[i].error = std::string(to_string(status.code())) + ": " +
                           std::string(status.message());
      }
    }
  }

  util::Table table({"Circuit", "Gates", "Depth", "s/m orig", "s/m paper", "Y orig",  //
                     "L3 dMu", "L3 dSg", "L3 dSg paper", "L3 dA", "L3 Y", "L3 t(s)",
                     "L9 dMu", "L9 dSg", "L9 dSg paper", "L9 dA", "L9 Y", "L9 t(s)"});
  bool failed = false;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (!results[i].error.empty()) {
      std::fprintf(stderr, "%s: %s\n", work[i].first.c_str(), results[i].error.c_str());
      failed = true;
      continue;
    }
    table.add_row(std::move(results[i].row));
  }

  std::printf("Table 1 — statistical gate sizing on Table-1 workloads\n");
  std::printf("(paper columns shown for reference; see EXPERIMENTS.md)\n\n");
  std::printf("%s\n", table.to_string().c_str());
  if (failed) {
    std::fprintf(stderr, "bench_table1: one or more circuits failed\n");
    return 1;
  }
  return 0;
}
