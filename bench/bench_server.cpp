// Serving-layer throughput/latency benchmark: N concurrent clients hammer a
// shared Session through the JobManager with the mixed workload a
// timing-as-a-service deployment sees — mostly cheap single-gate what-ifs,
// periodic info polls, and occasional small-budget yield queries.
//
// Counters per (circuit, clients) point:
//   jobs_per_sec  completed requests per wall second
//   p50_ms/p99_ms client-observed request latency (submit -> terminal),
//                 pooled over every iteration's requests
//
// `--json <path>` / `--context key=value` behave as in bench_perf_engines
// (scripts/bench_snapshot.sh drives them for BENCH_server.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.h"
#include "serve/job.h"
#include "serve/session.h"

namespace {

using namespace statsizer;

/// Gate names of a workload, for addressing what-ifs. One probe Flow per
/// circuit; the serving session keeps its own copy of the design.
const std::vector<std::string>& gate_names_for(const std::string& circuit) {
  static std::map<std::string, std::vector<std::string>> cache;
  auto it = cache.find(circuit);
  if (it == cache.end()) {
    core::Flow probe;
    if (const Status s = probe.load_table1(circuit); !s.ok()) {
      throw std::runtime_error(std::string(s.message()));
    }
    std::vector<std::string> names;
    const auto& nl = probe.netlist();
    for (netlist::GateId id = 0; id < nl.node_count(); ++id) {
      // Only mapped multi-size gates make meaningful what-if targets.
      const auto& g = nl.gate(id);
      if (!g.fanins.empty()) names.push_back(g.name);
    }
    it = cache.emplace(circuit, std::move(names)).first;
  }
  return it->second;
}

void BM_ServerMixed(benchmark::State& state, const std::string& circuit) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));

  serve::SessionOptions session_options;
  session_options.flow.isle.samples = 512;  // small-budget yield queries
  session_options.flow.isle.min_draws = 128;
  auto session = std::make_shared<serve::Session>(session_options);
  if (const Status s = session->load_workload(circuit); !s.ok()) {
    state.SkipWithError(std::string(s.message()).c_str());
    return;
  }
  const std::vector<std::string>& gates = gate_names_for(circuit);

  serve::JobManagerOptions manager_options;
  manager_options.threads = clients;
  manager_options.limits.max_queue_depth = 4096;
  serve::JobManager manager(manager_options);

  // 48 requests per client per iteration: 40 what-ifs, 6 info polls, 2 yields.
  constexpr std::size_t kRequestsPerClient = 48;
  std::vector<double> latencies_ms;
  std::mutex latencies_mutex;

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double> local;
        local.reserve(kRequestsPerClient);
        for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
          const auto t0 = std::chrono::steady_clock::now();
          serve::JobRef job;
          if (r % 24 == 15) {
            job = manager.submit([&session] { (void)session->yield(); });
          } else if (r % 8 == 7) {
            job = manager.submit([&session] { (void)session->info(); });
          } else {
            const std::string& gate = gates[(c * kRequestsPerClient + r * 7) % gates.size()];
            const std::uint16_t size = static_cast<std::uint16_t>(r % 3);
            job = manager.submit([&session, &gate, size] {
              (void)session->what_if({serve::ResizeRequest{gate, size}});
            });
          }
          (void)job->wait();
          local.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        }
        const std::lock_guard<std::mutex> lock(latencies_mutex);
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : workers) t.join();
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["jobs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * clients * kRequestsPerClient),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * clients * kRequestsPerClient));
}

}  // namespace

BENCHMARK_CAPTURE(BM_ServerMixed, c880, std::string("c880"))
    ->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServerMixed, mesh8, std::string("mesh8"))
    ->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

// Custom main, matching bench_perf_engines: --json writes google-benchmark's
// JSON report; --context stamps key=value pairs into its header.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      args.push_back("--benchmark_out_format=json");
      ++i;
    } else if (std::strcmp(argv[i], "--context") == 0 && i + 1 < argc) {
      const std::string pair = argv[i + 1];
      const std::size_t eq = pair.find('=');
      benchmark::AddCustomContext(pair.substr(0, eq),
                                  eq == std::string::npos ? "" : pair.substr(eq + 1));
      ++i;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (std::string& a : args) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
