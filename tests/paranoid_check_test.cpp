// Corruption-seeding pins for the paranoid invariant layer (debug/validate.h).
//
// The validators are compiled unconditionally, so every test here runs in
// every build: each one seeds a specific corruption into a copy of real
// engine state and asserts the matching validator trips with a
// "paranoid: "-prefixed std::logic_error naming the violated invariant. The
// hot-path wiring (validators called automatically from update(), FULLSSTA,
// DiscretePdf::sum/max, guard_epoch) is only active under
// -DSTATSIZER_PARANOID=ON; the ParanoidHotPath suite covers the pieces that
// are observable either way and documents the compile-time gate.
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "circuits/iscas_suite.h"
#include "debug/validate.h"
#include "liberty/synthetic.h"
#include "netlist/topo.h"
#include "pdf/discrete_pdf.h"
#include "ssta/fullssta.h"
#include "sta/graph.h"
#include "techmap/mapper.h"
#include "util/check.h"

namespace statsizer {
namespace {

using netlist::GateId;
using netlist::Netlist;

/// Mapped circuit + context (same idiom as levelized_update_test): the
/// deterministic size staircase gives non-trivial loads without an optimizer.
struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n, sta::TimingOptions topt = {}) : nl(std::move(n)) {
    const Status s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    for (GateId g = 0; g < nl.node_count(); ++g) {
      auto& gate = nl.gate(g);
      if (gate.cell_group == netlist::kUnmapped) continue;
      const auto& group = lib.group(gate.cell_group);
      gate.size_index = static_cast<std::uint16_t>(g % group.size_count());
    }
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, topt);
  }
};

/// Runs @p fn and asserts it trips a paranoid check whose message carries
/// @p needle. Anything else — no throw, wrong exception, wrong message — is
/// a test failure that prints what actually happened.
template <typename Fn>
void ExpectTrip(Fn&& fn, std::string_view needle) {
  try {
    fn();
    FAIL() << "expected a paranoid check to trip (needle: " << needle << ")";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("paranoid: ", 0), 0u) << "missing prefix: " << what;
    EXPECT_NE(what.find(needle), std::string::npos)
        << "message lacks \"" << needle << "\": " << what;
  }
}

/// Rebuilds the load-term CSR arrays from the public per-driver spans, so a
/// test can corrupt a private-state *replica* and feed it to the validator.
struct CsrCopy {
  std::vector<std::uint32_t> offsets;
  std::vector<sta::LoadTerm> terms;

  explicit CsrCopy(const sta::TimingContext& ctx, const Netlist& nl) {
    offsets.push_back(0);
    for (GateId d = 0; d < nl.node_count(); ++d) {
      const auto span = ctx.load_terms(d);
      terms.insert(terms.end(), span.begin(), span.end());
      offsets.push_back(static_cast<std::uint32_t>(terms.size()));
    }
  }
};

// ---------------------------------------------------------------------------
// validate_levelization
// ---------------------------------------------------------------------------

TEST(ParanoidLevelization, AcceptsFreshLevelization) {
  const Netlist nl = circuits::make_cla_adder(8);
  const netlist::Levelization lv = netlist::levelize(nl);
  EXPECT_NO_THROW(debug::validate_levelization(nl, lv));
}

TEST(ParanoidLevelization, TripsOnTruncatedLevelOf) {
  const Netlist nl = circuits::make_cla_adder(8);
  netlist::Levelization lv = netlist::levelize(nl);
  lv.level_of.pop_back();
  ExpectTrip([&] { debug::validate_levelization(nl, lv); }, "level_of covers");
}

TEST(ParanoidLevelization, TripsOnNonMonotoneOffsets) {
  const Netlist nl = circuits::make_cla_adder(8);
  netlist::Levelization lv = netlist::levelize(nl);
  ASSERT_GE(lv.level_offset.size(), 3u);
  std::swap(lv.level_offset[1], lv.level_offset[2]);
  ExpectTrip([&] { debug::validate_levelization(nl, lv); }, "level_offset decreases");
}

TEST(ParanoidLevelization, TripsOnDuplicateNodeInOrder) {
  const Netlist nl = circuits::make_cla_adder(8);
  netlist::Levelization lv = netlist::levelize(nl);
  // Overwrite the second member of level 0 with the first: a duplicate
  // inside one bucket, so the permutation audit fires before the
  // bucket-level one.
  ASSERT_GE(lv.level_offset[1], 2u);
  lv.order_by_level[1] = lv.order_by_level[0];
  ExpectTrip([&] { debug::validate_levelization(nl, lv); }, "appears twice");
}

TEST(ParanoidLevelization, TripsOnWrongBucketLevel) {
  const Netlist nl = circuits::make_cla_adder(8);
  netlist::Levelization lv = netlist::levelize(nl);
  // Lie about one node's level without moving it between buckets.
  const GateId victim = lv.order_by_level[lv.level_offset[1]];  // first level-1 node
  lv.level_of[victim] += 7;
  ExpectTrip([&] { debug::validate_levelization(nl, lv); }, "but level_of says");
}

TEST(ParanoidLevelization, TripsOnLevelDownEdge) {
  // Hand-built two-node chain a -> b presented as a single flat level:
  // internally consistent buckets (permutation + bucket levels check out),
  // so the only audit left to catch it is the strictly-level-up edge walk —
  // exactly the invariant the wavefront kernels' barrier placement rests on.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_gate(netlist::GateFunc::kInv, {a}, "b");
  nl.add_output("y", b);
  netlist::Levelization lv;
  lv.level_of = {0, 0};
  lv.level_offset = {0, 2};
  lv.order_by_level = {a, b};
  lv.structure_version = nl.structure_version();
  ExpectTrip([&] { debug::validate_levelization(nl, lv); }, "not strictly level-up");
}

TEST(ParanoidLevelization, TripsOnSourceAboveLevelZero) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_gate(netlist::GateFunc::kInv, {a}, "b");
  nl.add_output("y", b);
  netlist::Levelization lv;
  lv.level_of = {1, 2};  // fanin-less node hoisted off level 0
  lv.level_offset = {0, 0, 1, 2};
  lv.order_by_level = {a, b};
  lv.structure_version = nl.structure_version();
  ExpectTrip([&] { debug::validate_levelization(nl, lv); }, "fanin-less node");
}

// ---------------------------------------------------------------------------
// validate_load_terms
// ---------------------------------------------------------------------------

TEST(ParanoidLoadTerms, AcceptsFreshCsr) {
  const Bench bench(circuits::make_cla_adder(8));
  const CsrCopy csr(*bench.ctx, bench.nl);
  EXPECT_NO_THROW(debug::validate_load_terms(bench.nl, csr.offsets, csr.terms));
}

TEST(ParanoidLoadTerms, AcceptsIscasCsr) {
  const Bench bench(circuits::make_table1_circuit("c432"));
  const CsrCopy csr(*bench.ctx, bench.nl);
  EXPECT_NO_THROW(debug::validate_load_terms(bench.nl, csr.offsets, csr.terms));
}

TEST(ParanoidLoadTerms, TripsOnSwappedTerms) {
  const Bench bench(circuits::make_cla_adder(8));
  CsrCopy csr(*bench.ctx, bench.nl);
  // Swap the first two terms of the first driver with >= 2 consumers: the
  // fold order changes, which under FP non-associativity is a determinism
  // bug even though the term *set* is intact.
  for (GateId d = 0; d < bench.nl.node_count(); ++d) {
    if (csr.offsets[d + 1] - csr.offsets[d] >= 2) {
      std::swap(csr.terms[csr.offsets[d]], csr.terms[csr.offsets[d] + 1]);
      ExpectTrip([&] { debug::validate_load_terms(bench.nl, csr.offsets, csr.terms); },
                 "want (");
      return;
    }
  }
  FAIL() << "no driver with two load terms in cla_adder(8)";
}

TEST(ParanoidLoadTerms, TripsOnNonMonotoneOffsets) {
  const Bench bench(circuits::make_cla_adder(8));
  CsrCopy csr(*bench.ctx, bench.nl);
  ASSERT_GE(csr.offsets.size(), 3u);
  std::swap(csr.offsets[1], csr.offsets[2]);
  if (csr.offsets[1] == csr.offsets[2]) csr.offsets[1] += 1;  // both empty: force it
  ExpectTrip([&] { debug::validate_load_terms(bench.nl, csr.offsets, csr.terms); },
             "decrease");
}

TEST(ParanoidLoadTerms, TripsOnDroppedTerm) {
  const Bench bench(circuits::make_cla_adder(8));
  CsrCopy csr(*bench.ctx, bench.nl);
  csr.terms.pop_back();  // offsets now claim one more term than exists
  ExpectTrip([&] { debug::validate_load_terms(bench.nl, csr.offsets, csr.terms); },
             "offsets end at");
}

TEST(ParanoidLoadTerms, TripsOnWrongOffsetArity) {
  const Bench bench(circuits::make_cla_adder(8));
  CsrCopy csr(*bench.ctx, bench.nl);
  csr.offsets.push_back(csr.offsets.back());
  ExpectTrip([&] { debug::validate_load_terms(bench.nl, csr.offsets, csr.terms); },
             "want node_count + 1");
}

// ---------------------------------------------------------------------------
// validate_pdf
// ---------------------------------------------------------------------------

TEST(ParanoidPdf, AcceptsWellFormedGridAndPointMass) {
  const std::vector<double> masses = {0.25, 0.5, 0.25};
  EXPECT_NO_THROW(debug::validate_pdf(10.0, 2.0, masses));
  const std::vector<double> point = {1.0};
  EXPECT_NO_THROW(debug::validate_pdf(5.0, 0.0, point));
}

TEST(ParanoidPdf, AcceptsEngineBuiltPdfs) {
  EXPECT_NO_THROW(debug::validate_pdf(pdf::DiscretePdf::normal(100.0, 8.0)));
  EXPECT_NO_THROW(debug::validate_pdf(pdf::DiscretePdf::point(42.0)));
}

TEST(ParanoidPdf, TripsOnEmptyMasses) {
  ExpectTrip([] { debug::validate_pdf(0.0, 1.0, {}); }, "empty mass vector");
}

TEST(ParanoidPdf, TripsOnUnnormalizedMasses) {
  const std::vector<double> masses = {0.25, 0.5, 0.15};  // sums to 0.9
  ExpectTrip([&] { debug::validate_pdf(0.0, 1.0, masses); }, "want 1");
}

TEST(ParanoidPdf, TripsOnNegativeMass) {
  const std::vector<double> masses = {0.6, -0.2, 0.6};  // sums to 1 but dips
  ExpectTrip([&] { debug::validate_pdf(0.0, 1.0, masses); }, "negative mass");
}

TEST(ParanoidPdf, TripsOnNanPoisoning) {
  const std::vector<double> masses = {0.5, std::numeric_limits<double>::quiet_NaN(), 0.5};
  ExpectTrip([&] { debug::validate_pdf(0.0, 1.0, masses); }, "non-finite mass");
}

TEST(ParanoidPdf, TripsOnNonFiniteOrigin) {
  const std::vector<double> masses = {1.0};
  ExpectTrip([&] { debug::validate_pdf(std::numeric_limits<double>::infinity(), 0.0, masses); },
             "non-finite origin");
}

TEST(ParanoidPdf, TripsOnPointMassWithNonzeroStep) {
  const std::vector<double> masses = {1.0};
  ExpectTrip([&] { debug::validate_pdf(0.0, 1.0, masses); }, "point mass must have step 0");
}

TEST(ParanoidPdf, TripsOnZeroStepGrid) {
  const std::vector<double> masses = {0.5, 0.5};
  ExpectTrip([&] { debug::validate_pdf(0.0, 0.0, masses); }, "grid step must be positive");
}

// ---------------------------------------------------------------------------
// validate_epoch
// ---------------------------------------------------------------------------

TEST(ParanoidEpoch, AcceptsPastAndPresentStamps) {
  EXPECT_NO_THROW(debug::validate_epoch("fullssta", 0, 0));
  EXPECT_NO_THROW(debug::validate_epoch("fullssta", 3, 7));
}

TEST(ParanoidEpoch, TripsOnFutureStamp) {
  // A speculation stamped *after* the analyzer's current epoch cannot exist
  // unless the epoch bookkeeping itself is corrupt — guard_epoch's normal
  // staleness error (stamp < epoch) never covers this direction.
  ExpectTrip([] { debug::validate_epoch("isle", 9, 4); }, "epoch bookkeeping corrupted");
}

// ---------------------------------------------------------------------------
// validate_structure_fresh
// ---------------------------------------------------------------------------

TEST(ParanoidStructureFresh, AcceptsMatchingVersion) {
  const Netlist nl = circuits::make_cla_adder(8);
  const netlist::Levelization lv = netlist::levelize(nl);
  EXPECT_NO_THROW(debug::validate_structure_fresh(nl, lv));
}

TEST(ParanoidStructureFresh, TripsAfterStructuralEdit) {
  Netlist nl = circuits::make_cla_adder(8);
  const netlist::Levelization lv = netlist::levelize(nl);
  nl.add_input("late_pin");  // bumps structure_version
  ExpectTrip([&] { debug::validate_structure_fresh(nl, lv); }, "structure_version");
}

// ---------------------------------------------------------------------------
// Hot-path behaviour
// ---------------------------------------------------------------------------

TEST(ParanoidHotPath, GateMatchesCompileTimeFlag) {
  // paranoid_enabled() is the one runtime-queryable view of the compile-time
  // gate; tests and tools key skips on it, so it must agree with kParanoid.
  EXPECT_EQ(debug::paranoid_enabled(), debug::kParanoid);
}

TEST(ParanoidHotPath, UpdateRefusesStaleStructure) {
  // Structural edit under a live TimingContext: update() must refuse rather
  // than propagate over a stale levelization/CSR. The cheap version-check
  // throw exists in every build; under STATSIZER_PARANOID=ON the same entry
  // additionally runs the deep levelization/CSR audits pinned above.
  Bench bench(circuits::make_cla_adder(8));
  EXPECT_NO_THROW(bench.ctx->update());
  bench.nl.add_input("late_pin");
  EXPECT_THROW(bench.ctx->update(), std::logic_error);
}

TEST(ParanoidHotPath, CleanFlowNeverTrips) {
  // The validators' acceptance direction, end to end: on healthy engine
  // state a full update + FULLSSTA pass must cross every paranoid call site
  // without tripping (when STATSIZER_PARANOID=OFF this still pins the
  // uninstrumented flow; check.sh --paranoid runs it instrumented).
  Bench bench(circuits::make_table1_circuit("c432"));
  EXPECT_NO_THROW(bench.ctx->update());
  ssta::FullSstaOptions opt;
  EXPECT_NO_THROW(ssta::run_fullssta(*bench.ctx, opt));
  debug::validate_levelization(bench.nl, bench.ctx->levelization());
  const CsrCopy csr(*bench.ctx, bench.nl);
  debug::validate_load_terms(bench.nl, csr.offsets, csr.terms);
}

}  // namespace
}  // namespace statsizer
