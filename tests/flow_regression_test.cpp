// Golden end-to-end regression: the quickstart flow on the c432-class
// workload must keep reproducing the paper's headline result, and the batch
// Monte-Carlo API must agree with running the same points one at a time.
#include <cmath>

#include <gtest/gtest.h>

#include "core/flow.h"

namespace statsizer::core {
namespace {

TEST(FlowRegression, C432Lambda3ReproducesPaperBand) {
  Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  (void)flow.run_baseline();

  const opt::CircuitStats original = flow.analyze();
  // Mean-delay-optimized "original" point: sigma/mu lands near the paper's
  // Table-1 order of magnitude for c432 (0.093 there, ~0.05 with this
  // library's calibration; see EXPERIMENTS.md).
  EXPECT_GT(original.sigma_over_mu(), 0.03);
  EXPECT_LT(original.sigma_over_mu(), 0.09);

  const OptimizationRecord rec = flow.optimize(3.0);
  // The paper's c432 row reports a -0.58 sigma reduction at lambda = 3; the
  // reproduction must stay in the -0.5..-0.8 band.
  EXPECT_LE(rec.sigma_change, -0.5) << "sigma reduction too weak";
  EXPECT_GE(rec.sigma_change, -0.8) << "sigma reduction implausibly strong";
  // Variance is bought with area, never by giving mean back.
  EXPECT_LE(rec.mean_change, 0.0);
  EXPECT_GT(rec.area_change, 0.0);
  EXPECT_LT(rec.area_change, 1.5);
  EXPECT_GT(rec.resizes, 0u);
}

TEST(FlowRegression, MonteCarloBatchMatchesSequential) {
  ssta::MonteCarloOptions mc;
  mc.samples = 400;
  mc.seed = 5;

  std::vector<MonteCarloJob> jobs;
  jobs.push_back({"alu2", std::nullopt, mc});
  jobs.push_back({"alu2", 3.0, mc});
  jobs.push_back({"no-such-circuit", std::nullopt, mc});

  const auto batch = Flow::run_monte_carlo_batch(jobs, /*threads=*/2);
  ASSERT_EQ(batch.size(), jobs.size());

  ASSERT_TRUE(batch[0].status.ok());
  ASSERT_TRUE(batch[1].status.ok());
  EXPECT_FALSE(batch[2].status.ok());
  EXPECT_TRUE(batch[2].mc.circuit_samples.empty());

  EXPECT_FALSE(batch[0].record.has_value());
  ASSERT_TRUE(batch[1].record.has_value());
  EXPECT_LT(batch[1].record->sigma_change, 0.0);
  // The optimized point's Monte-Carlo sigma improves on the baseline's.
  EXPECT_LT(batch[1].mc.sigma_ps, batch[0].mc.sigma_ps);

  // Batch result == the same point evaluated through the single-flow API.
  Flow flow;
  ASSERT_TRUE(flow.load_table1("alu2").ok());
  (void)flow.run_baseline();
  const auto solo = ssta::run_monte_carlo(flow.timing(), mc);
  EXPECT_DOUBLE_EQ(batch[0].mc.mean_ps, solo.mean_ps);
  EXPECT_DOUBLE_EQ(batch[0].mc.sigma_ps, solo.sigma_ps);
  EXPECT_EQ(batch[0].mc.circuit_samples, solo.circuit_samples);
}

}  // namespace
}  // namespace statsizer::core
