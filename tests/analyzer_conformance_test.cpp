// Registry-driven conformance suite for the timing::Analyzer engine API.
// Every registered engine runs through the same contract checks:
//   * analyze() produces a finite summary consistent with its capabilities;
//   * propose()/score()/rollback() leaves the netlist, the TimingContext,
//     and the analyzer base bitwise-identical to the pre-propose state;
//   * a committed speculation's base equals a from-scratch analyze() of the
//     resized netlist bitwise (deterministic engines);
//   * commits invalidate sibling speculations (epoch guard).
// Plus the FULLSSTA-specific guarantees the parallel rescue confirmations
// rest on: what-if scores (single and multi-resize) bitwise-equal a
// from-scratch update() + run_fullssta() on the cla_adder and parity-fabric
// circuits from sizer_parallel_test, concurrent speculative scoring is
// thread-count-invariant, and a committed overlay equals the from-scratch
// run (arrival moments, output pdf, mean, sigma).
#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "core/flow.h"
#include "liberty/synthetic.h"
#include "opt/initial_sizing.h"
#include "opt/sizer_statistical.h"
#include "ssta/fullssta.h"
#include "ssta/isle.h"
#include "techmap/mapper.h"
#include "timing/analyzer.h"
#include "util/thread_pool.h"

namespace statsizer::timing {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n) : nl(std::move(n)) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
    (void)opt::apply_initial_sizing(*ctx);
  }
};

/// Wide balanced XOR fabric (mirrors sizer_parallel_test): reconvergence-free
/// breadth, thousands of near-identical paths.
Netlist parity_fabric(unsigned width) {
  circuits::Builder b("parity" + std::to_string(width));
  const auto xs = b.bus("x", width);
  b.output("p", b.xor_tree(xs));
  return b.take();
}

/// Every observable of the timing snapshot, bit-for-bit.
struct Fingerprint {
  std::vector<std::uint16_t> sizes;
  std::vector<double> loads;
  std::vector<double> slews;
  std::vector<double> arc_delays;
  std::vector<double> arc_sigmas;
  double area = 0.0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint fingerprint(const sta::TimingContext& ctx) {
  Fingerprint f;
  const auto& nl = ctx.netlist();
  f.sizes = nl.sizes();
  f.area = ctx.area_um2();
  for (GateId g = 0; g < nl.node_count(); ++g) {
    f.loads.push_back(ctx.load_ff(g));
    f.slews.push_back(ctx.slew_ps(g));
    for (std::size_t i = 0; i < nl.gate(g).fanins.size(); ++i) {
      f.arc_delays.push_back(ctx.arc_delay_ps(g, i));
      f.arc_sigmas.push_back(ctx.arc_sigma_ps(g, i));
    }
  }
  return f;
}

void expect_summaries_equal(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.mean_ps, b.mean_ps);
  EXPECT_EQ(a.sigma_ps, b.sigma_ps);
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t i = 0; i < a.node.size(); ++i) {
    EXPECT_EQ(a.node[i].mean_ps, b.node[i].mean_ps) << "node " << i;
    EXPECT_EQ(a.node[i].sigma_ps, b.node[i].sigma_ps) << "node " << i;
  }
  ASSERT_EQ(a.output_pdf.size(), b.output_pdf.size());
  EXPECT_EQ(a.output_pdf.origin(), b.output_pdf.origin());
  EXPECT_EQ(a.output_pdf.step(), b.output_pdf.step());
  EXPECT_EQ(a.output_pdf.masses(), b.output_pdf.masses());
}

/// A mapped gate with more than one available size, plus a target size that
/// differs from the current one.
struct Candidate {
  GateId gate = netlist::kNoGate;
  std::uint16_t size = 0;
};

std::vector<Candidate> some_candidates(const sta::TimingContext& ctx, std::size_t limit) {
  std::vector<Candidate> out;
  const auto& nl = ctx.netlist();
  for (GateId g = 0; g < nl.node_count() && out.size() < limit; ++g) {
    if (!ctx.has_cell(g)) continue;
    const auto& group = ctx.library().group(nl.gate(g).cell_group);
    if (group.size_count() < 2) continue;
    const std::uint16_t current = nl.gate(g).size_index;
    out.push_back(Candidate{g, static_cast<std::uint16_t>((current + 1) % group.size_count())});
  }
  return out;
}

class AnalyzerConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(AnalyzerConformance, AnalyzeProducesCapabilityConsistentSummary) {
  Bench b(circuits::make_cla_adder(4));
  AnalyzerOptions opt;
  opt.monte_carlo.samples = 400;  // keep the sampling engines test-sized
  opt.isle.samples = 400;
  auto an = make_analyzer(GetParam(), opt);
  EXPECT_EQ(an->name(), GetParam());
  EXPECT_THROW((void)an->current(), std::logic_error);
  EXPECT_THROW((void)an->propose(0, 0), std::logic_error);  // before analyze()

  const Summary& s = an->analyze(*b.ctx);
  EXPECT_GT(s.mean_ps, 0.0);
  EXPECT_GE(s.sigma_ps, 0.0);
  const Capabilities caps = an->capabilities();
  if (caps.per_node_moments) {
    EXPECT_EQ(s.node.size(), b.nl.node_count());
  }
  if (caps.output_pdf) {
    EXPECT_GT(s.output_pdf.size(), 1u);
    EXPECT_EQ(s.mean_ps, s.output_pdf.mean());
  }
}

TEST_P(AnalyzerConformance, RollbackRestoresBitwiseIdenticalState) {
  Bench b(circuits::make_cla_adder(4));
  AnalyzerOptions opt;
  opt.monte_carlo.samples = 400;
  opt.isle.samples = 400;
  auto an = make_analyzer(GetParam(), opt);
  if (!an->capabilities().what_if) GTEST_SKIP() << "engine has no what-if";

  (void)an->analyze(*b.ctx);
  const Summary before_summary = an->current();
  const Fingerprint before = fingerprint(*b.ctx);

  const auto cands = some_candidates(*b.ctx, 3);
  ASSERT_FALSE(cands.empty());
  for (const Candidate& c : cands) {
    auto spec = an->propose(c.gate, c.size);
    const Summary& scored = spec->score();
    EXPECT_GT(scored.mean_ps, 0.0);
    spec->rollback();
    EXPECT_EQ(fingerprint(*b.ctx), before) << "rollback leaked state";
    expect_summaries_equal(an->current(), before_summary);
  }
  // Destroying an unresolved speculation is an implicit rollback.
  { auto spec = an->propose(cands[0].gate, cands[0].size); }
  EXPECT_EQ(fingerprint(*b.ctx), before);
}

TEST_P(AnalyzerConformance, CommittedSpeculationEqualsFromScratchAnalysis) {
  AnalyzerOptions opt;
  opt.monte_carlo.samples = 400;
  opt.isle.samples = 400;
  auto an = make_analyzer(GetParam(), opt);
  if (!an->capabilities().what_if) GTEST_SKIP() << "engine has no what-if";

  Bench b(circuits::make_cla_adder(4));
  (void)an->analyze(*b.ctx);
  const auto cands = some_candidates(*b.ctx, 1);
  ASSERT_FALSE(cands.empty());

  auto spec = an->propose(cands[0].gate, cands[0].size);
  const Summary scored = spec->score();
  spec->commit();
  EXPECT_EQ(b.nl.gate(cands[0].gate).size_index, cands[0].size);
  const Summary committed = an->current();

  // From scratch: an identical twin bench resized up front.
  Bench twin(circuits::make_cla_adder(4));
  twin.nl.gate(cands[0].gate).size_index = cands[0].size;
  twin.ctx->update();
  auto fresh = make_analyzer(GetParam(), opt);
  const Summary& reference = fresh->analyze(*twin.ctx);

  expect_summaries_equal(committed, reference);
  EXPECT_EQ(fingerprint(*b.ctx), fingerprint(*twin.ctx));
  if (an->capabilities().exact_speculation) {
    EXPECT_EQ(scored.mean_ps, reference.mean_ps);
    EXPECT_EQ(scored.sigma_ps, reference.sigma_ps);
  }
}

TEST_P(AnalyzerConformance, CommitInvalidatesSiblingSpeculations) {
  AnalyzerOptions opt;
  opt.monte_carlo.samples = 400;
  opt.isle.samples = 400;
  auto an = make_analyzer(GetParam(), opt);
  if (!an->capabilities().what_if) GTEST_SKIP() << "engine has no what-if";

  Bench b(circuits::make_cla_adder(4));
  (void)an->analyze(*b.ctx);
  const auto cands = some_candidates(*b.ctx, 2);
  ASSERT_GE(cands.size(), 2u);

  auto first = an->propose(cands[0].gate, cands[0].size);
  auto second = an->propose(cands[1].gate, cands[1].size);
  auto third = an->propose(cands[1].gate, cands[1].size);
  const Summary second_scored = second->score();  // cached pre-invalidation
  first->commit();
  EXPECT_NO_THROW(first->commit());  // committing twice is a uniform no-op
  EXPECT_EQ(second->score().mean_ps, second_scored.mean_ps);  // cache readable
  EXPECT_THROW((void)third->score(), std::logic_error);       // stale base
  EXPECT_THROW(third->commit(), std::logic_error);
  third->rollback();  // rollback of an invalidated speculation is a no-op
}

TEST_P(AnalyzerConformance, ProposeValidatesArguments) {
  AnalyzerOptions opt;
  opt.monte_carlo.samples = 400;
  opt.isle.samples = 400;
  auto an = make_analyzer(GetParam(), opt);
  if (!an->capabilities().what_if) GTEST_SKIP() << "engine has no what-if";

  Bench b(circuits::make_cla_adder(4));
  (void)an->analyze(*b.ctx);
  const auto cands = some_candidates(*b.ctx, 1);
  ASSERT_FALSE(cands.empty());
  const GateId g = cands[0].gate;
  const auto& group = b.lib.group(b.nl.gate(g).cell_group);

  EXPECT_THROW((void)an->propose(g, static_cast<std::uint16_t>(group.size_count())),
               std::invalid_argument);
  EXPECT_THROW((void)an->propose_resizes({}), std::invalid_argument);
  const Resize dup[] = {{g, 0}, {g, 1}};
  EXPECT_THROW((void)an->propose_resizes(dup), std::invalid_argument);
  // Unmapped node (a primary input).
  ASSERT_FALSE(b.nl.inputs().empty());
  EXPECT_THROW((void)an->propose(b.nl.inputs()[0], 0), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Registry, AnalyzerConformance,
                         ::testing::ValuesIn(analyzer_names()),
                         [](const auto& info) { return info.param; });

TEST(AnalyzerRegistry, KnowsTheBuiltins) {
  const auto names = analyzer_names();
  for (const char* expected : {"canonical", "dsta", "fassta", "fullssta", "isle", "mc"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
  EXPECT_THROW((void)make_analyzer("no-such-engine"), std::invalid_argument);
}

TEST(AnalyzerRegistry, AcceptsExtensionBackends) {
  // Registering a new backend under a taken name fails; a fresh name works
  // and resolves through make_analyzer.
  EXPECT_FALSE(register_analyzer(
      "fullssta", [](const AnalyzerOptions& o) { return make_analyzer("dsta", o); }));
  static bool registered = register_analyzer(
      "conformance-alias", [](const AnalyzerOptions& o) { return make_analyzer("dsta", o); });
  EXPECT_TRUE(registered);
  auto an = make_analyzer("conformance-alias");
  EXPECT_EQ(an->name(), "dsta");
}

// ---------------------------------------------------------------------------
// FULLSSTA what-if vs full re-run: the bitwise-equivalence the parallel
// rescue confirmations rest on, exercised on the two circuits from
// sizer_parallel_test (a reconvergent carry chain and a balanced fabric).
// ---------------------------------------------------------------------------

class FullSstaWhatIf : public ::testing::TestWithParam<int> {
 protected:
  static Netlist circuit() {
    return GetParam() == 0 ? circuits::make_cla_adder(8) : parity_fabric(16);
  }
};

TEST_P(FullSstaWhatIf, ScoreMatchesFromScratchRerunBitwise) {
  Bench b(circuit());
  auto an = make_analyzer("fullssta");
  (void)an->analyze(*b.ctx);

  for (const Candidate& c : some_candidates(*b.ctx, 24)) {
    auto spec = an->propose(c.gate, c.size);
    const Summary& scored = spec->score();

    // From-scratch reference: mutate, rebuild the snapshot, run the engine,
    // restore. (update() is a pure function of the sizes, so the restore
    // leaves the bench bitwise-identical for the next candidate.)
    const std::uint16_t keep = b.nl.gate(c.gate).size_index;
    b.nl.gate(c.gate).size_index = c.size;
    b.ctx->update();
    const ssta::FullSstaResult reference = ssta::run_fullssta(*b.ctx);
    b.nl.gate(c.gate).size_index = keep;
    b.ctx->update();

    EXPECT_EQ(scored.mean_ps, reference.mean_ps) << "gate " << c.gate;
    EXPECT_EQ(scored.sigma_ps, reference.sigma_ps) << "gate " << c.gate;
    spec->rollback();
  }
}

TEST_P(FullSstaWhatIf, MultiResizeScoreMatchesFromScratchRerunBitwise) {
  Bench b(circuit());
  auto an = make_analyzer("fullssta");
  (void)an->analyze(*b.ctx);

  const auto cands = some_candidates(*b.ctx, 6);
  ASSERT_GE(cands.size(), 2u);
  std::vector<Resize> resizes;
  for (const Candidate& c : cands) resizes.push_back(Resize{c.gate, c.size});

  auto spec = an->propose_resizes(resizes);
  const Summary& scored = spec->score();

  const auto keep = b.nl.sizes();
  for (const Resize& r : resizes) b.nl.gate(r.gate).size_index = r.size;
  b.ctx->update();
  const ssta::FullSstaResult reference = ssta::run_fullssta(*b.ctx);
  b.nl.set_sizes(keep);
  b.ctx->update();

  EXPECT_EQ(scored.mean_ps, reference.mean_ps);
  EXPECT_EQ(scored.sigma_ps, reference.sigma_ps);
}

TEST_P(FullSstaWhatIf, CommittedOverlayEqualsFromScratchRun) {
  Bench b(circuit());
  auto an = make_analyzer("fullssta");
  (void)an->analyze(*b.ctx);

  // Commit a chain of speculations (the rescue pattern: serial commits in
  // gain order), then compare the merged base against a from-scratch run.
  const auto cands = some_candidates(*b.ctx, 4);
  for (const Candidate& c : cands) {
    auto spec = an->propose(c.gate, c.size);
    (void)spec->score();
    spec->commit();
  }
  const Summary& merged = an->current();

  ssta::FullSstaOptions opt;
  opt.keep_node_pdfs = true;
  const ssta::FullSstaResult reference = ssta::run_fullssta(*b.ctx, opt);
  EXPECT_EQ(merged.mean_ps, reference.mean_ps);
  EXPECT_EQ(merged.sigma_ps, reference.sigma_ps);
  ASSERT_EQ(merged.node.size(), reference.node.size());
  for (std::size_t i = 0; i < merged.node.size(); ++i) {
    EXPECT_EQ(merged.node[i].mean_ps, reference.node[i].mean_ps) << "node " << i;
    EXPECT_EQ(merged.node[i].sigma_ps, reference.node[i].sigma_ps) << "node " << i;
  }
  EXPECT_EQ(merged.output_pdf.masses(), reference.output_pdf.masses());
  EXPECT_EQ(merged.output_pdf.origin(), reference.output_pdf.origin());
  EXPECT_EQ(merged.output_pdf.step(), reference.output_pdf.step());
}

TEST_P(FullSstaWhatIf, ConcurrentScoringIsThreadCountInvariant) {
  Bench b(circuit());
  auto an = make_analyzer("fullssta");
  (void)an->analyze(*b.ctx);
  ASSERT_TRUE(an->capabilities().concurrent_speculations);

  const auto cands = some_candidates(*b.ctx, 32);
  const auto score_all = [&](std::size_t threads) {
    std::vector<std::unique_ptr<Speculation>> specs(cands.size());
    for (std::size_t i = 0; i < cands.size(); ++i) {
      specs[i] = an->propose(cands[i].gate, cands[i].size);
    }
    std::vector<double> means(cands.size());
    std::vector<double> sigmas(cands.size());
    util::parallel_for(cands.size(), 1, threads,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t i = begin; i < end; ++i) {
                           const Summary& s = specs[i]->score();
                           means[i] = s.mean_ps;
                           sigmas[i] = s.sigma_ps;
                         }
                       });
    return std::pair(means, sigmas);
  };

  const auto reference = score_all(1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto parallel = score_all(threads);
    EXPECT_EQ(parallel.first, reference.first) << "threads=" << threads;
    EXPECT_EQ(parallel.second, reference.second) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, FullSstaWhatIf, ::testing::Values(0, 1),
                         [](const auto& info) {
                           return info.param == 0 ? std::string("cla_adder")
                                                  : std::string("parity_fabric");
                         });

// ---------------------------------------------------------------------------
// Engine selection plumbing: the sizer and the flow resolve confirm/score
// engines through the registry.
// ---------------------------------------------------------------------------

TEST(EngineSelection, SizerRunsWithAlternateEngines) {
  // FASSTA confirming FASSTA plans: a coherent (if approximate) setup that
  // exercises the non-default confirm path end to end.
  Bench b(circuits::make_ripple_adder(4));
  opt::StatisticalSizerOptions opt;
  opt.objective.lambda = 3.0;
  opt.confirm_engine = "fassta";
  opt.score_engine = "dsta";  // serialized analyzer-path inner scoring
  opt.max_iterations = 3;
  const auto stats = opt::size_statistically(*b.ctx, opt);
  EXPECT_GT(stats.initial.mean_ps, 0.0);
  EXPECT_LE(stats.final_.mean_ps + 3.0 * stats.final_.sigma_ps,
            stats.initial.mean_ps + 3.0 * stats.initial.sigma_ps);
}

TEST(EngineSelection, SizerRejectsIncapableOrUnknownEngines) {
  Bench b(circuits::make_ripple_adder(4));
  opt::StatisticalSizerOptions opt;
  opt.max_iterations = 1;
  opt.confirm_engine = "no-such-engine";
  EXPECT_THROW((void)opt::size_statistically(*b.ctx, opt), std::invalid_argument);
  opt.confirm_engine = "mc";  // no per-node moments unless per_node_stats
  EXPECT_THROW((void)opt::size_statistically(*b.ctx, opt), std::invalid_argument);
  opt.confirm_engine = "fullssta";
  opt.score_engine = "dsta";
  opt.scoring = opt::InnerScoring::kSubcircuit;  // needs the fassta kernel
  EXPECT_THROW((void)opt::size_statistically(*b.ctx, opt), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ISLE degenerate-weights stress: the estimator must flag, not fabricate.
// ---------------------------------------------------------------------------

TEST(IsleDegeneracy, VanishingVariationTripsTheClampFlag) {
  // With zero proportional variation and zero floor every path sigma
  // vanishes: no finite mean shift exists and the proposal must mark itself
  // degenerate rather than divide by ~0.
  Netlist nl = circuits::make_cla_adder(4);
  const liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationParams vp;
  vp.proportional_coeff = 0.0;
  vp.random_floor_ps = 0.0;
  const variation::VariationModel var(vp);
  auto s = techmap::map_to_library(nl, lib);
  ASSERT_TRUE(s.ok());
  const sta::TimingContext ctx(nl, lib, var, sta::TimingOptions{});

  ssta::IsleOptions opt;
  opt.samples = 256;
  const ssta::IsleResult r = ssta::run_isle(ctx, opt);
  EXPECT_TRUE(r.shift_clamped);
  EXPECT_TRUE(r.degenerate);
}

TEST(IsleDegeneracy, ExtremeLambdaClampsTheShift) {
  // A constraint dozens of sigma out forces |beta| past max_shift: the clamp
  // fires and the result is flagged degenerate even though sampling ran.
  Bench b(circuits::make_cla_adder(4));
  ssta::IsleOptions opt;
  opt.samples = 256;
  const ssta::IsleResult probe = ssta::run_isle(*b.ctx, opt);
  ASSERT_GT(probe.surrogate_sigma_ps, 0.0);

  opt.clock_period_ps = probe.surrogate_mean_ps + 50.0 * probe.surrogate_sigma_ps;
  const ssta::IsleResult r = ssta::run_isle(*b.ctx, opt);
  EXPECT_TRUE(r.shift_clamped);
  EXPECT_TRUE(r.degenerate);
  EXPECT_EQ(std::abs(r.shift_beta), opt.max_shift);
}

TEST(IsleDegeneracy, CollapsedEssTripsWithoutTheDefensiveComponent) {
  // defensive_fraction = 0 removes the weight bound: under a pure shifted
  // proposal at a deep shift, E_f[w] = exp(beta^2) makes the effective sample
  // size collapse to ~ N * exp(-beta^2) — the ESS trip-wire must catch it.
  Bench b(circuits::make_cla_adder(4));
  ssta::IsleOptions opt;
  opt.samples = 2048;
  opt.defensive_fraction = 0.0;
  opt.dominant_paths = 1;
  const ssta::IsleResult probe = ssta::run_isle(*b.ctx, opt);
  ASSERT_GT(probe.surrogate_sigma_ps, 0.0);

  opt.clock_period_ps = probe.surrogate_mean_ps + 4.0 * probe.surrogate_sigma_ps;
  const ssta::IsleResult r = ssta::run_isle(*b.ctx, opt);
  ASSERT_FALSE(r.shift_clamped);  // beta = 4 < max_shift: a genuine ESS trip
  EXPECT_LT(r.ess, double(r.draws) * opt.min_ess_fraction);
  EXPECT_TRUE(r.degenerate);
}

TEST(EngineSelection, SizerValidatesYieldTargetConfiguration) {
  Bench b(circuits::make_ripple_adder(4));
  opt::StatisticalSizerOptions opt;
  opt.max_iterations = 1;
  opt.target_yield = 0.5;
  opt.yield_engine = "no-such-engine";
  EXPECT_THROW((void)opt::size_statistically(*b.ctx, opt), std::invalid_argument);
  opt.yield_engine = "isle";  // no clock period anywhere: cannot evaluate yield
  EXPECT_THROW((void)opt::size_statistically(*b.ctx, opt), std::invalid_argument);

  // With a clock the loop runs and reports the final yield + draw total.
  const ssta::FullSstaResult full = ssta::run_fullssta(*b.ctx);
  opt.isle.clock_period_ps = full.mean_ps + 3.0 * full.sigma_ps;
  opt.isle.samples = 256;
  const auto stats = opt::size_statistically(*b.ctx, opt);
  EXPECT_GE(stats.final_yield, 0.0);
  EXPECT_LE(stats.final_yield, 1.0);
  EXPECT_GT(stats.yield_draws, 0u);
}

TEST(EngineSelection, FlowMakeAnalyzerUsesFlowOptions) {
  core::FlowOptions options;
  options.fullssta.samples_per_pdf = 9;
  core::Flow flow(options);
  ASSERT_TRUE(flow.load_table1("alu1").ok());
  auto an = flow.make_analyzer();  // default fullssta
  const Summary& s = an->analyze(flow.timing());
  EXPECT_EQ(s.output_pdf.size(), 9u);  // the flow's pdf resolution carried over
  EXPECT_THROW((void)flow.make_analyzer("no-such-engine"), std::invalid_argument);
}

}  // namespace
}  // namespace statsizer::timing
