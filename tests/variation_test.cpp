#include <cmath>

#include <gtest/gtest.h>

#include "util/numeric.h"
#include "util/rng.h"
#include "variation/model.h"

namespace statsizer::variation {
namespace {

TEST(VariationModel, TwoComponentStructure) {
  VariationParams p;
  p.proportional_coeff = 0.2;
  p.size_exponent = 1.0;
  p.random_floor_ps = 3.0;
  const VariationModel m(p);
  // sigma^2 = (0.2 * 50 / 2)^2 + 3^2 at delay 50, drive 2.
  EXPECT_NEAR(m.systematic_sigma_ps(50.0, 2.0), 5.0, 1e-12);
  EXPECT_NEAR(m.sigma_ps(50.0, 2.0), std::sqrt(25.0 + 9.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.random_sigma_ps(), 3.0);
}

TEST(VariationModel, SizeSuppression) {
  VariationParams p;
  p.size_exponent = 1.0;
  const VariationModel m(p);
  // "inversely proportional to their dimensions" (paper section 4.4).
  EXPECT_NEAR(m.systematic_sigma_ps(40.0, 4.0), m.systematic_sigma_ps(40.0, 1.0) / 4.0,
              1e-12);
  VariationParams pelgrom = p;
  pelgrom.size_exponent = 0.5;
  const VariationModel mp(pelgrom);
  EXPECT_NEAR(mp.systematic_sigma_ps(40.0, 4.0), mp.systematic_sigma_ps(40.0, 1.0) / 2.0,
              1e-12);
}

TEST(VariationModel, FloorDoesNotScale) {
  const VariationModel m;
  EXPECT_DOUBLE_EQ(m.random_sigma_ps(), m.params().random_floor_ps);
  // At zero delay only the floor remains.
  EXPECT_DOUBLE_EQ(m.sigma_ps(0.0, 1.0), m.params().random_floor_ps);
}

TEST(VariationModel, MeanToSigmaCoefficient) {
  VariationParams p;
  p.proportional_coeff = 0.4;
  p.size_exponent = 1.0;
  const VariationModel m(p);
  EXPECT_DOUBLE_EQ(m.mean_to_sigma_coeff(1.0), 0.4);
  EXPECT_DOUBLE_EQ(m.mean_to_sigma_coeff(4.0), 0.1);
}

TEST(VariationModel, InvalidParamsRejected) {
  VariationParams bad;
  bad.proportional_coeff = -0.1;
  EXPECT_THROW(VariationModel{bad}, std::invalid_argument);
  VariationParams bad2;
  bad2.global_fraction = 1.5;
  EXPECT_THROW(VariationModel{bad2}, std::invalid_argument);
}

TEST(VariationSampling, MomentsMatchModel) {
  VariationParams p;
  p.proportional_coeff = 0.15;
  p.size_exponent = 1.0;
  p.random_floor_ps = 2.0;
  const VariationModel m(p);
  util::Rng rng(123);
  util::RunningStats stats;
  const double d = 60.0;
  const double k = 2.0;
  for (int i = 0; i < 60000; ++i) stats.add(m.sample_delay_ps(d, k, 0.0, rng));
  EXPECT_NEAR(stats.mean(), d, 0.15);
  EXPECT_NEAR(stats.stddev(), m.sigma_ps(d, k), 0.1);
}

TEST(VariationSampling, TruncationPreventsNegativeDelays) {
  VariationParams p;
  p.proportional_coeff = 2.0;  // absurdly wide on purpose
  const VariationModel m(p);
  util::Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(m.sample_delay_ps(30.0, 1.0, 0.0, rng), 0.05 * 30.0);
  }
}

TEST(VariationSampling, GlobalFractionSplitsVariance) {
  VariationParams p;
  p.proportional_coeff = 0.3;
  p.random_floor_ps = 0.0;
  p.global_fraction = 1.0;  // fully correlated systematic part
  const VariationModel m(p);
  util::Rng rng(9);
  // With global_fraction = 1 and a fixed global draw, samples are
  // deterministic (no local randomness left).
  const double s1 = m.sample_delay_ps(50.0, 1.0, 1.7, rng);
  const double s2 = m.sample_delay_ps(50.0, 1.0, 1.7, rng);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_NEAR(s1, 50.0 + 0.3 * 50.0 * 1.7, 1e-9);
}

TEST(VariationSampling, GlobalComponentCorrelatesGates) {
  VariationParams p;
  p.proportional_coeff = 0.3;
  p.random_floor_ps = 0.0;
  p.global_fraction = 0.8;
  const VariationModel m(p);
  util::Rng rng(42);
  // Correlation between two gates sampled under the same global draw.
  util::RunningStats cov_acc;
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    const double g = rng.normal();
    xs.push_back(m.sample_delay_ps(50.0, 1.0, g, rng));
    ys.push_back(m.sample_delay_ps(50.0, 1.0, g, rng));
  }
  const double mx = util::mean_of(xs);
  const double my = util::mean_of(ys);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) cov += (xs[i] - mx) * (ys[i] - my);
  cov /= static_cast<double>(xs.size());
  const double rho =
      cov / std::sqrt(util::variance_of(xs) * util::variance_of(ys));
  EXPECT_NEAR(rho, 0.8, 0.03);
}

}  // namespace
}  // namespace statsizer::variation
