// Parallel StatisticalGreedy: candidate scoring fans across the thread pool,
// and the contract (mirroring the parallel Monte-Carlo engine) is that the
// whole optimization — resize trajectory, stats, final sizes, final
// moments — is bitwise-identical for any thread count.
#include <memory>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "liberty/synthetic.h"
#include "opt/initial_sizing.h"
#include "opt/sizer_statistical.h"
#include "ssta/fullssta.h"
#include "techmap/mapper.h"

namespace statsizer::opt {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n) : nl(std::move(n)) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
  }
};

/// Wide balanced XOR fabric: thousands of near-identical paths, so per-gate
/// greedy stalls and the optimizer falls through to the global-sweep and
/// population-bump rescues.
Netlist parity_fabric(unsigned width) {
  circuits::Builder b("parity" + std::to_string(width));
  const auto xs = b.bus("x", width);
  b.output("p", b.xor_tree(xs));
  return b.take();
}

struct RunResult {
  StatisticalSizerStats stats;
  std::vector<std::uint16_t> sizes;
  double final_mean_ps = 0.0;
  double final_sigma_ps = 0.0;
};

RunResult run_once(Netlist nl, double lambda, std::size_t threads) {
  Bench b(std::move(nl));
  (void)apply_initial_sizing(*b.ctx);
  StatisticalSizerOptions opt;
  opt.objective.lambda = lambda;
  opt.threads = threads;
  opt.record_trajectory = true;
  RunResult r;
  r.stats = size_statistically(*b.ctx, opt);
  r.sizes = b.nl.sizes();
  const auto full = ssta::run_fullssta(*b.ctx);
  r.final_mean_ps = full.mean_ps;
  r.final_sigma_ps = full.sigma_ps;
  return r;
}

void expect_identical(const RunResult& ref, const RunResult& r, std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  // The full trajectory: same moves, same order, same sources.
  EXPECT_EQ(r.stats.trajectory, ref.stats.trajectory);
  // Every counter the run reports.
  EXPECT_EQ(r.stats.iterations, ref.stats.iterations);
  EXPECT_EQ(r.stats.resizes, ref.stats.resizes);
  EXPECT_EQ(r.stats.fassta_evaluations, ref.stats.fassta_evaluations);
  EXPECT_EQ(r.stats.exact_resizes, ref.stats.exact_resizes);
  EXPECT_EQ(r.stats.global_sweeps, ref.stats.global_sweeps);
  EXPECT_EQ(r.stats.uniform_bump_rounds, ref.stats.uniform_bump_rounds);
  EXPECT_EQ(r.stats.constraints_met, ref.stats.constraints_met);
  // Bitwise-equal analysis results and final netlist state (EXPECT_EQ, not
  // EXPECT_DOUBLE_EQ: the contract is exact identity, not 4-ULP closeness).
  EXPECT_EQ(r.stats.initial.mean_ps, ref.stats.initial.mean_ps);
  EXPECT_EQ(r.stats.initial.sigma_ps, ref.stats.initial.sigma_ps);
  EXPECT_EQ(r.stats.final_.mean_ps, ref.stats.final_.mean_ps);
  EXPECT_EQ(r.stats.final_.sigma_ps, ref.stats.final_.sigma_ps);
  EXPECT_EQ(r.stats.final_.area_um2, ref.stats.final_.area_um2);
  EXPECT_EQ(r.final_mean_ps, ref.final_mean_ps);
  EXPECT_EQ(r.final_sigma_ps, ref.final_sigma_ps);
  EXPECT_EQ(r.sizes, ref.sizes);
}

TEST(SizerParallel, WnssPathCircuitIdenticalAcrossThreadCounts) {
  // A carry chain: WNSS-path-driven optimization, exercising the fast-engine
  // plan plus the exact rescue sweeps on the way to convergence.
  const auto ref = run_once(circuits::make_cla_adder(8), 3.0, 1);
  EXPECT_GT(ref.stats.resizes, 0u);
  EXPECT_GT(ref.stats.fassta_evaluations, 0u);
  // The run must reach past the plan stage into the exact rescue machinery,
  // otherwise this test would not cover the sweeps' determinism.
  EXPECT_GT(ref.stats.exact_resizes, 0u);
  for (const std::size_t threads : {2u, 8u, 0u}) {
    expect_identical(ref, run_once(circuits::make_cla_adder(8), 3.0, threads), threads);
  }
}

TEST(SizerParallel, BalancedFabricGlobalSweepIdenticalAcrossThreadCounts) {
  const auto ref = run_once(parity_fabric(16), 9.0, 1);
  EXPECT_GT(ref.stats.resizes, 0u);
  // The balanced fabric must stall single-gate greedy and reach the
  // netlist-wide rescue sweep (and typically the population bump too).
  EXPECT_GT(ref.stats.global_sweeps, 0u);
  for (const std::size_t threads : {2u, 8u}) {
    expect_identical(ref, run_once(parity_fabric(16), 9.0, threads), threads);
  }
}

TEST(SizerParallel, SubcircuitScoringModeIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    Bench b(circuits::make_ripple_adder(8));
    (void)apply_initial_sizing(*b.ctx);
    StatisticalSizerOptions opt;
    opt.objective.lambda = 3.0;
    opt.scoring = InnerScoring::kSubcircuit;
    opt.max_iterations = 8;
    opt.threads = threads;
    opt.record_trajectory = true;
    RunResult r;
    r.stats = size_statistically(*b.ctx, opt);
    r.sizes = b.nl.sizes();
    return r;
  };
  const auto ref = run(1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto r = run(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(r.stats.trajectory, ref.stats.trajectory);
    EXPECT_EQ(r.stats.fassta_evaluations, ref.stats.fassta_evaluations);
    EXPECT_EQ(r.sizes, ref.sizes);
  }
}

TEST(SizerParallel, TrajectoryOffByDefault) {
  Bench b(circuits::make_ripple_adder(4));
  (void)apply_initial_sizing(*b.ctx);
  StatisticalSizerOptions opt;
  opt.max_iterations = 2;
  const auto stats = size_statistically(*b.ctx, opt);
  EXPECT_TRUE(stats.trajectory.empty());
}

}  // namespace
}  // namespace statsizer::opt
