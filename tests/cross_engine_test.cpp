// Cross-engine drift guard: on random generator circuits, Monte Carlo (the
// assumption-free golden reference), FULLSSTA (discrete-pdf, independence
// approximation at merges) and FASSTA (moment-only Clark propagation) must
// stay mutually consistent. Any engine regressing by a few percent trips
// these bounds.
//
// The MC-vs-FULLSSTA mean bound is the Monte-Carlo standard error
// (3 sigma / sqrt(samples)) plus an explicit bias budget: FULLSSTA's
// independence approximation *systematically* overestimates E[max] at
// reconvergent merges (shared subpaths correlate branch arrivals), so the
// gap does not shrink with more samples. At the mild variation used here
// the measured bias is 1-2% of the mean across seeds; the budget is 3%.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "fassta/engine.h"
#include "liberty/synthetic.h"
#include "ssta/fullssta.h"
#include "ssta/isle.h"
#include "ssta/monte_carlo.h"
#include "techmap/mapper.h"

namespace statsizer {
namespace {

struct EngineTriple {
  ssta::MonteCarloResult mc;
  ssta::FullSstaResult full;
  sta::NodeMoments fassta;
  std::size_t samples = 0;
};

EngineTriple run_engines(std::uint64_t seed) {
  circuits::RandomDagOptions ro;
  ro.seed = seed;
  netlist::Netlist nl = circuits::make_random_dag(ro);
  const liberty::Library lib = liberty::build_synthetic_90nm();
  // Mild variation: keeps the sampling truncation a deep-tail event so the
  // Gaussian machinery in FULLSSTA/FASSTA applies and only the genuine
  // independence-approximation bias separates the engines.
  variation::VariationParams vp;
  vp.proportional_coeff = 0.15;
  const variation::VariationModel var(vp);
  auto s = techmap::map_to_library(nl, lib);
  if (!s.ok()) throw std::logic_error(s.message());
  const sta::TimingContext ctx(nl, lib, var, sta::TimingOptions{});

  EngineTriple t;
  ssta::MonteCarloOptions mo;
  mo.samples = 2000;
  mo.seed = 1000 + seed;
  mo.threads = 0;  // exercise the parallel path; results are thread-invariant
  t.samples = mo.samples;
  t.mc = ssta::run_monte_carlo(ctx, mo);
  t.full = ssta::run_fullssta(ctx);
  const fassta::Engine engine(ctx);
  (void)engine.run(&t.fassta);
  return t;
}

TEST(CrossEngine, MonteCarloVsFullSstaMean) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EngineTriple t = run_engines(seed);
    const double standard_error = t.mc.sigma_ps / std::sqrt(double(t.samples));
    const double bias_budget = 0.03 * t.mc.mean_ps;
    EXPECT_LT(std::abs(t.mc.mean_ps - t.full.mean_ps), 3.0 * standard_error + bias_budget)
        << "seed=" << seed << " MC=" << t.mc.mean_ps << " FULL=" << t.full.mean_ps;
    // The bias has a known sign: independence can only overestimate the max.
    EXPECT_GE(t.full.mean_ps, t.mc.mean_ps * 0.99) << "seed=" << seed;
  }
}

TEST(CrossEngine, FullSstaVsMonteCarloSigma) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EngineTriple t = run_engines(seed);
    // Correlated branches make the true max fatter than independence
    // predicts: FULLSSTA sigma sits below MC sigma, but boundedly so.
    EXPECT_LE(t.full.sigma_ps, t.mc.sigma_ps * 1.05) << "seed=" << seed;
    EXPECT_GE(t.full.sigma_ps, t.mc.sigma_ps * 0.55) << "seed=" << seed;
  }
}

TEST(CrossEngine, FasstaTracksFullSsta) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EngineTriple t = run_engines(seed);
    // Paper section 4.3: the moment-only engine with the quadratic erf stays
    // within a few percent of the discrete-pdf engine.
    EXPECT_NEAR(t.fassta.mean_ps, t.full.mean_ps, 0.01 * t.full.mean_ps) << "seed=" << seed;
    const double ratio = t.fassta.sigma_ps / t.full.sigma_ps;
    EXPECT_GE(ratio, 0.95) << "seed=" << seed;
    EXPECT_LE(ratio, 1.05) << "seed=" << seed;
  }
}

TEST(CrossEngine, IsleYieldTracksMonteCarlo) {
  // Same-context drift guard for the importance-sampled yield engine: on the
  // five random DAGs, ISLE's yield at T = mean + 1.5 sigma must match the
  // empirical Monte-Carlo yield. Both samplers draw from the identical
  // truncated variation model, so the only budget beyond the two standard
  // errors is 0.01 for empirical-CDF discreteness at the threshold (ties and
  // finite-sample staircase), not a model-bias term.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    circuits::RandomDagOptions ro;
    ro.seed = seed;
    netlist::Netlist nl = circuits::make_random_dag(ro);
    const liberty::Library lib = liberty::build_synthetic_90nm();
    variation::VariationParams vp;
    vp.proportional_coeff = 0.15;
    const variation::VariationModel var(vp);
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    const sta::TimingContext ctx(nl, lib, var, sta::TimingOptions{});

    ssta::MonteCarloOptions mo;
    mo.samples = 2000;
    mo.seed = 1000 + seed;
    mo.threads = 0;
    const ssta::MonteCarloResult mc = ssta::run_monte_carlo(ctx, mo);

    const double period = mc.mean_ps + 1.5 * mc.sigma_ps;
    std::size_t pass = 0;
    for (const double d : mc.circuit_samples) pass += (d <= period) ? 1u : 0u;
    const double mc_yield = double(pass) / double(mo.samples);
    const double mc_se = std::sqrt(mc_yield * (1.0 - mc_yield) / double(mo.samples));

    ssta::IsleOptions io;
    io.samples = 1024;
    io.seed = 9000 + seed;
    io.threads = 0;
    io.clock_period_ps = period;
    const ssta::IsleResult isle = ssta::run_isle(ctx, io);

    ASSERT_FALSE(isle.degenerate) << "seed=" << seed;
    const double bound =
        3.0 * std::sqrt(isle.std_error * isle.std_error + mc_se * mc_se) + 0.01;
    EXPECT_LT(std::abs(isle.yield - mc_yield), bound)
        << "seed=" << seed << " isle=" << isle.yield << " mc=" << mc_yield;
  }
}

}  // namespace
}  // namespace statsizer
