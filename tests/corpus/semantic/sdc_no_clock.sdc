# Port delays without a create_clock: no primary output has a required time.
# expect-drc: unconstrained-output
set_input_delay 60 [all_inputs]
