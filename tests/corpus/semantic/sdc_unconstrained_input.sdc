# A clock is defined but only input a has an arrival: b and c are
# unconstrained primary inputs (checked against valid_small.bench).
# expect-drc: unconstrained-input b
create_clock -period 800 -name clk
set_input_delay -clock clk 60 [get_ports a]
