// An X1 inverter driving five NAND2_X8 input pins: 96 fF of load against a
// 40 fF max_capacitance (2.4x, over the DRC's 2x gross-violation screen)
// while its output slew (~770 ps) stays inside the 800 ps max_transition.
// expect-drc: load-exceeds-limit n
module load_limit (a, b, y0, y1, y2, y3, y4);
  input a, b;
  output y0, y1, y2, y3, y4;
  wire n;
  INV_X1 u0 (.A(a), .ZN(n));
  NAND2_X8 u1 (.A1(n), .A2(b), .ZN(y0));
  NAND2_X8 u2 (.A1(n), .A2(b), .ZN(y1));
  NAND2_X8 u3 (.A1(n), .A2(b), .ZN(y2));
  NAND2_X8 u4 (.A1(n), .A2(b), .ZN(y3));
  NAND2_X8 u5 (.A1(n), .A2(b), .ZN(y4));
endmodule
