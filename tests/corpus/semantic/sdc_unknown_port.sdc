# Constrains a port the netlist does not have (checked against
# valid_small.bench: inputs a, b, c; output y).
# expect-drc: unknown-constraint-port no_such_port
create_clock -period 800 -name clk
set_input_delay -clock clk 60 [all_inputs]
set_input_delay -clock clk 80 [get_ports no_such_port]
set_output_delay -clock clk 50 [get_ports y]
