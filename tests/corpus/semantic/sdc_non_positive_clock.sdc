# A clock with a non-positive period: every required time is vacuous.
# expect-drc: non-positive-clock clk
create_clock -period 0 -name clk
set_input_delay -clock clk 60 [all_inputs]
