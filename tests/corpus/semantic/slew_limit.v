// An X1 inverter driving eight NAND2_X8 input pins (~154 fF): nominal
// output slew ~1226 ps, far over the 800 ps max_transition. A slew this bad
// necessarily drags the capacitive load over its limit too (in this library
// the slew bound binds at ~108 fF/drive, the 2x load screen at 80), so the
// load rule fires alongside.
// expect-drc: slew-exceeds-limit n
// expect-drc: load-exceeds-limit n
module slew_limit (a, b, y0, y1, y2, y3, y4, y5, y6, y7);
  input a, b;
  output y0, y1, y2, y3, y4, y5, y6, y7;
  wire n;
  INV_X1 u0 (.A(a), .ZN(n));
  NAND2_X8 u1 (.A1(n), .A2(b), .ZN(y0));
  NAND2_X8 u2 (.A1(n), .A2(b), .ZN(y1));
  NAND2_X8 u3 (.A1(n), .A2(b), .ZN(y2));
  NAND2_X8 u4 (.A1(n), .A2(b), .ZN(y3));
  NAND2_X8 u5 (.A1(n), .A2(b), .ZN(y4));
  NAND2_X8 u6 (.A1(n), .A2(b), .ZN(y5));
  NAND2_X8 u7 (.A1(n), .A2(b), .ZN(y6));
  NAND2_X8 u8 (.A1(n), .A2(b), .ZN(y7));
endmodule
