module loop (a, b, y);
  input a, b;
  output y;
  wire w1, w2;
  NAND2_X1 u0 (.A1(a), .A2(w2), .ZN(w1));
  NAND2_X1 u1 (.A1(w1), .A2(b), .ZN(w2));
  BUF_X1 u2 (.A(w2), .Z(y));
endmodule
