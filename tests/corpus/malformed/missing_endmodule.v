module bad (a, y);
  input a;
  output y;
  INV_X1 u0 (.A(a), .ZN(y));
