set_input_delay [all_inputs]
