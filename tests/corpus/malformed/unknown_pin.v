module bad (a, y);
  input a;
  output y;
  INV_X1 u0 (.Q(a), .ZN(y));
endmodule
