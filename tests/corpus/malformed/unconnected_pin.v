module bad (a, b, y);
  input a, b;
  output y;
  NAND2_X1 u0 (.A1(a), .ZN(y));
endmodule
