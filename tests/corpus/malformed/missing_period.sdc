create_clock -name clk
