create_clock -period 800 -name clk
set_false_path -from a
