module bad (a, b, y);
  input a, b;
  output y;
  assign y = a & b;
endmodule
