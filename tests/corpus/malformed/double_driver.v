module bad (a, b, y);
  input a, b;
  output y;
  INV_X1 u0 (.A(a), .ZN(y));
  INV_X1 u1 (.A(b), .ZN(y));
endmodule
