set_input_delay 60 [get_ports {a b]
