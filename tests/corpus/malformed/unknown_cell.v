module bad (a, y);
  input a;
  output y;
  FROBNICATOR_X1 u0 (.A(a), .ZN(y));
endmodule
