create_clock -period 800
set_input_delay 60 [get_ports no_such_port]
