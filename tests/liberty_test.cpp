#include <gtest/gtest.h>

#include "liberty/model.h"
#include "liberty/parser.h"
#include "liberty/synthetic.h"
#include "liberty/writer.h"

namespace statsizer::liberty {
namespace {

// ---------------------------------------------------------------------------
// cell-name parsing
// ---------------------------------------------------------------------------

TEST(CellName, DriveSuffixes) {
  EXPECT_EQ(parse_cell_name("NAND2_X4").base, "NAND2");
  EXPECT_DOUBLE_EQ(parse_cell_name("NAND2_X4").drive, 4.0);
  EXPECT_DOUBLE_EQ(parse_cell_name("INV_X16").drive, 16.0);
  EXPECT_DOUBLE_EQ(parse_cell_name("BUF_X0P5").drive, 0.5);
  EXPECT_EQ(parse_cell_name("PLAIN").base, "PLAIN");
  EXPECT_DOUBLE_EQ(parse_cell_name("PLAIN").drive, 1.0);
  // Non-numeric suffix is part of the base name.
  EXPECT_EQ(parse_cell_name("FOO_XBAR").base, "FOO_XBAR");
}

TEST(BaseFunc, KnownFamilies) {
  ASSERT_TRUE(base_func_of("NAND3").has_value());
  EXPECT_EQ(base_func_of("NAND3")->arity, 3u);
  EXPECT_EQ(base_func_of("NAND3")->func, netlist::GateFunc::kNand);
  EXPECT_EQ(base_func_of("MUX2")->func, netlist::GateFunc::kMux2);
  EXPECT_FALSE(base_func_of("DFFRS").has_value());
}

// ---------------------------------------------------------------------------
// LUT lookup
// ---------------------------------------------------------------------------

TEST(Lut, BilinearAndExtrapolation) {
  Lut lut;
  lut.index1 = {10, 20};
  lut.index2 = {1, 2};
  lut.values = {1.0, 2.0, 3.0, 4.0};  // rows = slew
  EXPECT_DOUBLE_EQ(lut.lookup(10, 1), 1.0);
  EXPECT_DOUBLE_EQ(lut.lookup(20, 2), 4.0);
  EXPECT_DOUBLE_EQ(lut.lookup(15, 1.5), 2.5);
  // Linear extrapolation beyond corners.
  EXPECT_DOUBLE_EQ(lut.lookup(30, 3), 7.0);
}

TEST(Lut, ScalarAndVector) {
  Lut scalar;
  scalar.values = {7.5};
  EXPECT_DOUBLE_EQ(scalar.lookup(123, 456), 7.5);

  Lut vec;
  vec.index2 = {1, 3};
  vec.values = {10, 30};
  EXPECT_DOUBLE_EQ(vec.lookup(0, 2), 20.0);
}

// ---------------------------------------------------------------------------
// synthetic library structure
// ---------------------------------------------------------------------------

class SyntheticLibTest : public ::testing::Test {
 protected:
  static const Library& lib() {
    static const Library instance = build_synthetic_90nm();
    return instance;
  }
};

TEST_F(SyntheticLibTest, AllFamiliesPresent) {
  for (const CellSpec& spec : synthetic_cell_specs()) {
    EXPECT_TRUE(lib().find_group(spec.base_name).has_value()) << spec.base_name;
  }
  EXPECT_GE(lib().groups().size(), 19u);
}

TEST_F(SyntheticLibTest, SixToEightSizesPerFamily) {
  // The paper: "6-8 sizes per gate type".
  for (const auto& group : lib().groups()) {
    EXPECT_GE(group.size_count(), 6u) << group.base_name();
    EXPECT_LE(group.size_count(), 8u) << group.base_name();
  }
}

TEST_F(SyntheticLibTest, GroupsSortedByDrive) {
  for (const auto& group : lib().groups()) {
    double prev = 0.0;
    for (const auto idx : group.sizes()) {
      EXPECT_GT(lib().cell(idx).drive, prev);
      prev = lib().cell(idx).drive;
    }
  }
}

TEST_F(SyntheticLibTest, DelayFallsWithDrive) {
  // Same family, same load: bigger cell is faster.
  const auto group = lib().find_group("NAND2");
  ASSERT_TRUE(group.has_value());
  const double slew = 40.0;
  const double load = 20.0;
  double prev = 1e9;
  for (std::uint16_t s = 0; s < lib().group(*group).size_count(); ++s) {
    const Cell& c = lib().cell_for(*group, s);
    const double d = c.arc_from(0).delay(slew, load);
    EXPECT_LT(d, prev) << c.name;
    prev = d;
  }
}

TEST_F(SyntheticLibTest, DelayRisesWithLoadAndSlew) {
  const auto group = lib().find_group("INV");
  ASSERT_TRUE(group.has_value());
  const Cell& c = lib().cell_for(*group, 2);
  EXPECT_LT(c.arc_from(0).delay(20, 5), c.arc_from(0).delay(20, 25));
  EXPECT_LT(c.arc_from(0).delay(10, 10), c.arc_from(0).delay(100, 10));
  EXPECT_LT(c.arc_from(0).output_slew(20, 5), c.arc_from(0).output_slew(20, 25));
}

TEST_F(SyntheticLibTest, CapacitanceAndAreaScaleWithDrive) {
  const auto group = lib().find_group("NOR2");
  ASSERT_TRUE(group.has_value());
  double prev_cap = 0.0;
  double prev_area = 0.0;
  for (std::uint16_t s = 0; s < lib().group(*group).size_count(); ++s) {
    const Cell& c = lib().cell_for(*group, s);
    EXPECT_GT(c.input_cap_ff(0), prev_cap);
    EXPECT_GT(c.area_um2, prev_area);
    prev_cap = c.input_cap_ff(0);
    prev_area = c.area_um2;
  }
}

TEST_F(SyntheticLibTest, EveryInputPinHasAnArc) {
  for (const Cell& c : lib().cells()) {
    for (std::size_t i = 0; i < c.arity(); ++i) {
      EXPECT_NO_THROW((void)c.arc_from(i)) << c.name;
      EXPECT_GT(c.input_cap_ff(i), 0.0);
    }
    EXPECT_GT(c.output().max_capacitance_ff, 0.0);
  }
}

TEST_F(SyntheticLibTest, InvertingCellsNamedZN) {
  EXPECT_EQ(lib().cell(*lib().find_cell("INV_X1")).output().name, "ZN");
  EXPECT_EQ(lib().cell(*lib().find_cell("AND2_X1")).output().name, "Z");
  EXPECT_EQ(lib().cell(*lib().find_cell("XNOR2_X1")).output().name, "ZN");
}

TEST_F(SyntheticLibTest, FindGroupByFunc) {
  const auto g = lib().find_group(netlist::GateFunc::kNand, 3);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(lib().group(*g).base_name(), "NAND3");
  EXPECT_FALSE(lib().find_group(netlist::GateFunc::kNand, 7).has_value());
  EXPECT_EQ(lib().max_arity(), 4u);
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

constexpr const char* kTinyLib = R"(
library (tiny) {
  /* comment */
  time_unit : "1ps";
  lu_table_template (lut2x2) {
    variable_1 : input_net_transition;
    variable_2 : total_output_net_capacitance;
    index_1("10, 20");
    index_2("1, 2");
  }
  cell (INV_X1) {
    area : 1.3;
    pin (A) { direction : input; capacitance : 1.8; }
    pin (ZN) {
      direction : output;
      function : "!A";
      max_capacitance : 40;
      timing () {
        related_pin : "A";
        cell_rise (lut2x2) { values("1, 2", "3, 4"); }
        cell_fall (lut2x2) { values("0.9, 1.8", "2.7, 3.6"); }
        rise_transition (lut2x2) { values("2, 4", "6, 8"); }
        fall_transition (lut2x2) { values("1, 3", "5, 7"); }
      }
    }
  }
}
)";

TEST(Parser, TinyLibrary) {
  auto lib = parse_library(kTinyLib);
  ASSERT_TRUE(lib.ok()) << lib.status().message();
  EXPECT_EQ(lib->name(), "tiny");
  ASSERT_EQ(lib->cells().size(), 1u);
  const Cell& inv = lib->cell(0);
  EXPECT_DOUBLE_EQ(inv.area_um2, 1.3);
  EXPECT_DOUBLE_EQ(inv.drive, 1.0);
  EXPECT_DOUBLE_EQ(inv.input_cap_ff(0), 1.8);
  // Template indices flow into the tables.
  EXPECT_DOUBLE_EQ(inv.arc_from(0).cell_rise.lookup(10, 1), 1.0);
  EXPECT_DOUBLE_EQ(inv.arc_from(0).cell_rise.lookup(20, 2), 4.0);
  // delay() is the worse of rise/fall.
  EXPECT_DOUBLE_EQ(inv.arc_from(0).delay(10, 1), 1.0);
}

TEST(Parser, InlineIndicesOverrideTemplate) {
  constexpr const char* text = R"(
library (t) {
  lu_table_template (tpl) { index_1("1, 2"); index_2("1, 2"); }
  cell (BUF_X1) {
    area : 1;
    pin (A) { direction : input; capacitance : 1; }
    pin (Z) {
      direction : output;
      function : "A";
      timing () {
        related_pin : "A";
        cell_rise (tpl) { index_1("100, 200"); index_2("10, 20"); values("1, 2", "3, 4"); }
        cell_fall (tpl) { index_1("100, 200"); index_2("10, 20"); values("1, 2", "3, 4"); }
      }
    }
  }
}
)";
  auto lib = parse_library(text);
  ASSERT_TRUE(lib.ok()) << lib.status().message();
  EXPECT_DOUBLE_EQ(lib->cell(0).arc_from(0).cell_rise.lookup(100, 10), 1.0);
}

TEST(Parser, ErrorsAreDescriptive) {
  EXPECT_FALSE(parse_library("not_a_library (x) { }").ok());
  EXPECT_FALSE(parse_library("library (x) { cell () { } }").ok());
  const auto missing_arc = parse_library(R"(
library (x) {
  cell (INV_X1) {
    area : 1;
    pin (A) { direction : input; capacitance : 1; }
    pin (ZN) { direction : output; function : "!A"; }
  }
}
)");
  ASSERT_FALSE(missing_arc.ok());
  EXPECT_NE(missing_arc.status().message().find("timing arc"), std::string::npos);
}

TEST(Parser, UnterminatedGroupFails) {
  EXPECT_FALSE(parse_library("library (x) { cell (C) { area : 1; ").ok());
}

TEST(Parser, NumberList) {
  auto xs = parse_number_list(" 1.5, 2 , 3e1 ");
  ASSERT_TRUE(xs.ok());
  ASSERT_EQ(xs->size(), 3u);
  EXPECT_DOUBLE_EQ((*xs)[2], 30.0);
  EXPECT_FALSE(parse_number_list("1, banana").ok());
  EXPECT_TRUE(parse_number_list("").ok());
}

TEST(Parser, DuplicateCellNameRejected) {
  constexpr const char* text = R"(
library (t) {
  cell (INV_X1) {
    area : 1;
    pin (A) { direction : input; capacitance : 1; }
    pin (ZN) { direction : output; function : "!A";
      timing () { related_pin : "A"; cell_rise (s) { values("1"); } cell_fall (s) { values("1"); } }
    }
  }
  cell (INV_X1) {
    area : 2;
    pin (A) { direction : input; capacitance : 1; }
    pin (ZN) { direction : output; function : "!A";
      timing () { related_pin : "A"; cell_rise (s) { values("1"); } cell_fall (s) { values("1"); } }
    }
  }
}
)";
  // Note: "s" is not a declared template; use scalar-style values instead.
  const auto lib = parse_library(text);
  EXPECT_FALSE(lib.ok());
}

// ---------------------------------------------------------------------------
// writer round trip
// ---------------------------------------------------------------------------

TEST(Writer, SyntheticLibraryRoundTrips) {
  const Library original = build_synthetic_90nm();
  const std::string text = write_library(original);
  auto reparsed = parse_library(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();

  ASSERT_EQ(reparsed->cells().size(), original.cells().size());
  for (std::size_t i = 0; i < original.cells().size(); ++i) {
    const Cell& a = original.cell(i);
    const Cell& b = reparsed->cell(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_NEAR(a.area_um2, b.area_um2, 1e-6);
    EXPECT_DOUBLE_EQ(a.drive, b.drive);
    ASSERT_EQ(a.pins.size(), b.pins.size());
    // Spot-check timing fidelity on a grid of query points.
    for (std::size_t p = 0; p < a.arity(); ++p) {
      for (double slew : {10.0, 77.0}) {
        for (double load : {2.0, 19.0}) {
          EXPECT_NEAR(a.arc_from(p).delay(slew, load), b.arc_from(p).delay(slew, load),
                      1e-4)
              << a.name;
        }
      }
    }
  }
  EXPECT_EQ(reparsed->groups().size(), original.groups().size());
}

}  // namespace
}  // namespace statsizer::liberty
