// Parallel Monte-Carlo SSTA: the sharded engine must be bitwise-identical to
// the serial one for any thread count (counter-based per-sample RNG streams),
// and its moments must track analytic expectations on a max-free circuit.
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "liberty/synthetic.h"
#include "ssta/monte_carlo.h"
#include "techmap/mapper.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace statsizer::ssta {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n, variation::VariationParams vp = {}) : nl(std::move(n)), var(vp) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
  }
};

Netlist inverter_chain(unsigned length) {
  Netlist nl("chain");
  GateId prev = nl.add_input("a");
  for (unsigned i = 0; i < length; ++i) prev = nl.add_gate(netlist::GateFunc::kInv, {prev});
  nl.add_output("y", prev);
  return nl;
}

TEST(MonteCarloParallel, BitwiseIdenticalAcrossThreadCounts) {
  Bench b(circuits::make_cla_adder(8));
  MonteCarloOptions serial;
  serial.samples = 3000;
  serial.seed = 99;
  serial.threads = 1;
  serial.per_node_stats = true;
  const auto ref = run_monte_carlo(*b.ctx, serial);

  for (const std::size_t threads : {2u, 3u, 4u, 8u, 0u}) {
    MonteCarloOptions opt = serial;
    opt.threads = threads;
    const auto r = run_monte_carlo(*b.ctx, opt);
    EXPECT_EQ(r.circuit_samples, ref.circuit_samples) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.mean_ps, ref.mean_ps) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.sigma_ps, ref.sigma_ps) << "threads=" << threads;
    ASSERT_EQ(r.node.size(), ref.node.size());
    for (std::size_t i = 0; i < ref.node.size(); ++i) {
      EXPECT_DOUBLE_EQ(r.node[i].mean_ps, ref.node[i].mean_ps) << "node " << i;
      EXPECT_DOUBLE_EQ(r.node[i].sigma_ps, ref.node[i].sigma_ps) << "node " << i;
    }
  }
}

TEST(MonteCarloParallel, ThreadSweepMatchesAnalyticChainMoments) {
  // An inverter chain has no max: circuit delay = sum of independent arc
  // delays, so mean = sum of nominals and var = sum of arc variances. Mild
  // variation keeps the sampling truncation (delay >= 5% of nominal) a
  // > 4-sigma tail event, so the analytic Gaussian moments apply.
  variation::VariationParams vp;
  vp.proportional_coeff = 0.15;
  Bench b(inverter_chain(20), vp);
  double mean = 0.0;
  double var = 0.0;
  for (const GateId id : b.ctx->topo_order()) {
    if (!b.ctx->has_cell(id)) continue;
    mean += b.ctx->arc_delay_ps(id, 0);
    var += b.ctx->arc_sigma_ps(id, 0) * b.ctx->arc_sigma_ps(id, 0);
  }
  const double sigma = std::sqrt(var);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    MonteCarloOptions opt;
    opt.samples = 20000;
    opt.seed = 7;
    opt.threads = threads;
    const auto r = run_monte_carlo(*b.ctx, opt);
    // 3-sigma statistical tolerance on the mean estimator plus 1% headroom
    // for the truncation bias.
    const double mean_tol = 3.0 * sigma / std::sqrt(double(opt.samples)) + 0.01 * mean;
    EXPECT_NEAR(r.mean_ps, mean, mean_tol) << "threads=" << threads;
    EXPECT_NEAR(r.sigma_ps, sigma, 0.05 * sigma) << "threads=" << threads;
  }
}

TEST(MonteCarloParallel, SeedChangesSamples) {
  Bench b(inverter_chain(5));
  MonteCarloOptions a;
  a.samples = 200;
  a.seed = 1;
  a.threads = 4;
  MonteCarloOptions c = a;
  c.seed = 2;
  const auto ra = run_monte_carlo(*b.ctx, a);
  const auto rc = run_monte_carlo(*b.ctx, c);
  EXPECT_NE(ra.circuit_samples, rc.circuit_samples);
}

TEST(MonteCarloParallel, ZeroSamples) {
  Bench b(inverter_chain(3));
  MonteCarloOptions opt;
  opt.samples = 0;
  opt.threads = 4;
  const auto r = run_monte_carlo(*b.ctx, opt);
  EXPECT_EQ(r.circuit_samples.size(), 0u);
  EXPECT_EQ(r.mean_ps, 0.0);
  EXPECT_EQ(r.sigma_ps, 0.0);
}

// ---------------------------------------------------------------------------
// The underlying primitives.
// ---------------------------------------------------------------------------

TEST(StreamSeed, IndependentOfOrderAndDistinct) {
  EXPECT_EQ(util::stream_seed(42, 7), util::stream_seed(42, 7));
  EXPECT_NE(util::stream_seed(42, 7), util::stream_seed(42, 8));
  EXPECT_NE(util::stream_seed(42, 7), util::stream_seed(43, 7));
  // Consecutive indices must not produce correlated low bits.
  EXPECT_NE(util::stream_seed(1, 0) & 0xffff, util::stream_seed(1, 1) & 0xffff);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  util::parallel_for(hits.size(), 7, 4, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ChunkGeometryIndependentOfThreads) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges(
        util::detail::chunk_count(100, 16));
    util::parallel_for(100, 16, threads,
                       [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                         ranges[chunk] = {begin, end};
                       });
    ASSERT_EQ(ranges.size(), 7u);
    for (std::size_t c = 0; c < ranges.size(); ++c) {
      EXPECT_EQ(ranges[c].first, c * 16);
      EXPECT_EQ(ranges[c].second, std::min<std::size_t>(100, c * 16 + 16));
    }
  }
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  // A body that itself calls parallel_for must not deadlock the shared pool;
  // the inner region detects it is on a pool worker and runs inline.
  std::atomic<int> count{0};
  util::parallel_for(8, 1, 4, [&](std::size_t, std::size_t, std::size_t) {
    util::parallel_for(16, 4, 4,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         count.fetch_add(int(end - begin));
                       });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ParallelFor, SharedPoolSurvivesRepeatedRegions) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    util::parallel_for(100, 10, 4, [&](std::size_t begin, std::size_t end, std::size_t) {
      count.fetch_add(int(end - begin));
    });
    ASSERT_EQ(count.load(), 100) << "round " << round;
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      util::parallel_for(64, 4, 4,
                         [&](std::size_t begin, std::size_t, std::size_t) {
                           if (begin == 32) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

// Regression: the throwing chunk must land on a *pool worker* (the plain
// test above can be satisfied by the calling thread draining every chunk).
// An uncaught exception on a worker would std::terminate; the contract is
// capture-and-rethrow on the calling thread. The caller's chunks spin until
// a worker has taken the poisoned chunk, so the throw provably happens on a
// worker thread.
TEST(ParallelFor, PropagatesExceptionsFromWorkerThreads) {
  std::atomic<bool> worker_threw{false};
  try {
    util::parallel_for(64, 4, 4, [&](std::size_t, std::size_t, std::size_t) {
      if (util::ThreadPool::in_worker()) {
        // First worker-executed chunk throws, whichever chunk that is.
        if (!worker_threw.exchange(true)) throw std::runtime_error("boom on worker");
        return;
      }
      // Calling thread: wait until the worker-side throw happened (bounded,
      // so a regression fails the assertion instead of hanging the suite).
      for (int spin = 0; spin < 10'000 && !worker_threw.load(); ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
    FAIL() << "parallel_for swallowed the worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom on worker");
  }
  EXPECT_TRUE(worker_threw.load());
}

TEST(ThreadPool, RunsSubmittedTasks) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace statsizer::ssta
