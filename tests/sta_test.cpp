#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "liberty/synthetic.h"
#include "sta/dsta.h"
#include "sta/graph.h"
#include "techmap/mapper.h"
#include "variation/model.h"

namespace statsizer::sta {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Fixture {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;

  explicit Fixture(Netlist n) : nl(std::move(n)) {
    const Status s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
  }
};

TEST(TimingContext, LoadsAreConsumerPinCapsPlusPoLoad) {
  Fixture f(circuits::make_ripple_adder(4));
  TimingOptions opts;
  opts.primary_output_load_ff = 5.0;
  TimingContext ctx(f.nl, f.lib, f.var, opts);

  for (GateId id = 0; id < f.nl.node_count(); ++id) {
    double expect = opts.primary_output_load_ff * f.nl.gate(id).po_count;
    for (const GateId consumer : f.nl.gate(id).fanouts) {
      const auto& cg = f.nl.gate(consumer);
      const liberty::Cell& cell = f.lib.cell_for(cg.cell_group, cg.size_index);
      for (std::size_t i = 0; i < cg.fanins.size(); ++i) {
        if (cg.fanins[i] == id) expect += cell.input_cap_ff(i);
      }
    }
    EXPECT_NEAR(ctx.load_ff(id), expect, 1e-9) << f.nl.gate(id).name;
  }
}

TEST(TimingContext, AreaIsSumOfCellAreas) {
  Fixture f(circuits::make_cla_adder(8));
  TimingContext ctx(f.nl, f.lib, f.var);
  double expect = 0.0;
  for (GateId id = 0; id < f.nl.node_count(); ++id) {
    if (ctx.has_cell(id)) expect += ctx.cell(id).area_um2;
  }
  EXPECT_NEAR(ctx.area_um2(), expect, 1e-9);
}

TEST(TimingContext, ResizeChangesLoadOfDrivers) {
  Fixture f(circuits::make_ripple_adder(4));
  TimingContext ctx(f.nl, f.lib, f.var);
  // Find a gate with a logic-gate driver.
  for (GateId id = 0; id < f.nl.node_count(); ++id) {
    if (!ctx.has_cell(id)) continue;
    for (const GateId d : f.nl.gate(id).fanins) {
      if (!ctx.has_cell(d)) continue;
      const double before = ctx.load_ff(d);
      const auto& group = f.lib.group(f.nl.gate(id).cell_group);
      const liberty::Cell& big = f.lib.cell_for(f.nl.gate(id).cell_group,
                                                static_cast<std::uint16_t>(group.size_count() - 1));
      const double what_if = ctx.load_ff_with_resize(d, id, big);
      EXPECT_GT(what_if, before);
      // Committing the resize matches the what-if value.
      f.nl.gate(id).size_index = static_cast<std::uint16_t>(group.size_count() - 1);
      ctx.update();
      EXPECT_NEAR(ctx.load_ff(d), what_if, 1e-9);
      return;
    }
  }
  FAIL() << "no gate-driven gate found";
}

TEST(TimingContext, SlewsPropagate) {
  Fixture f(circuits::make_ripple_adder(8));
  TimingOptions opts;
  opts.primary_input_slew_ps = 20.0;
  TimingContext ctx(f.nl, f.lib, f.var, opts);
  for (const GateId id : f.nl.inputs()) {
    EXPECT_DOUBLE_EQ(ctx.slew_ps(id), 20.0);
  }
  // Gates have non-trivial output slews.
  for (GateId id = 0; id < f.nl.node_count(); ++id) {
    if (ctx.has_cell(id)) EXPECT_GT(ctx.slew_ps(id), 0.0);
  }
}

TEST(TimingContext, SigmasFollowVariationModel) {
  Fixture f(circuits::make_ripple_adder(4));
  TimingContext ctx(f.nl, f.lib, f.var);
  for (GateId id = 0; id < f.nl.node_count(); ++id) {
    if (!ctx.has_cell(id)) continue;
    for (std::size_t i = 0; i < f.nl.gate(id).fanins.size(); ++i) {
      EXPECT_NEAR(ctx.arc_sigma_ps(id, i),
                  f.var.sigma_ps(ctx.arc_delay_ps(id, i), ctx.drive(id)), 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// deterministic STA
// ---------------------------------------------------------------------------

TEST(Dsta, ChainArrivalIsSumOfDelays) {
  Netlist nl("chain");
  GateId prev = nl.add_input("a");
  for (int i = 0; i < 5; ++i) prev = nl.add_gate(netlist::GateFunc::kInv, {prev});
  nl.add_output("y", prev);
  Fixture f(std::move(nl));
  TimingContext ctx(f.nl, f.lib, f.var);

  const DstaResult r = run_dsta(ctx);
  double sum = 0.0;
  for (const GateId id : ctx.topo_order()) {
    if (ctx.has_cell(id)) sum += ctx.arc_delay_ps(id, 0);
  }
  EXPECT_NEAR(r.max_arrival_ps, sum, 1e-9);
  // The critical path covers the whole chain: PI + 5 inverters.
  EXPECT_EQ(r.critical_path.size(), 6u);
}

TEST(Dsta, ArrivalIsMaxOverFanins) {
  Fixture f(circuits::make_cla_adder(8));
  TimingContext ctx(f.nl, f.lib, f.var);
  const DstaResult r = run_dsta(ctx);
  for (GateId id = 0; id < f.nl.node_count(); ++id) {
    const auto& g = f.nl.gate(id);
    if (g.fanins.empty()) continue;
    double expect = 0.0;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      expect = std::max(expect, r.arrival_ps[g.fanins[i]] + ctx.arc_delay_ps(id, i));
    }
    EXPECT_NEAR(r.arrival_ps[id], expect, 1e-9);
  }
}

TEST(Dsta, SlackConsistency) {
  Fixture f(circuits::make_cla_adder(8));
  TimingContext ctx(f.nl, f.lib, f.var);
  const DstaResult r = run_dsta(ctx);
  // Normalized required times: zero worst slack; no positive arrival beyond
  // required on the critical path.
  EXPECT_NEAR(r.wns_ps, 0.0, 1e-9);
  for (const GateId id : r.critical_path) {
    EXPECT_NEAR(r.slack_ps[id], 0.0, 1e-9);
  }
  // With a generous clock, everything has positive slack.
  const DstaResult relaxed = run_dsta(ctx, r.max_arrival_ps + 100.0);
  EXPECT_NEAR(relaxed.wns_ps, 100.0, 1e-9);
}

TEST(Dsta, CriticalPathIsConnected) {
  Fixture f(circuits::make_cla_adder(16));
  TimingContext ctx(f.nl, f.lib, f.var);
  const DstaResult r = run_dsta(ctx);
  ASSERT_GE(r.critical_path.size(), 2u);
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    const auto& fanins = f.nl.gate(r.critical_path[i]).fanins;
    EXPECT_NE(std::find(fanins.begin(), fanins.end(), r.critical_path[i - 1]),
              fanins.end());
  }
  // Starts at a PI, ends at the critical output.
  EXPECT_TRUE(f.nl.is_input(r.critical_path.front()));
  EXPECT_EQ(r.critical_path.back(), r.critical_output);
}

TEST(Dsta, UpsizingCriticalGateReducesDelayOfItsStage) {
  Fixture f(circuits::make_ripple_adder(8));
  TimingContext ctx(f.nl, f.lib, f.var);
  const DstaResult before = run_dsta(ctx);
  // Upsize the middle gate of the critical path.
  const GateId mid = before.critical_path[before.critical_path.size() / 2];
  ASSERT_TRUE(ctx.has_cell(mid));
  const double delay_before = ctx.gate_delay_ps(mid);
  f.nl.gate(mid).size_index = 3;
  ctx.update();
  EXPECT_LT(ctx.gate_delay_ps(mid), delay_before);
}

}  // namespace
}  // namespace statsizer::sta
