#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "liberty/synthetic.h"
#include "netlist/sim.h"
#include "netlist/topo.h"
#include "techmap/mapper.h"

namespace statsizer::techmap {
namespace {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

const liberty::Library& lib() {
  static const liberty::Library instance = liberty::build_synthetic_90nm();
  return instance;
}

TEST(Techmap, SimpleNetlistMapsDirectly) {
  auto nl = circuits::make_cla_adder(8);
  ASSERT_TRUE(map_to_library(nl, lib()).ok());
  EXPECT_TRUE(is_mapped(nl, lib()));
}

TEST(Techmap, WideGatesDecomposed) {
  Netlist nl;
  std::vector<GateId> ins;
  for (int i = 0; i < 11; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const GateId wide = nl.add_gate(GateFunc::kAnd, ins, "wide");
  nl.add_output("y", wide);

  Netlist original = nl;  // copy for equivalence check
  ASSERT_TRUE(map_to_library(nl, lib()).ok());
  EXPECT_TRUE(is_mapped(nl, lib()));
  for (GateId id = 0; id < nl.node_count(); ++id) {
    EXPECT_LE(nl.gate(id).fanins.size(), 4u);
  }
  EXPECT_TRUE(netlist::probably_equivalent(original, nl, 42));
}

class WideFunctionTest : public ::testing::TestWithParam<std::tuple<GateFunc, int>> {};

TEST_P(WideFunctionTest, DecompositionPreservesLogic) {
  const auto [func, width] = GetParam();
  Netlist nl;
  std::vector<GateId> ins;
  for (int i = 0; i < width; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.add_output("y", nl.add_gate(func, ins, "wide"));

  Netlist original = nl;
  ASSERT_TRUE(map_to_library(nl, lib()).ok())
      << netlist::func_name(func) << " width " << width;
  EXPECT_TRUE(is_mapped(nl, lib()));
  EXPECT_TRUE(netlist::probably_equivalent(original, nl, 7))
      << netlist::func_name(func) << " width " << width;
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctionsAndWidths, WideFunctionTest,
    ::testing::Combine(::testing::Values(GateFunc::kAnd, GateFunc::kNand, GateFunc::kOr,
                                         GateFunc::kNor, GateFunc::kXor, GateFunc::kXnor),
                       ::testing::Values(2, 3, 4, 5, 7, 9, 16, 23)),
    [](const auto& info) {
      return std::string(netlist::func_name(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Techmap, PoReferencesSurviveDecomposition) {
  Netlist nl;
  std::vector<GateId> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const GateId wide = nl.add_gate(GateFunc::kNor, ins, "wide");
  nl.add_output("y", wide);
  nl.add_output("y2", wide);
  ASSERT_TRUE(map_to_library(nl, lib()).ok());
  // The original gate id still drives both POs.
  EXPECT_EQ(nl.outputs()[0].driver, wide);
  EXPECT_EQ(nl.outputs()[1].driver, wide);
  EXPECT_EQ(nl.gate(wide).po_count, 2u);
}

TEST(Techmap, InitialSizeSeeding) {
  auto nl1 = circuits::make_ripple_adder(4);
  MapOptions smallest;
  smallest.initial_size = InitialSize::kSmallest;
  ASSERT_TRUE(map_to_library(nl1, lib(), smallest).ok());
  for (GateId id = 0; id < nl1.node_count(); ++id) {
    if (!nl1.is_input(id)) EXPECT_EQ(nl1.gate(id).size_index, 0);
  }

  auto nl2 = circuits::make_ripple_adder(4);
  MapOptions middle;
  middle.initial_size = InitialSize::kMiddle;
  ASSERT_TRUE(map_to_library(nl2, lib(), middle).ok());
  bool any_nonzero = false;
  for (GateId id = 0; id < nl2.node_count(); ++id) {
    if (!nl2.is_input(id) && nl2.gate(id).size_index > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Techmap, AllGeneratorsMap) {
  const auto check = [](Netlist nl) {
    Netlist original = nl;
    ASSERT_TRUE(map_to_library(nl, lib()).ok()) << nl.name();
    EXPECT_TRUE(is_mapped(nl, lib())) << nl.name();
    EXPECT_TRUE(nl.check().ok()) << nl.name();
    EXPECT_TRUE(netlist::probably_equivalent(original, nl, 5)) << nl.name();
  };
  check(circuits::make_ripple_adder(16));
  check(circuits::make_cla_adder(16));
  check(circuits::make_array_multiplier(6, false));
  check(circuits::make_hamming_sec(16));
  check(circuits::make_interrupt_controller(18, 3));
  circuits::AluOptions alu;
  alu.bits = 8;
  check(circuits::make_alu(alu));
}

TEST(Techmap, RandomDagsMapAndStayEquivalent) {
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    circuits::RandomDagOptions opt;
    opt.seed = seed;
    opt.n_gates = 120;
    opt.max_arity = 6;  // forces some decomposition
    Netlist nl = circuits::make_random_dag(opt);
    Netlist original = nl;
    ASSERT_TRUE(map_to_library(nl, lib()).ok()) << "seed " << seed;
    EXPECT_TRUE(is_mapped(nl, lib())) << "seed " << seed;
    EXPECT_TRUE(netlist::probably_equivalent(original, nl, seed)) << "seed " << seed;
  }
}

TEST(Techmap, IsMappedDetectsUnmapped) {
  auto nl = circuits::make_ripple_adder(4);
  EXPECT_FALSE(is_mapped(nl, lib()));
}

}  // namespace
}  // namespace statsizer::techmap
