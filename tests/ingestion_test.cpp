// Ingestion-layer tests: structural-Verilog and SDC readers, writer
// round-trip properties over every generator workload, the malformed-input
// corpus, and the scaled 10k+-gate fabrics running the full flow
// (ingest -> STA -> statistical sizing -> write-back).
//
// Round-trip contract: the exchange formats are lossless on the *named
// structure* — gate names, functions, fanin name lists, PI/PO name order,
// and (for Verilog, which carries cell bindings) cell_group/size_index.
// GateId numbering is NOT preserved (readers number inputs first), so the
// comparison matches gates by name, not by id.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_format/bench_reader.h"
#include "bench_format/bench_writer.h"
#include "bench_format/sdc_reader.h"
#include "bench_format/verilog_reader.h"
#include "bench_format/verilog_writer.h"
#include "circuits/iscas_suite.h"
#include "core/flow.h"
#include "netlist/sim.h"
#include "netlist/topo.h"
#include "ssta/fullssta.h"
#include "sta/dsta.h"
#include "techmap/mapper.h"

namespace statsizer {
namespace {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

std::filesystem::path corpus_dir() {
  return std::filesystem::path(STATSIZER_SOURCE_DIR) / "tests" / "corpus";
}

/// Named-structure equality (see file comment). @p check_cells compares the
/// cell bindings too — on for Verilog (the format carries sizes), off for
/// .bench (which does not).
::testing::AssertionResult same_named_structure(const Netlist& a, const Netlist& b,
                                                bool check_cells) {
  if (a.name() != b.name())
    return ::testing::AssertionFailure() << "names differ: " << a.name() << " vs " << b.name();
  if (a.node_count() != b.node_count())
    return ::testing::AssertionFailure()
           << "node counts differ: " << a.node_count() << " vs " << b.node_count();
  if (a.inputs().size() != b.inputs().size())
    return ::testing::AssertionFailure() << "input counts differ";
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    if (a.gate(a.inputs()[i]).name != b.gate(b.inputs()[i]).name)
      return ::testing::AssertionFailure() << "input " << i << " name/order differs";
  }
  if (a.outputs().size() != b.outputs().size())
    return ::testing::AssertionFailure() << "output counts differ";
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    if (a.outputs()[i].name != b.outputs()[i].name)
      return ::testing::AssertionFailure() << "output " << i << " name differs";
    if (a.gate(a.outputs()[i].driver).name != b.gate(b.outputs()[i].driver).name)
      return ::testing::AssertionFailure()
             << "output '" << a.outputs()[i].name << "' driver differs";
  }
  for (GateId id = 0; id < a.node_count(); ++id) {
    const auto& g = a.gate(id);
    const GateId bid = b.find(g.name);
    if (bid == netlist::kNoGate)
      return ::testing::AssertionFailure() << "gate '" << g.name << "' missing";
    const auto& h = b.gate(bid);
    if (g.func != h.func)
      return ::testing::AssertionFailure() << "gate '" << g.name << "': func differs";
    if (check_cells && (g.cell_group != h.cell_group || g.size_index != h.size_index))
      return ::testing::AssertionFailure() << "gate '" << g.name << "': cell binding differs";
    if (g.fanins.size() != h.fanins.size())
      return ::testing::AssertionFailure() << "gate '" << g.name << "': fanin count differs";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (a.gate(g.fanins[i]).name != b.gate(h.fanins[i]).name)
        return ::testing::AssertionFailure() << "gate '" << g.name << "': fanin " << i
                                             << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Deterministically scrambles every mapped gate's drive strength so a size
/// round-trip is non-trivial (freshly mapped netlists are mostly one size).
void scramble_sizes(core::Flow& flow) {
  auto& nl = flow.timing().mutable_netlist();
  for (GateId id = 0; id < nl.node_count(); ++id) {
    auto& g = nl.gate(id);
    if (g.cell_group == netlist::kUnmapped) continue;
    const auto& group = flow.library().group(g.cell_group);
    g.size_index = static_cast<std::uint16_t>(id % group.size_count());
  }
}

std::vector<std::string> all_workload_names() {
  std::vector<std::string> names = circuits::table1_names();
  const auto& scaled = circuits::scaled_workload_names();
  names.insert(names.end(), scaled.begin(), scaled.end());
  return names;
}

// ---------------------------------------------------------------------------
// Verilog round trip: bitwise named structure including cell sizes
// ---------------------------------------------------------------------------

class VerilogRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(VerilogRoundTripTest, NamedStructureWithSizesIsLossless) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1(GetParam()).ok());
  scramble_sizes(flow);
  const Netlist& nl = flow.netlist();

  const auto text = bench_format::write_verilog(nl, flow.library());
  ASSERT_TRUE(text.ok()) << text.status().message();
  const auto back = bench_format::read_verilog(*text, flow.library());
  ASSERT_TRUE(back.ok()) << back.status().message();

  EXPECT_TRUE(same_named_structure(nl, *back, /*check_cells=*/true));
  EXPECT_TRUE(techmap::is_mapped(*back, flow.library()));
  // Logic equivalence on the small circuits (simulation on the 48k-gate
  // fabrics adds nothing once the structure matched gate-for-gate).
  if (nl.logic_gate_count() < 5000) {
    EXPECT_TRUE(netlist::probably_equivalent(nl, *back, /*seed=*/7));
  }
  // The first trip normalizes GateId numbering (the reader numbers inputs
  // first); from there on write∘read is a byte-for-byte textual fixpoint.
  const auto text2 = bench_format::write_verilog(*back, flow.library());
  ASSERT_TRUE(text2.ok());
  const auto back2 = bench_format::read_verilog(*text2, flow.library());
  ASSERT_TRUE(back2.ok()) << back2.status().message();
  const auto text3 = bench_format::write_verilog(*back2, flow.library());
  ASSERT_TRUE(text3.ok());
  EXPECT_EQ(*text2, *text3);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, VerilogRoundTripTest,
                         ::testing::ValuesIn(all_workload_names()),
                         [](const auto& info) { return info.param; });

TEST(VerilogRoundTrip, AdversarialNamesSurviveEscaping) {
  // Names .bench/Verilog cannot spell plainly: bus bits, keywords, leading
  // digits, '$', and port-keyword prefixes (the historical .bench misparse).
  Netlist nl("top");
  const GateId a = nl.add_input("a[0]");
  const GateId b = nl.add_input("2fast");
  const GateId c = nl.add_input("module");
  const GateId t1 = nl.add_gate(GateFunc::kNand, {a, b}, "INPUT_REG_3");
  const GateId t2 = nl.add_gate(GateFunc::kNor, {t1, c}, "n$odd");
  const GateId t3 = nl.add_gate(GateFunc::kInv, {t2}, "assign");
  nl.add_output("OUTPUT_BUS[1]", t3);
  nl.add_output("wire", t2);
  ASSERT_TRUE(nl.check().ok());

  core::Flow flow;
  ASSERT_TRUE(flow.load_circuit(std::move(nl)).ok());
  const auto text = bench_format::write_verilog(flow.netlist(), flow.library());
  ASSERT_TRUE(text.ok()) << text.status().message();
  const auto back = bench_format::read_verilog(*text, flow.library());
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(same_named_structure(flow.netlist(), *back, /*check_cells=*/true));
}

TEST(VerilogRoundTrip, SizedWriteBackPreservesEveryDriveStrength) {
  // The point of the Verilog pair: a *sized* netlist written to disk and read
  // back carries the optimizer's decisions, gate for gate.
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c880").ok());
  scramble_sizes(flow);
  const std::string path = ::testing::TempDir() + "/c880_sized.v";
  ASSERT_TRUE(flow.write_verilog_file(path).ok());

  core::Flow flow2;
  ASSERT_TRUE(flow2.load_verilog_file(path).ok());
  EXPECT_TRUE(same_named_structure(flow.netlist(), flow2.netlist(), /*check_cells=*/true));
}

// ---------------------------------------------------------------------------
// .bench round trip: the format drops cell bindings and expands MUX/AOI/OAI,
// so the property is equivalence + fixpoint, and strict named-structure
// equality whenever the circuit stays inside the primitive .bench subset.
// ---------------------------------------------------------------------------

bool in_bench_subset(const Netlist& nl) {
  for (GateId id = 0; id < nl.node_count(); ++id) {
    switch (nl.gate(id).func) {
      case GateFunc::kMux2:
      case GateFunc::kAoi21:
      case GateFunc::kOai21:
      case GateFunc::kConst0:
      case GateFunc::kConst1:
        return false;
      default:
        break;
    }
  }
  // The .bench writer aliases a PO whose name differs from its driving net
  // through an inserted BUFF, which also leaves the subset.
  for (const auto& out : nl.outputs()) {
    if (nl.gate(out.driver).name != out.name) return false;
  }
  return true;
}

class BenchRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchRoundTripTest, WriteReadReproducesEveryGenerator) {
  const Netlist nl = circuits::make_table1_circuit(GetParam());
  const auto trip1 = bench_format::read_bench(bench_format::write_bench(nl), nl.name());
  ASSERT_TRUE(trip1.ok()) << trip1.status().message();

  if (in_bench_subset(nl)) {
    // Primitive circuits reproduce bitwise on the first trip.
    EXPECT_TRUE(same_named_structure(nl, *trip1, /*check_cells=*/false));
  } else if (nl.logic_gate_count() < 5000) {
    EXPECT_TRUE(netlist::probably_equivalent(nl, *trip1, /*seed=*/11));
  }
  // Expansion happens at most once: the first trip's image is a fixpoint.
  const auto trip2 = bench_format::read_bench(bench_format::write_bench(*trip1), nl.name());
  ASSERT_TRUE(trip2.ok()) << trip2.status().message();
  EXPECT_TRUE(same_named_structure(*trip1, *trip2, /*check_cells=*/false));
  EXPECT_EQ(bench_format::write_bench(*trip1), bench_format::write_bench(*trip2));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BenchRoundTripTest,
                         ::testing::ValuesIn(all_workload_names()),
                         [](const auto& info) { return info.param; });

TEST(BenchRoundTrip, PortPrefixedNamesSurvive) {
  // Regression companion to the reader's port-prefix fix: signals named
  // INPUT_*/OUTPUT_* must write and read back as ordinary gates.
  Netlist nl("prefix");
  const GateId a = nl.add_input("INPUT_A");
  const GateId b = nl.add_input("OUTPUT_B");
  const GateId t = nl.add_gate(GateFunc::kAnd, {a, b}, "INPUT_REG_3");
  nl.add_output("INPUT_REG_3", t);
  ASSERT_TRUE(nl.check().ok());
  const auto back = bench_format::read_bench(bench_format::write_bench(nl), "prefix");
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(same_named_structure(nl, *back, /*check_cells=*/false));
}

// ---------------------------------------------------------------------------
// SDC: parsing and application
// ---------------------------------------------------------------------------

TEST(Sdc, ParsesTheSupportedSubset) {
  const auto sdc = bench_format::read_sdc(
      "# layered constraints\n"
      "create_clock -period 800 -name clk [get_ports clock]\n"
      "set_input_delay -clock clk 60 [all_inputs]\n"
      "set_input_delay -clock clk 120.5 [get_ports {a b[3]}]\n"
      "set_output_delay -clock clk 50 [get_ports y]\n");
  ASSERT_TRUE(sdc.ok()) << sdc.status().message();
  ASSERT_TRUE(sdc->clock_period_ps.has_value());
  EXPECT_EQ(*sdc->clock_period_ps, 800.0);
  EXPECT_EQ(sdc->clock_name, "clk");
  ASSERT_EQ(sdc->input_delays.size(), 2u);
  EXPECT_TRUE(sdc->input_delays[0].all_ports);
  EXPECT_EQ(sdc->input_delays[0].delay_ps, 60.0);
  EXPECT_FALSE(sdc->input_delays[1].all_ports);
  EXPECT_EQ(sdc->input_delays[1].ports, (std::vector<std::string>{"a", "b[3]"}));
  EXPECT_EQ(sdc->input_delays[1].delay_ps, 120.5);
  ASSERT_EQ(sdc->output_delays.size(), 1u);
  EXPECT_EQ(sdc->output_delays[0].ports, (std::vector<std::string>{"y"}));
}

TEST(Sdc, AppliedConstraintsShapeDstaArrivalAndSlack) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_bench_file((corpus_dir() / "valid_small.bench").string()).ok());
  const double base_arrival = sta::run_dsta(flow.timing()).max_arrival_ps;

  ASSERT_TRUE(flow.apply_sdc("create_clock -period 800 -name clk\n"
                             "set_input_delay -clock clk 60 [all_inputs]\n"
                             "set_output_delay -clock clk 50 [get_ports y]\n")
                  .ok());
  const sta::DstaResult after = sta::run_dsta(flow.timing());
  // Every PI shifted by the same 60 ps, so the critical arrival shifts with
  // them; the single output's slack is period - margin - arrival.
  EXPECT_NEAR(after.max_arrival_ps, base_arrival + 60.0, 1e-9);
  EXPECT_NEAR(after.wns_ps, 800.0 - 50.0 - after.max_arrival_ps, 1e-9);
}

TEST(Sdc, LaterCommandsOverridePerPort) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  const Netlist& nl = flow.netlist();
  const std::string pi0 = nl.gate(nl.inputs()[0]).name;
  ASSERT_TRUE(flow.apply_sdc("set_input_delay 10 [all_inputs]\n"
                             "set_input_delay 500 [get_ports {" + pi0 + "}]\n")
                  .ok());
  const auto& arr = flow.timing().constraints().input_arrival_ps;
  ASSERT_EQ(arr.size(), nl.node_count());
  EXPECT_EQ(arr[nl.inputs()[0]], 500.0);
  EXPECT_EQ(arr[nl.inputs()[1]], 10.0);
}

TEST(Sdc, UnknownPortIsALoudError) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  const Status s = flow.apply_sdc("set_input_delay 60 [get_ports no_such_port]\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no_such_port"), std::string::npos);
}

TEST(Sdc, EmptyConstraintsKeepEnginesBitwiseIdentical) {
  // The constraints hooks must not perturb the unconstrained paths: engines
  // with a default-constructed TimingConstraints produce bit-for-bit the
  // results of the pre-constraints code.
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c880").ok());
  const sta::DstaResult d0 = sta::run_dsta(flow.timing());
  const ssta::FullSstaResult f0 = ssta::run_fullssta(flow.timing());

  flow.timing().set_constraints(sta::TimingConstraints{});
  const sta::DstaResult d1 = sta::run_dsta(flow.timing());
  const ssta::FullSstaResult f1 = ssta::run_fullssta(flow.timing());
  EXPECT_EQ(d0.max_arrival_ps, d1.max_arrival_ps);
  EXPECT_EQ(d0.wns_ps, d1.wns_ps);
  EXPECT_EQ(f0.mean_ps, f1.mean_ps);
  EXPECT_EQ(f0.sigma_ps, f1.sigma_ps);
  ASSERT_EQ(f0.node.size(), f1.node.size());
  for (std::size_t i = 0; i < f0.node.size(); ++i) {
    EXPECT_EQ(f0.node[i].mean_ps, f1.node[i].mean_ps) << "node " << i;
    EXPECT_EQ(f0.node[i].sigma_ps, f1.node[i].sigma_ps) << "node " << i;
  }
}

TEST(Sdc, ConstrainedFullSstaIsThreadCountInvariant) {
  // Input arrivals ride the same wavefront kernels; the bitwise
  // thread-invariance contract must hold with constraints installed.
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("mesh8").ok());
  ASSERT_TRUE(flow.apply_sdc("create_clock -period 20000\n"
                             "set_input_delay 75 [all_inputs]\n")
                  .ok());
  ssta::FullSstaOptions serial;
  serial.threads = 1;
  const ssta::FullSstaResult ref = ssta::run_fullssta(flow.timing(), serial);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ssta::FullSstaOptions opt;
    opt.threads = threads;
    const ssta::FullSstaResult got = ssta::run_fullssta(flow.timing(), opt);
    EXPECT_EQ(ref.mean_ps, got.mean_ps) << threads << " threads";
    EXPECT_EQ(ref.sigma_ps, got.sigma_ps) << threads << " threads";
    ASSERT_EQ(ref.node.size(), got.node.size());
    for (std::size_t i = 0; i < ref.node.size(); ++i) {
      ASSERT_EQ(ref.node[i].mean_ps, got.node[i].mean_ps) << "node " << i;
      ASSERT_EQ(ref.node[i].sigma_ps, got.node[i].sigma_ps) << "node " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Malformed corpus: every committed file must fail loudly — an error Status
// with a message, never a crash or a silent success.
// ---------------------------------------------------------------------------

TEST(MalformedCorpus, EveryFileFailsLoudly) {
  const std::filesystem::path dir = corpus_dir() / "malformed";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    const std::string ext = entry.path().extension().string();
    Status status;
    if (ext == ".bench") {
      status = bench_format::read_bench_file(path).status();
    } else if (ext == ".v") {
      core::Flow flow;
      status = flow.load_verilog_file(path);
    } else if (ext == ".sdc") {
      // SDC errors surface either at parse time or when the constraints are
      // matched against a netlist; both count as loud.
      core::Flow flow;
      ASSERT_TRUE(flow.load_bench_file((corpus_dir() / "valid_small.bench").string()).ok());
      status = flow.apply_sdc_file(path);
    } else {
      FAIL() << "unexpected corpus file " << path;
    }
    EXPECT_FALSE(status.ok()) << path << " parsed without error";
    EXPECT_FALSE(status.message().empty()) << path;
    ++checked;
  }
  EXPECT_GE(checked, 15u) << "malformed corpus went missing";
}

// ---------------------------------------------------------------------------
// Scaled fabrics: shape guarantees and the full flow end-to-end
// ---------------------------------------------------------------------------

struct FabricShape {
  std::string name;
  std::size_t min_gates;
  std::uint32_t min_median_width;
};

std::uint32_t median_level_width(const Netlist& nl) {
  const netlist::Levelization lv = netlist::levelize(nl);
  std::vector<std::uint32_t> widths;
  widths.reserve(lv.level_count());
  for (std::size_t l = 0; l < lv.level_count(); ++l) {
    widths.push_back(static_cast<std::uint32_t>(lv.level(l).size()));
  }
  std::sort(widths.begin(), widths.end());
  return widths[widths.size() / 2];
}

TEST(ScaledFabrics, ShapesMatchTheirBillings) {
  // pipe64 is the deliberate deep/narrow contrast workload (median width
  // below the parallel cutoff); the others must keep their levels wide
  // enough for the wavefront kernels (cutoff: 16).
  const std::vector<FabricShape> shapes = {
      {"mul32", 10000, 16}, {"mul64", 40000, 16}, {"pipe64", 10000, 1}, {"mesh8", 10000, 16}};
  for (const auto& s : shapes) {
    const Netlist nl = circuits::make_table1_circuit(s.name);
    EXPECT_GE(nl.logic_gate_count(), s.min_gates) << s.name;
    EXPECT_GT(median_level_width(nl), s.min_median_width) << s.name;
  }
}

TEST(ScaledFabrics, FullFlowOnTenThousandGateFabric) {
  // ingest -> STA -> statistical sizing -> write-back on mul32 (11.7k
  // gates), with a bounded sizing run; the written netlist must carry the
  // sizer's decisions bit-for-bit.
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("mul32").ok());
  ASSERT_GE(flow.netlist().logic_gate_count(), 10000u);

  const sta::DstaResult dsta = sta::run_dsta(flow.timing());
  EXPECT_GT(dsta.max_arrival_ps, 0.0);
  const opt::CircuitStats before = flow.analyze();
  EXPECT_GT(before.sigma_ps, 0.0);

  opt::StatisticalSizerOptions bounded;
  bounded.objective.lambda = 3.0;
  bounded.max_iterations = 1;
  const core::OptimizationRecord rec = flow.optimize(3.0, &bounded);
  EXPECT_GT(rec.resizes, 0u);

  const std::string path = ::testing::TempDir() + "/mul32_sized.v";
  ASSERT_TRUE(flow.write_verilog_file(path).ok());
  core::Flow reread;
  ASSERT_TRUE(reread.load_verilog_file(path).ok());
  EXPECT_TRUE(same_named_structure(flow.netlist(), reread.netlist(), /*check_cells=*/true));
}

TEST(ScaledFabrics, FullFlowFromVerilogWithSdc) {
  // The new front door end-to-end: a Verilog netlist plus SDC constraints
  // ingested, analyzed, sized, and written back.
  const std::string path = ::testing::TempDir() + "/c880_flow.v";
  {
    core::Flow writer;
    ASSERT_TRUE(writer.load_table1("c880").ok());
    ASSERT_TRUE(writer.write_verilog_file(path).ok());
  }
  core::Flow flow;
  ASSERT_TRUE(flow.load_verilog_file(path).ok());
  ASSERT_TRUE(flow.apply_sdc("create_clock -period 2000 -name clk\n"
                             "set_input_delay -clock clk 40 [all_inputs]\n"
                             "set_output_delay -clock clk 25 [all_outputs]\n")
                  .ok());
  const sta::DstaResult constrained = sta::run_dsta(flow.timing());
  EXPECT_GT(constrained.max_arrival_ps, 40.0);

  opt::StatisticalSizerOptions bounded;
  bounded.objective.lambda = 3.0;
  bounded.max_iterations = 3;
  const core::OptimizationRecord rec = flow.optimize(3.0, &bounded);
  EXPECT_LE(rec.after.sigma_ps, rec.before.sigma_ps);

  const std::string out = ::testing::TempDir() + "/c880_flow_sized.v";
  ASSERT_TRUE(flow.write_verilog_file(out).ok());
  core::Flow reread;
  ASSERT_TRUE(reread.load_verilog_file(out).ok());
  EXPECT_TRUE(same_named_structure(flow.netlist(), reread.netlist(), /*check_cells=*/true));
}

}  // namespace
}  // namespace statsizer
