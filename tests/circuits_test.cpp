#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "circuits/iscas_suite.h"
#include "netlist/sim.h"
#include "netlist/topo.h"
#include "util/rng.h"

namespace statsizer::circuits {
namespace {

using netlist::GateId;
using netlist::Netlist;
using netlist::Simulator;

/// Packs integer @p value into per-bit 64-wide words for bus inputs.
void drive_bus(std::vector<std::uint64_t>& words, std::size_t offset, unsigned width,
               std::uint64_t value, unsigned lane) {
  for (unsigned i = 0; i < width; ++i) {
    if ((value >> i) & 1u) words[offset + i] |= 1ULL << lane;
  }
}

std::uint64_t read_bus(const std::vector<std::uint64_t>& outs, std::size_t offset,
                       unsigned width, unsigned lane) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    if ((outs[offset + i] >> lane) & 1u) v |= 1ULL << i;
  }
  return v;
}

// ---------------------------------------------------------------------------
// adders
// ---------------------------------------------------------------------------

class AdderTest : public ::testing::TestWithParam<std::tuple<bool, unsigned>> {};

TEST_P(AdderTest, AddsCorrectly) {
  const auto [use_cla, bits] = GetParam();
  const Netlist nl = use_cla ? make_cla_adder(bits) : make_ripple_adder(bits);
  ASSERT_EQ(nl.inputs().size(), 2u * bits + 1);
  const Simulator sim(nl);

  util::Rng rng(bits * 7 + (use_cla ? 1 : 0));
  std::vector<std::uint64_t> words(nl.inputs().size(), 0);
  std::vector<std::uint64_t> a_vals(64);
  std::vector<std::uint64_t> b_vals(64);
  std::vector<bool> cins(64);
  const std::uint64_t mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
  for (unsigned lane = 0; lane < 64; ++lane) {
    a_vals[lane] = rng.index(mask + 1);
    b_vals[lane] = rng.index(mask + 1);
    cins[lane] = rng.flip();
    drive_bus(words, 0, bits, a_vals[lane], lane);
    drive_bus(words, bits, bits, b_vals[lane], lane);
    if (cins[lane]) words[2 * bits] |= 1ULL << lane;
  }
  const auto outs = sim.eval(words);
  for (unsigned lane = 0; lane < 64; ++lane) {
    const std::uint64_t expect = a_vals[lane] + b_vals[lane] + (cins[lane] ? 1 : 0);
    const std::uint64_t sum = read_bus(outs, 0, bits, lane);
    const bool cout = (outs[bits] >> lane) & 1u;
    EXPECT_EQ(sum, expect & mask);
    EXPECT_EQ(cout, ((expect >> bits) & 1u) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(2u, 3u, 4u, 8u, 16u, 32u)),
                         [](const auto& info) {
                           return std::string(std::get<0>(info.param) ? "cla" : "rca") +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Adder, ExpandedXorVariantStillAdds) {
  const Netlist plain = make_ripple_adder(8, false);
  const Netlist expanded = make_ripple_adder(8, true);
  EXPECT_GT(expanded.logic_gate_count(), plain.logic_gate_count());
  EXPECT_TRUE(netlist::probably_equivalent(plain, expanded, 3));
}

// ---------------------------------------------------------------------------
// multiplier
// ---------------------------------------------------------------------------

class MultiplierTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiplierTest, Multiplies) {
  const unsigned bits = GetParam();
  const Netlist nl = make_array_multiplier(bits, /*expand_xor=*/false);
  const Simulator sim(nl);
  util::Rng rng(bits);
  std::vector<std::uint64_t> words(nl.inputs().size(), 0);
  std::vector<std::uint64_t> a_vals(64);
  std::vector<std::uint64_t> b_vals(64);
  const std::uint64_t mask = (1ULL << bits) - 1;
  for (unsigned lane = 0; lane < 64; ++lane) {
    a_vals[lane] = rng.index(mask + 1);
    b_vals[lane] = rng.index(mask + 1);
    drive_bus(words, 0, bits, a_vals[lane], lane);
    drive_bus(words, bits, bits, b_vals[lane], lane);
  }
  const auto outs = sim.eval(words);
  for (unsigned lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(read_bus(outs, 0, 2 * bits, lane), a_vals[lane] * b_vals[lane])
        << a_vals[lane] << " * " << b_vals[lane];
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierTest, ::testing::Values(2u, 3u, 4u, 8u, 16u));

TEST(Multiplier, C6288ClassShape) {
  const Netlist nl = make_array_multiplier(16, /*expand_xor=*/true);
  // The NAND-expanded 16x16 multiplier is the deep end of Table 1.
  EXPECT_GT(nl.logic_gate_count(), 2000u);
  EXPECT_GT(netlist::depth(nl), 70u);
  EXPECT_TRUE(netlist::probably_equivalent(make_array_multiplier(16, false), nl, 4));
}

// ---------------------------------------------------------------------------
// ALU
// ---------------------------------------------------------------------------

TEST(Alu, ArithmeticAndLogicOps) {
  AluOptions opt;
  opt.bits = 8;
  const Netlist nl = make_alu(opt);
  const Simulator sim(nl);
  const unsigned n = opt.bits;
  const std::uint64_t mask = (1ULL << n) - 1;

  // Input order: a[8], b[8], op0, op1, op2, cin.
  const std::size_t op0 = 2 * n, op1 = 2 * n + 1, op2 = 2 * n + 2, cin = 2 * n + 3;
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t a = rng.index(mask + 1);
    const std::uint64_t b = rng.index(mask + 1);
    // (op2, op1, op0): 000 AND, 001 OR, 010 XOR, 011 ADD, 100 NOR,
    // 101 pass-A, 110 XOR, 111 SUB.
    struct OpCase {
      unsigned op;
      std::uint64_t expect;
    };
    const OpCase cases[] = {
        {0b000, a & b},
        {0b001, a | b},
        {0b010, a ^ b},
        {0b011, (a + b) & mask},
        {0b100, ~(a | b) & mask},
        {0b101, a},
        {0b111, (a - b) & mask},
    };
    for (const auto& c : cases) {
      std::vector<std::uint64_t> words(nl.inputs().size(), 0);
      drive_bus(words, 0, n, a, 0);
      drive_bus(words, n, n, b, 0);
      if (c.op & 1u) words[op0] = 1;
      if (c.op & 2u) words[op1] = 1;
      if (c.op & 4u) words[op2] = 1;
      words[cin] = 0;
      const auto outs = sim.eval(words);
      EXPECT_EQ(read_bus(outs, 0, n, 0), c.expect)
          << "a=" << a << " b=" << b << " op=" << c.op;
    }
  }
}

TEST(Alu, ZeroFlag) {
  AluOptions opt;
  opt.bits = 4;
  const Netlist nl = make_alu(opt);
  const Simulator sim(nl);
  // a XOR a = 0 -> zero flag set. op=010.
  std::vector<std::uint64_t> words(nl.inputs().size(), 0);
  drive_bus(words, 0, 4, 0b1010, 0);
  drive_bus(words, 4, 4, 0b1010, 0);
  words[9] = 1;  // op1
  const auto outs = sim.eval(words);
  // Outputs: f[4], cout, zero, sign, ovf, parity.
  EXPECT_EQ(read_bus(outs, 0, 4, 0), 0u);
  EXPECT_EQ(outs[5] & 1u, 1u);  // zero
}

// ---------------------------------------------------------------------------
// Hamming SEC
// ---------------------------------------------------------------------------

class HammingTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HammingTest, CorrectsEverySingleDataBitError) {
  const unsigned data_bits = GetParam();
  const Netlist nl = make_hamming_sec(data_bits);
  const Simulator sim(nl);

  // Compute check bits for a given data word (matching the generator's
  // layout: data at non-power positions, check bit i covers positions with
  // bit i set).
  unsigned r = 1;
  while ((1u << r) < data_bits + r + 1) ++r;
  std::vector<unsigned> data_pos;
  for (unsigned pos = 1; data_pos.size() < data_bits; ++pos) {
    if ((pos & (pos - 1)) != 0) data_pos.push_back(pos);
  }

  util::Rng rng(data_bits);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<bool> data(data_bits);
    for (unsigned i = 0; i < data_bits; ++i) data[i] = rng.flip();
    std::vector<bool> check(r, false);
    for (unsigned i = 0; i < data_bits; ++i) {
      if (!data[i]) continue;
      for (unsigned j = 0; j < r; ++j) {
        if ((data_pos[i] >> j) & 1u) check[j] = !check[j];
      }
    }
    // Flip each data bit in turn; the corrector must restore it.
    for (unsigned flip = 0; flip < data_bits; ++flip) {
      std::vector<bool> inputs;
      for (unsigned i = 0; i < data_bits; ++i) {
        inputs.push_back(i == flip ? !data[i] : data[i]);
      }
      for (unsigned j = 0; j < r; ++j) inputs.push_back(check[j]);
      const auto outs = netlist::eval_single(nl, inputs);
      for (unsigned i = 0; i < data_bits; ++i) {
        EXPECT_EQ(outs[i], data[i]) << "flip " << flip << " bit " << i;
      }
      EXPECT_TRUE(outs[data_bits]);  // err flag
    }
    // No error: data passes through, err = 0.
    std::vector<bool> clean(data.begin(), data.end());
    for (unsigned j = 0; j < r; ++j) clean.push_back(check[j]);
    const auto outs = netlist::eval_single(nl, clean);
    for (unsigned i = 0; i < data_bits; ++i) EXPECT_EQ(outs[i], data[i]);
    EXPECT_FALSE(outs[data_bits]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HammingTest, ::testing::Values(4u, 8u, 16u, 32u));

// ---------------------------------------------------------------------------
// SEC-DED
// ---------------------------------------------------------------------------

TEST(SecDed, SingleErrorsCorrectedDoubleErrorsDetected) {
  const unsigned data_bits = 16;
  const Netlist nl = make_sec_ded(data_bits, /*expand_xor=*/false);
  const Simulator sim(nl);

  unsigned r = 1;
  while ((1u << r) < data_bits + r + 1) ++r;
  const unsigned total = data_bits + r + 1;  // + overall parity

  util::Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<bool> data(data_bits);
    for (unsigned i = 0; i < data_bits; ++i) data[i] = rng.flip();

    const auto run = [&](const std::vector<bool>& flip) {
      std::vector<bool> inputs(data.begin(), data.end());
      inputs.insert(inputs.end(), flip.begin(), flip.end());
      return netlist::eval_single(nl, inputs);
    };

    // Clean channel.
    {
      const auto outs = run(std::vector<bool>(total, false));
      for (unsigned i = 0; i < data_bits; ++i) EXPECT_EQ(outs[i], data[i]);
      EXPECT_FALSE(outs[data_bits]);      // single_err
      EXPECT_FALSE(outs[data_bits + 1]);  // double_err
    }
    // Every single-bit channel error is corrected and flagged.
    for (unsigned e = 0; e < total; ++e) {
      std::vector<bool> flip(total, false);
      flip[e] = true;
      const auto outs = run(flip);
      for (unsigned i = 0; i < data_bits; ++i) {
        EXPECT_EQ(outs[i], data[i]) << "error at " << e;
      }
      EXPECT_TRUE(outs[data_bits]) << "error at " << e;
      EXPECT_FALSE(outs[data_bits + 1]) << "error at " << e;
    }
    // Double errors are detected (not corrected).
    for (int k = 0; k < 10; ++k) {
      const unsigned e1 = rng.index(total);
      unsigned e2 = rng.index(total);
      while (e2 == e1) e2 = rng.index(total);
      std::vector<bool> flip(total, false);
      flip[e1] = flip[e2] = true;
      const auto outs = run(flip);
      EXPECT_TRUE(outs[data_bits + 1]) << e1 << "," << e2;
    }
  }
}

// ---------------------------------------------------------------------------
// interrupt controller
// ---------------------------------------------------------------------------

TEST(InterruptController, HighestPriorityWins) {
  const unsigned channels = 27;
  const Netlist nl = make_interrupt_controller(channels, 3);
  util::Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> inputs(nl.inputs().size(), false);
    // req[27], en[3], men.
    std::vector<bool> req(channels);
    for (unsigned i = 0; i < channels; ++i) {
      req[i] = rng.flip(0.2);
      inputs[i] = req[i];
    }
    const bool en[3] = {rng.flip(0.8), rng.flip(0.8), rng.flip(0.8)};
    for (int b = 0; b < 3; ++b) inputs[channels + b] = en[b];
    inputs[channels + 3] = true;  // master enable

    int expect = -1;
    for (unsigned i = 0; i < channels; ++i) {
      if (req[i] && en[i / 9]) {
        expect = static_cast<int>(i);
        break;
      }
    }
    const auto outs = netlist::eval_single(nl, inputs);
    // Outputs: idx0..idx4, valid, bank0..2.
    unsigned idx = 0;
    for (int b = 0; b < 5; ++b) {
      if (outs[b]) idx |= 1u << b;
    }
    const bool valid = outs[5];
    if (expect < 0) {
      EXPECT_FALSE(valid);
    } else {
      EXPECT_TRUE(valid);
      EXPECT_EQ(idx, static_cast<unsigned>(expect));
    }
  }
}

// ---------------------------------------------------------------------------
// adder/comparator
// ---------------------------------------------------------------------------

TEST(AdderComparator, AllOutputsCorrect) {
  const unsigned bits = 16;
  const Netlist nl = make_adder_comparator(bits);
  const Simulator sim(nl);
  const std::uint64_t mask = (1ULL << bits) - 1;
  util::Rng rng(13);
  // Input order: a[16], b[16], cin, sel.
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t a = rng.index(mask + 1);
    const std::uint64_t b = rng.index(mask + 1);
    const bool sel = rng.flip();
    std::vector<bool> inputs;
    for (unsigned i = 0; i < bits; ++i) inputs.push_back((a >> i) & 1u);
    for (unsigned i = 0; i < bits; ++i) inputs.push_back((b >> i) & 1u);
    inputs.push_back(false);  // cin
    inputs.push_back(sel);
    const auto outs = netlist::eval_single(nl, inputs);
    // Output order: a_eq_b, a_gt_b, a_lt_b, r[16], inc[16], cout, par_a,
    // par_b, par_r, r_zero, inc_cout.
    std::size_t k = 0;
    EXPECT_EQ(outs[k++], a == b);
    EXPECT_EQ(outs[k++], a > b);
    EXPECT_EQ(outs[k++], a < b);
    const std::uint64_t expect_r = sel ? (a - b) & mask : (a + b) & mask;
    std::uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
      if (outs[k + i]) r |= 1ULL << i;
    }
    EXPECT_EQ(r, expect_r);
    k += bits;
    std::uint64_t inc = 0;
    for (unsigned i = 0; i < bits; ++i) {
      if (outs[k + i]) inc |= 1ULL << i;
    }
    EXPECT_EQ(inc, (a + 1) & mask);
    k += bits;
    ++k;  // cout (polarity depends on sel; skip)
    EXPECT_EQ(outs[k++], __builtin_parityll(a) != 0);
    EXPECT_EQ(outs[k++], __builtin_parityll(b) != 0);
    EXPECT_EQ(outs[k++], __builtin_parityll(expect_r) != 0);
    EXPECT_EQ(outs[k++], expect_r == 0);
    EXPECT_EQ(outs[k++], a == mask);  // inc_cout: a+1 overflowed
  }
}

// ---------------------------------------------------------------------------
// random DAG + Table-1 suite
// ---------------------------------------------------------------------------

TEST(RandomDag, ReproducibleAndValid) {
  RandomDagOptions opt;
  opt.seed = 5;
  const Netlist a = make_random_dag(opt);
  const Netlist b = make_random_dag(opt);
  EXPECT_TRUE(a.check().ok());
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_TRUE(netlist::probably_equivalent(a, b, 1));
  EXPECT_EQ(a.outputs().size(), opt.n_outputs);
}

TEST(Table1Suite, AllCircuitsBuildAndCheck) {
  for (const auto& name : table1_names()) {
    const Netlist nl = make_table1_circuit(name);
    EXPECT_TRUE(nl.check().ok()) << name;
    EXPECT_EQ(nl.name(), name);
    EXPECT_GT(nl.logic_gate_count(), 50u) << name;
    ASSERT_TRUE(table1_reference(name).has_value()) << name;
  }
  EXPECT_THROW((void)make_table1_circuit("c17"), std::invalid_argument);
}

TEST(Table1Suite, DepthOrderingMatchesPaperNarrative) {
  // The paper's key structural observation: ALUs are shallow (worst
  // sigma/mu), c6288 is by far the deepest (best sigma/mu, least improvable).
  const auto depth_of = [](const char* name) {
    return netlist::depth(make_table1_circuit(name));
  };
  const auto d_alu = depth_of("alu2");
  const auto d_c6288 = depth_of("c6288");
  const auto d_c432 = depth_of("c432");
  EXPECT_GT(d_c6288, 3 * d_alu);
  EXPECT_GT(d_c6288, 3 * d_c432);
}

TEST(Table1Suite, GateCountsInPaperBallpark) {
  // Generators target the paper's mapped gate counts; allow a generous band
  // (substitution documented in DESIGN.md).
  for (const auto& name : table1_names()) {
    const auto ref = table1_reference(name);
    const auto nl = make_table1_circuit(name);
    const double ratio =
        static_cast<double>(nl.logic_gate_count()) / ref->paper_gates;
    EXPECT_GT(ratio, 0.3) << name << ": " << nl.logic_gate_count() << " gates";
    EXPECT_LT(ratio, 3.0) << name << ": " << nl.logic_gate_count() << " gates";
  }
}

// ---------------------------------------------------------------------------
// scaled fabrics
// ---------------------------------------------------------------------------

TEST(PipelinedDatapath, MatchesStagedReferenceModel) {
  PipelineOptions o;
  o.bits = 8;
  o.stages = 3;
  const Netlist nl = make_pipelined_datapath(o);
  ASSERT_EQ(nl.inputs().size(), 2u * o.bits + 1);       // a, b, cin
  ASSERT_EQ(nl.outputs().size(), o.stages + o.bits);    // cout<s>..., r
  const Simulator sim(nl);
  const std::uint64_t mask = (1ULL << o.bits) - 1;

  util::Rng rng(97);
  std::vector<std::uint64_t> words(nl.inputs().size(), 0);
  std::vector<std::uint64_t> a_vals(64), b_vals(64);
  std::vector<bool> cins(64);
  for (unsigned lane = 0; lane < 64; ++lane) {
    a_vals[lane] = rng.index(mask + 1);
    b_vals[lane] = rng.index(mask + 1);
    cins[lane] = rng.flip();
    drive_bus(words, 0, o.bits, a_vals[lane], lane);
    drive_bus(words, o.bits, o.bits, b_vals[lane], lane);
    if (cins[lane]) words[2 * o.bits] |= 1ULL << lane;
  }
  const auto outs = sim.eval(words);
  for (unsigned lane = 0; lane < 64; ++lane) {
    // Stage s: state' = state + (ror1(state) ^ b) + carry, carry chains on.
    std::uint64_t state = a_vals[lane];
    std::uint64_t carry = cins[lane] ? 1 : 0;
    for (unsigned s = 0; s < o.stages; ++s) {
      const std::uint64_t ror1 = ((state >> 1) | (state << (o.bits - 1))) & mask;
      const std::uint64_t t = state + (ror1 ^ b_vals[lane]) + carry;
      state = t & mask;
      carry = (t >> o.bits) & 1;
      const bool cout = (outs[s] >> lane) & 1u;
      EXPECT_EQ(cout, carry != 0) << "stage " << s << " lane " << lane;
    }
    EXPECT_EQ(read_bus(outs, o.stages, o.bits, lane), state) << "lane " << lane;
  }
}

TEST(MeshInterconnect, MatchesGridReferenceModel) {
  MeshOptions o;
  o.rows = 2;
  o.cols = 2;
  o.bits = 4;
  const Netlist nl = make_mesh_interconnect(o);
  // Inputs: n<c> buses, w<r> buses, then sel<r>_<c> row-major.
  ASSERT_EQ(nl.inputs().size(), (o.rows + o.cols) * o.bits + o.rows * o.cols);
  // Outputs: co<r>_<c> row-major, then e<r> buses, then s<c> buses.
  ASSERT_EQ(nl.outputs().size(), o.rows * o.cols + (o.rows + o.cols) * o.bits);
  const Simulator sim(nl);
  const std::uint64_t mask = (1ULL << o.bits) - 1;
  const std::size_t sel_base = (o.rows + o.cols) * o.bits;

  util::Rng rng(131);
  std::vector<std::uint64_t> words(nl.inputs().size(), 0);
  std::vector<std::vector<std::uint64_t>> n_vals(o.cols), w_vals(o.rows);
  std::vector<std::vector<bool>> sels(o.rows * o.cols);
  for (unsigned lane = 0; lane < 64; ++lane) {
    for (unsigned c = 0; c < o.cols; ++c) {
      n_vals[c].push_back(rng.index(mask + 1));
      drive_bus(words, c * o.bits, o.bits, n_vals[c][lane], lane);
    }
    for (unsigned r = 0; r < o.rows; ++r) {
      w_vals[r].push_back(rng.index(mask + 1));
      drive_bus(words, (o.cols + r) * o.bits, o.bits, w_vals[r][lane], lane);
    }
    for (unsigned i = 0; i < o.rows * o.cols; ++i) {
      sels[i].push_back(rng.flip());
      if (sels[i][lane]) words[sel_base + i] |= 1ULL << lane;
    }
  }
  const auto outs = sim.eval(words);
  for (unsigned lane = 0; lane < 64; ++lane) {
    std::vector<std::uint64_t> north(o.cols), west(o.rows);
    for (unsigned c = 0; c < o.cols; ++c) north[c] = n_vals[c][lane];
    for (unsigned r = 0; r < o.rows; ++r) west[r] = w_vals[r][lane];
    for (unsigned r = 0; r < o.rows; ++r) {
      for (unsigned c = 0; c < o.cols; ++c) {
        // out = sel ? north + west + sel : north ^ west; co is the adder's
        // carry-out either way (cin = sel keeps the chain live).
        const std::uint64_t sel = sels[r * o.cols + c][lane] ? 1 : 0;
        const std::uint64_t sum = north[c] + west[r] + sel;
        const std::uint64_t out = sel ? (sum & mask) : (north[c] ^ west[r]);
        const bool co = (outs[r * o.cols + c] >> lane) & 1u;
        EXPECT_EQ(co, ((sum >> o.bits) & 1u) != 0) << "node " << r << "," << c;
        north[c] = out;
        west[r] = out;
      }
    }
    const std::size_t e_base = o.rows * o.cols;
    for (unsigned r = 0; r < o.rows; ++r) {
      EXPECT_EQ(read_bus(outs, e_base + r * o.bits, o.bits, lane), west[r]) << "east " << r;
    }
    const std::size_t s_base = e_base + o.rows * o.bits;
    for (unsigned c = 0; c < o.cols; ++c) {
      EXPECT_EQ(read_bus(outs, s_base + c * o.bits, o.bits, lane), north[c]) << "south " << c;
    }
  }
}

TEST(ScaledWorkloads, AreRegisteredAndBig) {
  for (const auto& name : scaled_workload_names()) {
    const Netlist nl = make_table1_circuit(name);
    EXPECT_EQ(nl.name(), name);
    EXPECT_GE(nl.logic_gate_count(), 10000u) << name;
    EXPECT_FALSE(table1_reference(name).has_value()) << name << " is not a paper row";
  }
}

}  // namespace
}  // namespace statsizer::circuits
