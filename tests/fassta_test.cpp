#include <cmath>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "fassta/engine.h"
#include "liberty/synthetic.h"
#include "netlist/subcircuit.h"
#include "ssta/fullssta.h"
#include "techmap/mapper.h"

namespace statsizer::fassta {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n) : nl(std::move(n)) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
  }
};

TEST(Engine, TracksFullSsta) {
  Bench b(circuits::make_cla_adder(8));
  const Engine eng(*b.ctx);
  sta::NodeMoments circuit;
  const auto node = eng.run(&circuit);
  const auto full = ssta::run_fullssta(*b.ctx);
  EXPECT_NEAR(circuit.mean_ps, full.mean_ps, 0.02 * full.mean_ps);
  EXPECT_NEAR(circuit.sigma_ps, full.sigma_ps, 0.3 * full.sigma_ps);
  // Per-node means track closely too.
  for (GateId id = 0; id < b.nl.node_count(); ++id) {
    if (!b.ctx->has_cell(id)) continue;
    EXPECT_NEAR(node[id].mean_ps, full.node[id].mean_ps,
                0.03 * std::max(full.node[id].mean_ps, 10.0))
        << b.nl.gate(id).name;
  }
}

TEST(Engine, FastAndExactModesAgree) {
  Bench b(circuits::make_cla_adder(8));
  EngineOptions fast;
  fast.max_mode = MaxMode::kFast;
  EngineOptions exact;
  exact.max_mode = MaxMode::kExact;
  sta::NodeMoments mf, me;
  (void)Engine(*b.ctx, fast).run(&mf);
  (void)Engine(*b.ctx, exact).run(&me);
  EXPECT_NEAR(mf.mean_ps, me.mean_ps, 0.01 * me.mean_ps);
  EXPECT_NEAR(mf.sigma_ps, me.sigma_ps, 0.08 * me.sigma_ps + 0.2);
}

TEST(Engine, RunWithCurrentCellIsIdentity) {
  Bench b(circuits::make_ripple_adder(6));
  const Engine eng(*b.ctx);
  sta::NodeMoments base;
  (void)eng.run(&base);
  for (GateId id = 0; id < b.nl.node_count(); ++id) {
    if (!b.ctx->has_cell(id)) continue;
    const sta::NodeMoments m = eng.run_with_candidate(id, b.ctx->cell(id));
    EXPECT_NEAR(m.mean_ps, base.mean_ps, 1e-9) << b.nl.gate(id).name;
    EXPECT_NEAR(m.sigma_ps, base.sigma_ps, 1e-9) << b.nl.gate(id).name;
  }
}

TEST(Engine, RunWithCandidateMatchesCommittedResize) {
  Bench b(circuits::make_ripple_adder(6));
  const Engine eng(*b.ctx);
  // Pick a mid-circuit gate and its largest size.
  for (GateId id = 0; id < b.nl.node_count(); ++id) {
    if (!b.ctx->has_cell(id) || b.nl.gate(id).fanouts.empty()) continue;
    const auto& group = b.lib.group(b.nl.gate(id).cell_group);
    const auto big = static_cast<std::uint16_t>(group.size_count() - 1);
    const liberty::Cell& cell = b.lib.cell_for(b.nl.gate(id).cell_group, big);
    const sta::NodeMoments what_if = eng.run_with_candidate(id, cell);

    b.nl.gate(id).size_index = big;
    b.ctx->update();
    sta::NodeMoments committed;
    (void)Engine(*b.ctx).run(&committed);
    // The what-if reuses snapshot slews, so allow a modest tolerance.
    EXPECT_NEAR(what_if.mean_ps, committed.mean_ps, 0.08 * committed.mean_ps);
    return;
  }
  FAIL();
}

TEST(Engine, DownstreamOfPoDriversIsZeroOrSideLoad) {
  Bench b(circuits::make_ripple_adder(4));
  const Engine eng(*b.ctx);
  const auto down = eng.compute_downstream();
  for (const auto& po : b.nl.outputs()) {
    // A pure PO driver (no gate fanouts) has zero downstream.
    if (b.nl.gate(po.driver).fanouts.empty()) {
      EXPECT_DOUBLE_EQ(down[po.driver].mean_ps, 0.0);
      EXPECT_DOUBLE_EQ(down[po.driver].sigma_ps, 0.0);
    }
  }
}

TEST(Engine, DownstreamOnChainIsSuffixSum) {
  Netlist nl("chain");
  GateId prev = nl.add_input("a");
  std::vector<GateId> gates;
  for (int i = 0; i < 6; ++i) {
    prev = nl.add_gate(netlist::GateFunc::kInv, {prev});
    gates.push_back(prev);
  }
  nl.add_output("y", prev);
  Bench b(std::move(nl));
  const Engine eng(*b.ctx);
  const auto down = eng.compute_downstream();
  // Walking backwards, downstream mean accumulates each arc delay.
  double expect = 0.0;
  for (auto it = b.ctx->topo_order().rbegin(); it != b.ctx->topo_order().rend(); ++it) {
    if (!b.ctx->has_cell(*it)) continue;
    EXPECT_NEAR(down[*it].mean_ps, expect, 1e-9);
    expect += b.ctx->arc_delay_ps(*it, 0);
  }
}

TEST(Engine, ArrivalPlusDownstreamIsPathInvariantOnChain) {
  Netlist nl("chain");
  GateId prev = nl.add_input("a");
  for (int i = 0; i < 8; ++i) prev = nl.add_gate(netlist::GateFunc::kInv, {prev});
  nl.add_output("y", prev);
  Bench b(std::move(nl));
  const Engine eng(*b.ctx);
  sta::NodeMoments circuit;
  const auto arrival = eng.run(&circuit);
  const auto down = eng.compute_downstream();
  for (GateId id = 0; id < b.nl.node_count(); ++id) {
    if (!b.ctx->has_cell(id)) continue;
    EXPECT_NEAR(arrival[id].mean_ps + down[id].mean_ps, circuit.mean_ps, 1e-6);
  }
}

TEST(Engine, SubcircuitStatusQuoConsistent) {
  Bench b(circuits::make_cla_adder(8));
  const Engine eng(*b.ctx);
  const auto full = ssta::run_fullssta(*b.ctx);
  const auto down = eng.compute_downstream();

  // Scoring the *current* cell must equal scoring through the projections
  // without any perturbation — and must never be negative or absurd.
  for (GateId id = 0; id < b.nl.node_count(); ++id) {
    if (!b.ctx->has_cell(id)) continue;
    const auto sc = netlist::extract_subcircuit(b.nl, id, 2, 2);
    const SubcircuitCost cost =
        eng.evaluate_candidate(sc, full.node, down, id, b.ctx->cell(id), 3.0);
    EXPECT_GT(cost.cost, 0.0);
    EXPECT_GT(cost.worst_mean_ps, 0.0);
    EXPECT_GE(cost.worst_sigma_ps, 0.0);
    EXPECT_NEAR(cost.cost, cost.worst_mean_ps + 3.0 * cost.worst_sigma_ps, 1e-9);
  }
}

TEST(Engine, LambdaScalesCost) {
  Bench b(circuits::make_ripple_adder(4));
  const Engine eng(*b.ctx);
  const auto full = ssta::run_fullssta(*b.ctx);
  const auto down = eng.compute_downstream();
  const GateId id = b.nl.outputs()[0].driver;
  const auto sc = netlist::extract_subcircuit(b.nl, id, 2, 2);
  const double c0 =
      eng.evaluate_candidate(sc, full.node, down, id, b.ctx->cell(id), 0.0).cost;
  const double c9 =
      eng.evaluate_candidate(sc, full.node, down, id, b.ctx->cell(id), 9.0).cost;
  EXPECT_GT(c9, c0);
}

TEST(Engine, DominanceThresholdOptionRespected) {
  // With an absurdly large threshold, no early-outs occur; results should
  // still be close to the default (the approximation is smooth).
  Bench b(circuits::make_cla_adder(8));
  EngineOptions no_shortcut;
  no_shortcut.dominance_threshold = 1e9;
  sta::NodeMoments a, c;
  (void)Engine(*b.ctx).run(&a);
  (void)Engine(*b.ctx, no_shortcut).run(&c);
  EXPECT_NEAR(a.mean_ps, c.mean_ps, 0.01 * c.mean_ps);
}

}  // namespace
}  // namespace statsizer::fassta
