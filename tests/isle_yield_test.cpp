// Statistical-estimator harness for the ISLE importance-sampling yield
// backend (ssta/isle.h). The estimator is pinned four ways:
//
//   * unbiasedness against a circuit whose yield is known *analytically* — a
//     pure inverter chain has a single path, so its delay is exactly the sum
//     of the sampled arc delays: Normal with mean sum(d_g) and variance
//     (sum shared_g)^2 + sum(local_g^2 + floor^2), including the global
//     process variable's cross-gate correlation;
//   * agreement with large-sample plain Monte Carlo on the Table-1
//     c432/c880/mesh8 workloads across several clock constraints
//     T = mean + lambda * sigma (the mesh8 point through an installed SDC
//     clock, exercising the constraint-resolution path);
//   * the determinism contract: bitwise thread-count invariance of the
//     estimate, the per-draw weights, and every diagnostic for threads
//     {1, 2, 8, 0}, exact seed reproducibility, and — in kNominal mode —
//     per-draw circuit delays bitwise-equal to run_monte_carlo;
//   * the draws-to-CI claim: at a deep-tail constraint the adaptive loop
//     reaches a target standard error in >= 10x fewer draws than plain
//     Monte Carlo needs analytically (p(1-p) / se^2).
//
// Tolerances are 3 * standard error plus a small explicit budget where two
// estimators share a systematic (sampling truncation, empirical-CDF
// discreteness); the budgets are documented at each site.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "core/flow.h"
#include "liberty/synthetic.h"
#include "ssta/isle.h"
#include "ssta/monte_carlo.h"
#include "techmap/mapper.h"
#include "util/numeric.h"
#include "variation/model.h"

namespace statsizer {
namespace {

/// Fraction of MC circuit samples meeting the period, plus its binomial SE.
struct EmpiricalYield {
  double yield = 0.0;
  double std_error = 0.0;
};

EmpiricalYield empirical_yield(const std::vector<double>& samples, double period_ps) {
  std::size_t pass = 0;
  for (const double d : samples) pass += (d <= period_ps) ? 1u : 0u;
  EmpiricalYield y;
  y.yield = double(pass) / double(samples.size());
  y.std_error = std::sqrt(std::max(y.yield * (1.0 - y.yield), 1e-12) / double(samples.size()));
  return y;
}

double combined_3se(double se_a, double se_b) {
  return 3.0 * std::sqrt(se_a * se_a + se_b * se_b);
}

// ---------------------------------------------------------------------------
// Analytic pin: single-path chain circuit.
// ---------------------------------------------------------------------------

struct ChainBench {
  netlist::Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;
  double mean_ps = 0.0;
  double sigma_ps = 0.0;

  explicit ChainBench(unsigned length) {
    circuits::Builder b("chain" + std::to_string(length));
    netlist::GateId g = b.input("x");
    for (unsigned i = 0; i < length; ++i) g = b.not_(g);
    b.output("y", g);
    nl = b.take();

    // Mild variation so the sampling truncation at min_delay_fraction is a
    // deep-tail event and the chain delay is Normal to high accuracy; a
    // nonzero global fraction so the analytic variance must account for the
    // cross-gate correlation of the shared process variable.
    variation::VariationParams vp;
    vp.proportional_coeff = 0.15;
    vp.global_fraction = 0.3;
    var = variation::VariationModel(vp);

    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});

    // Exact single-path moments: delay = sum_g sample_g with
    // sample_g = d_g + shared_g * Z + local_g * Z1_g + floor * Z2_g.
    const double gf = vp.global_fraction;
    double shared_sum = 0.0;
    double independent_var = 0.0;
    for (netlist::GateId id = 0; id < nl.node_count(); ++id) {
      if (nl.gate(id).fanins.empty()) continue;  // primary input
      const double d = ctx->arc_delay_ps(id, 0);
      const double sys = var.systematic_sigma_ps(d, ctx->drive(id));
      shared_sum += std::sqrt(gf) * sys;
      const double local = std::sqrt(1.0 - gf) * sys;
      independent_var += local * local + var.random_sigma_ps() * var.random_sigma_ps();
      mean_ps += d;
    }
    sigma_ps = std::sqrt(shared_sum * shared_sum + independent_var);
  }
};

TEST(IsleYield, MatchesAnalyticChainYieldAcrossLambdas) {
  const ChainBench b(32);
  ASSERT_GT(b.sigma_ps, 0.0);

  for (const double lambda : {0.5, 1.5, 2.5}) {
    ssta::IsleOptions opt;
    opt.samples = 4096;
    opt.seed = 20260808;
    opt.threads = 0;  // exercise the sharded path; results are thread-invariant
    opt.clock_period_ps = b.mean_ps + lambda * b.sigma_ps;
    const ssta::IsleResult r = ssta::run_isle(*b.ctx, opt);

    const double analytic = util::normal_cdf(lambda);
    ASSERT_FALSE(r.degenerate) << "lambda=" << lambda;
    EXPECT_EQ(r.draws, opt.samples);
    EXPECT_GT(r.std_error, 0.0);
    // 1e-3 budget: the truncation at min_delay_fraction (a >5-sigma event per
    // arc at this variation level) makes the true yield differ from the
    // untruncated Normal by far less than this.
    EXPECT_NEAR(r.yield, analytic, 3.0 * r.std_error + 1e-3) << "lambda=" << lambda;
    // Defensive mixture bounds every likelihood ratio by 1/alpha.
    EXPECT_LE(r.max_weight, 1.0 / opt.defensive_fraction + 1e-9);
    EXPECT_EQ(r.weights.size(), r.draws);
    EXPECT_EQ(r.delay_samples.size(), r.draws);
  }
}

TEST(IsleYield, BeatsNominalVarianceInTheTail) {
  // At a deep-tail constraint the importance-sampled standard error must sit
  // well below the binomial SE a nominal sampler gets from the same draws.
  const ChainBench b(32);
  ssta::IsleOptions opt;
  opt.samples = 4096;
  opt.seed = 99;
  opt.clock_period_ps = b.mean_ps + 2.5 * b.sigma_ps;
  const ssta::IsleResult r = ssta::run_isle(*b.ctx, opt);
  ASSERT_FALSE(r.degenerate);
  const double p = 1.0 - util::normal_cdf(2.5);
  const double nominal_se = std::sqrt(p * (1.0 - p) / double(opt.samples));
  EXPECT_LT(r.std_error, 0.5 * nominal_se);
}

// ---------------------------------------------------------------------------
// Plain-MC agreement on the Table-1 workloads.
// ---------------------------------------------------------------------------

TEST(IsleYield, AgreesWithPlainMonteCarloOnIscasWorkloads) {
  for (const char* name : {"c432", "c880"}) {
    core::Flow flow;
    ASSERT_TRUE(flow.load_table1(name).ok()) << name;

    ssta::MonteCarloOptions mo;
    mo.samples = 3000;
    mo.seed = 4242;
    mo.threads = 0;
    const ssta::MonteCarloResult mc = ssta::run_monte_carlo(flow.timing(), mo);

    for (const double lambda : {1.0, 2.0}) {
      const double period = mc.mean_ps + lambda * mc.sigma_ps;
      const EmpiricalYield ref = empirical_yield(mc.circuit_samples, period);

      ssta::IsleOptions opt;
      opt.samples = 1024;
      opt.seed = 31337;
      opt.threads = 0;
      opt.clock_period_ps = period;
      const ssta::IsleResult r = ssta::run_isle(flow.timing(), opt);

      ASSERT_FALSE(r.degenerate) << name << " lambda=" << lambda;
      // 0.01 budget: empirical-CDF discreteness at the threshold; both
      // estimators sample the identical truncated model, so there is no
      // model-bias term.
      EXPECT_NEAR(r.yield, ref.yield, combined_3se(r.std_error, ref.std_error) + 0.01)
          << name << " lambda=" << lambda;
      EXPECT_EQ(r.clock_period_ps, period);
      EXPECT_GT(r.ess, 0.0);
    }
  }
}

TEST(IsleYield, ResolvesSdcClockOnMesh8) {
  core::FlowOptions options;
  options.isle.samples = 768;
  options.isle.seed = 2718;
  options.isle.threads = 0;
  core::Flow flow(options);
  ASSERT_TRUE(flow.load_table1("mesh8").ok());

  ssta::MonteCarloOptions mo;
  mo.samples = 1200;
  mo.seed = 515;
  mo.threads = 0;
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(flow.timing(), mo);
  const double period = mc.mean_ps + 1.5 * mc.sigma_ps;
  const EmpiricalYield ref = empirical_yield(mc.circuit_samples, period);

  ASSERT_TRUE(
      flow.apply_sdc("create_clock -period " + std::to_string(period) + " -name clk").ok());

  // No explicit period: estimate_yield must pick up the SDC constraint.
  const core::YieldReport report = flow.estimate_yield();
  EXPECT_EQ(report.engine, "isle");
  EXPECT_EQ(report.result.clock_period_ps, flow.timing().constraints().clock_period_ps.value());
  ASSERT_FALSE(report.result.degenerate);
  EXPECT_NEAR(report.yield(), ref.yield,
              combined_3se(report.std_error(), ref.std_error) + 0.01);

  // The "mc" engine through the same front door agrees too.
  const core::YieldReport plain = flow.estimate_yield(0.0, "mc");
  EXPECT_EQ(plain.engine, "mc");
  EXPECT_NEAR(plain.yield(), ref.yield,
              combined_3se(plain.std_error(), ref.std_error) + 0.01);
  EXPECT_THROW((void)flow.estimate_yield(0.0, "no-such-engine"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism contract.
// ---------------------------------------------------------------------------

void expect_results_bitwise_equal(const ssta::IsleResult& a, const ssta::IsleResult& b) {
  EXPECT_EQ(a.yield, b.yield);
  EXPECT_EQ(a.failure_probability, b.failure_probability);
  EXPECT_EQ(a.std_error, b.std_error);
  EXPECT_EQ(a.draws, b.draws);
  EXPECT_EQ(a.ess, b.ess);
  EXPECT_EQ(a.failure_ess, b.failure_ess);
  EXPECT_EQ(a.weight_variance, b.weight_variance);
  EXPECT_EQ(a.max_weight, b.max_weight);
  EXPECT_EQ(a.shift_clamped, b.shift_clamped);
  EXPECT_EQ(a.degenerate, b.degenerate);
  EXPECT_EQ(a.clock_period_ps, b.clock_period_ps);
  EXPECT_EQ(a.surrogate_mean_ps, b.surrogate_mean_ps);
  EXPECT_EQ(a.surrogate_sigma_ps, b.surrogate_sigma_ps);
  EXPECT_EQ(a.shift_beta, b.shift_beta);
  EXPECT_EQ(a.weighted_mean_ps, b.weighted_mean_ps);
  EXPECT_EQ(a.weighted_sigma_ps, b.weighted_sigma_ps);
  EXPECT_EQ(a.delay_samples, b.delay_samples);
  EXPECT_EQ(a.weights, b.weights);
}

TEST(IsleYield, BitwiseThreadCountInvariance) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());

  ssta::IsleOptions opt;
  opt.seed = 7;
  opt.samples = 2048;
  // Adaptive stopping on: batch boundaries must be a pure function of the
  // options, so the stopping point (and hence `draws`) is thread-invariant.
  opt.target_yield_se = 0.01;

  // Period from the serial run's surrogate, held fixed for all thread counts.
  opt.threads = 1;
  const ssta::IsleResult reference = ssta::run_isle(flow.timing(), opt);
  opt.clock_period_ps = reference.clock_period_ps;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    opt.threads = threads;
    const ssta::IsleResult r = ssta::run_isle(flow.timing(), opt);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_results_bitwise_equal(r, reference);
  }
}

TEST(IsleYield, SeedReproducibility) {
  const ChainBench b(16);
  ssta::IsleOptions opt;
  opt.samples = 512;
  opt.seed = 1234;
  opt.clock_period_ps = b.mean_ps + 1.0 * b.sigma_ps;

  const ssta::IsleResult first = ssta::run_isle(*b.ctx, opt);
  const ssta::IsleResult again = ssta::run_isle(*b.ctx, opt);
  expect_results_bitwise_equal(first, again);

  opt.seed = 4321;
  const ssta::IsleResult other = ssta::run_isle(*b.ctx, opt);
  EXPECT_NE(other.delay_samples, first.delay_samples);
}

TEST(IsleYield, NominalProposalIsBitwisePlainMonteCarlo) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());

  ssta::MonteCarloOptions mo;
  mo.samples = 512;
  mo.seed = 777;
  mo.threads = 0;
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(flow.timing(), mo);

  ssta::IsleOptions opt;
  opt.samples = 512;
  opt.seed = 777;
  opt.threads = 0;
  opt.proposal = ssta::IsleProposal::kNominal;
  opt.clock_period_ps = mc.mean_ps;  // any fixed period; draws must not depend on it
  const ssta::IsleResult r = ssta::run_isle(flow.timing(), opt);

  ASSERT_EQ(r.delay_samples.size(), mc.circuit_samples.size());
  EXPECT_EQ(r.delay_samples, mc.circuit_samples);  // bitwise, per draw
  for (const double w : r.weights) ASSERT_EQ(w, 1.0);
  EXPECT_EQ(r.yield, empirical_yield(mc.circuit_samples, opt.clock_period_ps).yield);
}

// ---------------------------------------------------------------------------
// Draws-to-CI: the reason ISLE exists.
// ---------------------------------------------------------------------------

TEST(IsleYield, ReachesTargetCiInTenTimesFewerDrawsThanPlainMc) {
  // Inter-die variation scenario (the regime ISLE targets): with a
  // substantial global fraction the failure region concentrates along the
  // shared process variable and the surrogate shift covers it. With
  // all-local variation the failures spread over thousands of near-critical
  // paths and no small mixture can concentrate them — the estimator stays
  // unbiased there but buys no variance (see BeatsNominalVarianceInTheTail
  // for the single-path extreme instead).
  core::FlowOptions fo;
  fo.variation.global_fraction = 0.5;
  core::Flow flow(fo);
  ASSERT_TRUE(flow.load_table1("c432").ok());

  ssta::MonteCarloOptions mo;
  mo.samples = 3000;
  mo.seed = 808;
  mo.threads = 0;
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(flow.timing(), mo);
  const double period = mc.mean_ps + 3.0 * mc.sigma_ps;  // deep tail, p ~ 3e-3

  ssta::IsleOptions opt;
  opt.seed = 90210;
  opt.threads = 0;
  opt.clock_period_ps = period;
  opt.samples = 8192;             // adaptive cap
  opt.target_yield_se = 4.5e-4;   // ~ p / 3 at this depth
  const ssta::IsleResult r = ssta::run_isle(flow.timing(), opt);

  ASSERT_FALSE(r.degenerate);
  EXPECT_LE(r.std_error, opt.target_yield_se);
  EXPECT_LT(r.draws, opt.samples) << "adaptive loop hit the cap";

  // Sanity: the deep-tail estimate is consistent with the (coarse) MC view.
  const EmpiricalYield ref = empirical_yield(mc.circuit_samples, period);
  EXPECT_NEAR(r.yield, ref.yield, combined_3se(r.std_error, ref.std_error) + 0.003);

  // Plain MC needs p(1-p)/se^2 draws for the same CI — pin the >= 10x claim.
  const double p = r.failure_probability;
  const double mc_draws_needed = p * (1.0 - p) / (opt.target_yield_se * opt.target_yield_se);
  EXPECT_GE(mc_draws_needed, 10.0 * double(r.draws))
      << "isle draws=" << r.draws << " p=" << p << " mc needs ~" << mc_draws_needed;
}

}  // namespace
}  // namespace statsizer
