#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "netlist/subcircuit.h"
#include "netlist/topo.h"

namespace statsizer::netlist {
namespace {

/// a -> g1 -> g2 -> g3 -> g4 -> g5 (chain), PO at g5.
Netlist chain(unsigned length) {
  Netlist nl("chain");
  GateId prev = nl.add_input("a");
  for (unsigned i = 0; i < length; ++i) {
    prev = nl.add_gate(GateFunc::kInv, {prev}, "g" + std::to_string(i + 1));
  }
  nl.add_output("y", prev);
  return nl;
}

TEST(Subcircuit, ChainWindowDepths) {
  const Netlist nl = chain(7);
  const GateId center = nl.find("g4");
  const Subcircuit sc = extract_subcircuit(nl, center, 2, 2);
  // Members: g2, g3, g4, g5, g6.
  EXPECT_EQ(sc.gates.size(), 5u);
  EXPECT_TRUE(sc.member[nl.find("g2")]);
  EXPECT_TRUE(sc.member[nl.find("g6")]);
  EXPECT_FALSE(sc.member[nl.find("g1")]);
  EXPECT_FALSE(sc.member[nl.find("g7")]);
  // Boundary: g1 feeds g2.
  ASSERT_EQ(sc.boundary_inputs.size(), 1u);
  EXPECT_EQ(sc.boundary_inputs[0], nl.find("g1"));
  // Output: g6 (feeds non-member g7).
  ASSERT_EQ(sc.outputs.size(), 1u);
  EXPECT_EQ(sc.outputs[0], nl.find("g6"));
}

TEST(Subcircuit, CenterAlwaysMember) {
  const Netlist nl = chain(3);
  const Subcircuit sc = extract_subcircuit(nl, nl.find("g2"), 0, 0);
  EXPECT_EQ(sc.gates.size(), 1u);
  EXPECT_EQ(sc.gates[0], nl.find("g2"));
}

TEST(Subcircuit, PrimaryInputsNeverMembers) {
  const Netlist nl = chain(3);
  const Subcircuit sc = extract_subcircuit(nl, nl.find("g1"), 3, 0);
  EXPECT_FALSE(sc.member[nl.find("a")]);
  // The PI is the boundary.
  ASSERT_EQ(sc.boundary_inputs.size(), 1u);
  EXPECT_EQ(sc.boundary_inputs[0], nl.find("a"));
}

TEST(Subcircuit, PoDriverIsOutput) {
  const Netlist nl = chain(3);
  const Subcircuit sc = extract_subcircuit(nl, nl.find("g3"), 1, 1);
  // g3 drives the PO; it must be an output of the window.
  EXPECT_NE(std::find(sc.outputs.begin(), sc.outputs.end(), nl.find("g3")),
            sc.outputs.end());
}

TEST(Subcircuit, MembersAreTopologicallyOrdered) {
  const Netlist nl = circuits::make_cla_adder(16);
  const auto order = topological_order(nl);
  std::vector<std::size_t> pos(nl.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  // Pick an interior gate.
  GateId center = kNoGate;
  for (GateId id = 0; id < nl.node_count(); ++id) {
    if (!nl.is_input(id) && !nl.gate(id).fanins.empty() && !nl.gate(id).fanouts.empty()) {
      center = id;
    }
  }
  ASSERT_NE(center, kNoGate);
  const Subcircuit sc = extract_subcircuit(nl, center, 2, 2);
  for (std::size_t i = 1; i < sc.gates.size(); ++i) {
    EXPECT_LT(pos[sc.gates[i - 1]], pos[sc.gates[i]]);
  }
}

TEST(Subcircuit, ClosureProperty) {
  // Every fanin of a member is either a member or a boundary input.
  const Netlist nl = circuits::make_cla_adder(8);
  for (GateId center = 0; center < nl.node_count(); ++center) {
    if (nl.is_input(center) || nl.is_constant(center)) continue;
    const Subcircuit sc = extract_subcircuit(nl, center, 2, 2);
    std::vector<bool> boundary(nl.node_count(), false);
    for (GateId b : sc.boundary_inputs) boundary[b] = true;
    for (GateId g : sc.gates) {
      for (GateId f : nl.gate(g).fanins) {
        EXPECT_TRUE(sc.member[f] || boundary[f])
            << "gate " << nl.gate(g).name << " fanin " << nl.gate(f).name;
      }
    }
  }
}

TEST(Subcircuit, EveryEscapeIsAnOutput) {
  const Netlist nl = circuits::make_cla_adder(8);
  for (GateId center = 0; center < nl.node_count(); ++center) {
    if (nl.is_input(center) || nl.is_constant(center)) continue;
    const Subcircuit sc = extract_subcircuit(nl, center, 2, 2);
    std::vector<bool> is_output(nl.node_count(), false);
    for (GateId o : sc.outputs) is_output[o] = true;
    for (GateId g : sc.gates) {
      bool escapes = nl.gate(g).po_count > 0 || nl.gate(g).fanouts.empty();
      for (GateId consumer : nl.gate(g).fanouts) {
        if (!sc.member[consumer]) escapes = true;
      }
      EXPECT_EQ(escapes, is_output[g]) << nl.gate(g).name;
    }
  }
}

TEST(Subcircuit, DepthBoundRespected) {
  // No member farther than k edges from the center through the explored
  // direction (checked on the chain where distance is unambiguous).
  const Netlist nl = chain(12);
  const Subcircuit sc = extract_subcircuit(nl, nl.find("g6"), 3, 2);
  EXPECT_TRUE(sc.member[nl.find("g3")]);
  EXPECT_FALSE(sc.member[nl.find("g2")]);
  EXPECT_TRUE(sc.member[nl.find("g8")]);
  EXPECT_FALSE(sc.member[nl.find("g9")]);
}

TEST(Subcircuit, InvalidCenterThrows) {
  const Netlist nl = chain(2);
  EXPECT_THROW(extract_subcircuit(nl, 999, 2, 2), std::out_of_range);
  EXPECT_THROW(extract_subcircuit(nl, nl.find("a"), 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace statsizer::netlist
