#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "bench_format/bench_writer.h"
#include "circuits/generators.h"
#include "core/flow.h"
#include "sta/dsta.h"

namespace statsizer::core {
namespace {

TEST(Flow, LoadUnknownCircuitFails) {
  Flow flow;
  EXPECT_FALSE(flow.load_table1("c17").ok());
  EXPECT_FALSE(flow.has_circuit());
}

TEST(Flow, LoadTable1Circuit) {
  Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  EXPECT_TRUE(flow.has_circuit());
  EXPECT_EQ(flow.netlist().name(), "c432");
  EXPECT_GT(flow.netlist().logic_gate_count(), 100u);
}

TEST(Flow, AnalyzeRequiresCircuit) {
  Flow flow;
  EXPECT_THROW((void)flow.analyze(), std::logic_error);
  EXPECT_THROW((void)flow.run_baseline(), std::logic_error);
  EXPECT_THROW((void)flow.optimize(3.0), std::logic_error);
}

TEST(Flow, LoadBenchFileRoundTrip) {
  const auto nl = circuits::make_ripple_adder(6);
  const std::string path = ::testing::TempDir() + "/rca6.bench";
  ASSERT_TRUE(bench_format::write_bench_file(nl, path).ok());

  Flow flow;
  ASSERT_TRUE(flow.load_bench_file(path).ok());
  EXPECT_EQ(flow.netlist().inputs().size(), nl.inputs().size());
  EXPECT_EQ(flow.netlist().outputs().size(), nl.outputs().size());
  std::remove(path.c_str());
}

TEST(Flow, EndToEndShapeOnC432) {
  Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  const auto baseline = flow.run_baseline();
  EXPECT_LE(baseline.final_arrival_ps, baseline.initial_arrival_ps + 1e-9);

  const opt::CircuitStats original = flow.analyze();
  EXPECT_GT(original.mean_ps, 0.0);
  EXPECT_GT(original.sigma_ps, 0.0);
  EXPECT_GT(original.area_um2, 0.0);
  // Original sigma/mu lands in a plausible band for a shallow circuit.
  EXPECT_GT(original.sigma_over_mu(), 0.01);
  EXPECT_LT(original.sigma_over_mu(), 0.25);

  const OptimizationRecord rec = flow.optimize(9.0);
  // The headline effect: sigma drops, area rises, mean stays in a tight band.
  EXPECT_LT(rec.sigma_change, -0.05);
  EXPECT_GT(rec.area_change, 0.0);
  EXPECT_LT(std::abs(rec.mean_change), 0.25);
  EXPECT_NEAR(rec.before.mean_ps, original.mean_ps, 1e-6);
  // Record is self-consistent with a fresh analysis.
  const opt::CircuitStats after = flow.analyze();
  EXPECT_NEAR(rec.after.sigma_ps, after.sigma_ps, 1e-9);
  EXPECT_GT(rec.runtime_seconds, 0.0);
  // The output pdf in the record reflects the optimized circuit.
  EXPECT_NEAR(rec.output_pdf.mean(), after.mean_ps, 1e-9);
}

TEST(Flow, LambdaZeroDegeneratesToMeanOptimization) {
  Flow flow;
  ASSERT_TRUE(flow.load_table1("alu2").ok());
  (void)flow.run_baseline();
  const auto before = flow.analyze();
  const OptimizationRecord rec = flow.optimize(0.0);
  // Mean never increases under a pure-mean objective.
  EXPECT_LE(rec.after.mean_ps, before.mean_ps + 1e-6);
}

TEST(Flow, CustomVariationParamsFlowThrough) {
  FlowOptions options;
  options.variation.proportional_coeff = 0.05;  // nearly variation-free
  options.variation.random_floor_ps = 0.1;
  Flow quiet(options);
  ASSERT_TRUE(quiet.load_table1("alu2").ok());
  (void)quiet.run_baseline();

  Flow noisy;  // defaults: strong variation
  ASSERT_TRUE(noisy.load_table1("alu2").ok());
  (void)noisy.run_baseline();

  EXPECT_LT(quiet.analyze().sigma_over_mu(), noisy.analyze().sigma_over_mu());
}

TEST(Flow, OptimizeWithOverrides) {
  Flow flow;
  ASSERT_TRUE(flow.load_table1("alu2").ok());
  (void)flow.run_baseline();
  opt::StatisticalSizerOptions overrides;
  overrides.max_iterations = 1;
  const OptimizationRecord rec = flow.optimize(9.0, &overrides);
  EXPECT_LE(rec.iterations, 1u);
  EXPECT_DOUBLE_EQ(rec.lambda, 9.0);
}

TEST(Flow, OptimizeKeepsCallerFullSstaOverrides) {
  // Regression: optimize() used to overwrite overrides->fullssta with the
  // flow's own options after copying the struct, so a caller-supplied pdf
  // resolution silently reverted to the flow default. The record's output
  // pdf is produced by the engines the run actually used, so its size is a
  // direct witness of which options won.
  Flow flow;
  ASSERT_TRUE(flow.load_table1("alu2").ok());
  (void)flow.run_baseline();
  opt::StatisticalSizerOptions overrides;
  overrides.max_iterations = 1;
  overrides.fullssta.samples_per_pdf = 9;  // flow default: 13
  const OptimizationRecord rec = flow.optimize(3.0, &overrides);
  EXPECT_EQ(rec.output_pdf.size(), 9u);
  // And without overrides the flow's own options still apply.
  const OptimizationRecord defaulted = flow.optimize(3.0);
  EXPECT_EQ(defaulted.output_pdf.size(), 13u);
}

TEST(Flow, LoadReplacesCircuit) {
  Flow flow;
  ASSERT_TRUE(flow.load_table1("alu2").ok());
  const std::size_t first = flow.netlist().logic_gate_count();
  ASSERT_TRUE(flow.load_table1("c432").ok());
  EXPECT_NE(flow.netlist().logic_gate_count(), first);
  EXPECT_EQ(flow.netlist().name(), "c432");
}

TEST(Flow, LibraryIsFinalized) {
  Flow flow;
  EXPECT_GE(flow.library().groups().size(), 19u);
  EXPECT_TRUE(flow.library().find_cell("INV_X1").has_value());
}

}  // namespace
}  // namespace statsizer::core
