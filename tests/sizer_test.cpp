#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "liberty/synthetic.h"
#include "opt/area_recovery.h"
#include "opt/initial_sizing.h"
#include "opt/sizer_deterministic.h"
#include "opt/sizer_statistical.h"
#include "sta/dsta.h"
#include "ssta/fullssta.h"
#include "techmap/mapper.h"

namespace statsizer::opt {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n) : nl(std::move(n)) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
  }
};

// ---------------------------------------------------------------------------
// initial sizing
// ---------------------------------------------------------------------------

TEST(InitialSizing, BoundsElectricalFanout) {
  Bench b(circuits::make_cla_adder(16));
  InitialSizingOptions opt;
  opt.target_electrical_fanout = 4.0;
  (void)apply_initial_sizing(*b.ctx, opt);
  // After sizing, no gate that has headroom left should see electrical
  // fanout wildly above target.
  for (GateId id = 0; id < b.nl.node_count(); ++id) {
    if (!b.ctx->has_cell(id)) continue;
    const auto& group = b.lib.group(b.nl.gate(id).cell_group);
    if (b.nl.gate(id).size_index + 1u < group.size_count()) continue;  // saturated
    // saturated gates may exceed target; skip.
  }
  // It converges: re-running changes nothing.
  const auto again = apply_initial_sizing(*b.ctx, opt);
  EXPECT_EQ(again.changed_gates, 0u);
}

TEST(InitialSizing, ReducesCriticalDelayVersusAllMinimum) {
  Bench b(circuits::make_cla_adder(16));
  const double before = run_dsta(*b.ctx).max_arrival_ps;
  (void)apply_initial_sizing(*b.ctx);
  const double after = run_dsta(*b.ctx).max_arrival_ps;
  EXPECT_LT(after, before);
}

// ---------------------------------------------------------------------------
// deterministic (TILOS-style) sizer
// ---------------------------------------------------------------------------

TEST(DeterministicSizer, ImprovesOrHoldsArrival) {
  Bench b(circuits::make_cla_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  const double before = run_dsta(*b.ctx).max_arrival_ps;
  const DeterministicSizerStats stats = size_for_mean_delay(*b.ctx);
  const double after = run_dsta(*b.ctx).max_arrival_ps;
  EXPECT_LE(after, before + 1e-9);
  EXPECT_NEAR(stats.final_arrival_ps, after, 1e-9);
  EXPECT_GE(stats.passes, 1u);
}

TEST(DeterministicSizer, NeverWorsensOnAnyGenerator) {
  const auto try_one = [](Netlist nl) {
    Bench b(std::move(nl));
    (void)apply_initial_sizing(*b.ctx);
    const double before = run_dsta(*b.ctx).max_arrival_ps;
    (void)size_for_mean_delay(*b.ctx);
    EXPECT_LE(run_dsta(*b.ctx).max_arrival_ps, before + 1e-9) << b.nl.name();
  };
  try_one(circuits::make_ripple_adder(12));
  try_one(circuits::make_interrupt_controller(18, 3));
  try_one(circuits::make_hamming_sec(8));
}

// ---------------------------------------------------------------------------
// statistical sizer
// ---------------------------------------------------------------------------

TEST(StatisticalSizer, NeverWorsensObjective) {
  Bench b(circuits::make_cla_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  for (const double lambda : {0.0, 3.0, 9.0}) {
    StatisticalSizerOptions opt;
    opt.objective.lambda = lambda;
    opt.max_iterations = 10;
    const auto full_before = ssta::run_fullssta(*b.ctx);
    const double cost_before =
        full_before.mean_ps + lambda * full_before.sigma_ps;
    const StatisticalSizerStats stats = size_statistically(*b.ctx, opt);
    const auto full_after = ssta::run_fullssta(*b.ctx);
    const double cost_after = full_after.mean_ps + lambda * full_after.sigma_ps;
    EXPECT_LE(cost_after, cost_before + 1e-6) << "lambda " << lambda;
    EXPECT_NEAR(stats.final_.mean_ps, full_after.mean_ps, 1e-9);
  }
}

TEST(StatisticalSizer, HighLambdaReducesSigma) {
  Bench b(circuits::make_cla_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  (void)size_for_mean_delay(*b.ctx);
  AreaRecoveryOptions rec;
  (void)recover_area(*b.ctx, rec);

  const auto before = ssta::run_fullssta(*b.ctx);
  StatisticalSizerOptions opt;
  opt.objective.lambda = 9.0;
  opt.max_iterations = 40;
  (void)size_statistically(*b.ctx, opt);
  const auto after = ssta::run_fullssta(*b.ctx);
  EXPECT_LT(after.sigma_ps, before.sigma_ps);
}

TEST(StatisticalSizer, DeterministicGivenSameStart) {
  const auto run_once = [] {
    Bench b(circuits::make_ripple_adder(8));
    (void)apply_initial_sizing(*b.ctx);
    StatisticalSizerOptions opt;
    opt.objective.lambda = 3.0;
    opt.max_iterations = 8;
    (void)size_statistically(*b.ctx, opt);
    return b.nl.sizes();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(StatisticalSizer, TargetSigmaStopsEarly) {
  Bench b(circuits::make_cla_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  const auto before = ssta::run_fullssta(*b.ctx);
  StatisticalSizerOptions opt;
  opt.objective.lambda = 9.0;
  opt.target_sigma_ps = before.sigma_ps * 10.0;  // trivially satisfied
  const auto stats = size_statistically(*b.ctx, opt);
  EXPECT_TRUE(stats.constraints_met);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(StatisticalSizer, SubcircuitScoringModeRuns) {
  Bench b(circuits::make_ripple_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  StatisticalSizerOptions opt;
  opt.objective.lambda = 3.0;
  opt.scoring = InnerScoring::kSubcircuit;
  opt.max_iterations = 6;
  const auto full_before = ssta::run_fullssta(*b.ctx);
  const double cost_before = full_before.mean_ps + 3.0 * full_before.sigma_ps;
  (void)size_statistically(*b.ctx, opt);
  const auto full_after = ssta::run_fullssta(*b.ctx);
  EXPECT_LE(full_after.mean_ps + 3.0 * full_after.sigma_ps, cost_before + 1e-6);
}

TEST(StatisticalSizer, CountsEvaluations) {
  Bench b(circuits::make_ripple_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  StatisticalSizerOptions opt;
  opt.objective.lambda = 3.0;
  opt.max_iterations = 3;
  const auto stats = size_statistically(*b.ctx, opt);
  if (stats.iterations > 0) {
    EXPECT_GT(stats.fassta_evaluations, 0u);
  }
}

// ---------------------------------------------------------------------------
// area recovery
// ---------------------------------------------------------------------------

TEST(AreaRecovery, RecoversAreaWithinDeterministicBudget) {
  Bench b(circuits::make_cla_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  (void)size_for_mean_delay(*b.ctx);
  const double arrival_before = run_dsta(*b.ctx).max_arrival_ps;

  AreaRecoveryOptions opt;
  opt.criterion = RecoveryCriterion::kDeterministicArrival;
  opt.tolerance = 0.01;
  const AreaRecoveryStats stats = recover_area(*b.ctx, opt);
  EXPECT_LE(stats.area_after_um2, stats.area_before_um2);
  EXPECT_GT(stats.downsizes, 0u);
  EXPECT_LE(run_dsta(*b.ctx).max_arrival_ps, arrival_before * 1.0101);
}

TEST(AreaRecovery, StatisticalCriterionGuardsCost) {
  Bench b(circuits::make_ripple_adder(8));
  (void)apply_initial_sizing(*b.ctx);
  fassta::Engine engine(*b.ctx);
  sta::NodeMoments before;
  (void)engine.run(&before);
  AreaRecoveryOptions opt;
  opt.criterion = RecoveryCriterion::kStatisticalCost;
  opt.objective.lambda = 3.0;
  opt.tolerance = 0.02;
  (void)recover_area(*b.ctx, opt);
  sta::NodeMoments after;
  (void)engine.run(&after);
  const double cost_before = before.mean_ps + 3.0 * before.sigma_ps;
  const double cost_after = after.mean_ps + 3.0 * after.sigma_ps;
  EXPECT_LE(cost_after, cost_before * 1.0201);
}

TEST(AreaRecovery, NoopWhenEverythingAtMinimum) {
  Bench b(circuits::make_ripple_adder(4));  // mapped at smallest sizes
  AreaRecoveryOptions opt;
  const AreaRecoveryStats stats = recover_area(*b.ctx, opt);
  EXPECT_EQ(stats.downsizes, 0u);
  EXPECT_DOUBLE_EQ(stats.area_before_um2, stats.area_after_um2);
}

}  // namespace
}  // namespace statsizer::opt
