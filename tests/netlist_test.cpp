#include <algorithm>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "netlist/netlist.h"
#include "netlist/topo.h"

namespace statsizer::netlist {
namespace {

Netlist small_and_or() {
  // y = (a & b) | c
  Netlist nl("small");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c = nl.add_input("c");
  const GateId g1 = nl.add_gate(GateFunc::kAnd, {a, b}, "g1");
  const GateId g2 = nl.add_gate(GateFunc::kOr, {g1, c}, "g2");
  nl.add_output("y", g2);
  return nl;
}

TEST(Netlist, ConstructionBasics) {
  const Netlist nl = small_and_or();
  EXPECT_EQ(nl.node_count(), 5u);
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.logic_gate_count(), 2u);
  EXPECT_TRUE(nl.check().ok());
}

TEST(Netlist, NameLookup) {
  const Netlist nl = small_and_or();
  EXPECT_NE(nl.find("g1"), kNoGate);
  EXPECT_NE(nl.find("a"), kNoGate);
  EXPECT_EQ(nl.find("nonexistent"), kNoGate);
  EXPECT_EQ(nl.gate(nl.find("g1")).func, GateFunc::kAnd);
}

TEST(Netlist, FanoutListsMaintained) {
  const Netlist nl = small_and_or();
  const GateId a = nl.find("a");
  const GateId g1 = nl.find("g1");
  ASSERT_EQ(nl.gate(a).fanouts.size(), 1u);
  EXPECT_EQ(nl.gate(a).fanouts[0], g1);
  EXPECT_EQ(nl.gate(g1).fanouts.size(), 1u);
}

TEST(Netlist, DuplicateNamesRejected) {
  Netlist nl;
  (void)nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::invalid_argument);
}

TEST(Netlist, AutoNamesAreUnique) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateFunc::kInv, {a});
  const GateId g2 = nl.add_gate(GateFunc::kInv, {a});
  EXPECT_NE(nl.gate(g1).name, nl.gate(g2).name);
}

TEST(Netlist, ArityValidation) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateFunc::kInv, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateFunc::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateFunc::kMux2, {a, a}), std::invalid_argument);
  EXPECT_NO_THROW(nl.add_gate(GateFunc::kAnd, {a, a, a, a, a}));  // wide pre-map OK
}

TEST(Netlist, OutputBookkeeping) {
  Netlist nl = small_and_or();
  const GateId g2 = nl.find("g2");
  EXPECT_EQ(nl.gate(g2).po_count, 1u);
  nl.add_output("y2", g2);
  EXPECT_EQ(nl.gate(g2).po_count, 2u);
}

TEST(Netlist, RewireMaintainsEdges) {
  Netlist nl = small_and_or();
  const GateId c = nl.find("c");
  const GateId g1 = nl.find("g1");
  const GateId g2 = nl.find("g2");
  // g2 becomes AND(g1, c) instead of OR.
  const GateId fanins[] = {g1, c};
  nl.rewire(g2, GateFunc::kAnd, fanins);
  EXPECT_TRUE(nl.check().ok());
  EXPECT_EQ(nl.gate(g2).func, GateFunc::kAnd);
}

TEST(Netlist, RewireRemovesStaleBackEdges) {
  Netlist nl = small_and_or();
  const GateId a = nl.find("a");
  const GateId b = nl.find("b");
  const GateId g2 = nl.find("g2");
  const GateId fanins[] = {a, b};
  nl.rewire(g2, GateFunc::kNand, fanins);
  EXPECT_TRUE(nl.check().ok());
  // g1 no longer feeds g2.
  const GateId g1 = nl.find("g1");
  EXPECT_TRUE(nl.gate(g1).fanouts.empty());
}

TEST(Netlist, TransferFanouts) {
  Netlist nl = small_and_or();
  const GateId a = nl.find("a");
  const GateId g1 = nl.find("g1");
  const GateId buf = nl.add_gate(GateFunc::kBuf, {a}, "buf");
  nl.transfer_fanouts(g1, buf);
  EXPECT_TRUE(nl.check().ok());
  EXPECT_TRUE(nl.gate(g1).fanouts.empty());
  const GateId g2 = nl.find("g2");
  EXPECT_EQ(nl.gate(g2).fanins[0], buf);
}

TEST(Netlist, SizesSnapshotRoundTrip) {
  Netlist nl = small_and_or();
  nl.gate(nl.find("g1")).size_index = 3;
  const auto snapshot = nl.sizes();
  nl.gate(nl.find("g1")).size_index = 0;
  nl.set_sizes(snapshot);
  EXPECT_EQ(nl.gate(nl.find("g1")).size_index, 3);
  std::vector<std::uint16_t> wrong(2, 0);
  EXPECT_THROW(nl.set_sizes(wrong), std::invalid_argument);
}

TEST(FuncMeta, Names) {
  EXPECT_EQ(func_name(GateFunc::kNand), "NAND");
  EXPECT_EQ(func_name(GateFunc::kAoi21), "AOI21");
}

TEST(FuncMeta, InvertingClassification) {
  EXPECT_TRUE(is_inverting(GateFunc::kInv));
  EXPECT_TRUE(is_inverting(GateFunc::kNor));
  EXPECT_TRUE(is_inverting(GateFunc::kOai21));
  EXPECT_FALSE(is_inverting(GateFunc::kAnd));
  EXPECT_FALSE(is_inverting(GateFunc::kMux2));
  EXPECT_FALSE(is_inverting(GateFunc::kBuf));
}

// ---------------------------------------------------------------------------
// topological utilities
// ---------------------------------------------------------------------------

TEST(Topo, OrderRespectsEdges) {
  const Netlist nl = small_and_or();
  const auto order = topological_order(nl);
  ASSERT_EQ(order.size(), nl.node_count());
  std::vector<std::size_t> pos(nl.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId id = 0; id < nl.node_count(); ++id) {
    for (GateId f : nl.gate(id).fanins) {
      EXPECT_LT(pos[f], pos[id]);
    }
  }
}

TEST(Topo, Levels) {
  const Netlist nl = small_and_or();
  const auto lv = levels(nl);
  EXPECT_EQ(lv[nl.find("a")], 0u);
  EXPECT_EQ(lv[nl.find("g1")], 1u);
  EXPECT_EQ(lv[nl.find("g2")], 2u);
  EXPECT_EQ(depth(nl), 2u);
}

TEST(Topo, ObservableMask) {
  Netlist nl = small_and_or();
  const GateId a = nl.find("a");
  const GateId dangling = nl.add_gate(GateFunc::kInv, {a}, "dangling");
  const auto mask = observable_mask(nl);
  EXPECT_TRUE(mask[nl.find("g2")]);
  EXPECT_TRUE(mask[nl.find("g1")]);
  EXPECT_TRUE(mask[a]);
  EXPECT_FALSE(mask[dangling]);
}

TEST(Topo, EmptyNetlist) {
  const Netlist nl;
  EXPECT_TRUE(is_acyclic(nl));
  EXPECT_EQ(depth(nl), 0u);
  EXPECT_TRUE(topological_order(nl).empty());
}

// -- Levelization: the wavefront decomposition's structural invariants -------

std::vector<Netlist> levelization_corpus() {
  std::vector<Netlist> corpus;
  corpus.push_back(small_and_or());
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    circuits::RandomDagOptions opt;
    opt.n_inputs = 6;
    opt.n_gates = 80;
    opt.n_outputs = 5;
    opt.seed = seed;
    corpus.push_back(circuits::make_random_dag(opt));
  }
  return corpus;
}

TEST(Levelization, EveryEdgeGoesStrictlyLevelUp) {
  // The property the wavefront kernels rest on: a gate's fanins all live in
  // strictly lower levels, so gates inside one level never feed each other.
  for (const Netlist& nl : levelization_corpus()) {
    SCOPED_TRACE(nl.name());
    const Levelization lv = levelize(nl);
    for (GateId id = 0; id < nl.node_count(); ++id) {
      for (GateId f : nl.gate(id).fanins) {
        EXPECT_LT(lv.level_of[f], lv.level_of[id]);
      }
    }
    // And level_of matches the levels() definition exactly.
    EXPECT_EQ(lv.level_of, levels(nl));
  }
}

TEST(Levelization, LevelBucketsPartitionTheNodeSet) {
  for (const Netlist& nl : levelization_corpus()) {
    SCOPED_TRACE(nl.name());
    const Levelization lv = levelize(nl);
    ASSERT_EQ(lv.level_offset.size(), lv.level_count() + 1);
    EXPECT_EQ(lv.level_offset.front(), 0u);
    EXPECT_EQ(lv.level_offset.back(), nl.node_count());
    std::vector<std::size_t> seen(nl.node_count(), 0);
    for (std::size_t l = 0; l < lv.level_count(); ++l) {
      EXPECT_FALSE(lv.level(l).empty()) << "empty level " << l;
      for (const GateId id : lv.level(l)) {
        EXPECT_EQ(lv.level_of[id], l);
        ++seen[id];
      }
    }
    // Every node appears in exactly one bucket.
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](std::size_t c) { return c == 1; }));
  }
}

TEST(Levelization, OrderByLevelIsStablePartitionOfTopoOrder) {
  for (const Netlist& nl : levelization_corpus()) {
    SCOPED_TRACE(nl.name());
    const Levelization lv = levelize(nl);
    const std::vector<GateId> topo = topological_order(nl);
    ASSERT_EQ(lv.order_by_level.size(), topo.size());
    // Permutation of the topo order...
    std::vector<GateId> a = lv.order_by_level;
    std::vector<GateId> b = topo;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    // ...and stable: each bucket is the topo order filtered to that level.
    std::size_t cursor = 0;
    for (std::size_t l = 0; l < lv.level_count(); ++l) {
      for (const GateId id : topo) {
        if (lv.level_of[id] == l) EXPECT_EQ(lv.order_by_level[cursor++], id);
      }
    }
  }
}

TEST(Levelization, CacheInvalidatedByGateInsertionNotBySizing) {
  Netlist nl = small_and_or();
  const Levelization lv = levelize(nl);
  EXPECT_TRUE(lv.valid_for(nl));

  // Sizing is not structure: the levelization stays valid.
  nl.gate(nl.find("g1")).size_index = 3;
  EXPECT_TRUE(lv.valid_for(nl));

  // Gate insertion is: the cached levelization must fail validation...
  const GateId inv = nl.add_gate(GateFunc::kInv, {nl.find("g2")}, "late_inv");
  EXPECT_FALSE(lv.valid_for(nl));
  // ...and a rebuild covers the new node and is valid again.
  const Levelization fresh = levelize(nl);
  EXPECT_TRUE(fresh.valid_for(nl));
  EXPECT_EQ(fresh.level_of[inv], fresh.level_of[nl.find("g2")] + 1);

  // Rewire and output declaration are structural edits too.
  const Levelization before_rewire = levelize(nl);
  nl.rewire(inv, GateFunc::kInv, std::vector<GateId>{nl.find("g1")});
  EXPECT_FALSE(before_rewire.valid_for(nl));
  const Levelization before_output = levelize(nl);
  nl.add_output("z", inv);
  EXPECT_FALSE(before_output.valid_for(nl));
}

TEST(Levelization, EmptyNetlist) {
  const Levelization lv = levelize(Netlist{});
  EXPECT_EQ(lv.level_count(), 0u);
  EXPECT_TRUE(lv.order_by_level.empty());
}

}  // namespace
}  // namespace statsizer::netlist
