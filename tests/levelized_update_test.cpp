// Wavefront propagation pins (ISSUE 5): TimingContext::update() and
// ssta::run_fullssta must be bitwise-identical across thread counts
// {1, 2, 8, 0} AND bitwise-identical to the pre-PR serial implementations,
// on cla_adder(8), parity_fabric(16), c432, and c880. The "pre-PR serial
// implementation" is reproduced here from first principles through the
// public API only (the same NLDM lookups, the same accumulation orders), so
// a regression in either the serial path or the wavefront path fails
// loudly. The what-if cone replay (the third wavefront kernel) is pinned
// through a parallel-context FULLSSTA speculation against a serial-context
// reference.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "circuits/iscas_suite.h"
#include "liberty/synthetic.h"
#include "netlist/topo.h"
#include "pdf/discrete_pdf.h"
#include "ssta/fullssta.h"
#include "sta/graph.h"
#include "techmap/mapper.h"
#include "timing/analyzer.h"

namespace statsizer {
namespace {

using netlist::GateId;
using netlist::Netlist;
using pdf::DiscretePdf;

/// Wide balanced XOR fabric (mirrors sizer_parallel_test): wide levels,
/// thousands of near-identical paths — the case the wavefront fans widest.
Netlist parity_fabric(unsigned width) {
  circuits::Builder b("parity" + std::to_string(width));
  const auto xs = b.bus("x", width);
  b.output("p", b.xor_tree(xs));
  return b.take();
}

Netlist circuit_for(int kind) {
  switch (kind) {
    case 0: return circuits::make_cla_adder(8);
    case 1: return parity_fabric(16);
    case 2: return circuits::make_table1_circuit("c432");
    default: return circuits::make_table1_circuit("c880");
  }
}

const char* circuit_name(int kind) {
  switch (kind) {
    case 0: return "cla_adder8";
    case 1: return "parity_fabric16";
    case 2: return "c432";
    default: return "c880";
  }
}

/// Mapped circuit + context under explicit TimingOptions. A deterministic
/// size staircase (gate id mod the group's size count) gives every run the
/// same non-trivial mix of loads and slews without an optimizer pass.
struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n, sta::TimingOptions topt = {}) : nl(std::move(n)) {
    const Status s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    for (GateId g = 0; g < nl.node_count(); ++g) {
      auto& gate = nl.gate(g);
      if (gate.cell_group == netlist::kUnmapped) continue;
      const auto& group = lib.group(gate.cell_group);
      gate.size_index = static_cast<std::uint16_t>(g % group.size_count());
    }
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, topt);
  }
};

// ---------------------------------------------------------------------------
// The pre-PR serial reference, reproduced through the public API.
// ---------------------------------------------------------------------------

struct RefSnapshot {
  std::vector<double> load;
  std::vector<double> slew;
  std::vector<double> arc_delay;  ///< flattened in (gate, arc) order
  std::vector<double> arc_sigma;
  double area_um2 = 0.0;
};

/// Mirrors the pre-wavefront TimingContext::update() operation for
/// operation: one id-ordered pass accumulating loads (and the area), then
/// the Kahn-ordered slew/arc sweep.
RefSnapshot reference_update(const Netlist& nl, const liberty::Library& lib,
                             const sta::TimingContext& ctx) {
  const sta::TimingOptions& opt = ctx.options();
  const std::size_t n = nl.node_count();
  RefSnapshot ref;
  ref.load.assign(n, 0.0);
  ref.slew.assign(n, opt.primary_input_slew_ps);

  for (GateId id = 0; id < n; ++id) {
    const auto& g = nl.gate(id);
    if (g.po_count > 0) ref.load[id] += opt.primary_output_load_ff * g.po_count;
    if (g.cell_group == netlist::kUnmapped) continue;
    const liberty::Cell& c = lib.cell_for(g.cell_group, g.size_index);
    ref.area_um2 += c.area_um2;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      ref.load[g.fanins[i]] += c.input_cap_ff(i);
    }
  }

  std::vector<std::vector<double>> delay(n), sigma(n);
  for (const GateId id : netlist::topological_order(nl)) {
    const auto& g = nl.gate(id);
    delay[id].assign(g.fanins.size(), 0.0);
    sigma[id].assign(g.fanins.size(), 0.0);
    if (g.cell_group == netlist::kUnmapped) continue;
    const liberty::Cell& c = lib.cell_for(g.cell_group, g.size_index);
    const double load = ref.load[id];
    double out_slew = 0.0;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const liberty::TimingArc& arc = c.arc_from(i);
      const double in_slew = ref.slew[g.fanins[i]];
      const double d = arc.delay(in_slew, load);
      delay[id][i] = d;
      sigma[id][i] = ctx.sigma_for(c, d);
      out_slew = std::max(out_slew, arc.output_slew(in_slew, load));
    }
    ref.slew[id] = out_slew;
  }
  for (GateId id = 0; id < n; ++id) {
    ref.arc_delay.insert(ref.arc_delay.end(), delay[id].begin(), delay[id].end());
    ref.arc_sigma.insert(ref.arc_sigma.end(), sigma[id].begin(), sigma[id].end());
  }
  return ref;
}

/// Mirrors the pre-wavefront ssta::run_fullssta: the serial topo-order pdf
/// propagation and the output-order RV_O max fold.
ssta::FullSstaResult reference_fullssta(const sta::TimingContext& ctx,
                                        const ssta::FullSstaOptions& options) {
  const auto& nl = ctx.netlist();
  const std::size_t samples = options.samples_per_pdf;

  ssta::FullSstaResult result;
  result.node.assign(nl.node_count(), sta::NodeMoments{});
  std::vector<DiscretePdf> arrival(nl.node_count(), DiscretePdf::point(0.0));
  for (const GateId id : netlist::topological_order(nl)) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) continue;
    DiscretePdf acc;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const DiscretePdf delay = DiscretePdf::normal(
          ctx.arc_delay_ps(id, i), ctx.arc_sigma_ps(id, i), samples, options.span_sigmas);
      const DiscretePdf through = pdf::sum(arrival[g.fanins[i]], delay, samples);
      acc = (i == 0) ? through : pdf::max(acc, through, samples);
    }
    result.node[id] = sta::NodeMoments{acc.mean(), acc.stddev()};
    arrival[id] = std::move(acc);
  }
  DiscretePdf out = DiscretePdf::point(0.0);
  bool first = true;
  for (const auto& po : nl.outputs()) {
    out = first ? arrival[po.driver] : pdf::max(out, arrival[po.driver], samples);
    first = false;
  }
  result.output_pdf = std::move(out);
  result.mean_ps = result.output_pdf.mean();
  result.sigma_ps = result.output_pdf.stddev();
  if (options.keep_node_pdfs) result.node_pdf = std::move(arrival);
  return result;
}

// EXPECT_EQ on doubles throughout: the contract is exact bitwise identity,
// not ULP closeness.

void expect_snapshot_equals_reference(const sta::TimingContext& ctx, const RefSnapshot& ref) {
  const auto& nl = ctx.netlist();
  EXPECT_EQ(ctx.area_um2(), ref.area_um2);
  for (GateId id = 0; id < nl.node_count(); ++id) {
    EXPECT_EQ(ctx.load_ff(id), ref.load[id]) << "load of node " << id;
    EXPECT_EQ(ctx.slew_ps(id), ref.slew[id]) << "slew of node " << id;
    for (std::size_t i = 0; i < nl.gate(id).fanins.size(); ++i) {
      EXPECT_EQ(ctx.arc_delay_ps(id, i), ref.arc_delay[ctx.arc_offset(id) + i])
          << "arc delay (" << id << ", " << i << ")";
      EXPECT_EQ(ctx.arc_sigma_ps(id, i), ref.arc_sigma[ctx.arc_offset(id) + i])
          << "arc sigma (" << id << ", " << i << ")";
    }
  }
}

void expect_pdf_eq(const DiscretePdf& a, const DiscretePdf& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.origin(), b.origin());
  EXPECT_EQ(a.step(), b.step());
  EXPECT_EQ(a.masses(), b.masses());
}

void expect_fullssta_eq(const ssta::FullSstaResult& a, const ssta::FullSstaResult& b) {
  EXPECT_EQ(a.mean_ps, b.mean_ps);
  EXPECT_EQ(a.sigma_ps, b.sigma_ps);
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t i = 0; i < a.node.size(); ++i) {
    EXPECT_EQ(a.node[i].mean_ps, b.node[i].mean_ps) << "node " << i;
    EXPECT_EQ(a.node[i].sigma_ps, b.node[i].sigma_ps) << "node " << i;
  }
  expect_pdf_eq(a.output_pdf, b.output_pdf);
  ASSERT_EQ(a.node_pdf.size(), b.node_pdf.size());
  for (std::size_t i = 0; i < a.node_pdf.size(); ++i) {
    expect_pdf_eq(a.node_pdf[i], b.node_pdf[i]);
  }
}

class LevelizedUpdate : public ::testing::TestWithParam<int> {};

TEST_P(LevelizedUpdate, UpdateMatchesPrePrSerialReferenceAcrossThreadCounts) {
  const Bench serial(circuit_for(GetParam()));
  const RefSnapshot ref = reference_update(serial.nl, serial.lib, *serial.ctx);
  expect_snapshot_equals_reference(*serial.ctx, ref);

  for (const std::size_t threads : {2u, 8u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    sta::TimingOptions topt;
    topt.threads = threads;
    const Bench parallel(circuit_for(GetParam()), topt);
    expect_snapshot_equals_reference(*parallel.ctx, ref);
  }
}

TEST_P(LevelizedUpdate, ForcedWavefrontAndSerialFallbackMatch) {
  const Bench serial(circuit_for(GetParam()));
  const RefSnapshot ref = reference_update(serial.nl, serial.lib, *serial.ctx);

  // Cutoff 1: every level pays the wavefront dispatch, even single-gate ones.
  sta::TimingOptions forced;
  forced.threads = 8;
  forced.min_level_width_for_parallel = 1;
  const Bench wavefront(circuit_for(GetParam()), forced);
  expect_snapshot_equals_reference(*wavefront.ctx, ref);

  // Cutoff huge: threads > 1 but every level falls back to the serial loop
  // (the tiny-circuit guard).
  sta::TimingOptions guarded;
  guarded.threads = 8;
  guarded.min_level_width_for_parallel = SIZE_MAX;
  const Bench fallback(circuit_for(GetParam()), guarded);
  expect_snapshot_equals_reference(*fallback.ctx, ref);
}

TEST_P(LevelizedUpdate, FullSstaMatchesPrePrSerialReferenceAcrossThreadCounts) {
  const Bench b(circuit_for(GetParam()));
  ssta::FullSstaOptions opt;
  opt.keep_node_pdfs = true;
  const ssta::FullSstaResult ref = reference_fullssta(*b.ctx, opt);

  for (const std::size_t threads : {1u, 2u, 8u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ssta::FullSstaOptions topt = opt;
    topt.threads = threads;
    expect_fullssta_eq(ssta::run_fullssta(*b.ctx, topt), ref);
  }

  // Forced wavefront on a context whose cutoff admits every level.
  sta::TimingOptions forced;
  forced.min_level_width_for_parallel = 1;
  const Bench wide(circuit_for(GetParam()), forced);
  ssta::FullSstaOptions topt = opt;
  topt.threads = 8;
  expect_fullssta_eq(ssta::run_fullssta(*wide.ctx, topt), ref);
}

TEST_P(LevelizedUpdate, ContextCachesAValidLevelization) {
  const Bench b(circuit_for(GetParam()));
  const netlist::Levelization& lv = b.ctx->levelization();
  EXPECT_TRUE(lv.valid_for(b.nl));
  const netlist::Levelization fresh = netlist::levelize(b.nl);
  EXPECT_EQ(lv.level_of, fresh.level_of);
  EXPECT_EQ(lv.level_offset, fresh.level_offset);
  EXPECT_EQ(lv.order_by_level, fresh.order_by_level);
}

INSTANTIATE_TEST_SUITE_P(Circuits, LevelizedUpdate, ::testing::Values(0, 1, 2, 3),
                         [](const auto& info) { return circuit_name(info.param); });

// The context's derived structure (topo order, levelization, load-term
// lists) is frozen at construction; a structural edit afterwards must make
// update() fail loudly instead of folding stale term lists silently.
TEST(LevelizedUpdate, UpdateThrowsAfterStructuralNetlistEdit) {
  Bench b(circuits::make_cla_adder(8));
  b.ctx->update();  // still structurally valid: fine
  b.nl.add_output("late_po", b.nl.outputs()[0].driver);
  EXPECT_THROW(b.ctx->update(), std::logic_error);
}

// The third wavefront kernel: the what-if cone replay (timing/cone.cpp) and
// the FULLSSTA analyzer's pdf half. A multi-resize speculation scored on a
// parallel-everything configuration must match the all-serial one bitwise —
// score AND committed base.
TEST(LevelizedWhatIf, ParallelConeReplayMatchesSerial) {
  const auto run = [](std::size_t threads) {
    sta::TimingOptions topt;
    topt.threads = threads;
    topt.min_level_width_for_parallel = threads == 1 ? 16 : 1;
    Bench b(circuits::make_cla_adder(8), topt);

    timing::AnalyzerOptions aopt;
    aopt.fullssta.threads = threads;
    const auto analyzer = timing::make_analyzer("fullssta", aopt);
    (void)analyzer->analyze(*b.ctx);

    // A deterministic multi-resize wave: bump the first 6 mapped gates.
    std::vector<timing::Resize> wave;
    for (GateId g = 0; g < b.nl.node_count() && wave.size() < 6; ++g) {
      if (!b.ctx->has_cell(g)) continue;
      const auto& group = b.lib.group(b.nl.gate(g).cell_group);
      const std::uint16_t next = static_cast<std::uint16_t>(
          (b.nl.gate(g).size_index + 1) % group.size_count());
      wave.push_back(timing::Resize{g, next});
    }
    auto spec = analyzer->propose_resizes(wave);
    const double score_mean = spec->score().mean_ps;
    const double score_sigma = spec->score().sigma_ps;
    spec->commit();
    const timing::Summary& base = analyzer->current();
    return std::tuple(score_mean, score_sigma, base.mean_ps, base.sigma_ps, b.nl.sizes());
  };

  const auto ref = run(1);
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run(threads), ref);
  }
}

}  // namespace
}  // namespace statsizer