#include <cmath>

#include <gtest/gtest.h>

#include "fassta/clark.h"
#include "util/rng.h"
#include "util/numeric.h"

namespace statsizer::fassta {
namespace {

// ---------------------------------------------------------------------------
// exact Clark vs theory and Monte Carlo
// ---------------------------------------------------------------------------

TEST(ClarkExact, IidStandardNormals) {
  // max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
  const ClarkResult r = clark_max_exact(0.0, 1.0, 0.0, 1.0);
  EXPECT_NEAR(r.mean, 1.0 / std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(r.var, 1.0 - 1.0 / M_PI, 1e-12);
  EXPECT_NEAR(r.tightness, 0.5, 1e-12);
}

TEST(ClarkExact, StrongDominance) {
  const ClarkResult r = clark_max_exact(100.0, 2.0, 10.0, 5.0);
  EXPECT_NEAR(r.mean, 100.0, 1e-6);
  EXPECT_NEAR(r.var, 4.0, 1e-4);
  EXPECT_NEAR(r.tightness, 1.0, 1e-9);
}

TEST(ClarkExact, SymmetricInArguments) {
  const ClarkResult ab = clark_max_exact(10.0, 3.0, 12.0, 4.0);
  const ClarkResult ba = clark_max_exact(12.0, 4.0, 10.0, 3.0);
  EXPECT_NEAR(ab.mean, ba.mean, 1e-12);
  EXPECT_NEAR(ab.var, ba.var, 1e-12);
  EXPECT_NEAR(ab.tightness, 1.0 - ba.tightness, 1e-12);
}

class ClarkMonteCarloTest
    : public ::testing::TestWithParam<std::tuple<double, double, double, double>> {};

TEST_P(ClarkMonteCarloTest, MatchesSampling) {
  const auto [mu_a, sig_a, mu_b, sig_b] = GetParam();
  const ClarkResult r = clark_max_exact(mu_a, sig_a, mu_b, sig_b);
  util::Rng rng(1234);
  util::RunningStats mc;
  for (int i = 0; i < 400000; ++i) {
    mc.add(std::max(rng.normal(mu_a, sig_a), rng.normal(mu_b, sig_b)));
  }
  EXPECT_NEAR(r.mean, mc.mean(), 0.05 * std::max(1.0, sig_a + sig_b));
  EXPECT_NEAR(std::sqrt(r.var), mc.stddev(), 0.02 * std::max(1.0, sig_a + sig_b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClarkMonteCarloTest,
    ::testing::Values(std::make_tuple(0.0, 1.0, 0.0, 1.0),
                      std::make_tuple(10.0, 2.0, 11.0, 2.0),
                      std::make_tuple(10.0, 5.0, 14.0, 1.0),
                      std::make_tuple(50.0, 1.0, 40.0, 8.0),
                      std::make_tuple(0.0, 3.0, 0.5, 0.2),
                      std::make_tuple(-5.0, 2.0, 5.0, 2.0)));

TEST(ClarkExact, CorrelatedInputs) {
  // With rho = 1 and equal sigmas the max is simply the larger-mean input.
  const ClarkResult r = clark_max_exact(10.0, 2.0, 12.0, 2.0, 1.0);
  EXPECT_NEAR(r.mean, 12.0, 1e-9);
  EXPECT_NEAR(r.var, 4.0, 1e-9);
  // MC check at rho = 0.6.
  const double rho = 0.6;
  const ClarkResult c = clark_max_exact(20.0, 3.0, 21.0, 4.0, rho);
  util::Rng rng(9);
  util::RunningStats mc;
  for (int i = 0; i < 400000; ++i) {
    const double z1 = rng.normal();
    const double z2 = rho * z1 + std::sqrt(1 - rho * rho) * rng.normal();
    mc.add(std::max(20.0 + 3.0 * z1, 21.0 + 4.0 * z2));
  }
  EXPECT_NEAR(c.mean, mc.mean(), 0.05);
  EXPECT_NEAR(std::sqrt(c.var), mc.stddev(), 0.05);
}

TEST(ClarkExact, DegenerateBothDeterministic) {
  const ClarkResult r = clark_max_exact(5.0, 0.0, 7.0, 0.0);
  EXPECT_DOUBLE_EQ(r.mean, 7.0);
  EXPECT_DOUBLE_EQ(r.var, 0.0);
}

// ---------------------------------------------------------------------------
// the paper's fast max
// ---------------------------------------------------------------------------

TEST(ClarkFast, DominanceEarlyOut) {
  // |alpha| >= 2.6 -> the dominant input's moments pass through exactly.
  const ClarkResult r = clark_max_fast(100.0, 3.0, 50.0, 4.0);
  EXPECT_DOUBLE_EQ(r.mean, 100.0);
  EXPECT_DOUBLE_EQ(r.var, 9.0);
  const ClarkResult r2 = clark_max_fast(50.0, 4.0, 100.0, 3.0);
  EXPECT_DOUBLE_EQ(r2.mean, 100.0);
  EXPECT_DOUBLE_EQ(r2.var, 9.0);
}

TEST(ClarkFast, CloseToExactInOverlapRegion) {
  // The paper claims the quadratic erf approximation is accurate to two
  // decimals; the resulting max moments should track exact Clark within a
  // few percent of the combined sigma across the whole overlap region.
  for (double dmu = -2.5; dmu <= 2.5; dmu += 0.25) {
    for (double sb : {0.5, 1.0, 2.0}) {
      const ClarkResult fast = clark_max_fast(0.0, 1.0, dmu, sb);
      const ClarkResult exact = clark_max_exact(0.0, 1.0, dmu, sb);
      const double scale = std::sqrt(1.0 + sb * sb);
      EXPECT_NEAR(fast.mean, exact.mean, 0.04 * scale) << dmu << " " << sb;
      EXPECT_NEAR(std::sqrt(fast.var), std::sqrt(exact.var), 0.08 * scale)
          << dmu << " " << sb;
    }
  }
}

TEST(Dominance, ThresholdBehaviour) {
  // alpha = (mu_a - mu_b) / sqrt(sig_a^2 + sig_b^2).
  EXPECT_EQ(dominance(26.0, 3.0, 0.0, 4.0), +1);   // alpha = 5.2
  EXPECT_EQ(dominance(0.0, 3.0, 26.0, 4.0), -1);
  EXPECT_EQ(dominance(1.0, 3.0, 0.0, 4.0), 0);
  // Exactly at threshold: 2.6 * 5 = 13.
  EXPECT_EQ(dominance(13.0, 3.0, 0.0, 4.0), +1);
  EXPECT_EQ(dominance(12.9, 3.0, 0.0, 4.0), 0);
  // Custom threshold.
  EXPECT_EQ(dominance(12.9, 3.0, 0.0, 4.0, 2.0), +1);
}

TEST(Dominance, DeterministicFallback) {
  EXPECT_EQ(dominance(5.0, 0.0, 3.0, 0.0), +1);
  EXPECT_EQ(dominance(3.0, 0.0, 5.0, 0.0), -1);
}

// ---------------------------------------------------------------------------
// finite-difference variance sensitivity (paper section 4.4)
// ---------------------------------------------------------------------------

TEST(VarSensitivity, MatchesAnalyticDerivativeWithoutCoupling) {
  // With c = 0 (no sigma coupling) the FD approximates dVar/dmu_a directly;
  // compare against a central difference of exact Clark.
  const double mu_a = 10.0, sig_a = 3.0, mu_b = 11.0, sig_b = 2.0;
  const double fd = max_var_sensitivity_mu_a(mu_a, sig_a, mu_b, sig_b, 0.01, 0.0,
                                             /*use_fast=*/false);
  const double h = 1e-4;
  const double analytic = (clark_max_exact(mu_a + h, sig_a, mu_b, sig_b).var -
                           clark_max_exact(mu_a - h, sig_a, mu_b, sig_b).var) /
                          (2 * h);
  EXPECT_NEAR(fd, analytic, std::abs(analytic) * 0.05 + 0.01);
}

TEST(VarSensitivity, CouplingTermAddsSigmaEffect) {
  // With coupling c > 0 the sensitivity includes dVar/dsigma_a * c, which for
  // a fat input is strongly positive.
  const double plain = max_var_sensitivity_mu_a(10.0, 3.0, 11.0, 2.0, 0.01, 0.0, false);
  const double coupled = max_var_sensitivity_mu_a(10.0, 3.0, 11.0, 2.0, 0.01, 0.3, false);
  EXPECT_GT(coupled, plain);
}

TEST(VarSensitivity, FatterLowerMeanInputCanDominate) {
  // The paper's motivating point (Fig. 3): a lower-mean input with a fat
  // sigma can be more responsible for output variance than the higher-mean
  // input. Sensitivities must be able to rank it first.
  // A = (310, 45) fat; B = (357, 32): compare dVar/dmu with coupling.
  const double c = 0.1;
  const double sens_a = max_var_sensitivity_mu_a(310.0, 45.0, 357.0, 32.0, 0.01, c, false);
  const double sens_b = max_var_sensitivity_mu_a(357.0, 32.0, 310.0, 45.0, 0.01, c, false);
  EXPECT_GT(sens_a, 0.0);
  EXPECT_GT(sens_b, 0.0);
}

}  // namespace
}  // namespace statsizer::fassta
