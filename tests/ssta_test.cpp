#include <cmath>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "liberty/synthetic.h"
#include "ssta/canonical.h"
#include "ssta/fullssta.h"
#include "ssta/monte_carlo.h"
#include "techmap/mapper.h"
#include "util/numeric.h"

namespace statsizer::ssta {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n, variation::VariationParams vp = {}) : nl(std::move(n)), var(vp) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
  }
};

Netlist inverter_chain(unsigned length) {
  Netlist nl("chain");
  GateId prev = nl.add_input("a");
  for (unsigned i = 0; i < length; ++i) prev = nl.add_gate(netlist::GateFunc::kInv, {prev});
  nl.add_output("y", prev);
  return nl;
}

// ---------------------------------------------------------------------------
// FULLSSTA
// ---------------------------------------------------------------------------

TEST(FullSsta, ChainMomentsAreAnalytic) {
  // No max anywhere: mean = sum of arc delays, var = sum of arc variances.
  Bench b(inverter_chain(20));
  const FullSstaResult r = run_fullssta(*b.ctx);
  double mean = 0.0;
  double var = 0.0;
  for (const GateId id : b.ctx->topo_order()) {
    if (!b.ctx->has_cell(id)) continue;
    mean += b.ctx->arc_delay_ps(id, 0);
    var += b.ctx->arc_sigma_ps(id, 0) * b.ctx->arc_sigma_ps(id, 0);
  }
  EXPECT_NEAR(r.mean_ps, mean, 1e-6 * mean);
  EXPECT_NEAR(r.sigma_ps, std::sqrt(var), 0.01 * std::sqrt(var));
}

TEST(FullSsta, NodeMomentsMonotoneAlongChain) {
  Bench b(inverter_chain(10));
  const FullSstaResult r = run_fullssta(*b.ctx);
  double prev = -1.0;
  for (const GateId id : b.ctx->topo_order()) {
    if (!b.ctx->has_cell(id)) continue;
    EXPECT_GT(r.node[id].mean_ps, prev);
    prev = r.node[id].mean_ps;
  }
}

TEST(FullSsta, MatchesMonteCarloOnAdder) {
  Bench b(circuits::make_cla_adder(8));
  const FullSstaResult full = run_fullssta(*b.ctx);
  MonteCarloOptions mc_opt;
  mc_opt.samples = 20000;
  const MonteCarloResult mc = run_monte_carlo(*b.ctx, mc_opt);
  // The independence assumption at reconvergent merges cuts both ways:
  // E[max] is *over*-estimated a little (shared subpaths correlate branch
  // arrivals) and sigma is *under*-estimated (correlated branches make the
  // max fatter than independence predicts). Both effects stay bounded.
  EXPECT_NEAR(full.mean_ps, mc.mean_ps, 0.06 * mc.mean_ps);
  EXPECT_GE(full.mean_ps, mc.mean_ps * 0.98);
  EXPECT_LT(std::abs(full.sigma_ps - mc.sigma_ps), 0.45 * mc.sigma_ps);
  EXPECT_LE(full.sigma_ps, mc.sigma_ps * 1.1);
}

TEST(FullSsta, SampleCountStability) {
  Bench b(circuits::make_cla_adder(8));
  FullSstaOptions o10;
  o10.samples_per_pdf = 10;
  FullSstaOptions o15;
  o15.samples_per_pdf = 15;
  FullSstaOptions o25;
  o25.samples_per_pdf = 25;
  const auto r10 = run_fullssta(*b.ctx, o10);
  const auto r15 = run_fullssta(*b.ctx, o15);
  const auto r25 = run_fullssta(*b.ctx, o25);
  EXPECT_NEAR(r10.mean_ps, r25.mean_ps, 0.01 * r25.mean_ps);
  EXPECT_NEAR(r15.mean_ps, r25.mean_ps, 0.01 * r25.mean_ps);
  EXPECT_NEAR(r10.sigma_ps, r25.sigma_ps, 0.10 * r25.sigma_ps);
  EXPECT_NEAR(r15.sigma_ps, r25.sigma_ps, 0.06 * r25.sigma_ps);
}

TEST(FullSsta, OutputPdfIsADistribution) {
  Bench b(circuits::make_ripple_adder(4));
  const FullSstaResult r = run_fullssta(*b.ctx);
  const auto& pdf = r.output_pdf;
  double total = 0.0;
  for (std::size_t i = 0; i < pdf.size(); ++i) total += pdf.mass_at(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(pdf.mean(), r.mean_ps, 1e-9);
  EXPECT_NEAR(pdf.stddev(), r.sigma_ps, 1e-9);
  // Median is near the mean for these near-normal outputs.
  EXPECT_NEAR(pdf.quantile(0.5), r.mean_ps, 2.0 * r.sigma_ps);
}

// ---------------------------------------------------------------------------
// Monte Carlo
// ---------------------------------------------------------------------------

TEST(MonteCarlo, DeterministicForSeed) {
  Bench b(circuits::make_ripple_adder(4));
  MonteCarloOptions opt;
  opt.samples = 500;
  opt.seed = 77;
  const auto r1 = run_monte_carlo(*b.ctx, opt);
  const auto r2 = run_monte_carlo(*b.ctx, opt);
  EXPECT_DOUBLE_EQ(r1.mean_ps, r2.mean_ps);
  EXPECT_DOUBLE_EQ(r1.sigma_ps, r2.sigma_ps);
  EXPECT_EQ(r1.circuit_samples, r2.circuit_samples);
}

TEST(MonteCarlo, PerNodeStats) {
  Bench b(inverter_chain(5));
  MonteCarloOptions opt;
  opt.samples = 4000;
  opt.per_node_stats = true;
  const auto r = run_monte_carlo(*b.ctx, opt);
  ASSERT_EQ(r.node.size(), b.nl.node_count());
  // The chain's last gate matches the circuit moments.
  const GateId last = b.nl.outputs()[0].driver;
  EXPECT_NEAR(r.node[last].mean_ps, r.mean_ps, 1e-9);
  EXPECT_NEAR(r.node[last].sigma_ps, r.sigma_ps, 1e-9);
}

TEST(MonteCarlo, SampleVectorQuantiles) {
  Bench b(circuits::make_ripple_adder(4));
  MonteCarloOptions opt;
  opt.samples = 8000;
  const auto r = run_monte_carlo(*b.ctx, opt);
  ASSERT_EQ(r.circuit_samples.size(), opt.samples);
  const double q50 = util::quantile_of(r.circuit_samples, 0.5);
  const double q99 = util::quantile_of(r.circuit_samples, 0.99);
  EXPECT_GT(q99, q50);
  EXPECT_NEAR(q50, r.mean_ps, r.sigma_ps);
}

// ---------------------------------------------------------------------------
// canonical (correlation-aware) SSTA
// ---------------------------------------------------------------------------

TEST(Canonical, FormAlgebra) {
  const CanonicalForm a{10.0, 2.0, 1.0};
  const CanonicalForm b{5.0, 1.0, 2.0};
  const CanonicalForm s = canonical_sum(a, b);
  EXPECT_DOUBLE_EQ(s.nominal_ps, 15.0);
  EXPECT_DOUBLE_EQ(s.global_coeff, 3.0);
  EXPECT_NEAR(s.independent_ps, std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(s.sigma_ps(), std::sqrt(9.0 + 5.0), 1e-12);
}

TEST(Canonical, MaxOfDominant) {
  const CanonicalForm a{100.0, 2.0, 1.0};
  const CanonicalForm b{10.0, 1.0, 1.0};
  const CanonicalForm m = canonical_max(a, b);
  EXPECT_NEAR(m.nominal_ps, 100.0, 0.01);
  EXPECT_NEAR(m.global_coeff, 2.0, 0.01);
}

TEST(Canonical, IndependentCaseMatchesFullSsta) {
  // With global_fraction = 0 the canonical engine degenerates to
  // independence; its moments should track FULLSSTA closely.
  Bench b(circuits::make_cla_adder(8));
  const CanonicalResult can = run_canonical(*b.ctx);
  const FullSstaResult full = run_fullssta(*b.ctx);
  EXPECT_NEAR(can.mean_ps, full.mean_ps, 0.02 * full.mean_ps);
  EXPECT_NEAR(can.sigma_ps, full.sigma_ps, 0.30 * full.sigma_ps);
}

TEST(Canonical, TracksCorrelatedMonteCarlo) {
  // With a strong global component, independence-based engines underestimate
  // sigma badly; the canonical engine must not.
  variation::VariationParams vp;
  vp.global_fraction = 0.7;
  Bench b(circuits::make_cla_adder(8), vp);

  const CanonicalResult can = run_canonical(*b.ctx);
  MonteCarloOptions mc_opt;
  mc_opt.samples = 20000;
  const MonteCarloResult mc = run_monte_carlo(*b.ctx, mc_opt);
  const FullSstaResult independent = run_fullssta(*b.ctx);

  // Tolerance = the engine's systematic gap plus sampling noise: against a
  // 400k-sample reference the canonical mean sits ~2.8% above MC on this
  // workload (truncated sampling vs Gaussian algebra), and at 20k samples
  // the MC mean estimate itself moves by up to ~1.2% (3 standard errors;
  // sigma/mu is ~0.55 here).
  EXPECT_NEAR(can.mean_ps, mc.mean_ps, 0.04 * mc.mean_ps);
  EXPECT_NEAR(can.sigma_ps, mc.sigma_ps, 0.25 * mc.sigma_ps);
  // And it must be closer to MC sigma than the independent engine is.
  EXPECT_LT(std::abs(can.sigma_ps - mc.sigma_ps),
            std::abs(independent.sigma_ps - mc.sigma_ps));
}

TEST(Canonical, GlobalCoeffGrowsAlongPath) {
  variation::VariationParams vp;
  vp.global_fraction = 0.5;
  Bench b(inverter_chain(10), vp);
  const CanonicalResult r = run_canonical(*b.ctx);
  double prev = -1.0;
  for (const GateId id : b.ctx->topo_order()) {
    if (!b.ctx->has_cell(id)) continue;
    EXPECT_GT(r.node[id].global_coeff, prev);
    prev = r.node[id].global_coeff;
  }
}

}  // namespace
}  // namespace statsizer::ssta
