// Area recovery on the timing::Analyzer what-if API: the contract (mirroring
// sizer_parallel_test) is that accepted downsizes, final sizes, and
// AreaRecoveryStats are bitwise-identical for any thread count, AND
// identical to the pre-port serial mutate-and-rerun loop
// (opt::detail::recover_area_reference). Plus the rollback accounting audit:
// AreaRecoveryStats must match the committed netlist even when a chunk's
// exact verification fails and rolls the chunk back wholesale.
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "circuits/iscas_suite.h"
#include "liberty/synthetic.h"
#include "opt/area_recovery.h"
#include "opt/initial_sizing.h"
#include "opt/sizer_deterministic.h"
#include "ssta/fullssta.h"
#include "techmap/mapper.h"

namespace statsizer::opt {
namespace {

using netlist::GateId;
using netlist::Netlist;

/// How the bench creates shrink headroom before recovery runs.
enum class Headroom {
  kTilos,        ///< initial sizing + TILOS: fat critical path, recoverable sides
  kUniformBump,  ///< every gate bumped 3 sizes: the balanced-fabric case (TILOS
                 ///< leaves a parity fabric at minimum size — nothing to recover)
};

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n, Headroom headroom = Headroom::kTilos) : nl(std::move(n)) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
    (void)apply_initial_sizing(*ctx);
    if (headroom == Headroom::kTilos) {
      (void)size_for_mean_delay(*ctx);
    } else {
      for (GateId g = 0; g < nl.node_count(); ++g) {
        if (!ctx->has_cell(g)) continue;
        const auto& group = lib.group(nl.gate(g).cell_group);
        nl.gate(g).size_index = static_cast<std::uint16_t>(
            std::min<std::size_t>(group.size_count() - 1, nl.gate(g).size_index + 3u));
      }
      ctx->update();
    }
  }
};

/// Wide balanced XOR fabric (mirrors sizer_parallel_test): reconvergence-free
/// breadth, thousands of near-identical paths.
Netlist parity_fabric(unsigned width) {
  circuits::Builder b("parity" + std::to_string(width));
  const auto xs = b.bus("x", width);
  b.output("p", b.xor_tree(xs));
  return b.take();
}

struct RunResult {
  AreaRecoveryStats stats;
  std::vector<std::uint16_t> sizes;
};

AreaRecoveryOptions options_for(RecoveryCriterion criterion) {
  AreaRecoveryOptions opt;
  opt.criterion = criterion;
  opt.objective.lambda = 3.0;
  return opt;
}

RunResult run_once(Netlist nl, AreaRecoveryOptions opt, std::size_t threads,
                   Headroom headroom = Headroom::kTilos) {
  Bench b(std::move(nl), headroom);
  opt.threads = threads;
  RunResult r;
  r.stats = recover_area(*b.ctx, opt);
  r.sizes = b.nl.sizes();
  return r;
}

/// The accounting invariant the rollback audit pins: every counted downsize
/// is one committed size-index step, so the per-gate entry-to-exit drop must
/// sum to stats.downsizes — whatever mix of accepts, chunk commits, and
/// wholesale rollbacks produced the final netlist.
void expect_stats_match_netlist(const std::vector<std::uint16_t>& before,
                                const std::vector<std::uint16_t>& after,
                                const AreaRecoveryStats& stats) {
  ASSERT_EQ(before.size(), after.size());
  std::size_t steps = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_LE(after[i], before[i]) << "recovery upsized gate " << i;
    steps += before[i] - after[i];
  }
  EXPECT_EQ(stats.downsizes, steps);
}

void expect_identical(const RunResult& ref, const RunResult& r, std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(r.sizes, ref.sizes);
  EXPECT_EQ(r.stats.downsizes, ref.stats.downsizes);
  EXPECT_EQ(r.stats.screen_trials, ref.stats.screen_trials);
  EXPECT_EQ(r.stats.exact_verifications, ref.stats.exact_verifications);
  EXPECT_EQ(r.stats.chunk_rollbacks, ref.stats.chunk_rollbacks);
  // Bitwise-equal areas and final analysis (EXPECT_EQ, not EXPECT_DOUBLE_EQ:
  // the contract is exact identity, not 4-ULP closeness).
  EXPECT_EQ(r.stats.area_before_um2, ref.stats.area_before_um2);
  EXPECT_EQ(r.stats.area_after_um2, ref.stats.area_after_um2);
  EXPECT_EQ(r.stats.has_final_summary, ref.stats.has_final_summary);
  if (ref.stats.has_final_summary) {
    EXPECT_EQ(r.stats.final_summary.mean_ps, ref.stats.final_summary.mean_ps);
    EXPECT_EQ(r.stats.final_summary.sigma_ps, ref.stats.final_summary.sigma_ps);
  }
}

class AreaRecoveryParallel
    : public ::testing::TestWithParam<std::pair<int, RecoveryCriterion>> {
 protected:
  static Netlist circuit() {
    return GetParam().first == 0 ? circuits::make_cla_adder(8) : parity_fabric(16);
  }
  static Headroom headroom() {
    return GetParam().first == 0 ? Headroom::kTilos : Headroom::kUniformBump;
  }
  static AreaRecoveryOptions options() {
    AreaRecoveryOptions opt = options_for(GetParam().second);
    if (GetParam().first == 1) {
      // The balanced fabric has zero slack anywhere: budgets must absorb the
      // per-downsize delay/sigma deltas or nothing is recoverable at all.
      opt.tolerance = 0.05;
      opt.sigma_tolerance = 0.2;
    }
    return opt;
  }
};

TEST_P(AreaRecoveryParallel, IdenticalAcrossThreadCounts) {
  const RunResult ref = run_once(circuit(), options(), 1, headroom());
  EXPECT_GT(ref.stats.downsizes, 0u) << "no recovery headroom: the test is vacuous";
  EXPECT_GT(ref.stats.screen_trials, ref.stats.downsizes);
  for (const std::size_t threads : {2u, 8u, 0u}) {
    expect_identical(ref, run_once(circuit(), options(), threads, headroom()), threads);
  }
}

TEST_P(AreaRecoveryParallel, MatchesPrePortSerialLoop) {
  Bench legacy(circuit(), headroom());
  const auto before = legacy.nl.sizes();
  const AreaRecoveryStats ref = detail::recover_area_reference(*legacy.ctx, options());
  expect_stats_match_netlist(before, legacy.nl.sizes(), ref);

  for (const std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunResult ported = run_once(circuit(), options(), threads, headroom());
    EXPECT_EQ(ported.sizes, legacy.nl.sizes());
    EXPECT_EQ(ported.stats.downsizes, ref.downsizes);
    EXPECT_EQ(ported.stats.screen_trials, ref.screen_trials);
    EXPECT_EQ(ported.stats.exact_verifications, ref.exact_verifications);
    EXPECT_EQ(ported.stats.chunk_rollbacks, ref.chunk_rollbacks);
    EXPECT_EQ(ported.stats.area_before_um2, ref.area_before_um2);
    EXPECT_EQ(ported.stats.area_after_um2, ref.area_after_um2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, AreaRecoveryParallel,
    ::testing::Values(std::pair(0, RecoveryCriterion::kDeterministicArrival),
                      std::pair(0, RecoveryCriterion::kStatisticalCost),
                      std::pair(1, RecoveryCriterion::kDeterministicArrival),
                      std::pair(1, RecoveryCriterion::kStatisticalCost)),
    [](const auto& info) {
      std::string name = info.param.first == 0 ? "cla_adder" : "parity_fabric";
      name += info.param.second == RecoveryCriterion::kDeterministicArrival
                  ? "_deterministic"
                  : "_statistical";
      return name;
    });

// The ISCAS-class equivalence demanded by the port: analyzer-vs-legacy on a
// reconvergent Table-1 workload, both criteria.
TEST(AreaRecoveryEquivalence, MatchesPrePortSerialLoopOnC432) {
  for (const RecoveryCriterion criterion :
       {RecoveryCriterion::kDeterministicArrival, RecoveryCriterion::kStatisticalCost}) {
    SCOPED_TRACE(criterion == RecoveryCriterion::kDeterministicArrival ? "deterministic"
                                                                       : "statistical");
    Bench legacy(circuits::make_table1_circuit("c432"));
    const AreaRecoveryStats ref =
        detail::recover_area_reference(*legacy.ctx, options_for(criterion));
    EXPECT_GT(ref.downsizes, 0u);

    const RunResult ported =
        run_once(circuits::make_table1_circuit("c432"), options_for(criterion), 4);
    EXPECT_EQ(ported.sizes, legacy.nl.sizes());
    EXPECT_EQ(ported.stats.downsizes, ref.downsizes);
    EXPECT_EQ(ported.stats.screen_trials, ref.screen_trials);
    EXPECT_EQ(ported.stats.area_after_um2, ref.area_after_um2);
  }
}

// Rollback accounting audit (the chunk-rollback bugfix): a dsta screen under
// the statistical criterion ignores sigma entirely, so on the upsized
// balanced fabric — where every downsize fattens the output sigma — the
// accurate budgets fail and the chunk rolls back wholesale; stats must still
// match the committed netlist exactly.
TEST(AreaRecoveryRollback, ForcedRollbackKeepsStatsConsistentWithNetlist) {
  const auto run = [](std::size_t threads) {
    Bench b(parity_fabric(16), Headroom::kUniformBump);
    const auto before = b.nl.sizes();
    AreaRecoveryOptions opt = options_for(RecoveryCriterion::kStatisticalCost);
    opt.screen_engine = "dsta";   // blind to sigma: accepts what FULLSSTA rejects
    opt.tolerance = 0.05;         // the deterministic screen accepts freely...
    opt.sigma_tolerance = 0.001;  // ...and the exact sigma cap refuses
    opt.threads = threads;
    RunResult r;
    r.stats = recover_area(*b.ctx, opt);
    expect_stats_match_netlist(before, b.nl.sizes(), r.stats);
    r.sizes = b.nl.sizes();

    // Guard == report: the returned summary is exactly what a fresh run of
    // the confirm engine's model reports for the committed netlist.
    EXPECT_TRUE(r.stats.has_final_summary);
    const ssta::FullSstaResult fresh = ssta::run_fullssta(*b.ctx, opt.fullssta);
    EXPECT_EQ(r.stats.final_summary.mean_ps, fresh.mean_ps);
    EXPECT_EQ(r.stats.final_summary.sigma_ps, fresh.sigma_ps);
    return r;
  };

  const RunResult ref = run(1);
  // The scenario must actually exercise the rollback path.
  ASSERT_GT(ref.stats.chunk_rollbacks, 0u);
  for (const std::size_t threads : {2u, 8u}) {
    expect_identical(ref, run(threads), threads);
  }
}

// Guard-vs-report consistency (the engine-option drift bugfix): recovery's
// exact budgets and its returned summary use the caller's FullSstaOptions,
// not the defaults — a non-default pdf resolution flows through both.
TEST(AreaRecoveryOptions, ExactBudgetsUseCallerFullSstaOptions) {
  Bench b(circuits::make_cla_adder(8));
  AreaRecoveryOptions opt = options_for(RecoveryCriterion::kStatisticalCost);
  opt.fullssta.samples_per_pdf = 9;
  const AreaRecoveryStats stats = recover_area(*b.ctx, opt);

  ASSERT_TRUE(stats.has_final_summary);
  EXPECT_EQ(stats.final_summary.output_pdf.size(), 9u);
  const ssta::FullSstaResult fresh = ssta::run_fullssta(*b.ctx, opt.fullssta);
  EXPECT_EQ(stats.final_summary.mean_ps, fresh.mean_ps);
  EXPECT_EQ(stats.final_summary.sigma_ps, fresh.sigma_ps);

  // And the reference loop agrees when handed the same options: the bugfix
  // is the plumbing, not a behaviour change.
  Bench twin(circuits::make_cla_adder(8));
  const AreaRecoveryStats ref = detail::recover_area_reference(*twin.ctx, opt);
  EXPECT_EQ(stats.downsizes, ref.downsizes);
  EXPECT_EQ(b.nl.sizes(), twin.nl.sizes());
}

TEST(AreaRecoveryOptions, RejectsUnknownOrIncapableEngines) {
  Bench b(circuits::make_cla_adder(4));
  AreaRecoveryOptions opt;
  opt.screen_engine = "no-such-engine";
  EXPECT_THROW((void)recover_area(*b.ctx, opt), std::invalid_argument);

  AreaRecoveryOptions stat = options_for(RecoveryCriterion::kStatisticalCost);
  stat.confirm_engine = "no-such-engine";
  EXPECT_THROW((void)recover_area(*b.ctx, stat), std::invalid_argument);
}

// Deterministic-criterion recovery never touches FULLSSTA: no summary, and
// the area drop is real.
TEST(AreaRecoveryOptions, DeterministicCriterionReportsNoSummary) {
  const RunResult r = run_once(circuits::make_cla_adder(8),
                               options_for(RecoveryCriterion::kDeterministicArrival), 1);
  EXPECT_FALSE(r.stats.has_final_summary);
  EXPECT_GT(r.stats.downsizes, 0u);
  EXPECT_LT(r.stats.area_after_um2, r.stats.area_before_um2);
}

}  // namespace
}  // namespace statsizer::opt
