#include <gtest/gtest.h>

#include "bench_format/bench_reader.h"
#include "bench_format/bench_writer.h"
#include "drc/drc.h"
#include "circuits/generators.h"
#include "netlist/sim.h"

namespace statsizer::bench_format {
namespace {

using netlist::GateFunc;

constexpr const char* kSmall = R"(
# ISCAS-style example
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G7)
G5 = NAND(G1, G2)
G6 = NOT(G3)
G7 = OR(G5, G6)
)";

TEST(BenchReader, ParsesSmall) {
  auto parsed = read_bench(kSmall, "small");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const auto& nl = *parsed;
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.logic_gate_count(), 3u);
  EXPECT_EQ(nl.gate(nl.find("G5")).func, GateFunc::kNand);
  EXPECT_EQ(nl.gate(nl.find("G6")).func, GateFunc::kInv);
}

TEST(BenchReader, OutOfOrderDefinitions) {
  // G7 defined before its fanins — must still resolve.
  constexpr const char* text = R"(
INPUT(A)
OUTPUT(Y)
Y = AND(M, N)
M = NOT(A)
N = BUFF(A)
)";
  auto parsed = read_bench(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed->check().ok());
}

TEST(BenchReader, AllFunctionsAccepted) {
  constexpr const char* text = R"(
INPUT(A)
INPUT(B)
OUTPUT(O1)
O1 = XOR(T1, T2)
T1 = NXOR(A, B)
T2 = NOR(A, B)
)";
  auto parsed = read_bench(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->gate(parsed->find("T1")).func, GateFunc::kXnor);
}

TEST(BenchReader, WideGates) {
  constexpr const char* text = R"(
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(D)
INPUT(E)
OUTPUT(Y)
Y = AND(A, B, C, D, E)
)";
  auto parsed = read_bench(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->gate(parsed->find("Y")).fanins.size(), 5u);
}

TEST(BenchReader, SingleInputAndNormalizesToBuf) {
  constexpr const char* text = "INPUT(A)\nOUTPUT(Y)\nY = AND(A)\n";
  auto parsed = read_bench(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->gate(parsed->find("Y")).func, GateFunc::kBuf);
}

TEST(BenchReader, PortPrefixedSignalNamesAreGates) {
  // Regression: a gate assignment whose target merely *starts with*
  // INPUT/OUTPUT must not be parsed as a port declaration.
  constexpr const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(OUTPUT_BUS_0)
INPUT_REG_3 = AND(a, b)
OUTPUT_BUS_0 = NOT(INPUT_REG_3)
)";
  auto parsed = read_bench(text, "prefixed");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->inputs().size(), 2u);
  EXPECT_EQ(parsed->outputs().size(), 1u);
  EXPECT_EQ(parsed->gate(parsed->find("INPUT_REG_3")).func, GateFunc::kAnd);
  EXPECT_EQ(parsed->gate(parsed->find("OUTPUT_BUS_0")).func, GateFunc::kInv);
}

TEST(BenchReader, PortKeywordMustBeExact) {
  // "INPUTX(a)" starts with INPUT but is neither a port nor an assignment.
  const auto r = read_bench("INPUTX(a)\nOUTPUT(Y)\nY = NOT(a)\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos) << r.status().message();
}

TEST(BenchReader, EmptyFaninArgumentIsAnError) {
  // Regression: "AND(a,,b)" used to silently parse as a 2-input AND.
  const auto mid = read_bench("INPUT(a)\nINPUT(b)\nOUTPUT(Y)\nY = AND(a,,b)\n");
  ASSERT_FALSE(mid.ok());
  EXPECT_NE(mid.status().message().find("line 4"), std::string::npos) << mid.status().message();

  const auto trailing = read_bench("INPUT(a)\nINPUT(b)\nOUTPUT(Y)\nY = AND(a,b,)\n");
  EXPECT_FALSE(trailing.ok());
  const auto leading = read_bench("INPUT(a)\nINPUT(b)\nOUTPUT(Y)\nY = AND(,a,b)\n");
  EXPECT_FALSE(leading.ok());
  // An empty argument list still reports "no fanins".
  EXPECT_FALSE(read_bench("INPUT(a)\nOUTPUT(Y)\nY = AND()\n").ok());
}

TEST(BenchReader, DuplicateOutputDeclarationParsesForTheDrcToCatch) {
  // The reader accepts the duplicate (both entries resolve to the same
  // driver) so the design-rule checker can report it as a structured
  // multi-driven-net diagnostic; core::Flow then refuses the circuit.
  const auto r = read_bench("INPUT(a)\nOUTPUT(Y)\nOUTPUT(Y)\nY = NOT(a)\n");
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_EQ(r.value().outputs().size(), 2u);
  EXPECT_EQ(r.value().outputs()[0].driver, r.value().outputs()[1].driver);
  const drc::DrcReport report = drc::check_netlist(r.value());
  ASSERT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.first_error()->rule, drc::Rule::kMultiDrivenNet);
  EXPECT_EQ(report.first_error()->object, "Y");
}

TEST(BenchReader, TrailingJunkIsAnError) {
  EXPECT_FALSE(read_bench("INPUT(a) junk\nOUTPUT(Y)\nY = NOT(a)\n").ok());
  EXPECT_FALSE(read_bench("INPUT(a)\nOUTPUT(Y) extra\nY = NOT(a)\n").ok());
  const auto gate = read_bench("INPUT(a)\nOUTPUT(Y)\nY = NOT(a) garbage\n");
  ASSERT_FALSE(gate.ok());
  EXPECT_NE(gate.status().message().find("line 3"), std::string::npos)
      << gate.status().message();
  // Comments after the ')' remain fine.
  EXPECT_TRUE(read_bench("INPUT(a)  # in\nOUTPUT(Y)\nY = NOT(a)  # gate\n").ok());
}

TEST(BenchReader, Errors) {
  EXPECT_FALSE(read_bench("INPUT(A)\nOUTPUT(Y)\nY = DFF(A)\n").ok());
  EXPECT_FALSE(read_bench("INPUT(A)\nOUTPUT(Y)\nY = FROB(A)\n").ok());
  EXPECT_FALSE(read_bench("INPUT(A)\nOUTPUT(Y)\nY = AND(A, UNDEFINED)\n").ok());
  EXPECT_FALSE(read_bench("INPUT(A)\nOUTPUT(Y)\nY AND(A)\n").ok());            // no '='
  EXPECT_FALSE(read_bench("INPUT(A)\nINPUT(A)\nOUTPUT(A)\n").ok());            // dup input
  EXPECT_FALSE(read_bench("INPUT(A)\nOUTPUT(Y)\nY = AND(A, Z)\nZ = NOT(Y)\n").ok());  // cycle
  EXPECT_FALSE(read_bench("INPUT(A)\nOUTPUT(Y)\nY = NOT(A)\nY = BUFF(A)\n").ok());    // redef
}

TEST(BenchReader, ErrorMessagesCarryLineNumbers) {
  const auto r = read_bench("INPUT(A)\nOUTPUT(Y)\nY = DFF(A)\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
}

TEST(BenchReader, CommentsAndBlankLines) {
  constexpr const char* text = R"(
# header comment

INPUT(A)   # trailing comment
OUTPUT(Y)
Y = NOT(A)
)";
  auto parsed = read_bench(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
}

TEST(BenchWriter, RoundTripPreservesFunction) {
  const auto nl = circuits::make_cla_adder(8);
  const std::string text = write_bench(nl);
  auto reparsed = read_bench(text, nl.name());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  // Interfaces and behaviour must match (names survive the round trip).
  EXPECT_TRUE(netlist::probably_equivalent(nl, *reparsed, 99));
}

TEST(BenchWriter, ExpandsNonBenchFunctions) {
  // MUX2 / AOI21 / OAI21 have no .bench spelling; the writer must expand
  // them into primitive trees that still compute the same function.
  circuits::Builder b("mix");
  const auto a = b.input("a");
  const auto c = b.input("c");
  const auto s = b.input("s");
  b.output("m", b.mux(a, c, s));
  b.output("x", b.netlist().add_gate(GateFunc::kAoi21, {a, c, s}));
  b.output("y", b.netlist().add_gate(GateFunc::kOai21, {a, c, s}));
  const auto nl = b.take();

  const std::string text = write_bench(nl);
  auto reparsed = read_bench(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  // Output names match but internal names differ; compare by simulation on
  // matching PIs/POs.
  EXPECT_TRUE(netlist::probably_equivalent(nl, *reparsed, 7));
}

TEST(BenchWriter, RandomDagsRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    circuits::RandomDagOptions opt;
    opt.seed = seed;
    opt.n_gates = 80;
    const auto nl = circuits::make_random_dag(opt);
    auto reparsed = read_bench(write_bench(nl));
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": " << reparsed.status().message();
    EXPECT_TRUE(netlist::probably_equivalent(nl, *reparsed, seed)) << "seed " << seed;
  }
}

TEST(BenchFile, MissingFileFails) {
  EXPECT_FALSE(read_bench_file("/nonexistent/path.bench").ok());
}

}  // namespace
}  // namespace statsizer::bench_format
