#include <cmath>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "util/log.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"

namespace statsizer::util {
namespace {

// ---------------------------------------------------------------------------
// normal pdf / cdf
// ---------------------------------------------------------------------------

TEST(Numeric, NormalPdfPeak) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_DOUBLE_EQ(normal_pdf(3.0), normal_pdf(-3.0));
}

TEST(Numeric, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Numeric, NormalCdfMonotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.25) {
    const double c = normal_cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

// ---------------------------------------------------------------------------
// the paper's quadratic erf approximation
// ---------------------------------------------------------------------------

TEST(FastErf, MatchesPaperBreakpoints) {
  // 0.1 x (4.4 - x) at the region boundaries.
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(0.0), 0.0);
  EXPECT_NEAR(half_erf_over_sqrt2_fast(2.2), 0.1 * 2.2 * (4.4 - 2.2), 1e-15);
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(2.4), 0.49);
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(2.7), 0.50);
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(100.0), 0.50);
}

TEST(FastErf, OddSymmetry) {
  for (double x = 0.0; x <= 4.0; x += 0.1) {
    EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(-x), -half_erf_over_sqrt2_fast(x));
  }
}

/// The paper claims two-decimal accuracy against (1/2) erf(x / sqrt 2).
TEST(FastErf, TwoDecimalAccuracyClaim) {
  for (double x = -5.0; x <= 5.0; x += 0.01) {
    const double exact = 0.5 * std::erf(x / std::sqrt(2.0));
    EXPECT_NEAR(half_erf_over_sqrt2_fast(x), exact, 0.011) << "x = " << x;
  }
}

TEST(FastErf, FastCdfSaturatesAtDominanceThreshold) {
  // Phi_fast(x > 2.6) == 1 exactly — this is what makes the dominance
  // early-outs (paper eqs. 5/6) lossless *under the approximation*. At 2.6
  // itself the middle branch still applies (0.49).
  EXPECT_DOUBLE_EQ(normal_cdf_fast(2.6), 0.99);
  EXPECT_DOUBLE_EQ(normal_cdf_fast(2.6000001), 1.0);
  EXPECT_DOUBLE_EQ(normal_cdf_fast(-2.6000001), 0.0);
  EXPECT_DOUBLE_EQ(normal_cdf_fast(0.0), 0.5);
}

TEST(FastErf, FastCdfAccuracy) {
  for (double x = -4.0; x <= 4.0; x += 0.05) {
    EXPECT_NEAR(normal_cdf_fast(x), normal_cdf(x), 0.011) << "x = " << x;
  }
}

// ---------------------------------------------------------------------------
// inverse normal CDF
// ---------------------------------------------------------------------------

TEST(Numeric, InverseCdfRoundTrip) {
  for (double p = 0.001; p < 1.0; p += 0.017) {
    EXPECT_NEAR(normal_cdf(normal_inv_cdf(p)), p, 1e-8) << "p = " << p;
  }
}

TEST(Numeric, InverseCdfKnownQuantiles) {
  EXPECT_NEAR(normal_inv_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_inv_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(normal_inv_cdf(0.9986501019683699), 3.0, 1e-6);
}

TEST(Numeric, InverseCdfDomain) {
  EXPECT_THROW(normal_inv_cdf(0.0), std::domain_error);
  EXPECT_THROW(normal_inv_cdf(1.0), std::domain_error);
  EXPECT_THROW(normal_inv_cdf(-0.1), std::domain_error);
}

// ---------------------------------------------------------------------------
// interpolation
// ---------------------------------------------------------------------------

TEST(Interp, LinearInterior) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.0), 10.0);
}

TEST(Interp, LinearExtrapolation) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 3.0), 30.0);
}

TEST(Interp, SinglePoint) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ys = {42.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, -5.0), 42.0);
}

TEST(Interp, BilinearExactOnPlane) {
  // f(x, y) = 2x + 3y is reproduced exactly by bilinear interpolation.
  const std::vector<double> xs1 = {0.0, 1.0, 2.0};
  const std::vector<double> xs2 = {0.0, 10.0};
  std::vector<double> values;
  for (double a : xs1) {
    for (double b : xs2) values.push_back(2.0 * a + 3.0 * b);
  }
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 0.5, 5.0), 2.0 * 0.5 + 3.0 * 5.0);
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 1.7, 2.5), 2.0 * 1.7 + 3.0 * 2.5);
  // Corner and extrapolated points.
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 2.0, 10.0), 34.0);
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 3.0, 20.0), 66.0);
}

TEST(Interp, ShapeMismatchThrows) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(interp1(xs, bad, 0.5), std::invalid_argument);
  EXPECT_THROW((void)interp2(xs, xs, bad, 0.5, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, SampleVarianceBesselCorrection) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);         // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);  // n-1
}

// ---------------------------------------------------------------------------
// quantiles / span stats
// ---------------------------------------------------------------------------

TEST(Quantile, OrderStatistics) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.25), 2.0);
}

TEST(Quantile, Errors) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile_of(empty, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile_of(xs, 1.5), std::domain_error);
}

TEST(SpanStats, MeanVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance_of(xs), 1.25);
}

// ---------------------------------------------------------------------------
// RNG determinism
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal(100.0, 15.0));
  EXPECT_NEAR(s.mean(), 100.0, 0.5);
  EXPECT_NEAR(s.stddev(), 15.0, 0.3);
}

TEST(Rng, IndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(5);
  Rng fork = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(5);
  (void)b.fork();
  EXPECT_NE(fork.uniform(), b.uniform() + 1.0);  // trivially true; real check below
  int same = 0;
  Rng c(5);
  Rng d = c.fork();
  for (int i = 0; i < 100; ++i) {
    if (c.uniform() == d.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

// ---------------------------------------------------------------------------
// Table formatter
// ---------------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer_name", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer_name"), std::string::npos);
  EXPECT_NE(s.find("| Name"), std::string::npos);
  // Every line has equal width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    const std::size_t len = eol - pos;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    pos = eol + 1;
  }
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.54, 0), "+54 %");
  EXPECT_EQ(fmt_pct(-0.123, 1), "-12.3 %");
}

// ---------------------------------------------------------------------------
// Status / StatusOr error propagation
// ---------------------------------------------------------------------------

TEST(Status, DefaultIsOkWithEmptyMessage) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::error("line 12: unknown gate type 'XNAND'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "line 12: unknown gate type 'XNAND'");
}

TEST(Status, CopyPreservesState) {
  const Status e = Status::error("boom");
  const Status copy = e;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.message(), "boom");
}

TEST(StatusOr, ValueSideIsOk) {
  const StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(StatusOr, ErrorSideIsNotOk) {
  const StatusOr<int> r = Status::error("parse failed");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().message(), "parse failed");
}

TEST(StatusOr, ArrowAndMutableAccess) {
  StatusOr<std::string> r = std::string("abc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  r.value() += "d";
  EXPECT_EQ(*r, "abcd");
}

TEST(StatusOr, RvalueValueMovesOut) {
  StatusOr<std::string> r = std::string("payload");
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

// ---------------------------------------------------------------------------
// leveled logging
// ---------------------------------------------------------------------------

/// Restores the process-global threshold so log tests cannot leak state into
/// each other (the default is kWarn — see util/log.cpp).
struct LogLevelGuard {
  LogLevel saved = log_level();
  ~LogLevelGuard() { set_log_level(saved); }
};

TEST(Log, ThresholdRoundTrips) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, LineFormatAndThresholding) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "below threshold");   // dropped
  log_line(LogLevel::kWarn, "at threshold");      // emitted
  log_line(LogLevel::kError, "above threshold");  // emitted
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[warn] at threshold\n[error] above threshold\n");
}

TEST(Log, OffSilencesEverything) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kError, "should not appear");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, StreamMacroEmitsOnDestruction) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  STATSIZER_WARN() << "gate " << 7 << " exceeded slew by " << 1.5 << " ps";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[warn] gate 7 exceeded slew by 1.5 ps\n");
}

TEST(Log, SuppressedStreamProducesNoOutput) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  STATSIZER_DEBUG() << "optimizer pass " << 3;
  STATSIZER_INFO() << "mapped " << 128 << " gates";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace statsizer::util
