#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>
#include <utility>

#include <gtest/gtest.h>

#include "util/exec.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/log.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"

namespace statsizer::util {
namespace {

// ---------------------------------------------------------------------------
// normal pdf / cdf
// ---------------------------------------------------------------------------

TEST(Numeric, NormalPdfPeak) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_DOUBLE_EQ(normal_pdf(3.0), normal_pdf(-3.0));
}

TEST(Numeric, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Numeric, NormalCdfMonotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.25) {
    const double c = normal_cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

// ---------------------------------------------------------------------------
// the paper's quadratic erf approximation
// ---------------------------------------------------------------------------

TEST(FastErf, MatchesPaperBreakpoints) {
  // 0.1 x (4.4 - x) at the region boundaries.
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(0.0), 0.0);
  EXPECT_NEAR(half_erf_over_sqrt2_fast(2.2), 0.1 * 2.2 * (4.4 - 2.2), 1e-15);
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(2.4), 0.49);
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(2.7), 0.50);
  EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(100.0), 0.50);
}

TEST(FastErf, OddSymmetry) {
  for (double x = 0.0; x <= 4.0; x += 0.1) {
    EXPECT_DOUBLE_EQ(half_erf_over_sqrt2_fast(-x), -half_erf_over_sqrt2_fast(x));
  }
}

/// The paper claims two-decimal accuracy against (1/2) erf(x / sqrt 2).
TEST(FastErf, TwoDecimalAccuracyClaim) {
  for (double x = -5.0; x <= 5.0; x += 0.01) {
    const double exact = 0.5 * std::erf(x / std::sqrt(2.0));
    EXPECT_NEAR(half_erf_over_sqrt2_fast(x), exact, 0.011) << "x = " << x;
  }
}

TEST(FastErf, FastCdfSaturatesAtDominanceThreshold) {
  // Phi_fast(x > 2.6) == 1 exactly — this is what makes the dominance
  // early-outs (paper eqs. 5/6) lossless *under the approximation*. At 2.6
  // itself the middle branch still applies (0.49).
  EXPECT_DOUBLE_EQ(normal_cdf_fast(2.6), 0.99);
  EXPECT_DOUBLE_EQ(normal_cdf_fast(2.6000001), 1.0);
  EXPECT_DOUBLE_EQ(normal_cdf_fast(-2.6000001), 0.0);
  EXPECT_DOUBLE_EQ(normal_cdf_fast(0.0), 0.5);
}

TEST(FastErf, FastCdfAccuracy) {
  for (double x = -4.0; x <= 4.0; x += 0.05) {
    EXPECT_NEAR(normal_cdf_fast(x), normal_cdf(x), 0.011) << "x = " << x;
  }
}

// ---------------------------------------------------------------------------
// inverse normal CDF
// ---------------------------------------------------------------------------

TEST(Numeric, InverseCdfRoundTrip) {
  for (double p = 0.001; p < 1.0; p += 0.017) {
    EXPECT_NEAR(normal_cdf(normal_inv_cdf(p)), p, 1e-8) << "p = " << p;
  }
}

TEST(Numeric, InverseCdfKnownQuantiles) {
  EXPECT_NEAR(normal_inv_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_inv_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(normal_inv_cdf(0.9986501019683699), 3.0, 1e-6);
}

TEST(Numeric, InverseCdfDomain) {
  EXPECT_THROW(normal_inv_cdf(0.0), std::domain_error);
  EXPECT_THROW(normal_inv_cdf(1.0), std::domain_error);
  EXPECT_THROW(normal_inv_cdf(-0.1), std::domain_error);
}

// ---------------------------------------------------------------------------
// interpolation
// ---------------------------------------------------------------------------

TEST(Interp, LinearInterior) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.0), 10.0);
}

TEST(Interp, LinearExtrapolation) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 3.0), 30.0);
}

TEST(Interp, SinglePoint) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ys = {42.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, -5.0), 42.0);
}

TEST(Interp, BilinearExactOnPlane) {
  // f(x, y) = 2x + 3y is reproduced exactly by bilinear interpolation.
  const std::vector<double> xs1 = {0.0, 1.0, 2.0};
  const std::vector<double> xs2 = {0.0, 10.0};
  std::vector<double> values;
  for (double a : xs1) {
    for (double b : xs2) values.push_back(2.0 * a + 3.0 * b);
  }
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 0.5, 5.0), 2.0 * 0.5 + 3.0 * 5.0);
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 1.7, 2.5), 2.0 * 1.7 + 3.0 * 2.5);
  // Corner and extrapolated points.
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 2.0, 10.0), 34.0);
  EXPECT_DOUBLE_EQ(interp2(xs1, xs2, values, 3.0, 20.0), 66.0);
}

TEST(Interp, ShapeMismatchThrows) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(interp1(xs, bad, 0.5), std::invalid_argument);
  EXPECT_THROW((void)interp2(xs, xs, bad, 0.5, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, SampleVarianceBesselCorrection) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);         // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);  // n-1
}

// ---------------------------------------------------------------------------
// quantiles / span stats
// ---------------------------------------------------------------------------

TEST(Quantile, OrderStatistics) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.25), 2.0);
}

TEST(Quantile, Errors) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile_of(empty, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile_of(xs, 1.5), std::domain_error);
}

TEST(SpanStats, MeanVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance_of(xs), 1.25);
}

// ---------------------------------------------------------------------------
// RNG determinism
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal(100.0, 15.0));
  EXPECT_NEAR(s.mean(), 100.0, 0.5);
  EXPECT_NEAR(s.stddev(), 15.0, 0.3);
}

TEST(Rng, IndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(5);
  Rng fork = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(5);
  (void)b.fork();
  EXPECT_NE(fork.uniform(), b.uniform() + 1.0);  // trivially true; real check below
  int same = 0;
  Rng c(5);
  Rng d = c.fork();
  for (int i = 0; i < 100; ++i) {
    if (c.uniform() == d.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

// ---------------------------------------------------------------------------
// Table formatter
// ---------------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer_name", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer_name"), std::string::npos);
  EXPECT_NE(s.find("| Name"), std::string::npos);
  // Every line has equal width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    const std::size_t len = eol - pos;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    pos = eol + 1;
  }
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.54, 0), "+54 %");
  EXPECT_EQ(fmt_pct(-0.123, 1), "-12.3 %");
}

// ---------------------------------------------------------------------------
// Status / StatusOr error propagation
// ---------------------------------------------------------------------------

TEST(Status, DefaultIsOkWithEmptyMessage) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::error("line 12: unknown gate type 'XNAND'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "line 12: unknown gate type 'XNAND'");
}

TEST(Status, CopyPreservesState) {
  const Status e = Status::error("boom");
  const Status copy = e;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.message(), "boom");
}

TEST(StatusOr, ValueSideIsOk) {
  const StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(StatusOr, ErrorSideIsNotOk) {
  const StatusOr<int> r = Status::error("parse failed");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().message(), "parse failed");
}

TEST(StatusOr, ArrowAndMutableAccess) {
  StatusOr<std::string> r = std::string("abc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  r.value() += "d";
  EXPECT_EQ(*r, "abcd");
}

TEST(StatusOr, RvalueValueMovesOut) {
  StatusOr<std::string> r = std::string("payload");
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

// ---------------------------------------------------------------------------
// leveled logging
// ---------------------------------------------------------------------------

/// Restores the process-global threshold so log tests cannot leak state into
/// each other (the default is kWarn — see util/log.cpp).
struct LogLevelGuard {
  LogLevel saved = log_level();
  ~LogLevelGuard() { set_log_level(saved); }
};

TEST(Log, ThresholdRoundTrips) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, LineFormatAndThresholding) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "below threshold");   // dropped
  log_line(LogLevel::kWarn, "at threshold");      // emitted
  log_line(LogLevel::kError, "above threshold");  // emitted
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[warn] at threshold\n[error] above threshold\n");
}

TEST(Log, OffSilencesEverything) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_line(LogLevel::kError, "should not appear");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, StreamMacroEmitsOnDestruction) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  STATSIZER_WARN() << "gate " << 7 << " exceeded slew by " << 1.5 << " ps";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[warn] gate 7 exceeded slew by 1.5 ps\n");
}

TEST(Log, SuppressedStreamProducesNoOutput) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  STATSIZER_DEBUG() << "optimizer pass " << 3;
  STATSIZER_INFO() << "mapped " << 128 << " gates";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}


// ---------------------------------------------------------------------------
// Status codes
// ---------------------------------------------------------------------------

TEST(StatusCodes, FactoriesCarryCanonicalCodes) {
  EXPECT_EQ(Status().code(), StatusCode::kOk);
  EXPECT_EQ(Status::error("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::deadline_exceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  // Messages are preserved verbatim across the factories.
  EXPECT_EQ(Status::invalid_argument("exact message").message(), "exact message");
}

TEST(StatusCodes, WireSpellingsAreLowerSnakeCase) {
  EXPECT_EQ(to_string(StatusCode::kOk), "ok");
  EXPECT_EQ(to_string(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(to_string(StatusCode::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(to_string(StatusCode::kCancelled), "cancelled");
  EXPECT_EQ(to_string(StatusCode::kResourceExhausted), "resource_exhausted");
  EXPECT_EQ(to_string(StatusCode::kUnavailable), "unavailable");
  EXPECT_EQ(to_string(StatusCode::kInternal), "internal");
}

TEST(StatusCodes, OnlyUnavailableIsTransient) {
  EXPECT_TRUE(Status::unavailable("x").transient());
  EXPECT_FALSE(Status::resource_exhausted("x").transient());
  EXPECT_FALSE(Status::deadline_exceeded("x").transient());
  EXPECT_FALSE(Status::internal("x").transient());
  EXPECT_FALSE(Status().transient());
}

TEST(StatusCodes, StatusErrorRoundTripsTheStatus) {
  try {
    throw StatusError(Status::resource_exhausted("queue full"));
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(e.status().message(), "queue full");
    EXPECT_STREQ(e.what(), "queue full");
  }
}

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, DumpIsCompactAndKeyOrdered) {
  Json j;
  j["b"] = 2;
  j["a"] = "x";
  j["c"] = true;
  j["d"] = nullptr;
  EXPECT_EQ(j.dump(), R"({"a":"x","b":2,"c":true,"d":null})");
}

TEST(Json, ParsesRoundTrips) {
  const std::string text =
      R"({"arr":[1,2.5,-3],"nested":{"s":"he\u0041llo\n"},"t":true})";
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Json& j = parsed.value();
  ASSERT_TRUE(j.find("arr")->is_array());
  EXPECT_DOUBLE_EQ(j.find("arr")->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(j.find("nested")->find("s")->as_string(), "heAllo\n");
  // dump() -> parse() is the identity on the value.
  auto reparsed = Json::parse(j.dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().dump(), j.dump());
}

TEST(Json, ParseErrorsAreInvalidArgumentWithOffset) {
  for (const char* bad : {"{", "[1,", "tru", "\"unterminated", "{\"a\":}", "1 2"}) {
    auto parsed = Json::parse(bad);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(parsed.status().message().find("offset"), std::string::npos) << bad;
  }
}

TEST(Json, DepthBombIsRejectedNotOverflowed) {
  std::string bomb;
  for (int i = 0; i < 4000; ++i) bomb += '[';
  auto parsed = Json::parse(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  Json j;
  j["inf"] = std::numeric_limits<double>::infinity();
  j["nan"] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(j.dump(), R"({"inf":null,"nan":null})");
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjection, ParsesFullSpec) {
  auto rule = parse_fault_rule(
      "site=ssta/mc/chunk,scope=3,hit=2,p=0.5,delay_ms=7,code=deadline_exceeded,msg=kaboom");
  ASSERT_TRUE(rule.ok()) << rule.status().message();
  const FaultRule& r = rule.value();
  EXPECT_EQ(r.site, "ssta/mc/chunk");
  EXPECT_EQ(r.scope, 3u);
  EXPECT_EQ(r.hit, 2u);
  EXPECT_DOUBLE_EQ(r.probability, 0.5);
  EXPECT_EQ(r.delay_ms, 7u);
  EXPECT_TRUE(r.fail);
  EXPECT_EQ(r.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.message, "kaboom");
}

TEST(FaultInjection, ParseRejectsJunk) {
  EXPECT_FALSE(parse_fault_rule("").ok());
  EXPECT_FALSE(parse_fault_rule("scope=1").ok());           // no site
  EXPECT_FALSE(parse_fault_rule("site=x,hit=abc").ok());    // bad int
  EXPECT_FALSE(parse_fault_rule("site=x,code=nope").ok());  // unknown code
  EXPECT_FALSE(parse_fault_rule("site=x,bogus=1").ok());    // unknown key
}

TEST(FaultInjection, FiringIsDeterministicInSeedSiteScopeHit) {
  FaultRule rule;
  rule.site = "serve/job/start";
  rule.scope = util::kAnyScope;
  rule.hit = 0;  // every hit
  rule.probability = 0.5;
  int fired = 0;
  std::vector<bool> pattern;
  for (std::uint64_t h = 1; h <= 64; ++h) {
    const bool f = fault_rule_fires(rule, 42, "serve/job/start", 7, h);
    pattern.push_back(f);
    fired += f ? 1 : 0;
  }
  // Roughly Bernoulli(1/2)...
  EXPECT_GT(fired, 16);
  EXPECT_LT(fired, 48);
  // ...and exactly reproducible.
  for (std::uint64_t h = 1; h <= 64; ++h) {
    EXPECT_EQ(fault_rule_fires(rule, 42, "serve/job/start", 7, h), pattern[h - 1]);
  }
  // Different seed or scope gives an independent stream.
  int diff_seed = 0;
  int diff_scope = 0;
  for (std::uint64_t h = 1; h <= 64; ++h) {
    if (fault_rule_fires(rule, 43, "serve/job/start", 7, h) != pattern[h - 1]) ++diff_seed;
    if (fault_rule_fires(rule, 42, "serve/job/start", 8, h) != pattern[h - 1]) ++diff_scope;
  }
  EXPECT_GT(diff_seed, 0);
  EXPECT_GT(diff_scope, 0);
}

TEST(FaultInjection, SiteMatchingExactAndPrefix) {
  FaultRule exact;
  exact.site = "ssta/mc/chunk";
  EXPECT_TRUE(fault_rule_fires(exact, 1, "ssta/mc/chunk", 0, 1));
  EXPECT_FALSE(fault_rule_fires(exact, 1, "ssta/mc/chunkX", 0, 1));
  FaultRule prefix;
  prefix.site = "ssta/*";
  EXPECT_TRUE(fault_rule_fires(prefix, 1, "ssta/mc/chunk", 0, 1));
  EXPECT_TRUE(fault_rule_fires(prefix, 1, "ssta/fullssta/level", 0, 1));
  EXPECT_FALSE(fault_rule_fires(prefix, 1, "sta/update/level", 0, 1));
}

TEST(FaultInjection, ScopeAndHitGating) {
  FaultRule rule;
  rule.site = "s";
  rule.scope = 5;
  rule.hit = 3;
  EXPECT_FALSE(fault_rule_fires(rule, 1, "s", 4, 3));  // wrong scope
  EXPECT_FALSE(fault_rule_fires(rule, 1, "s", 5, 2));  // wrong hit
  EXPECT_TRUE(fault_rule_fires(rule, 1, "s", 5, 3));
}

// ---------------------------------------------------------------------------
// ExecContext + checkpoint
// ---------------------------------------------------------------------------

TEST(ExecCheckpoint, NoOpWithoutContext) {
  ASSERT_EQ(current_exec_context(), nullptr);
  checkpoint("anything");  // must not throw
}

TEST(ExecCheckpoint, CancellationThrowsKCancelled) {
  ExecContext ctx;
  ctx.cancel.cancel();
  const ScopedExecContext scope(ctx);
  try {
    checkpoint("unit/site");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
    EXPECT_NE(e.status().message().find("unit/site"), std::string::npos);
  }
}

TEST(ExecCheckpoint, ExpiredDeadlineThrowsKDeadlineExceeded) {
  ExecContext ctx;
  ctx.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(ctx.remaining().value(), std::chrono::milliseconds(0));
  const ScopedExecContext scope(ctx);
  try {
    checkpoint("unit/site");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(ExecCheckpoint, FaultRuleFiresOnConfiguredHit) {
  FaultPlan plan;
  plan.seed = 1;
  FaultRule rule;
  rule.site = "unit/fault";
  rule.hit = 2;
  rule.code = StatusCode::kUnavailable;
  plan.rules.push_back(rule);
  ExecContext ctx;
  ctx.faults = &plan;
  const ScopedExecContext scope(ctx);
  checkpoint("unit/fault");  // hit 1: passes
  try {
    checkpoint("unit/fault");  // hit 2: fires
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(e.status().message().find("unit/fault"), std::string::npos);
  }
}

TEST(ExecCheckpoint, SuspendMasksTheContext) {
  ExecContext ctx;
  ctx.cancel.cancel();
  const ScopedExecContext scope(ctx);
  {
    const ScopedExecSuspend suspend;
    EXPECT_EQ(current_exec_context(), nullptr);
    checkpoint("unit/suspended");  // must not throw
  }
  EXPECT_EQ(current_exec_context(), &ctx);
  EXPECT_THROW(checkpoint("unit/restored"), StatusError);
}

}  // namespace
}  // namespace statsizer::util
