#include <cmath>

#include <gtest/gtest.h>

#include "pdf/discrete_pdf.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace statsizer::pdf {
namespace {

TEST(DiscretePdf, PointMass) {
  const DiscretePdf p = DiscretePdf::point(42.0);
  EXPECT_TRUE(p.is_point());
  EXPECT_DOUBLE_EQ(p.mean(), 42.0);
  EXPECT_DOUBLE_EQ(p.variance(), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf(41.9), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf(42.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 42.0);
}

TEST(DiscretePdf, NormalDiscretizationMoments) {
  for (const std::size_t samples : {7u, 13u, 25u}) {
    const DiscretePdf p = DiscretePdf::normal(100.0, 10.0, samples);
    EXPECT_NEAR(p.mean(), 100.0, 0.05) << samples;
    // Discretization slightly reshapes the tails; variance within a few %.
    EXPECT_NEAR(p.stddev(), 10.0, 0.5) << samples;
    double total = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) total += p.mass_at(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(DiscretePdf, NormalZeroSigmaIsPoint) {
  EXPECT_TRUE(DiscretePdf::normal(5.0, 0.0).is_point());
  EXPECT_THROW(DiscretePdf::normal(0.0, -1.0), std::invalid_argument);
}

TEST(DiscretePdf, FromMassesNormalizes) {
  const DiscretePdf p = DiscretePdf::from_masses(0.0, 1.0, {1.0, 1.0, 2.0});
  EXPECT_NEAR(p.mass_at(2), 0.5, 1e-12);
  EXPECT_THROW(DiscretePdf::from_masses(0, 1, {}), std::invalid_argument);
  EXPECT_THROW(DiscretePdf::from_masses(0, 1, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscretePdf::from_masses(0, 1, {1.0, -0.5}), std::invalid_argument);
}

TEST(DiscretePdf, CdfQuantileInverse) {
  const DiscretePdf p = DiscretePdf::normal(0.0, 1.0, 41);
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double x = p.quantile(q);
    EXPECT_NEAR(p.cdf(x), q, 0.02) << q;
  }
  // Median of a symmetric distribution is its mean.
  EXPECT_NEAR(p.quantile(0.5), 0.0, 0.05);
}

TEST(DiscretePdf, ShiftMovesMeanOnly) {
  const DiscretePdf p = DiscretePdf::normal(10.0, 2.0, 13);
  const DiscretePdf q = p.shifted(5.0);
  EXPECT_NEAR(q.mean(), p.mean() + 5.0, 1e-12);
  EXPECT_NEAR(q.variance(), p.variance(), 1e-12);
}

TEST(DiscretePdf, ResamplePreservesMean) {
  const DiscretePdf p = DiscretePdf::normal(50.0, 7.0, 41);
  const DiscretePdf q = p.resampled(11);
  EXPECT_EQ(q.size(), 11u);
  EXPECT_NEAR(q.mean(), p.mean(), 1e-9);
  EXPECT_NEAR(q.stddev(), p.stddev(), 0.3);
}

// ---------------------------------------------------------------------------
// sum
// ---------------------------------------------------------------------------

TEST(Sum, MomentsAreExact) {
  // This is the load-bearing property for deep circuits: sum() pins its
  // first two moments to the analytically exact values.
  const DiscretePdf a = DiscretePdf::normal(100.0, 5.0, 13);
  const DiscretePdf b = DiscretePdf::normal(40.0, 12.0, 13);
  const DiscretePdf s = sum(a, b, 13);
  EXPECT_NEAR(s.mean(), a.mean() + b.mean(), 1e-9);
  EXPECT_NEAR(s.variance(), a.variance() + b.variance(), 1e-6);
}

TEST(Sum, WithPointIsShift) {
  const DiscretePdf a = DiscretePdf::normal(10.0, 2.0, 13);
  const DiscretePdf s = sum(a, DiscretePdf::point(5.0), 13);
  EXPECT_NEAR(s.mean(), 15.0, 1e-12);
  EXPECT_NEAR(s.variance(), a.variance(), 1e-12);
}

TEST(Sum, Commutative) {
  const DiscretePdf a = DiscretePdf::normal(10.0, 2.0, 13);
  const DiscretePdf b = DiscretePdf::normal(30.0, 6.0, 13);
  const DiscretePdf s1 = sum(a, b, 13);
  const DiscretePdf s2 = sum(b, a, 13);
  EXPECT_NEAR(s1.mean(), s2.mean(), 1e-9);
  EXPECT_NEAR(s1.variance(), s2.variance(), 1e-9);
}

TEST(Sum, DeepChainDoesNotInflateVariance) {
  // Regression test for the compounding-rebinning-variance bug: summing 100
  // gate pdfs keeps both moments at their analytic values.
  DiscretePdf acc = DiscretePdf::point(0.0);
  double mean = 0.0;
  double var = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double d = 30.0 + (i % 7);
    const double s = 3.0 + 0.1 * (i % 5);
    acc = sum(acc, DiscretePdf::normal(d, s, 13), 13);
    mean += d;
    var += s * s;
  }
  EXPECT_NEAR(acc.mean(), mean, 1e-6 * mean);
  EXPECT_NEAR(acc.stddev(), std::sqrt(var), 1e-3 * std::sqrt(var));
}

// ---------------------------------------------------------------------------
// max
// ---------------------------------------------------------------------------

TEST(Max, DominantInputPassesThrough) {
  const DiscretePdf a = DiscretePdf::normal(100.0, 3.0, 13);
  const DiscretePdf b = DiscretePdf::normal(10.0, 3.0, 13);
  const DiscretePdf m = max(a, b, 13);
  EXPECT_NEAR(m.mean(), a.mean(), 0.01);
  EXPECT_NEAR(m.stddev(), a.stddev(), 0.05);
}

TEST(Max, EqualInputsMatchClarkTheory) {
  // max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
  const DiscretePdf a = DiscretePdf::normal(0.0, 1.0, 41);
  const DiscretePdf m = max(a, a, 41);
  EXPECT_NEAR(m.mean(), 1.0 / std::sqrt(M_PI), 0.02);
  EXPECT_NEAR(m.variance(), 1.0 - 1.0 / M_PI, 0.02);
}

TEST(Max, AgainstMonteCarlo) {
  const DiscretePdf a = DiscretePdf::normal(50.0, 8.0, 21);
  const DiscretePdf b = DiscretePdf::normal(55.0, 4.0, 21);
  const DiscretePdf m = max(a, b, 21);

  util::Rng rng(31);
  util::RunningStats mc;
  for (int i = 0; i < 200000; ++i) {
    mc.add(std::max(rng.normal(50.0, 8.0), rng.normal(55.0, 4.0)));
  }
  EXPECT_NEAR(m.mean(), mc.mean(), 0.15);
  EXPECT_NEAR(m.stddev(), mc.stddev(), 0.15);
}

TEST(Max, WithPointClips) {
  const DiscretePdf a = DiscretePdf::normal(0.0, 1.0, 21);
  const DiscretePdf m = max(a, DiscretePdf::point(0.0), 21);
  // max(N(0,1), 0): mean = phi(0) = 0.3989, with an atom of mass 0.5 at 0.
  // Moment matching trades exact support for exact moments, so the grid may
  // undershoot the true support by a fraction of one bin, and the atom is
  // smeared across one bin width. The upper quantiles are unaffected:
  // P(X <= x) = Phi(x) for x > 0, so quantile(0.75) = 0.674.
  EXPECT_NEAR(m.mean(), 0.3989, 0.02);
  EXPECT_GE(m.min_value(), -m.step());
  EXPECT_NEAR(m.quantile(0.75), 0.674, 0.25);
}

TEST(Max, MonotoneInShift) {
  const DiscretePdf a = DiscretePdf::normal(40.0, 5.0, 13);
  const DiscretePdf b = DiscretePdf::normal(42.0, 5.0, 13);
  double prev = 0.0;
  for (double shift = 0.0; shift <= 20.0; shift += 2.0) {
    const double m = max(a, b.shifted(shift), 13).mean();
    EXPECT_GE(m, prev - 1e-9);
    prev = m;
  }
}

TEST(Max, FoldOverManyEqualPathsConcentrates) {
  // max over n iid variables: mean grows, sigma shrinks.
  const DiscretePdf base = DiscretePdf::normal(100.0, 10.0, 21);
  DiscretePdf acc = base;
  double prev_mean = acc.mean();
  double prev_sigma = acc.stddev();
  for (int i = 0; i < 6; ++i) {
    acc = max(acc, base, 21);
    EXPECT_GT(acc.mean(), prev_mean);
    EXPECT_LT(acc.stddev(), prev_sigma + 1e-9);
    prev_mean = acc.mean();
    prev_sigma = acc.stddev();
  }
  EXPECT_GT(acc.mean(), 110.0);  // E[max of 7 iid] ~ mu + 1.35 sigma
}

TEST(Max, SampleCountInsensitivity) {
  // The paper used 10-15 samples; results should be stable in that band.
  const DiscretePdf a10 = DiscretePdf::normal(50.0, 6.0, 10);
  const DiscretePdf b10 = DiscretePdf::normal(52.0, 3.0, 10);
  const DiscretePdf a15 = DiscretePdf::normal(50.0, 6.0, 15);
  const DiscretePdf b15 = DiscretePdf::normal(52.0, 3.0, 15);
  const DiscretePdf m10 = max(a10, b10, 10);
  const DiscretePdf m15 = max(a15, b15, 15);
  EXPECT_NEAR(m10.mean(), m15.mean(), 0.25);
  EXPECT_NEAR(m10.stddev(), m15.stddev(), 0.25);
}

}  // namespace
}  // namespace statsizer::pdf
