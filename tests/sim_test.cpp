#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "netlist/sim.h"

namespace statsizer::netlist {
namespace {

TEST(Sim, EveryPrimitiveFunction) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId s = nl.add_input("s");
  struct Case {
    GateFunc func;
    std::vector<GateId> fanins;
    // expected outputs for (a,b,s) = rows of the truth table 000..111,
    // packed LSB-first into a byte.
    unsigned expected;
  };
  // Bit i of the input words: a = i&1, b = i&2, s = i&4.
  const std::vector<Case> cases = {
      {GateFunc::kBuf, {a}, 0b10101010},
      {GateFunc::kInv, {a}, 0b01010101},
      {GateFunc::kAnd, {a, b}, 0b10001000},
      {GateFunc::kNand, {a, b}, 0b01110111},
      {GateFunc::kOr, {a, b}, 0b11101110},
      {GateFunc::kNor, {a, b}, 0b00010001},
      {GateFunc::kXor, {a, b}, 0b01100110},
      {GateFunc::kXnor, {a, b}, 0b10011001},
      {GateFunc::kAoi21, {a, b, s}, 0b00000111},   // !((a&b) | s)
      {GateFunc::kOai21, {a, b, s}, 0b00011111 ^ 0b00001110},  // computed below
      {GateFunc::kMux2, {a, b, s}, 0b11001010},    // s ? b : a
  };
  std::vector<GateId> outs;
  for (const auto& c : cases) {
    outs.push_back(nl.add_gate(c.func, std::span<const GateId>(c.fanins)));
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    nl.add_output("o" + std::to_string(i), outs[i]);
  }

  const std::vector<std::uint64_t> words = {0b10101010, 0b11001100, 0b11110000};
  const auto result = Simulator(nl).eval(words);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].func == GateFunc::kOai21) {
      // !((a|b) & s): truth rows — s=0 -> 1; s=1 -> !(a|b).
      unsigned expect = 0;
      for (unsigned row = 0; row < 8; ++row) {
        const bool av = row & 1, bv = row & 2, sv = row & 4;
        if (!((av || bv) && sv)) expect |= 1u << row;
      }
      EXPECT_EQ(result[i] & 0xFF, expect) << "OAI21";
    } else {
      EXPECT_EQ(result[i] & 0xFF, cases[i].expected)
          << func_name(cases[i].func);
    }
  }
}

TEST(Sim, Constants) {
  Netlist nl;
  (void)nl.add_input("a");
  const GateId zero = nl.add_gate(GateFunc::kConst0, {});
  const GateId one = nl.add_gate(GateFunc::kConst1, {});
  nl.add_output("z", zero);
  nl.add_output("o", one);
  const std::vector<std::uint64_t> words = {0xDEADBEEF};
  const auto r = Simulator(nl).eval(words);
  EXPECT_EQ(r[0], 0u);
  EXPECT_EQ(r[1], ~0ULL);
}

TEST(Sim, EvalSingle) {
  circuits::Builder b("t");
  const GateId x = b.input("x");
  const GateId y = b.input("y");
  b.output("o", b.xor_(x, y));
  const Netlist nl = b.take();
  EXPECT_TRUE(eval_single(nl, {true, false})[0]);
  EXPECT_FALSE(eval_single(nl, {true, true})[0]);
}

TEST(Sim, WrongInputCountThrows) {
  const Netlist nl = [] {
    Netlist n;
    (void)n.add_input("a");
    (void)n.add_input("b");
    return n;
  }();
  const std::vector<std::uint64_t> too_few = {0};
  EXPECT_THROW((void)Simulator(nl).eval(too_few), std::invalid_argument);
}

TEST(Sim, ProbablyEquivalentDetectsEquality) {
  // Two structurally different forms of the same function:
  // (a&b)|c  vs  !(!(a&b) & !c)   (De Morgan).
  circuits::Builder b1("f");
  {
    const GateId a = b1.input("a"), b = b1.input("b"), c = b1.input("c");
    b1.output("y", b1.or_(b1.and_(a, b), c));
  }
  circuits::Builder b2("f");
  {
    const GateId a = b2.input("a"), b = b2.input("b"), c = b2.input("c");
    b2.output("y", b2.not_(b2.and_(b2.nand_(a, b), b2.not_(c))));
  }
  EXPECT_TRUE(probably_equivalent(b1.netlist(), b2.netlist(), 123));
}

TEST(Sim, ProbablyEquivalentDetectsDifference) {
  circuits::Builder b1("f");
  {
    const GateId a = b1.input("a"), b = b1.input("b");
    b1.output("y", b1.and_(a, b));
  }
  circuits::Builder b2("f");
  {
    const GateId a = b2.input("a"), b = b2.input("b");
    b2.output("y", b2.or_(a, b));
  }
  EXPECT_FALSE(probably_equivalent(b1.netlist(), b2.netlist(), 123));
}

TEST(Sim, ProbablyEquivalentChecksInterface) {
  circuits::Builder b1("f");
  b1.output("y", b1.input("a"));
  circuits::Builder b2("f");
  b2.output("z", b2.input("a"));  // different output name
  EXPECT_FALSE(probably_equivalent(b1.netlist(), b2.netlist(), 1));
}

}  // namespace
}  // namespace statsizer::netlist
