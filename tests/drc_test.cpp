// Design-rule-checker tests: per-rule units over hand-built netlists, the
// semantic corpus (every rule firing with its expected id and witness), a
// clean pass over all builtin workloads, bitwise thread-count invariance of
// the diagnostic vector, and the Flow preflight gate.
//
// The semantic corpus contract: each file under tests/corpus/semantic/
// carries one or more `expect-drc: <rule-id> [object]` comment markers.
// Linting the file must produce a diagnostic for every marker (matching the
// rule id, and — when the marker names an object — that name as the
// diagnostic's object or inside its witness). .sdc cases ride
// tests/corpus/valid_small.bench.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/flow.h"
#include "core/lint.h"
#include "drc/drc.h"
#include "netlist/netlist.h"
#include "sta/graph.h"

namespace statsizer {
namespace {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

std::filesystem::path corpus_dir() {
  return std::filesystem::path(STATSIZER_SOURCE_DIR) / "tests" / "corpus";
}

bool has_rule(const drc::DrcReport& report, drc::Rule rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [rule](const drc::Diagnostic& d) { return d.rule == rule; });
}

// ---------------------------------------------------------------------------
// structural rules (check_netlist on hand-built netlists)
// ---------------------------------------------------------------------------

/// a feeds y = AND(a, z), z = NOT(y): a two-gate loop closed by rewire —
/// exactly the shape topological_order() throws std::logic_error on.
Netlist make_cyclic() {
  Netlist nl("cyclic");
  const GateId a = nl.add_input("a");
  const GateId z = nl.add_gate(GateFunc::kInv, {a}, "z");
  const GateId y = nl.add_gate(GateFunc::kAnd, {a, z}, "y");
  nl.add_output("y", y);
  const GateId loop[] = {y};
  nl.rewire(z, GateFunc::kInv, loop);
  return nl;
}

TEST(DrcStructural, CycleBecomesDiagnosticWithWitnessPath) {
  const drc::DrcReport report = drc::check_netlist(make_cyclic());
  ASSERT_EQ(report.errors(), 1u);
  const drc::Diagnostic& d = *report.first_error();
  EXPECT_EQ(d.rule, drc::Rule::kCombinationalCycle);
  // Witness is the loop in signal-flow order with the first node repeated.
  ASSERT_GE(d.witness.size(), 3u);
  EXPECT_EQ(d.witness.front(), d.witness.back());
  EXPECT_NE(std::find(d.witness.begin(), d.witness.end(), "y"), d.witness.end());
  EXPECT_NE(std::find(d.witness.begin(), d.witness.end(), "z"), d.witness.end());
}

TEST(DrcStructural, FlowRefusesCyclicCircuitWithoutThrowing) {
  core::Flow flow;
  const Status s = flow.load_circuit(make_cyclic());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("combinational-cycle"), std::string::npos) << s.message();
  EXPECT_TRUE(flow.last_drc().has_errors());
  EXPECT_FALSE(flow.has_circuit());
}

TEST(DrcStructural, FloatingInput) {
  Netlist nl("floating");
  const GateId a = nl.add_input("a");
  (void)nl.add_input("b");  // drives nothing
  nl.add_output("y", nl.add_gate(GateFunc::kInv, {a}, "y"));
  const drc::DrcReport report = drc::check_netlist(nl);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, drc::Rule::kFloatingInput);
  EXPECT_EQ(report.diagnostics[0].severity, drc::Severity::kWarning);
  EXPECT_EQ(report.diagnostics[0].object, "b");
}

TEST(DrcStructural, DanglingOutput) {
  Netlist nl("dangling");
  const GateId a = nl.add_input("a");
  nl.add_output("y", nl.add_gate(GateFunc::kInv, {a}, "y"));
  (void)nl.add_gate(GateFunc::kInv, {a}, "u");  // feeds nothing
  const drc::DrcReport report = drc::check_netlist(nl);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, drc::Rule::kDanglingOutput);
  EXPECT_EQ(report.diagnostics[0].object, "u");
}

TEST(DrcStructural, DeadConeAggregatesBehindTheDanglingSink) {
  Netlist nl("deadcone");
  const GateId a = nl.add_input("a");
  nl.add_output("y", nl.add_gate(GateFunc::kInv, {a}, "y"));
  const GateId d1 = nl.add_gate(GateFunc::kInv, {a}, "d1");
  (void)nl.add_gate(GateFunc::kInv, {d1}, "d2");
  const drc::DrcReport report = drc::check_netlist(nl);
  EXPECT_TRUE(has_rule(report, drc::Rule::kDanglingOutput));
  ASSERT_TRUE(has_rule(report, drc::Rule::kDeadCone));
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.severity, drc::Severity::kWarning);
    if (d.rule == drc::Rule::kDeadCone) {
      EXPECT_NE(std::find(d.witness.begin(), d.witness.end(), "d1"), d.witness.end());
    }
  }
}

TEST(DrcStructural, MultiDrivenOutputNamesBothDrivers) {
  Netlist nl("multi");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateFunc::kInv, {a}, "g1");
  const GateId g2 = nl.add_gate(GateFunc::kInv, {b}, "g2");
  nl.add_output("y", g1);
  nl.add_output("y", g2);
  const drc::DrcReport report = drc::check_netlist(nl);
  ASSERT_EQ(report.errors(), 1u);
  const drc::Diagnostic& d = *report.first_error();
  EXPECT_EQ(d.rule, drc::Rule::kMultiDrivenNet);
  EXPECT_EQ(d.object, "y");
  EXPECT_NE(std::find(d.witness.begin(), d.witness.end(), "g1"), d.witness.end());
  EXPECT_NE(std::find(d.witness.begin(), d.witness.end(), "g2"), d.witness.end());
}

// ---------------------------------------------------------------------------
// binding + electrical rules (run_drc on a timing snapshot)
// ---------------------------------------------------------------------------

TEST(DrcBinding, CorruptedCellGroupIsAnUnknownCellError) {
  // No text format can produce a bad binding (readers validate), so corrupt
  // a mapped netlist programmatically through the timing context.
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("alu1").ok());
  Netlist& nl = flow.timing().mutable_netlist();
  GateId victim = netlist::kNoGate;
  for (std::size_t i = 0; i < nl.node_count(); ++i) {
    const auto id = static_cast<GateId>(i);
    if (!nl.is_input(id) && !nl.is_constant(id)) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, netlist::kNoGate);
  nl.gate(victim).cell_group = 0x00FFFFFFu;  // far out of library range
  const drc::DrcReport report = drc::run_drc(flow.timing());
  ASSERT_TRUE(report.has_errors());
  EXPECT_EQ(report.first_error()->rule, drc::Rule::kUnknownCell);
  EXPECT_EQ(report.first_error()->object, nl.gate(victim).name);
}

TEST(DrcElectrical, TightFanoutBoundFiresOnRealWorkload) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  drc::DrcOptions opt;
  opt.max_fanout = 2;
  const drc::DrcReport report = drc::run_drc(flow.timing(), opt);
  EXPECT_TRUE(has_rule(report, drc::Rule::kFanoutExceeded));
  EXPECT_EQ(report.errors(), 0u);  // electrical findings are warnings
}

TEST(DrcElectrical, TightLoadScaleFiresOnRealWorkload) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  drc::DrcOptions opt;
  opt.load_limit_scale = 0.05;
  const drc::DrcReport report = drc::run_drc(flow.timing(), opt);
  ASSERT_TRUE(has_rule(report, drc::Rule::kLoadExceedsLimit));
  for (const auto& d : report.diagnostics) {
    if (d.rule == drc::Rule::kLoadExceedsLimit) {
      EXPECT_FALSE(d.witness.empty()) << "load finding should name its consumers";
      break;
    }
  }
}

TEST(DrcElectrical, TightLibrarySlewLimitFiresOnRealWorkload) {
  core::FlowOptions options;
  options.library.max_transition_ps = 40.0;  // real slews are hundreds of ps
  core::Flow flow(options);
  ASSERT_TRUE(flow.load_table1("c432").ok());
  const drc::DrcReport report = drc::run_drc(flow.timing());
  EXPECT_TRUE(has_rule(report, drc::Rule::kSlewExceedsLimit));
}

// ---------------------------------------------------------------------------
// determinism: diagnostics are bitwise identical for any thread count
// ---------------------------------------------------------------------------

TEST(DrcDeterminism, DiagnosticsInvariantUnderThreadCount) {
  for (const char* name : {"mesh8", "mul32"}) {
    // Tight thresholds + a tight library slew limit make hundreds of
    // findings so the parallel wavefront actually has work to race on.
    core::FlowOptions options;
    options.library.max_transition_ps = 60.0;
    core::Flow flow(options);
    ASSERT_TRUE(flow.load_table1(name).ok()) << name;
    drc::DrcOptions base;
    base.max_fanout = 4;
    base.load_limit_scale = 0.25;
    base.threads = 1;
    const drc::DrcReport reference = drc::run_drc(flow.timing(), base);
    ASSERT_GT(reference.diagnostics.size(), 100u) << name;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
      drc::DrcOptions opt = base;
      opt.threads = threads;
      const drc::DrcReport got = drc::run_drc(flow.timing(), opt);
      EXPECT_EQ(got.diagnostics, reference.diagnostics)
          << name << " diverges at threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// clean pass: every builtin workload lints with zero findings
// ---------------------------------------------------------------------------

TEST(DrcCleanPass, AllBuiltinWorkloadsLintClean) {
  const char* const kWorkloads[] = {"alu1",  "alu2",  "alu3",  "c432",  "c499",  "c880",
                                    "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
                                    "c7552", "mul32", "mul64", "pipe64", "mesh8"};
  for (const char* name : kWorkloads) {
    const core::LintResult result = core::lint_workload(name);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status.message();
    EXPECT_TRUE(result.report.empty())
        << name << " is not DRC-clean:\n"
        << drc::format_text(result.report);
  }
}

// ---------------------------------------------------------------------------
// semantic corpus: every rule fires with its expected id and witness
// ---------------------------------------------------------------------------

struct Expectation {
  std::string rule;
  std::string object;  // empty = any object
};

/// Parses `expect-drc: <rule-id> [object]` markers from # or // comments.
std::vector<Expectation> read_markers(const std::filesystem::path& path) {
  std::vector<Expectation> markers;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("expect-drc:");
    if (pos == std::string::npos) continue;
    std::istringstream rest(line.substr(pos + std::strlen("expect-drc:")));
    Expectation e;
    rest >> e.rule >> e.object;
    if (!e.rule.empty()) markers.push_back(std::move(e));
  }
  return markers;
}

bool matches(const drc::Diagnostic& d, const Expectation& e) {
  if (drc::rule_id(d.rule) != e.rule) return false;
  if (e.object.empty() || d.object == e.object) return true;
  return std::find(d.witness.begin(), d.witness.end(), e.object) != d.witness.end();
}

TEST(DrcSemanticCorpus, EveryCaseFiresItsExpectedRules) {
  const std::filesystem::path dir = corpus_dir() / "semantic";
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    const std::string ext = entry.path().extension().string();
    const std::vector<Expectation> markers = read_markers(entry.path());
    ASSERT_FALSE(markers.empty()) << path << " has no expect-drc markers";

    core::LintOptions options;
    std::string lint_target = path;
    if (ext == ".sdc") {
      // SDC cases are constraint files checked against the small host design.
      options.sdc_path = path;
      lint_target = (corpus_dir() / "valid_small.bench").string();
    }
    const core::LintResult result = core::lint_file(lint_target, options);
    ASSERT_TRUE(result.ok()) << path << ": " << result.status.message();

    for (const Expectation& e : markers) {
      const bool hit =
          std::any_of(result.report.diagnostics.begin(), result.report.diagnostics.end(),
                      [&e](const drc::Diagnostic& d) { return matches(d, e); });
      EXPECT_TRUE(hit) << path << ": no diagnostic matched expect-drc: " << e.rule << " "
                       << e.object << "\nreport:\n"
                       << drc::format_text(result.report);
    }
    // Provenance: every diagnostic from a file-based lint names its source.
    for (const auto& d : result.report.diagnostics) {
      EXPECT_FALSE(d.file.empty()) << path << ": diagnostic without file attribution";
    }
    ++checked;
  }
  EXPECT_GE(checked, 12u);
}

// ---------------------------------------------------------------------------
// SDC rules + the Flow preflight gate
// ---------------------------------------------------------------------------

TEST(DrcSdc, NonPositiveClockIsAnErrorAndBlocksSizing) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_bench_file((corpus_dir() / "valid_small.bench").string()).ok());
  ASSERT_TRUE(flow.apply_sdc("create_clock -period 0 -name clk\n").ok());
  const drc::DrcReport& report = flow.preflight();
  ASSERT_TRUE(report.has_errors());
  EXPECT_EQ(report.first_error()->rule, drc::Rule::kNonPositiveClock);
  EXPECT_THROW((void)flow.run_baseline(), std::logic_error);
}

TEST(DrcSdc, PreflightGateCanBeDisabled) {
  core::FlowOptions options;
  options.preflight = false;
  core::Flow flow(options);
  ASSERT_TRUE(flow.load_bench_file((corpus_dir() / "valid_small.bench").string()).ok());
  ASSERT_TRUE(flow.apply_sdc("create_clock -period 0 -name clk\n").ok());
  EXPECT_NO_THROW((void)flow.run_baseline());
}

TEST(DrcSdc, PartialInputCoverageWarnsButDoesNotBlock) {
  core::Flow flow;
  ASSERT_TRUE(flow.load_bench_file((corpus_dir() / "valid_small.bench").string()).ok());
  ASSERT_TRUE(flow.apply_sdc("create_clock -period 800 -name clk\n"
                             "set_input_delay -clock clk 60 [get_ports a]\n")
                  .ok());
  const drc::DrcReport& report = flow.preflight();
  EXPECT_EQ(report.errors(), 0u);
  bool saw = false;
  for (const auto& d : report.diagnostics) {
    if (d.rule != drc::Rule::kUnconstrainedInput) continue;
    saw = true;
    EXPECT_NE(std::find(d.witness.begin(), d.witness.end(), "b"), d.witness.end());
    EXPECT_NE(std::find(d.witness.begin(), d.witness.end(), "c"), d.witness.end());
  }
  EXPECT_TRUE(saw);
  EXPECT_NO_THROW((void)flow.run_baseline());  // warnings never block
}

// ---------------------------------------------------------------------------
// renderers
// ---------------------------------------------------------------------------

TEST(DrcFormat, TextAndJsonCarryTheRuleId) {
  Netlist nl("fmt");
  const GateId a = nl.add_input("a");
  (void)nl.add_input("b");
  nl.add_output("y", nl.add_gate(GateFunc::kInv, {a}, "y"));
  const drc::DrcReport report = drc::check_netlist(nl);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string text = drc::format_text(report);
  EXPECT_NE(text.find("[floating-input]"), std::string::npos) << text;
  EXPECT_NE(text.find("warning"), std::string::npos) << text;
  const std::string json = drc::format_json(report);
  EXPECT_NE(json.find("\"rule\":\"floating-input\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos) << json;
}

TEST(DrcReportApi, CountsAndFirstError) {
  drc::DrcReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.first_error(), nullptr);
  drc::Diagnostic w;
  w.rule = drc::Rule::kFloatingInput;
  w.severity = drc::Severity::kWarning;
  drc::Diagnostic e;
  e.rule = drc::Rule::kUnknownCell;
  e.severity = drc::Severity::kError;
  e.object = "g1";
  report.diagnostics = {w, e};
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.errors(), 1u);
  ASSERT_NE(report.first_error(), nullptr);
  EXPECT_EQ(report.first_error()->object, "g1");
}

}  // namespace
}  // namespace statsizer
