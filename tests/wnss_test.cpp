#include <gtest/gtest.h>

#include "circuits/generators.h"
#include "liberty/synthetic.h"
#include "opt/wnss.h"
#include "ssta/fullssta.h"
#include "techmap/mapper.h"

namespace statsizer::opt {
namespace {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;
using sta::NodeMoments;

// ---------------------------------------------------------------------------
// pairwise responsibility (the tracer's comparison primitive)
// ---------------------------------------------------------------------------

TEST(MoreResponsible, DominantMeanWinsOutright) {
  // |alpha| >= 2.6: higher mean wins regardless of sigmas (paper eqs. 5/6).
  const NodeMoments high{100.0, 3.0};
  const NodeMoments low{50.0, 30.0};  // much fatter, but alpha is large
  // alpha = 50 / sqrt(9 + 900) = 1.66 -> NOT dominant; pick sigmas so it is.
  const NodeMoments low2{50.0, 10.0};  // alpha = 50 / sqrt(109) = 4.8
  EXPECT_TRUE(more_responsible(high, low2, 0.1, 0.1));
  EXPECT_FALSE(more_responsible(low2, high, 0.1, 0.1));
}

TEST(MoreResponsible, FatLowerMeanInputCanWin) {
  // The paper's Fig. 3 lesson: with overlapping distributions, the input
  // with the larger variance contribution wins even at a lower mean.
  const NodeMoments thin{320.0, 27.0};
  const NodeMoments fat{310.0, 45.0};
  EXPECT_TRUE(more_responsible(fat, thin, 0.1, 0.1));
  EXPECT_FALSE(more_responsible(thin, fat, 0.1, 0.1));
}

TEST(MoreResponsible, SymmetricTieIsStable) {
  const NodeMoments a{100.0, 10.0};
  // a vs a: either answer is consistent, but must not contradict itself.
  const bool ab = more_responsible(a, a, 0.1, 0.1);
  EXPECT_TRUE(ab);  // ties break toward the first argument (>=)
}

TEST(MoreResponsible, FastAndExactModesAgreeOnClearCases) {
  WnssOptions fast;
  fast.use_fast_clark = true;
  WnssOptions exact;
  exact.use_fast_clark = false;
  const NodeMoments fat{310.0, 45.0};
  const NodeMoments thin{320.0, 27.0};
  EXPECT_EQ(more_responsible(fat, thin, 0.1, 0.1, fast),
            more_responsible(fat, thin, 0.1, 0.1, exact));
}

// ---------------------------------------------------------------------------
// tracing on constructed netlists
// ---------------------------------------------------------------------------

struct Bench {
  Netlist nl;
  liberty::Library lib = liberty::build_synthetic_90nm();
  variation::VariationModel var;
  std::unique_ptr<sta::TimingContext> ctx;

  explicit Bench(Netlist n) : nl(std::move(n)) {
    auto s = techmap::map_to_library(nl, lib);
    if (!s.ok()) throw std::logic_error(s.message());
    ctx = std::make_unique<sta::TimingContext>(nl, lib, var, sta::TimingOptions{});
  }
};

TEST(TraceWnss, ChainIsFullyTraced) {
  Netlist nl("chain");
  GateId prev = nl.add_input("a");
  for (int i = 0; i < 7; ++i) prev = nl.add_gate(GateFunc::kInv, {prev});
  nl.add_output("y", prev);
  Bench b(std::move(nl));
  const auto full = ssta::run_fullssta(*b.ctx);
  const WnssTrace trace = trace_wnss(*b.ctx, full.node);
  EXPECT_EQ(trace.path.size(), 7u);
  EXPECT_EQ(trace.critical_output, b.nl.outputs()[0].driver);
}

TEST(TraceWnss, PathIsConnectedInputFirst) {
  Bench b(circuits::make_cla_adder(8));
  const auto full = ssta::run_fullssta(*b.ctx);
  const WnssTrace trace = trace_wnss(*b.ctx, full.node);
  ASSERT_FALSE(trace.path.empty());
  EXPECT_EQ(trace.path.back(), trace.critical_output);
  for (std::size_t i = 1; i < trace.path.size(); ++i) {
    const auto& fanins = b.nl.gate(trace.path[i]).fanins;
    EXPECT_NE(std::find(fanins.begin(), fanins.end(), trace.path[i - 1]), fanins.end())
        << "path not connected at position " << i;
  }
  // The first path gate's fanins are PIs (or at least include the walked one).
  for (const GateId g : trace.path) {
    EXPECT_TRUE(b.ctx->has_cell(g));  // only sizable gates on the path
  }
}

TEST(TraceWnss, PicksFatBranchOverThinBranch) {
  // Two parallel 2-gate branches into an AND: the fat branch is built from
  // minimum-size gates with a heavy load (big sigma); the thin branch uses
  // maximum-size gates (small sigma). Means are comparable; the tracer must
  // walk the fat branch.
  Netlist nl("fork");
  const GateId a = nl.add_input("a");
  const GateId b1 = nl.add_gate(GateFunc::kBuf, {a}, "fat1");
  const GateId b2 = nl.add_gate(GateFunc::kBuf, {b1}, "fat2");
  const GateId c1 = nl.add_gate(GateFunc::kBuf, {a}, "thin1");
  const GateId c2 = nl.add_gate(GateFunc::kBuf, {c1}, "thin2");
  const GateId join = nl.add_gate(GateFunc::kAnd, {b2, c2}, "join");
  nl.add_output("y", join);
  Bench bench(std::move(nl));
  // Fat branch: smallest drives. Thin branch: largest drives.
  const auto& group = bench.lib.group(bench.nl.gate(b1).cell_group);
  const auto big = static_cast<std::uint16_t>(group.size_count() - 1);
  bench.nl.gate(b1).size_index = 0;
  bench.nl.gate(b2).size_index = 0;
  bench.nl.gate(c1).size_index = big;
  bench.nl.gate(c2).size_index = big;
  bench.ctx->update();

  const auto full = ssta::run_fullssta(*bench.ctx);
  const WnssTrace trace = trace_wnss(*bench.ctx, full.node);
  ASSERT_EQ(trace.path.size(), 3u);
  EXPECT_EQ(bench.nl.gate(trace.path[0]).name, "fat1");
  EXPECT_EQ(bench.nl.gate(trace.path[1]).name, "fat2");
  EXPECT_EQ(bench.nl.gate(trace.path[2]).name, "join");
}

TEST(TraceWnss, CriticalOutputIsVarianceDominant) {
  // Two independent outputs: one driven by a long min-size chain (fat), one
  // by a short max-size chain (thin but slightly later mean is avoided by
  // construction). The tournament must start from the fat output.
  Netlist nl("two_outs");
  const GateId a = nl.add_input("a");
  GateId fat = a;
  for (int i = 0; i < 6; ++i) fat = nl.add_gate(GateFunc::kBuf, {fat}, "f" + std::to_string(i));
  GateId thin = a;
  for (int i = 0; i < 2; ++i) {
    thin = nl.add_gate(GateFunc::kBuf, {thin}, "t" + std::to_string(i));
  }
  nl.add_output("fat_o", fat);
  nl.add_output("thin_o", thin);
  Bench bench(std::move(nl));
  bench.ctx->update();
  const auto full = ssta::run_fullssta(*bench.ctx);
  const WnssTrace trace = trace_wnss(*bench.ctx, full.node);
  EXPECT_EQ(trace.critical_output, bench.nl.find("f5"));
}

TEST(TraceWnss, EmptyForNoOutputs) {
  Netlist nl("empty");
  (void)nl.add_input("a");
  Bench bench(std::move(nl));
  const auto full = ssta::run_fullssta(*bench.ctx);
  const WnssTrace trace = trace_wnss(*bench.ctx, full.node);
  EXPECT_TRUE(trace.path.empty());
  EXPECT_EQ(trace.critical_output, netlist::kNoGate);
}

TEST(TraceWnss, DeterministicAcrossRuns) {
  Bench b(circuits::make_cla_adder(8));
  const auto full = ssta::run_fullssta(*b.ctx);
  const WnssTrace t1 = trace_wnss(*b.ctx, full.node);
  const WnssTrace t2 = trace_wnss(*b.ctx, full.node);
  EXPECT_EQ(t1.path, t2.path);
}

}  // namespace
}  // namespace statsizer::opt
