// The serving stack: JobManager (isolation, priorities, deadlines,
// cancellation, admission control, retry), Flow::run_monte_carlo_batch
// per-job isolation with bitwise-pinned siblings, Session epoch/locking
// semantics against a single-tenant Flow, and the Server's newline-JSON
// protocol — all failure paths driven by deterministic fault injection.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/flow.h"
#include "serve/job.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/json.h"

namespace statsizer::serve {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// JobManager
// ---------------------------------------------------------------------------

TEST(JobManager, RunsJobsAndReportsStats) {
  JobManager manager;
  std::atomic<int> ran{0};
  std::vector<JobRef> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(manager.submit([&] { ran.fetch_add(1); }));
  }
  manager.wait_all();
  EXPECT_EQ(ran.load(), 8);
  for (const JobRef& job : jobs) {
    EXPECT_TRUE(job->done());
    EXPECT_TRUE(job->status().ok());
    EXPECT_EQ(job->attempts(), 1);
  }
  const JobStats stats = manager.stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.running, 0u);
}

TEST(JobManager, IsolatesThrowingJobs) {
  JobManager manager;
  JobRef bad_runtime = manager.submit([] { throw std::runtime_error("kaboom"); });
  JobRef bad_status =
      manager.submit([] { throw StatusError(Status::invalid_argument("bad arg")); });
  JobRef good = manager.submit([] {});
  manager.wait_all();
  EXPECT_EQ(bad_runtime->status().code(), StatusCode::kInternal);
  EXPECT_NE(bad_runtime->status().message().find("kaboom"), std::string::npos);
  // StatusError keeps its structured code and exact message.
  EXPECT_EQ(bad_status->status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad_status->status().message(), "bad arg");
  EXPECT_TRUE(good->status().ok());
  EXPECT_EQ(manager.stats().failed, 2u);
  EXPECT_EQ(manager.stats().completed, 1u);
}

/// Occupies the single worker until release() so later submissions stay
/// queued deterministically.
struct Blocker {
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;
  std::atomic<bool> running{false};
  JobRef job;

  explicit Blocker(JobManager& manager) {
    job = manager.submit([this] {
      running.store(true);
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this] { return released; });
    });
  }
  /// Blocks until the worker actually popped the job off the pending queue —
  /// admission-control tests must not count the blocker against the queue.
  void wait_running() {
    while (!running.load()) std::this_thread::sleep_for(1ms);
  }
  void release() {
    const std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
};

TEST(JobManager, PrioritiesOrderThePendingQueue) {
  JobManagerOptions options;
  options.threads = 1;
  JobManager manager(options);
  Blocker blocker(manager);

  std::vector<int> order;
  std::mutex order_mutex;
  const auto tagged = [&](int tag) {
    return [&order, &order_mutex, tag] {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };
  JobOptions low;
  low.priority = 0;
  JobOptions high;
  high.priority = 5;
  manager.submit(tagged(1), low);
  manager.submit(tagged(2), low);
  manager.submit(tagged(3), high);
  manager.submit(tagged(4), high);
  blocker.release();
  manager.wait_all();
  // High priority first; FIFO within a priority.
  EXPECT_EQ(order, (std::vector<int>{3, 4, 1, 2}));
}

TEST(JobManager, CancelsQueuedJobsWithoutRunningThem) {
  JobManagerOptions options;
  options.threads = 1;
  JobManager manager(options);
  Blocker blocker(manager);

  std::atomic<bool> ran{false};
  JobRef queued = manager.submit([&] { ran.store(true); });
  queued->cancel();
  blocker.release();
  manager.wait_all();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(queued->status().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued->attempts(), 0);
  EXPECT_EQ(manager.stats().cancelled, 1u);
}

TEST(JobManager, CancelsRunningJobsAtTheirNextCheckpoint) {
  JobManagerOptions options;
  options.threads = 1;
  JobManager manager(options);
  std::atomic<bool> started{false};
  JobRef job = manager.submit([&] {
    started.store(true);
    for (int i = 0; i < 10'000; ++i) {
      util::checkpoint("test/loop");
      std::this_thread::sleep_for(1ms);
    }
  });
  while (!started.load()) std::this_thread::sleep_for(1ms);
  job->cancel();
  const Status status = job->wait();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("test/loop"), std::string::npos);
  EXPECT_EQ(job->attempts(), 1);
}

TEST(JobManager, QueuedDeadlineExpiresWithoutRunning) {
  JobManagerOptions options;
  options.threads = 1;
  JobManager manager(options);
  Blocker blocker(manager);

  std::atomic<bool> ran{false};
  JobOptions deadline_options;
  deadline_options.deadline = 1ms;
  JobRef job = manager.submit([&] { ran.store(true); }, deadline_options);
  std::this_thread::sleep_for(10ms);
  blocker.release();
  manager.wait_all();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(job->status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(job->attempts(), 0);
  EXPECT_EQ(manager.stats().deadline_exceeded, 1u);
}

TEST(JobManager, DeadlineAbortsMidJobAtACheckpoint) {
  JobManagerOptions options;
  options.threads = 1;
  JobManager manager(options);
  JobOptions deadline_options;
  deadline_options.deadline = 20ms;
  JobRef job = manager.submit(
      [] {
        for (int i = 0; i < 10'000; ++i) {
          util::checkpoint("test/loop");
          std::this_thread::sleep_for(1ms);
        }
      },
      deadline_options);
  EXPECT_EQ(job->wait().code(), StatusCode::kDeadlineExceeded);
}

TEST(JobManager, ShedsWhenQueueFullThenRecovers) {
  JobManagerOptions options;
  options.threads = 1;
  options.limits.max_queue_depth = 1;
  options.limits.retry_after = 25ms;
  JobManager manager(options);
  Blocker blocker(manager);  // occupies the worker; pending queue empty
  blocker.wait_running();

  std::atomic<int> ran{0};
  JobRef queued = manager.submit([&] { ran.fetch_add(1); });  // fills the queue
  JobRef shed = manager.submit([&] { ran.fetch_add(1); });    // rejected
  EXPECT_TRUE(shed->done());
  EXPECT_EQ(shed->status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed->status().message().find("retry after 25ms"), std::string::npos);
  EXPECT_EQ(shed->retry_after(), 25ms);
  EXPECT_EQ(manager.stats().shed, 1u);

  // Graceful recovery: the client honors the hint and resubmits once the
  // queue drained.
  blocker.release();
  manager.wait_all();
  JobRef retried = manager.submit([&] { ran.fetch_add(1); });
  EXPECT_TRUE(retried->wait().ok());
  EXPECT_EQ(ran.load(), 2);  // queued + resubmit; the shed job never ran
}

TEST(JobManager, ShedsOnInflightCostButAdmitsWhenEmpty) {
  JobManagerOptions options;
  options.threads = 1;
  options.limits.max_inflight_bytes = 1000;
  JobManager manager(options);
  Blocker blocker(manager);
  blocker.wait_running();

  JobOptions big;
  big.cost_bytes = 2000;
  // Over the limit on its own, but the manager only tracks the blocker
  // (cost 0): a job that could never run otherwise is still admitted.
  JobRef admitted = manager.submit([] {}, big);
  EXPECT_FALSE(admitted->done());
  // Now 2000 bytes are in flight; the next costed job is shed.
  JobOptions small;
  small.cost_bytes = 10;
  JobRef shed = manager.submit([] {}, small);
  EXPECT_EQ(shed->status().code(), StatusCode::kResourceExhausted);
  blocker.release();
  manager.wait_all();
  EXPECT_TRUE(admitted->status().ok());
  EXPECT_EQ(manager.stats().inflight_bytes, 0u);
}

TEST(JobManager, RetriesTransientFailuresWithBackoff) {
  JobManager manager;
  std::atomic<int> calls{0};
  JobOptions options;
  options.max_retries = 3;
  options.backoff = 1ms;
  JobRef job = manager.submit(
      [&] {
        if (calls.fetch_add(1) == 0) {
          throw StatusError(Status::unavailable("transient glitch"));
        }
      },
      options);
  EXPECT_TRUE(job->wait().ok());
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(job->attempts(), 2);
  EXPECT_EQ(manager.stats().retried, 1u);
}

TEST(JobManager, DoesNotRetryNonTransientFailures) {
  JobManager manager;
  std::atomic<int> calls{0};
  JobOptions options;
  options.max_retries = 3;
  JobRef job = manager.submit(
      [&] {
        calls.fetch_add(1);
        throw StatusError(Status::invalid_argument("permanently bad"));
      },
      options);
  EXPECT_EQ(job->wait().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(manager.stats().retried, 0u);
}

TEST(JobManager, FaultPlanDrivesRetryThroughTheNamedSites) {
  // First attempt fails at serve/job/start with a transient status; the
  // retry goes through serve/job/retry and succeeds. Entirely deterministic.
  util::FaultPlan plan;
  plan.seed = 7;
  util::FaultRule rule;
  rule.site = "serve/job/start";
  rule.hit = 1;
  rule.code = StatusCode::kUnavailable;
  plan.rules.push_back(rule);

  JobManagerOptions manager_options;
  manager_options.faults = &plan;
  JobManager manager(manager_options);
  std::atomic<int> calls{0};
  JobOptions options;
  options.max_retries = 1;
  options.backoff = 1ms;
  JobRef job = manager.submit([&] { calls.fetch_add(1); }, options);
  EXPECT_TRUE(job->wait().ok());
  EXPECT_EQ(calls.load(), 1);  // attempt 1 died at its start checkpoint
  EXPECT_EQ(job->attempts(), 2);
  EXPECT_EQ(manager.stats().retried, 1u);
}

// ---------------------------------------------------------------------------
// run_monte_carlo_batch isolation (bitwise-pinned siblings)
// ---------------------------------------------------------------------------

std::vector<core::MonteCarloJob> batch_jobs() {
  std::vector<core::MonteCarloJob> jobs(3);
  jobs[0].table1_name = "c432";
  jobs[1].table1_name = "c499";
  jobs[2].table1_name = "c880";
  for (auto& j : jobs) j.mc.samples = 64;
  return jobs;
}

TEST(BatchIsolation, PoisonedJobFailsStructurallyAndSiblingsStayBitwise) {
  const auto jobs = batch_jobs();
  const auto clean = core::Flow::run_monte_carlo_batch(jobs, 2);
  ASSERT_EQ(clean.size(), 3u);
  for (const auto& r : clean) ASSERT_TRUE(r.status.ok()) << r.status.message();

  // Poison job 1's first Monte-Carlo chunk; jobs 0 and 2 are untouched.
  util::FaultPlan plan;
  plan.seed = 1;
  util::FaultRule rule;
  rule.site = "ssta/mc/chunk";
  rule.scope = 1;
  rule.hit = 1;
  plan.rules.push_back(rule);

  const auto poisoned = core::Flow::run_monte_carlo_batch(jobs, 2, {}, &plan);
  ASSERT_EQ(poisoned.size(), 3u);
  EXPECT_EQ(poisoned[1].status.code(), StatusCode::kUnavailable);
  EXPECT_NE(poisoned[1].status.message().find("injected fault at ssta/mc/chunk"),
            std::string::npos);
  EXPECT_TRUE(poisoned[1].mc.circuit_samples.empty());
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(poisoned[i].status.ok());
    // Bitwise-identical to the fault-free run: the failure never leaked.
    EXPECT_EQ(poisoned[i].mc.circuit_samples, clean[i].mc.circuit_samples);
    EXPECT_EQ(poisoned[i].mc.mean_ps, clean[i].mc.mean_ps);
    EXPECT_EQ(poisoned[i].mc.sigma_ps, clean[i].mc.sigma_ps);
  }

  // Thread-count invariance holds for the poisoned run too.
  const auto serial = core::Flow::run_monte_carlo_batch(jobs, 1, {}, &plan);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_EQ(serial[1].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(serial[0].mc.circuit_samples, poisoned[0].mc.circuit_samples);
  EXPECT_EQ(serial[2].mc.circuit_samples, poisoned[2].mc.circuit_samples);
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// First sizable gate name of a workload (for what-if addressing).
std::vector<std::string> whatif_targets(const std::string& workload, std::size_t count) {
  core::Flow probe;
  EXPECT_TRUE(probe.load_table1(workload).ok());
  std::vector<std::string> names;
  const auto& nl = probe.netlist();
  for (netlist::GateId id = 0; id < nl.node_count() && names.size() < count; ++id) {
    if (!nl.gate(id).fanins.empty()) names.push_back(nl.gate(id).name);
  }
  return names;
}

TEST(ServeSession, WhatIfIsBitwiseEqualToSingleTenantFlow) {
  Session session;
  ASSERT_TRUE(session.load_workload("c432").ok());

  core::Flow flow;
  ASSERT_TRUE(flow.load_table1("c432").ok());
  auto analyzer = flow.make_analyzer("fullssta");
  (void)analyzer->analyze(flow.timing());

  for (const std::string& gate : whatif_targets("c432", 4)) {
    const auto report = session.what_if({ResizeRequest{gate, 2}});
    ASSERT_TRUE(report.ok()) << report.status().message();
    auto spec = analyzer->propose(flow.netlist().find(gate), 2);
    const timing::Summary& expected = spec->score();
    EXPECT_EQ(report.value().mean_ps, expected.mean_ps) << gate;
    EXPECT_EQ(report.value().sigma_ps, expected.sigma_ps) << gate;
    EXPECT_EQ(report.value().base_mean_ps, analyzer->current().mean_ps);
    spec->rollback();
  }
}

TEST(ServeSession, ConcurrentWhatIfsMatchSerialAnswersForAnyInterleaving) {
  Session session;
  ASSERT_TRUE(session.load_workload("c432").ok());
  const auto gates = whatif_targets("c432", 8);
  ASSERT_EQ(gates.size(), 8u);

  // Serial ground truth.
  std::vector<double> expected_mean(gates.size());
  std::vector<double> expected_sigma(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const auto r = session.what_if({ResizeRequest{gates[i], 1}});
    ASSERT_TRUE(r.ok());
    expected_mean[i] = r.value().mean_ps;
    expected_sigma[i] = r.value().sigma_ps;
  }

  // 8 client threads, 4 rounds each, arbitrary interleaving: every answer
  // must be bitwise-identical to the serial one.
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (std::size_t c = 0; c < gates.size(); ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 4; ++round) {
        const std::size_t i = (c + static_cast<std::size_t>(round)) % gates.size();
        const auto r = session.what_if({ResizeRequest{gates[i], 1}});
        if (!r.ok() || r.value().mean_ps != expected_mean[i] ||
            r.value().sigma_ps != expected_sigma[i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeSession, FailedLoadLeavesThePreviousDesignServing) {
  Session session;
  ASSERT_TRUE(session.load_workload("c432").ok());
  const SessionInfo before = session.info();
  EXPECT_EQ(before.circuit, "c432");

  // Unknown workload: kInvalidArgument, nothing changes.
  const Status bad_name = session.load_workload("not-a-circuit");
  EXPECT_EQ(bad_name.code(), StatusCode::kInvalidArgument);

  // Structurally broken design (combinational cycle): the DRC admission
  // gate rejects it and the scratch state is discarded.
  const std::string path = testing::TempDir() + "/cyclic.bench";
  {
    std::ofstream f(path);
    f << "INPUT(a)\nOUTPUT(y)\nb = AND(a, c)\nc = AND(b, a)\ny = AND(c, a)\n";
  }
  const Status cyclic = session.load_file(path);
  EXPECT_EQ(cyclic.code(), StatusCode::kInvalidArgument);

  const SessionInfo after = session.info();
  EXPECT_EQ(after.circuit, "c432");
  EXPECT_EQ(after.epoch, before.epoch);
  EXPECT_EQ(after.mean_ps, before.mean_ps);  // still serving, bitwise
  EXPECT_TRUE(session.what_if({ResizeRequest{whatif_targets("c432", 1)[0], 1}}).ok());
}

TEST(ServeSession, EpochAdvancesOnMutationsAndWhatIfReportsIt) {
  Session session;
  ASSERT_TRUE(session.load_workload("c432").ok());
  const std::uint64_t e0 = session.info().epoch;
  const std::string gate = whatif_targets("c432", 1)[0];

  const auto before = session.what_if({ResizeRequest{gate, 1}});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().epoch, e0);

  ASSERT_TRUE(session.apply_sdc_text("create_clock -period 800 -name clk").ok());
  const std::uint64_t e1 = session.info().epoch;
  EXPECT_GT(e1, e0);

  const auto sized = session.size(3.0);
  ASSERT_TRUE(sized.ok()) << sized.status().message();
  EXPECT_GT(sized.value().epoch, e1);

  // The sizing actually moved the committed base; what-ifs see the new
  // epoch and the new base.
  const auto after = session.what_if({ResizeRequest{gate, 1}});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().epoch, sized.value().epoch);
  EXPECT_DOUBLE_EQ(after.value().base_sigma_ps, sized.value().record.after.sigma_ps);
}

TEST(ServeSession, DeadlineAbortedSizeLeavesAConsistentSession) {
  auto session = std::make_shared<Session>();
  ASSERT_TRUE(session->load_workload("c432").ok());
  const std::string gate = whatif_targets("c432", 1)[0];

  JobManagerOptions manager_options;
  manager_options.threads = 1;
  JobManager manager(manager_options);
  JobOptions options;
  options.deadline = 30ms;
  JobRef job = manager.submit(
      [session] {
        const auto r = session->size(9.0);
        if (!r.ok()) throw StatusError(r.status());
      },
      options);
  EXPECT_EQ(job->wait().code(), StatusCode::kDeadlineExceeded);

  // The session recovered to a consistent, serviceable state: info and
  // what-if still work and agree with each other.
  const SessionInfo info = session->info();
  EXPECT_TRUE(info.loaded);
  const auto report = session->what_if({ResizeRequest{gate, 1}});
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report.value().base_mean_ps, info.mean_ps);
  EXPECT_EQ(report.value().epoch, info.epoch);
}

TEST(ServeSession, RejectsBadWhatIfArguments) {
  Session session;
  EXPECT_EQ(session.what_if({ResizeRequest{"g", 0}}).status().code(),
            StatusCode::kInvalidArgument);  // nothing loaded
  ASSERT_TRUE(session.load_workload("c432").ok());
  EXPECT_EQ(session.what_if({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.what_if({ResizeRequest{"no-such-gate", 0}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.what_if({ResizeRequest{whatif_targets("c432", 1)[0], 200}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.yield(0.0, "warp-drive").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Server protocol
// ---------------------------------------------------------------------------

std::vector<util::Json> run_script(Server& server, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  (void)server.run(in, out);
  std::vector<util::Json> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto parsed = util::Json::parse(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (parsed.ok()) responses.push_back(std::move(parsed.value()));
  }
  return responses;
}

double number_at(const util::Json& j, const char* key) {
  const util::Json* v = j.find(key);
  EXPECT_NE(v, nullptr) << key << " missing in " << j.dump();
  return (v != nullptr && v->is_number()) ? v->as_number() : -1.0;
}

std::string string_at(const util::Json& j, const char* key) {
  const util::Json* v = j.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

bool ok_of(const util::Json& j) {
  const util::Json* v = j.find("ok");
  return v != nullptr && v->is_bool() && v->as_bool();
}

TEST(ServeServer, ServesTheProtocolEndToEnd) {
  const std::string gate = whatif_targets("c432", 1)[0];
  ServerOptions options;
  Server server(options);
  const auto responses = run_script(
      server,
      "{\"id\":1,\"op\":\"load\",\"workload\":\"c432\"}\n"
      "{\"id\":2,\"op\":\"whatif\",\"gate\":\"" + gate + "\",\"size\":2}\n"
      "{\"id\":3,\"op\":\"whatif\",\"gate\":\"no-such-gate\",\"size\":1}\n"
      "this is not json\n"
      "{\"id\":5,\"op\":\"frobnicate\"}\n"
      "{\"id\":6,\"op\":\"info\"}\n"
      "{\"id\":7,\"op\":\"status\"}\n"
      "{\"id\":8,\"op\":\"quit\"}\n");
  ASSERT_EQ(responses.size(), 8u);

  EXPECT_TRUE(ok_of(responses[0]));
  EXPECT_EQ(string_at(responses[0], "circuit"), "c432");
  EXPECT_GT(number_at(responses[0], "gates"), 0.0);

  EXPECT_TRUE(ok_of(responses[1]));
  EXPECT_GT(number_at(responses[1], "mean_ps"), 0.0);
  EXPECT_NE(responses[1].find("delta_sigma_ps"), nullptr);

  EXPECT_FALSE(ok_of(responses[2]));
  EXPECT_EQ(string_at(responses[2], "code"), "invalid_argument");

  EXPECT_FALSE(ok_of(responses[3]));  // malformed line
  EXPECT_EQ(string_at(responses[3], "code"), "invalid_argument");
  EXPECT_TRUE(responses[3].find("id")->is_null());

  EXPECT_FALSE(ok_of(responses[4]));  // unknown op
  EXPECT_NE(string_at(responses[4], "error").find("unknown op"), std::string::npos);

  EXPECT_TRUE(ok_of(responses[5]));
  EXPECT_EQ(string_at(responses[5], "circuit"), "c432");

  EXPECT_TRUE(ok_of(responses[6]));
  EXPECT_GE(number_at(responses[6], "submitted"), 3.0);

  EXPECT_TRUE(ok_of(responses[7]));  // quit
}

TEST(ServeServer, DeadlineExceededRequestAnswersStructurally) {
  ServerOptions options;
  Server server(options);
  // The load occupies the worker for far longer than 1ms, so the yield's
  // deadline expires while queued; either way the code is structural.
  const auto responses = run_script(
      server,
      "{\"id\":1,\"op\":\"load\",\"workload\":\"c432\"}\n"
      "{\"id\":2,\"op\":\"yield\",\"deadline_ms\":1}\n"
      "{\"id\":3,\"op\":\"quit\"}\n");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(ok_of(responses[0]));
  EXPECT_FALSE(ok_of(responses[1]));
  EXPECT_EQ(string_at(responses[1], "code"), "deadline_exceeded");
  EXPECT_TRUE(ok_of(responses[2]));
}

TEST(ServeServer, ShedsWhenTheQueueIsFullWithRetryAfter) {
  ServerOptions options;
  options.threads = 1;
  options.limits.max_queue_depth = 1;
  options.limits.retry_after = 15ms;
  Server server(options);

  // The load takes far longer than reading three more lines, so the single
  // worker is busy with it while the infos arrive: at most one fits the
  // depth-1 queue, the rest shed. (Which specific info sneaks in depends on
  // worker wakeup; the invariants below do not.)
  const auto responses = run_script(
      server,
      "{\"id\":1,\"op\":\"load\",\"workload\":\"c432\"}\n"
      "{\"id\":2,\"op\":\"info\"}\n"
      "{\"id\":3,\"op\":\"info\"}\n"
      "{\"id\":4,\"op\":\"info\"}\n"
      "{\"id\":5,\"op\":\"quit\"}\n");
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_TRUE(ok_of(responses[0]));
  EXPECT_TRUE(ok_of(responses[4]));  // quit
  int shed = 0;
  for (int i = 1; i <= 3; ++i) {
    if (ok_of(responses[i])) continue;  // admitted infos must succeed
    ++shed;
    EXPECT_EQ(string_at(responses[i], "code"), "resource_exhausted") << i;
    EXPECT_EQ(number_at(responses[i], "retry_after_ms"), 15.0) << i;
    EXPECT_NE(string_at(responses[i], "error").find("retry after"), std::string::npos);
  }
  EXPECT_GE(shed, 2);  // a depth-1 queue can hold at most one of the three
  // Responses still came back in request order: id fields are 1..5.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(number_at(responses[static_cast<std::size_t>(i)], "id"), i + 1.0);
  }
}

}  // namespace
}  // namespace statsizer::serve
