// Technology binding: assigns every logic gate a library cell group and an
// initial size, decomposing gates whose arity exceeds what the library offers
// (e.g. a 9-input AND from a .bench file) into balanced trees of library
// cells. Logic function is preserved exactly (verified by simulation in the
// test suite).
#pragma once

#include <cstdint>

#include "liberty/model.h"
#include "netlist/netlist.h"
#include "util/status.h"

namespace statsizer::techmap {

enum class InitialSize : std::uint8_t {
  kSmallest,  ///< start from minimum drive (deterministic sizer's seed)
  kMiddle,    ///< start from the median drive
};

struct MapOptions {
  InitialSize initial_size = InitialSize::kSmallest;
};

/// Maps @p nl in place onto @p lib. After success every non-input,
/// non-constant gate has a valid cell_group/size_index and arity within the
/// library's limits. Fails (without completing the mapping) if the library
/// lacks a cell family for some function.
[[nodiscard]] Status map_to_library(netlist::Netlist& nl, const liberty::Library& lib,
                                    const MapOptions& options = {});

/// True if every logic gate of @p nl is bound to a group of @p lib with a
/// compatible arity and an in-range size index.
[[nodiscard]] bool is_mapped(const netlist::Netlist& nl, const liberty::Library& lib);

}  // namespace statsizer::techmap
