#include "techmap/mapper.h"

#include <algorithm>
#include <vector>

namespace statsizer::techmap {

using liberty::Library;
using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

namespace {

/// Largest arity the library offers for @p func (0 if none).
std::size_t max_arity_for(const Library& lib, GateFunc func) {
  std::size_t best = 0;
  for (const auto& g : lib.groups()) {
    if (g.func() == func) best = std::max(best, g.arity());
  }
  return best;
}

/// True if the library has a group for exactly (func, arity).
bool has_group(const Library& lib, GateFunc func, std::size_t arity) {
  return lib.find_group(func, arity).has_value();
}

/// The associative "inner" function for tree decomposition of @p func:
/// NAND decomposes over AND chunks, NOR over OR, XNOR over XOR.
GateFunc inner_func(GateFunc func) {
  switch (func) {
    case GateFunc::kNand: return GateFunc::kAnd;
    case GateFunc::kNor: return GateFunc::kOr;
    case GateFunc::kXnor: return GateFunc::kXor;
    default: return func;
  }
}

}  // namespace

Status map_to_library(Netlist& nl, const Library& lib, const MapOptions& options) {
  // Pass 1: decompose gates whose arity exceeds the library's offering.
  // New gates are appended, so iterate by index over the original count and
  // let appended gates (which are always within limits) be handled in pass 2.
  const std::size_t original_count = nl.node_count();
  for (GateId id = 0; id < original_count; ++id) {
    const GateFunc func = nl.gate(id).func;
    if (func == GateFunc::kInput || func == GateFunc::kConst0 || func == GateFunc::kConst1) {
      continue;
    }
    const std::size_t arity = nl.gate(id).fanins.size();
    const std::size_t max_here = max_arity_for(lib, func);
    if (max_here >= arity && has_group(lib, func, arity)) continue;

    // Need decomposition. Associative chunks use the inner function's widest
    // cells; the original gate becomes the tree's final stage so its fanouts
    // and identity (name, PO references) are untouched.
    const GateFunc inner = inner_func(func);
    const std::size_t inner_width = max_arity_for(lib, inner);
    const std::size_t final_width = max_arity_for(lib, func);
    if (inner_width < 2 || final_width < 1) {
      return Status::error("library lacks cells for function " +
                           std::string(netlist::func_name(func)));
    }
    if (arity < 2) {
      return Status::error("cannot map 1-input " + std::string(netlist::func_name(func)));
    }

    std::vector<GateId> fanins = nl.gate(id).fanins;
    // Reduce with inner gates until at most final_width operands remain, then
    // rewire the original gate over the remaining operands. Each reduction
    // round must make progress (inner_width >= 2 guarantees it).
    while (fanins.size() > final_width) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i < fanins.size(); i += inner_width) {
        const std::size_t n = std::min(inner_width, fanins.size() - i);
        if (n == 1) {
          next.push_back(fanins[i]);
        } else {
          next.push_back(
              nl.add_gate(inner, std::span<const GateId>(fanins.data() + i, n)));
        }
      }
      fanins = std::move(next);
    }
    // The final stage keeps the original (possibly inverting) function when a
    // group of that arity exists; a 1-operand remainder for inverting
    // functions becomes INV, for associative ones BUF.
    GateFunc final_func = func;
    if (fanins.size() == 1) {
      final_func = netlist::is_inverting(func) ? GateFunc::kInv : GateFunc::kBuf;
    } else if (!has_group(lib, func, fanins.size())) {
      // e.g. XNOR4 asked over {XNOR2}: split further so the last stage fits.
      while (!has_group(lib, func, fanins.size())) {
        if (fanins.size() <= 2) {
          return Status::error("library lacks cells for function " +
                               std::string(netlist::func_name(func)) + " arity " +
                               std::to_string(fanins.size()));
        }
        // Merge the two front operands with the inner function.
        const GateId merged = nl.add_gate(
            inner, std::span<const GateId>(fanins.data(), 2));
        fanins.erase(fanins.begin());
        fanins[0] = merged;
      }
    }
    nl.rewire(id, final_func, fanins);
  }

  // Pass 2: bind every logic gate to its group and seed the size index.
  for (GateId id = 0; id < nl.node_count(); ++id) {
    auto& g = nl.gate(id);
    if (g.func == GateFunc::kInput || g.func == GateFunc::kConst0 ||
        g.func == GateFunc::kConst1) {
      g.cell_group = netlist::kUnmapped;
      continue;
    }
    const auto group = lib.find_group(g.func, g.fanins.size());
    if (!group.has_value()) {
      return Status::error("no library cell for " + std::string(netlist::func_name(g.func)) +
                           " arity " + std::to_string(g.fanins.size()) + " (gate " + g.name +
                           ")");
    }
    g.cell_group = *group;
    const std::size_t n_sizes = lib.group(*group).size_count();
    g.size_index = options.initial_size == InitialSize::kSmallest
                       ? 0
                       : static_cast<std::uint16_t>(n_sizes / 2);
  }
  return Status();
}

bool is_mapped(const Netlist& nl, const Library& lib) {
  for (GateId id = 0; id < nl.node_count(); ++id) {
    const auto& g = nl.gate(id);
    if (g.func == GateFunc::kInput || g.func == GateFunc::kConst0 ||
        g.func == GateFunc::kConst1) {
      continue;
    }
    if (g.cell_group == netlist::kUnmapped || g.cell_group >= lib.groups().size()) return false;
    const auto& group = lib.group(g.cell_group);
    if (group.func() != g.func || group.arity() != g.fanins.size()) return false;
    if (g.size_index >= group.size_count()) return false;
  }
  return true;
}

}  // namespace statsizer::techmap
