#include "circuits/iscas_suite.h"

#include <stdexcept>

#include "circuits/generators.h"

namespace statsizer::circuits {

const std::vector<std::string>& table1_names() {
  static const std::vector<std::string> kNames = {
      "alu1", "alu2", "alu3", "c432",  "c499",  "c880",  "c1355",
      "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"};
  return kNames;
}

const std::vector<std::string>& scaled_workload_names() {
  static const std::vector<std::string> kNames = {"mul32", "mul64", "pipe64", "mesh8"};
  return kNames;
}

std::optional<Table1Reference> table1_reference(std::string_view name) {
  // Columns from the paper's Table 1: gates, original sigma/mu, and the
  // sigma reductions at lambda = 3 / lambda = 9.
  static const std::vector<Table1Reference> kRefs = {
      {"alu1", 234, 0.124, -0.54, -0.80},  {"alu2", 161, 0.147, -0.71, -0.86},
      {"alu3", 215, 0.127, -0.61, -0.75},  {"c432", 203, 0.093, -0.58, -0.75},
      {"c499", 381, 0.077, -0.63, -0.76},  {"c880", 301, 0.092, -0.57, -0.79},
      {"c1355", 378, 0.081, -0.63, -0.71}, {"c1908", 563, 0.076, -0.44, -0.71},
      {"c2670", 820, 0.068, -0.42, -0.76}, {"c3540", 1245, 0.062, -0.56, -0.70},
      {"c5315", 2318, 0.043, -0.36, -0.68}, {"c6288", 2980, 0.021, -0.28, -0.47},
      {"c7552", 2763, 0.043, -0.50, -0.66},
  };
  for (const auto& r : kRefs) {
    if (r.name == name) return r;
  }
  return std::nullopt;
}

netlist::Netlist make_table1_circuit(std::string_view name) {
  // ALUs: shallow carry-lookahead datapaths — the high sigma/mu end.
  if (name == "alu1") {
    AluOptions o;
    o.bits = 16;
    o.with_shifter = false;
    auto nl = make_alu(o);
    nl.set_name("alu1");
    return nl;
  }
  if (name == "alu2") {
    AluOptions o;
    o.bits = 10;
    auto nl = make_alu(o);
    nl.set_name("alu2");
    return nl;
  }
  if (name == "alu3") {
    AluOptions o;
    o.bits = 14;
    auto nl = make_alu(o);
    nl.set_name("alu3");
    return nl;
  }
  // c432: 27-channel priority interrupt controller.
  if (name == "c432") {
    auto nl = make_interrupt_controller(27, 3);
    nl.set_name("c432");
    return nl;
  }
  // c499 / c1355: 32-bit single-error corrector; c1355 is the NAND-expanded
  // variant (the genuine c1355 is c499 with XORs expanded).
  if (name == "c499") {
    auto nl = make_hamming_sec(32, /*expand_xor=*/false);
    nl.set_name("c499");
    return nl;
  }
  if (name == "c1355") {
    auto nl = make_hamming_sec(32, /*expand_xor=*/true);
    nl.set_name("c1355");
    return nl;
  }
  // c880: 8-bit ALU with shifter.
  if (name == "c880") {
    AluOptions o;
    o.bits = 8;
    o.with_shifter = true;
    auto nl = make_alu(o);
    nl.set_name("c880");
    return nl;
  }
  // c1908: 16-bit SEC/DED encode+correct chain (NAND-heavy).
  if (name == "c1908") {
    auto nl = make_sec_ded(16, /*expand_xor=*/true);
    nl.set_name("c1908");
    return nl;
  }
  // c2670: 12-bit ALU + controller.
  if (name == "c2670") {
    AluSystemOptions o;
    o.alu_bits = 12;
    o.alu_count = 1;
    o.interrupt_channels = 18;
    o.comparator_bits = 12;
    auto nl = make_alu_system(o);
    nl.set_name("c2670");
    return nl;
  }
  // c3540: 8-bit binary/BCD ALU (4 BCD digits = 16 bits gives the closest
  // mapped size).
  if (name == "c3540") {
    auto nl = make_bcd_alu(4);
    nl.set_name("c3540");
    return nl;
  }
  // c5315: 9-bit ALU system with two ALUs and a multiplier.
  if (name == "c5315") {
    AluSystemOptions o;
    o.alu_bits = 9;
    o.alu_count = 2;
    o.multiplier_bits = 8;
    o.interrupt_channels = 27;
    o.comparator_bits = 16;
    auto nl = make_alu_system(o);
    nl.set_name("c5315");
    return nl;
  }
  // c6288: 16x16 array multiplier, NAND-level full adders — the deep,
  // low-sigma/mu extreme.
  if (name == "c6288") {
    auto nl = make_array_multiplier(16, /*expand_xor=*/true);
    nl.set_name("c6288");
    return nl;
  }
  // c7552: 32-bit adder/comparator datapath.
  if (name == "c7552") {
    auto nl = make_adder_comparator(32);
    nl.set_name("c7552");
    return nl;
  }
  // Scaled fabrics (scaled_workload_names): 10k-100k-gate workloads whose
  // wavefront levels are wide enough for the parallel kernels.
  if (name == "mul32") {
    auto nl = make_array_multiplier(32, /*expand_xor=*/true);
    nl.set_name("mul32");
    return nl;
  }
  if (name == "mul64") {
    auto nl = make_array_multiplier(64, /*expand_xor=*/true);
    nl.set_name("mul64");
    return nl;
  }
  if (name == "pipe64") {
    auto nl = make_pipelined_datapath(PipelineOptions{});
    nl.set_name("pipe64");
    return nl;
  }
  if (name == "mesh8") {
    auto nl = make_mesh_interconnect(MeshOptions{});
    nl.set_name("mesh8");
    return nl;
  }
  throw std::invalid_argument("make_table1_circuit: unknown circuit '" + std::string(name) +
                              "'");
}

}  // namespace statsizer::circuits
