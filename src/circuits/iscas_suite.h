// The 13 Table-1 workloads by name. Each entry instantiates a generator from
// circuits/generators.h configured to land near the paper's mapped gate count
// and, more importantly, its logic depth class (depth is what drives the
// sigma/mu trends in Table 1). See DESIGN.md for the substitution rationale
// and EXPERIMENTS.md for measured-vs-paper sizes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.h"

namespace statsizer::circuits {

/// Reference data from the paper's Table 1 (for reporting side-by-side).
struct Table1Reference {
  std::string name;
  int paper_gates = 0;
  double paper_sigma_over_mu = 0.0;      ///< "Original" column
  double paper_sigma_reduction_l3 = 0.0; ///< Delta-sigma at lambda = 3 (fraction, negative)
  double paper_sigma_reduction_l9 = 0.0; ///< Delta-sigma at lambda = 9
};

/// All Table-1 circuit names, in the paper's row order.
[[nodiscard]] const std::vector<std::string>& table1_names();

/// The scaled 10k-100k-gate fabrics (wide array multipliers, pipelined
/// datapath, mesh interconnect). Not in the paper's Table 1 — registered
/// here so flows and benches load them like any other workload; their
/// wavefront levels are wide enough for the parallel kernels to pay
/// (median level width far above TimingOptions::min_level_width_for_parallel,
/// unlike the ~400-gate Table-1 circuits).
[[nodiscard]] const std::vector<std::string>& scaled_workload_names();

/// Paper reference numbers for a circuit; nullopt for unknown names.
[[nodiscard]] std::optional<Table1Reference> table1_reference(std::string_view name);

/// Builds the named Table-1 workload ("alu1", "c432", ..., "c7552").
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] netlist::Netlist make_table1_circuit(std::string_view name);

}  // namespace statsizer::circuits
