// Structural circuit generators.
//
// The paper evaluates on ISCAS-85 benchmarks (synthesized with a commercial
// tool) plus several ALUs. The genuine pre-synthesis netlists cannot be
// bundled here, so this module builds *functionally equivalent* circuits —
// adders, ALUs, array multipliers, Hamming SEC / SEC-DED correctors,
// priority interrupt controllers, adder/comparator datapaths — whose gate
// counts and logic depths land close to the mapped sizes in the paper's
// Table 1 (see circuits/iscas_suite.h for the name -> configuration map and
// DESIGN.md for the substitution rationale). Everything is verified
// functionally: the test suite simulates adders adding, multipliers
// multiplying and ECC correcting injected errors.
//
// All generators produce pure GateFunc netlists; technology mapping binds
// them to a library afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace statsizer::circuits {

using netlist::GateId;
using netlist::Netlist;

/// Convenience wrapper for generator code: byte-sized helpers over Netlist.
/// (Public because examples and tests also use it to assemble ad-hoc logic.)
class Builder {
 public:
  explicit Builder(std::string name) : nl_(std::move(name)) {}

  GateId input(const std::string& name) { return nl_.add_input(name); }
  std::vector<GateId> bus(const std::string& prefix, unsigned width);
  void output(const std::string& name, GateId g) { nl_.add_output(name, g); }
  void bus_out(const std::string& prefix, std::span<const GateId> bits);

  GateId not_(GateId a) { return nl_.add_gate(netlist::GateFunc::kInv, {a}); }
  GateId buf(GateId a) { return nl_.add_gate(netlist::GateFunc::kBuf, {a}); }
  GateId and_(GateId a, GateId b) { return nl_.add_gate(netlist::GateFunc::kAnd, {a, b}); }
  GateId or_(GateId a, GateId b) { return nl_.add_gate(netlist::GateFunc::kOr, {a, b}); }
  GateId nand_(GateId a, GateId b) { return nl_.add_gate(netlist::GateFunc::kNand, {a, b}); }
  GateId nor_(GateId a, GateId b) { return nl_.add_gate(netlist::GateFunc::kNor, {a, b}); }
  GateId xor_(GateId a, GateId b);
  GateId xnor_(GateId a, GateId b);
  /// s ? d1 : d0
  GateId mux(GateId d0, GateId d1, GateId s) {
    return nl_.add_gate(netlist::GateFunc::kMux2, {d0, d1, s});
  }

  /// Balanced reduction trees (2-input gates).
  GateId and_tree(std::span<const GateId> xs);
  GateId or_tree(std::span<const GateId> xs);
  GateId xor_tree(std::span<const GateId> xs);

  /// When set, xor_/xnor_ are built from four NAND2s / plus an inverter
  /// instead of XOR cells — mirrors NAND/NOR-dominated netlists like the
  /// genuine c1355/c6288 and roughly triples their depth and size.
  void set_expand_xor(bool expand) { expand_xor_ = expand; }
  [[nodiscard]] bool expand_xor() const { return expand_xor_; }

  [[nodiscard]] Netlist take() { return std::move(nl_); }
  [[nodiscard]] Netlist& netlist() { return nl_; }

 private:
  Netlist nl_;
  bool expand_xor_ = false;
};

// -- arithmetic blocks (shared by generators; exposed for tests) -------------

struct AdderBits {
  std::vector<GateId> sum;
  GateId carry_out;
};

/// Ripple-carry adder over equal-width buses.
AdderBits ripple_adder(Builder& b, std::span<const GateId> a, std::span<const GateId> bb,
                       GateId carry_in);

/// Carry-lookahead adder (4-bit groups, ripple between groups).
AdderBits cla_adder(Builder& b, std::span<const GateId> a, std::span<const GateId> bb,
                    GateId carry_in);

// -- public generators ---------------------------------------------------------

/// n-bit ripple-carry adder: inputs a[n], b[n], cin; outputs s[n], cout.
[[nodiscard]] Netlist make_ripple_adder(unsigned bits, bool expand_xor = false);

/// n-bit carry-lookahead adder, same interface.
[[nodiscard]] Netlist make_cla_adder(unsigned bits);

/// n x n array multiplier: inputs a[n], b[n]; outputs p[2n]. With
/// @p expand_xor the full adders are NAND-level (c6288-class depth).
[[nodiscard]] Netlist make_array_multiplier(unsigned bits, bool expand_xor = true);

/// ALU configuration. Operations (op[2:0]): AND, OR, XOR, ADD, SUB, NOR,
/// pass-A, pass-B; optional barrel shifter on the result and status flags
/// (zero, sign, carry, overflow, parity).
struct AluOptions {
  unsigned bits = 8;
  bool use_cla = true;
  bool with_shifter = false;
  bool with_flags = true;
  bool expand_xor = false;
};
[[nodiscard]] Netlist make_alu(const AluOptions& options);

/// Hamming single-error-corrector: receives a codeword (data + check bits),
/// outputs corrected data and an error flag. c499/c1355-class at 32 data
/// bits (c1355-class uses expand_xor).
[[nodiscard]] Netlist make_hamming_sec(unsigned data_bits, bool expand_xor = false);

/// SEC-DED encoder + corrector chain (c1908-class at 16 data bits): encodes
/// the data, then corrects a possibly-corrupted codeword (error injection via
/// a flip mask input) and raises single/double-error flags.
[[nodiscard]] Netlist make_sec_ded(unsigned data_bits, bool expand_xor = true);

/// Priority interrupt controller, c432-class at 27 channels in 3 banks:
/// bank-enable gating, tree prefix priority resolution, grant lines and a
/// binary index encoder.
[[nodiscard]] Netlist make_interrupt_controller(unsigned channels, unsigned banks);

/// Adder/comparator datapath (c7552-class at 32 bits): two CLA adders
/// (a+b, a-b), an independent magnitude comparator, parity trees, an
/// incrementer and an output select stage.
[[nodiscard]] Netlist make_adder_comparator(unsigned bits);

/// Composite ALU system (c2670/c5315-class): ALUs, optional multiplier,
/// interrupt controller, comparator and parity glue.
struct AluSystemOptions {
  unsigned alu_bits = 12;
  unsigned alu_count = 1;
  unsigned multiplier_bits = 0;  ///< 0 = no multiplier
  unsigned interrupt_channels = 18;
  unsigned comparator_bits = 12;
  bool with_parity = true;
};
[[nodiscard]] Netlist make_alu_system(const AluSystemOptions& options);

/// Binary+BCD ALU (c3540-class): binary ALU, per-digit BCD adjustment,
/// barrel shifter and flag logic over @p digits BCD digits (4 bits each).
[[nodiscard]] Netlist make_bcd_alu(unsigned digits);

// -- scaled fabrics (10k-100k gates; wavefront-width workloads) ---------------

/// Pipelined datapath: @p stages chained CLA stages over a @p bits-wide
/// state. Stage s computes state' = CLA(state, ror1(state) XOR b) with the
/// previous stage's carry-out as carry-in (stage 0 uses the `cin` input);
/// ror1 rotates the bus right by one (pure wiring). Inputs a[bits], b[bits],
/// cin; outputs r[bits] (final state) and cout<s> per stage. Each stage's
/// propagate/generate layer is ~2*bits independent gates, so wavefront
/// levels stay wide through the whole pipeline. ~10k gates at the defaults.
struct PipelineOptions {
  unsigned bits = 64;
  unsigned stages = 14;
  bool expand_xor = false;
};
[[nodiscard]] Netlist make_pipelined_datapath(const PipelineOptions& options);

/// Mesh interconnect fabric: a rows x cols grid of @p bits-wide compute
/// nodes. Node (r,c) takes the north bus (output of (r-1,c); row 0 reads
/// primary-input bus n<c>_*), the west bus (output of (r,c-1); column 0
/// reads w<r>_*), and a per-node select input sel<r>_<c>, computing
/// out = sel ? CLA_sum(north, west, cin = sel) : north XOR west, with the
/// adder's carry-out observable as output co<r>_<c>. East-edge and south-edge buses
/// are primary outputs (e<r>_*, s<c>_*). Nodes on one anti-diagonal are
/// independent, so level width scales with min(rows, cols) * bits.
/// ~13k gates at 8x8x16.
struct MeshOptions {
  unsigned rows = 8;
  unsigned cols = 8;
  unsigned bits = 16;
};
[[nodiscard]] Netlist make_mesh_interconnect(const MeshOptions& options);

/// Random DAG for property tests: reproducible from the seed.
struct RandomDagOptions {
  unsigned n_inputs = 8;
  unsigned n_gates = 64;
  unsigned n_outputs = 4;
  unsigned max_arity = 4;
  std::uint64_t seed = 1;
};
[[nodiscard]] Netlist make_random_dag(const RandomDagOptions& options);

}  // namespace statsizer::circuits
