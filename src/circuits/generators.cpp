#include "circuits/generators.h"

#include <algorithm>
#include <stdexcept>

#include "netlist/topo.h"
#include "util/rng.h"

namespace statsizer::circuits {

using netlist::GateFunc;

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

std::vector<GateId> Builder::bus(const std::string& prefix, unsigned width) {
  std::vector<GateId> ids;
  ids.reserve(width);
  for (unsigned i = 0; i < width; ++i) ids.push_back(input(prefix + std::to_string(i)));
  return ids;
}

void Builder::bus_out(const std::string& prefix, std::span<const GateId> bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    output(prefix + std::to_string(i), bits[i]);
  }
}

GateId Builder::xor_(GateId a, GateId b) {
  if (!expand_xor_) return nl_.add_gate(GateFunc::kXor, {a, b});
  // Four-NAND XOR: n1 = NAND(a,b); XOR = NAND(NAND(a,n1), NAND(b,n1)).
  const GateId n1 = nand_(a, b);
  return nand_(nand_(a, n1), nand_(b, n1));
}

GateId Builder::xnor_(GateId a, GateId b) {
  if (!expand_xor_) return nl_.add_gate(GateFunc::kXnor, {a, b});
  return not_(xor_(a, b));
}

namespace {
GateId tree_reduce(Builder& b, std::span<const GateId> xs, GateId (Builder::*op)(GateId, GateId)) {
  if (xs.empty()) throw std::invalid_argument("tree reduction over empty span");
  std::vector<GateId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<GateId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back((b.*op)(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}
}  // namespace

GateId Builder::and_tree(std::span<const GateId> xs) { return tree_reduce(*this, xs, &Builder::and_); }
GateId Builder::or_tree(std::span<const GateId> xs) { return tree_reduce(*this, xs, &Builder::or_); }
GateId Builder::xor_tree(std::span<const GateId> xs) { return tree_reduce(*this, xs, &Builder::xor_); }

// ---------------------------------------------------------------------------
// Arithmetic blocks
// ---------------------------------------------------------------------------

namespace {

struct FullAdderOut {
  GateId sum;
  GateId carry;
};

FullAdderOut full_adder(Builder& b, GateId a, GateId x, GateId cin) {
  const GateId p = b.xor_(a, x);
  const GateId sum = b.xor_(p, cin);
  const GateId carry = b.or_(b.and_(a, x), b.and_(p, cin));
  return {sum, carry};
}

struct HalfAdderOut {
  GateId sum;
  GateId carry;
};

HalfAdderOut half_adder(Builder& b, GateId a, GateId x) {
  return {b.xor_(a, x), b.and_(a, x)};
}

}  // namespace

AdderBits ripple_adder(Builder& b, std::span<const GateId> a, std::span<const GateId> bb,
                       GateId carry_in) {
  if (a.size() != bb.size() || a.empty()) {
    throw std::invalid_argument("ripple_adder: operand width mismatch");
  }
  AdderBits out;
  GateId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FullAdderOut fa = full_adder(b, a[i], bb[i], carry);
    out.sum.push_back(fa.sum);
    carry = fa.carry;
  }
  out.carry_out = carry;
  return out;
}

AdderBits cla_adder(Builder& b, std::span<const GateId> a, std::span<const GateId> bb,
                    GateId carry_in) {
  if (a.size() != bb.size() || a.empty()) {
    throw std::invalid_argument("cla_adder: operand width mismatch");
  }
  const std::size_t n = a.size();
  std::vector<GateId> p(n);
  std::vector<GateId> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = b.xor_(a[i], bb[i]);
    g[i] = b.and_(a[i], bb[i]);
  }

  AdderBits out;
  out.sum.resize(n);
  GateId group_cin = carry_in;
  for (std::size_t base = 0; base < n; base += 4) {
    const std::size_t w = std::min<std::size_t>(4, n - base);
    // Carries within the group: c_{i+1} = g_i | p_i & c_i, flattened to
    // two-level lookahead form.
    std::vector<GateId> carries(w + 1);
    carries[0] = group_cin;
    for (std::size_t i = 0; i < w; ++i) {
      // c_{i+1} = g_i | (p_i g_{i-1}) | ... | (p_i ... p_0 cin)
      std::vector<GateId> terms;
      terms.push_back(g[base + i]);
      for (std::size_t j = 0; j < i; ++j) {
        GateId t = g[base + j];
        for (std::size_t k = j + 1; k <= i; ++k) t = b.and_(t, p[base + k]);
        terms.push_back(t);
      }
      GateId t = group_cin;
      for (std::size_t k = 0; k <= i; ++k) t = b.and_(t, p[base + k]);
      terms.push_back(t);
      carries[i + 1] = b.or_tree(terms);
    }
    for (std::size_t i = 0; i < w; ++i) out.sum[base + i] = b.xor_(p[base + i], carries[i]);
    group_cin = carries[w];
  }
  out.carry_out = group_cin;
  return out;
}

// ---------------------------------------------------------------------------
// Adders / multiplier
// ---------------------------------------------------------------------------

Netlist make_ripple_adder(unsigned bits, bool expand_xor) {
  Builder b("rca" + std::to_string(bits));
  b.set_expand_xor(expand_xor);
  const auto a = b.bus("a", bits);
  const auto bb = b.bus("b", bits);
  const GateId cin = b.input("cin");
  const AdderBits sum = ripple_adder(b, a, bb, cin);
  b.bus_out("s", sum.sum);
  b.output("cout", sum.carry_out);
  return b.take();
}

Netlist make_cla_adder(unsigned bits) {
  Builder b("cla" + std::to_string(bits));
  const auto a = b.bus("a", bits);
  const auto bb = b.bus("b", bits);
  const GateId cin = b.input("cin");
  const AdderBits sum = cla_adder(b, a, bb, cin);
  b.bus_out("s", sum.sum);
  b.output("cout", sum.carry_out);
  return b.take();
}

Netlist make_array_multiplier(unsigned bits, bool expand_xor) {
  if (bits < 2) throw std::invalid_argument("make_array_multiplier: bits must be >= 2");
  Builder b("mul" + std::to_string(bits) + "x" + std::to_string(bits));
  b.set_expand_xor(expand_xor);
  const auto a = b.bus("a", bits);
  const auto bb = b.bus("b", bits);

  // Partial-product matrix.
  std::vector<std::vector<GateId>> pp(bits, std::vector<GateId>(bits));
  for (unsigned i = 0; i < bits; ++i) {
    for (unsigned j = 0; j < bits; ++j) pp[i][j] = b.and_(a[j], bb[i]);
  }

  // Row-by-row carry-save reduction (classic array multiplier, like c6288).
  std::vector<GateId> product;
  std::vector<GateId> row(pp[0].begin(), pp[0].end());  // running partial sum
  product.push_back(row[0]);
  row.erase(row.begin());

  for (unsigned i = 1; i < bits; ++i) {
    std::vector<GateId> next;
    GateId carry = netlist::kNoGate;
    for (unsigned j = 0; j < bits; ++j) {
      const GateId addend = pp[i][j];
      const GateId partial = j < row.size() ? row[j] : netlist::kNoGate;
      if (partial == netlist::kNoGate && carry == netlist::kNoGate) {
        next.push_back(addend);
      } else if (carry == netlist::kNoGate) {
        const HalfAdderOut ha = half_adder(b, partial, addend);
        next.push_back(ha.sum);
        carry = ha.carry;
      } else if (partial == netlist::kNoGate) {
        const HalfAdderOut ha = half_adder(b, carry, addend);
        next.push_back(ha.sum);
        carry = ha.carry;
      } else {
        const FullAdderOut fa = full_adder(b, partial, addend, carry);
        next.push_back(fa.sum);
        carry = fa.carry;
      }
    }
    if (carry != netlist::kNoGate) next.push_back(carry);
    product.push_back(next[0]);
    next.erase(next.begin());
    row = std::move(next);
  }
  for (const GateId g : row) product.push_back(g);
  while (product.size() < 2 * bits) {
    // Width bookkeeping: pad with constant-0 only if the reduction came short
    // (cannot happen for bits >= 2, but keep the invariant explicit).
    product.push_back(b.netlist().add_gate(GateFunc::kConst0, {}));
  }
  b.bus_out("p", product);
  return b.take();
}

// ---------------------------------------------------------------------------
// ALU
// ---------------------------------------------------------------------------

Netlist make_alu(const AluOptions& options) {
  const unsigned n = options.bits;
  if (n < 2) throw std::invalid_argument("make_alu: bits must be >= 2");
  Builder b("alu" + std::to_string(n));
  b.set_expand_xor(options.expand_xor);

  const auto a = b.bus("a", n);
  const auto bb = b.bus("b", n);
  const GateId op0 = b.input("op0");
  const GateId op1 = b.input("op1");
  const GateId op2 = b.input("op2");
  const GateId cin = b.input("cin");

  // Arithmetic: b is conditionally inverted for subtraction (sub = op2), with
  // the two's-complement +1 injected through the carry; ADD takes the external
  // carry-in when op0 selects carry-chained addition.
  std::vector<GateId> b_eff(n);
  for (unsigned i = 0; i < n; ++i) b_eff[i] = b.xor_(bb[i], op2);
  const GateId arith_cin = b.or_(op2, b.and_(cin, op0));
  const AdderBits sum = options.use_cla ? cla_adder(b, a, b_eff, arith_cin)
                                        : ripple_adder(b, a, b_eff, arith_cin);

  // Logic unit per bit + 4:1 result mux: {AND, OR, XOR, SUM} by (op1, op0),
  // then op2 swaps in {NOR, pass-A} variants on the logic side.
  std::vector<GateId> result(n);
  for (unsigned i = 0; i < n; ++i) {
    const GateId land = b.and_(a[i], bb[i]);
    const GateId lor = b.or_(a[i], bb[i]);
    const GateId lxor = b.xor_(a[i], bb[i]);
    const GateId lnor = b.nor_(a[i], bb[i]);
    const GateId logic_a = b.mux(land, lnor, op2);  // AND / NOR
    const GateId logic_b = b.mux(lor, a[i], op2);   // OR / pass-A
    const GateId m0 = b.mux(logic_a, logic_b, op0);
    const GateId m1 = b.mux(lxor, sum.sum[i], op0);
    result[i] = b.mux(m0, m1, op1);
  }

  if (options.with_shifter) {
    // Logarithmic left shifter on the result (shift amount inputs).
    unsigned stages = 0;
    while ((1u << stages) < n) ++stages;
    stages = std::min(stages, 3u);
    for (unsigned s = 0; s < stages; ++s) {
      const GateId sh = b.input("sh" + std::to_string(s));
      const unsigned dist = 1u << s;
      std::vector<GateId> shifted(n);
      const GateId zero = b.netlist().add_gate(GateFunc::kConst0, {});
      for (unsigned i = 0; i < n; ++i) {
        const GateId from = i >= dist ? result[i - dist] : zero;
        shifted[i] = b.mux(result[i], from, sh);
      }
      result = std::move(shifted);
    }
  }

  b.bus_out("f", result);
  b.output("cout", sum.carry_out);

  if (options.with_flags) {
    std::vector<GateId> inverted(n);
    for (unsigned i = 0; i < n; ++i) inverted[i] = b.not_(result[i]);
    b.output("zero", b.and_tree(inverted));
    b.output("sign", b.buf(result[n - 1]));
    // Signed overflow of the adder: carry into MSB != carry out of MSB,
    // approximated from operands and sum signs.
    const GateId ovf =
        b.and_(b.xnor_(a[n - 1], b_eff[n - 1]), b.xor_(a[n - 1], sum.sum[n - 1]));
    b.output("ovf", ovf);
    b.output("parity", b.xor_tree(result));
  }
  return b.take();
}

// ---------------------------------------------------------------------------
// Hamming SEC / SEC-DED
// ---------------------------------------------------------------------------

namespace {

/// Number of Hamming check bits for @p data_bits: smallest r with
/// 2^r >= data + r + 1.
unsigned hamming_check_bits(unsigned data_bits) {
  unsigned r = 1;
  while ((1u << r) < data_bits + r + 1) ++r;
  return r;
}

/// Codeword layout: positions 1..(data+r); power-of-two positions hold check
/// bits, the rest hold data bits in order. Returns data positions.
std::vector<unsigned> hamming_data_positions(unsigned data_bits, unsigned r) {
  std::vector<unsigned> positions;
  for (unsigned pos = 1; positions.size() < data_bits; ++pos) {
    if ((pos & (pos - 1)) != 0) positions.push_back(pos);
  }
  (void)r;
  return positions;
}

}  // namespace

Netlist make_hamming_sec(unsigned data_bits, bool expand_xor) {
  if (data_bits < 4) throw std::invalid_argument("make_hamming_sec: need >= 4 data bits");
  Builder b("sec" + std::to_string(data_bits));
  b.set_expand_xor(expand_xor);

  const unsigned r = hamming_check_bits(data_bits);
  const unsigned total = data_bits + r;
  const auto data_pos = hamming_data_positions(data_bits, r);

  // Received codeword: data bits and check bits as primary inputs.
  std::vector<GateId> code(total + 1, netlist::kNoGate);  // 1-indexed
  const auto d = b.bus("d", data_bits);
  for (unsigned i = 0; i < data_bits; ++i) code[data_pos[i]] = d[i];
  for (unsigned i = 0; i < r; ++i) code[1u << i] = b.input("c" + std::to_string(i));

  // Syndrome bits: parity over positions with bit i set.
  std::vector<GateId> syndrome(r);
  for (unsigned i = 0; i < r; ++i) {
    std::vector<GateId> taps;
    for (unsigned pos = 1; pos <= total; ++pos) {
      if ((pos >> i) & 1u) taps.push_back(code[pos]);
    }
    syndrome[i] = b.xor_tree(taps);
  }
  std::vector<GateId> syndrome_n(r);
  for (unsigned i = 0; i < r; ++i) syndrome_n[i] = b.not_(syndrome[i]);

  // Correct each data bit: flip when the syndrome equals its position.
  std::vector<GateId> corrected(data_bits);
  for (unsigned i = 0; i < data_bits; ++i) {
    const unsigned pos = data_pos[i];
    std::vector<GateId> literals;
    for (unsigned j = 0; j < r; ++j) {
      literals.push_back(((pos >> j) & 1u) ? syndrome[j] : syndrome_n[j]);
    }
    const GateId hit = b.and_tree(literals);
    corrected[i] = b.xor_(d[i], hit);
  }
  b.bus_out("q", corrected);
  b.output("err", b.or_tree(syndrome));
  return b.take();
}

Netlist make_sec_ded(unsigned data_bits, bool expand_xor) {
  if (data_bits < 4) throw std::invalid_argument("make_sec_ded: need >= 4 data bits");
  Builder b("secded" + std::to_string(data_bits));
  b.set_expand_xor(expand_xor);

  const unsigned r = hamming_check_bits(data_bits);
  const unsigned total = data_bits + r;  // without the overall parity bit
  const auto data_pos = hamming_data_positions(data_bits, r);

  // Stage 1 — encoder: compute check bits from clean data.
  const auto d = b.bus("d", data_bits);
  std::vector<GateId> code(total + 1, netlist::kNoGate);
  for (unsigned i = 0; i < data_bits; ++i) code[data_pos[i]] = d[i];
  for (unsigned i = 0; i < r; ++i) {
    std::vector<GateId> taps;
    for (unsigned pos = 1; pos <= total; ++pos) {
      if (((pos >> i) & 1u) && (pos & (pos - 1)) != 0) taps.push_back(code[pos]);
    }
    code[1u << i] = b.xor_tree(taps);
  }
  std::vector<GateId> word(code.begin() + 1, code.end());
  const GateId overall = b.xor_tree(word);  // extended parity bit

  // Channel — XOR with a flip mask (tests inject single/double errors here).
  const auto flip = b.bus("flip", total + 1);
  std::vector<GateId> received(total + 1);
  for (unsigned i = 0; i < total; ++i) received[i] = b.xor_(word[i], flip[i]);
  received[total] = b.xor_(overall, flip[total]);

  // Stage 2 — corrector: syndrome over the received word.
  std::vector<GateId> syndrome(r);
  for (unsigned i = 0; i < r; ++i) {
    std::vector<GateId> taps;
    for (unsigned pos = 1; pos <= total; ++pos) {
      if ((pos >> i) & 1u) taps.push_back(received[pos - 1]);
    }
    syndrome[i] = b.xor_tree(taps);
  }
  std::vector<GateId> syndrome_n(r);
  for (unsigned i = 0; i < r; ++i) syndrome_n[i] = b.not_(syndrome[i]);
  std::vector<GateId> all_received(received.begin(), received.end());
  const GateId parity_check = b.xor_tree(all_received);  // 0 if even overall parity

  std::vector<GateId> corrected(data_bits);
  for (unsigned i = 0; i < data_bits; ++i) {
    const unsigned pos = data_pos[i];
    std::vector<GateId> literals;
    for (unsigned j = 0; j < r; ++j) {
      literals.push_back(((pos >> j) & 1u) ? syndrome[j] : syndrome_n[j]);
    }
    // Only correct when the overall parity also fails (single error).
    literals.push_back(parity_check);
    const GateId hit = b.and_tree(literals);
    corrected[i] = b.xor_(received[pos - 1], hit);
  }
  const GateId syndrome_nonzero = b.or_tree(syndrome);
  b.bus_out("q", corrected);
  // Odd overall parity <=> an odd number of channel errors (1 under the
  // SEC-DED assumption) — this also covers an error in the parity bit itself
  // (zero syndrome, odd parity). Even parity with a non-zero syndrome is the
  // uncorrectable double-error signature.
  b.output("single_err", b.buf(parity_check));
  b.output("double_err", b.and_(syndrome_nonzero, b.not_(parity_check)));
  return b.take();
}

// ---------------------------------------------------------------------------
// Interrupt controller (c432-class)
// ---------------------------------------------------------------------------

Netlist make_interrupt_controller(unsigned channels, unsigned banks) {
  if (channels == 0 || banks == 0 || channels % banks != 0) {
    throw std::invalid_argument("make_interrupt_controller: channels must split into banks");
  }
  Builder b("intctl" + std::to_string(channels));
  const auto req = b.bus("req", channels);
  const auto en = b.bus("en", banks);
  const GateId master = b.input("men");
  const unsigned per_bank = channels / banks;

  std::vector<GateId> gated(channels);
  for (unsigned i = 0; i < channels; ++i) gated[i] = b.and_(req[i], en[i / per_bank]);

  // Prefix-OR (Sklansky tree): any[i] = OR(gated[0..i]).
  std::vector<GateId> any(gated);
  for (unsigned dist = 1; dist < channels; dist *= 2) {
    std::vector<GateId> next(any);
    for (unsigned i = dist; i < channels; ++i) next[i] = b.or_(any[i], any[i - dist]);
    any = std::move(next);
  }

  // Grant: highest-priority (lowest index) gated request wins.
  std::vector<GateId> grant(channels);
  grant[0] = gated[0];
  for (unsigned i = 1; i < channels; ++i) grant[i] = b.and_(gated[i], b.not_(any[i - 1]));

  // Binary index of the granted channel.
  unsigned index_bits = 1;
  while ((1u << index_bits) < channels) ++index_bits;
  for (unsigned bit = 0; bit < index_bits; ++bit) {
    std::vector<GateId> taps;
    for (unsigned i = 0; i < channels; ++i) {
      if ((i >> bit) & 1u) taps.push_back(grant[i]);
    }
    b.output("idx" + std::to_string(bit), taps.empty() ? grant[0] : b.or_tree(taps));
  }
  const GateId valid = b.and_(any[channels - 1], master);
  b.output("valid", valid);
  for (unsigned bank = 0; bank < banks; ++bank) {
    std::vector<GateId> taps(grant.begin() + bank * per_bank,
                             grant.begin() + (bank + 1) * per_bank);
    b.output("bank" + std::to_string(bank), b.or_tree(taps));
  }
  return b.take();
}

// ---------------------------------------------------------------------------
// Adder/comparator (c7552-class)
// ---------------------------------------------------------------------------

Netlist make_adder_comparator(unsigned bits) {
  Builder b("addcmp" + std::to_string(bits));
  const auto a = b.bus("a", bits);
  const auto bb = b.bus("b", bits);
  const GateId cin = b.input("cin");
  const GateId sel = b.input("sel");

  // Path 1: a + b (CLA).
  const AdderBits add = cla_adder(b, a, bb, cin);
  // Path 2: a - b (CLA over inverted b, cin = 1).
  std::vector<GateId> b_inv(bits);
  for (unsigned i = 0; i < bits; ++i) b_inv[i] = b.not_(bb[i]);
  const GateId one = b.netlist().add_gate(GateFunc::kConst1, {});
  const AdderBits sub = cla_adder(b, a, b_inv, one);

  // Independent magnitude comparator (MSB-first chain).
  std::vector<GateId> eq(bits);
  for (unsigned i = 0; i < bits; ++i) eq[i] = b.xnor_(a[i], bb[i]);
  GateId gt = b.and_(a[bits - 1], b.not_(bb[bits - 1]));
  GateId all_eq = eq[bits - 1];
  for (int i = static_cast<int>(bits) - 2; i >= 0; --i) {
    gt = b.or_(gt, b.and_(all_eq, b.and_(a[i], b.not_(bb[i]))));
    all_eq = b.and_(all_eq, eq[i]);
  }
  b.output("a_eq_b", all_eq);
  b.output("a_gt_b", gt);
  b.output("a_lt_b", b.nor_(gt, all_eq));

  // Incrementer on a.
  std::vector<GateId> inc(bits);
  GateId carry = one;
  for (unsigned i = 0; i < bits; ++i) {
    inc[i] = b.xor_(a[i], carry);
    carry = b.and_(a[i], carry);
  }

  // Output select: sel ? (a - b) : (a + b); plus the incremented bus.
  std::vector<GateId> result(bits);
  for (unsigned i = 0; i < bits; ++i) result[i] = b.mux(add.sum[i], sub.sum[i], sel);
  b.bus_out("r", result);
  b.bus_out("inc", inc);
  b.output("cout", b.mux(add.carry_out, sub.carry_out, sel));
  b.output("par_a", b.xor_tree(a));
  b.output("par_b", b.xor_tree(bb));
  b.output("par_r", b.xor_tree(result));
  std::vector<GateId> rn(bits);
  for (unsigned i = 0; i < bits; ++i) rn[i] = b.not_(result[i]);
  b.output("r_zero", b.and_tree(rn));
  // The incrementer's final carry is observable (a+1 overflow flag) — and
  // exposing it keeps the carry chain out of the DRC's dead-cone report.
  b.output("inc_cout", carry);
  return b.take();
}

// ---------------------------------------------------------------------------
// Composite systems
// ---------------------------------------------------------------------------

namespace {

/// Instantiates @p inner into @p outer with all node names prefixed; inner
/// primary inputs become fresh outer inputs, inner outputs become outer
/// outputs. Used to compose subsystem generators into one netlist.
void instantiate(Netlist& outer, const Netlist& inner, const std::string& prefix) {
  std::vector<GateId> remap(inner.node_count(), netlist::kNoGate);
  for (const GateId id : netlist::topological_order(inner)) {
    const auto& g = inner.gate(id);
    if (g.func == GateFunc::kInput) {
      remap[id] = outer.add_input(prefix + g.name);
      continue;
    }
    std::vector<GateId> fanins;
    fanins.reserve(g.fanins.size());
    for (const GateId f : g.fanins) fanins.push_back(remap[f]);
    remap[id] = outer.add_gate(g.func, fanins, prefix + g.name);
  }
  for (const auto& po : inner.outputs()) {
    outer.add_output(prefix + po.name, remap[po.driver]);
  }
}

}  // namespace

Netlist make_alu_system(const AluSystemOptions& options) {
  Netlist system("alusys");
  for (unsigned i = 0; i < options.alu_count; ++i) {
    AluOptions alu;
    alu.bits = options.alu_bits;
    alu.with_shifter = (i == 0);
    const Netlist inner = make_alu(alu);
    instantiate(system, inner, "u" + std::to_string(i) + "_");
  }
  if (options.multiplier_bits >= 2) {
    instantiate(system, make_array_multiplier(options.multiplier_bits, false), "mul_");
  }
  if (options.interrupt_channels > 0) {
    instantiate(system, make_interrupt_controller(options.interrupt_channels,
                                                  options.interrupt_channels % 3 == 0 ? 3 : 1),
                "irq_");
  }
  if (options.comparator_bits >= 2) {
    instantiate(system, make_adder_comparator(options.comparator_bits), "cmp_");
  }
  if (options.with_parity) {
    // A shared parity checker across one of the ALU operand buses.
    Builder pb("par");
    const auto bus = pb.bus("x", options.alu_bits);
    pb.output("p", pb.xor_tree(bus));
    instantiate(system, pb.take(), "par_");
  }
  return system;
}

Netlist make_bcd_alu(unsigned digits) {
  if (digits == 0) throw std::invalid_argument("make_bcd_alu: digits must be >= 1");
  const unsigned bits = digits * 4;
  Builder b("bcdalu" + std::to_string(digits));

  const auto a = b.bus("a", bits);
  const auto bb = b.bus("b", bits);
  const GateId mode_bcd = b.input("bcd");  // 1 = BCD-adjust the result
  const GateId op0 = b.input("op0");
  const GateId op1 = b.input("op1");
  const GateId cin = b.input("cin");

  // Binary adder core.
  const AdderBits sum = cla_adder(b, a, bb, cin);

  // Per-digit BCD adjust: if digit > 9 or digit carry, add 6.
  std::vector<GateId> adjusted(bits);
  std::vector<GateId> digit_carries;
  const GateId zero = b.netlist().add_gate(GateFunc::kConst0, {});
  for (unsigned dg = 0; dg < digits; ++dg) {
    const unsigned lo = dg * 4;
    const GateId d3 = sum.sum[lo + 3];
    const GateId d2 = sum.sum[lo + 2];
    const GateId d1 = sum.sum[lo + 1];
    // digit > 9  <=>  d3 & (d2 | d1)
    const GateId gt9 = b.and_(d3, b.or_(d2, d1));
    const GateId adjust = b.and_(mode_bcd, gt9);
    // Add 0110 when adjusting (ripple within the digit).
    const std::vector<GateId> six = {zero, adjust, adjust, zero};
    std::vector<GateId> digit = {sum.sum[lo], sum.sum[lo + 1], sum.sum[lo + 2],
                                 sum.sum[lo + 3]};
    const AdderBits adj = ripple_adder(b, digit, six, zero);
    for (unsigned i = 0; i < 4; ++i) adjusted[lo + i] = adj.sum[i];
    digit_carries.push_back(adj.carry_out);
  }

  // Logic ops + result mux (op1 selects arithmetic vs logic; op0 picks which).
  std::vector<GateId> result(bits);
  for (unsigned i = 0; i < bits; ++i) {
    const GateId land = b.and_(a[i], bb[i]);
    const GateId lxor = b.xor_(a[i], bb[i]);
    const GateId logic = b.mux(land, lxor, op0);
    const GateId arith = b.mux(sum.sum[i], adjusted[i], mode_bcd);
    result[i] = b.mux(arith, logic, op1);
  }

  // Barrel shifter (2 stages).
  for (unsigned s = 0; s < 2; ++s) {
    const GateId sh = b.input("sh" + std::to_string(s));
    const unsigned dist = 1u << s;
    std::vector<GateId> shifted(bits);
    for (unsigned i = 0; i < bits; ++i) {
      const GateId from = i >= dist ? result[i - dist] : zero;
      shifted[i] = b.mux(result[i], from, sh);
    }
    result = std::move(shifted);
  }

  b.bus_out("f", result);
  b.output("cout", sum.carry_out);
  std::vector<GateId> rn(bits);
  for (unsigned i = 0; i < bits; ++i) rn[i] = b.not_(result[i]);
  b.output("zero", b.and_tree(rn));
  b.output("parity", b.xor_tree(result));
  // Per-digit adjust carries, folded into one decimal-overflow flag: keeps
  // every BCD-adjust ripple chain observable (no dead cones for the DRC).
  b.output("adj_cout", b.or_tree(digit_carries));
  return b.take();
}

// ---------------------------------------------------------------------------
// Random DAG
// ---------------------------------------------------------------------------

Netlist make_pipelined_datapath(const PipelineOptions& options) {
  if (options.bits < 2 || options.stages == 0) {
    throw std::invalid_argument("make_pipelined_datapath: need bits >= 2 and stages >= 1");
  }
  Builder b("pipe" + std::to_string(options.bits) + "x" + std::to_string(options.stages));
  b.set_expand_xor(options.expand_xor);
  std::vector<GateId> state = b.bus("a", options.bits);
  const std::vector<GateId> mix = b.bus("b", options.bits);
  GateId carry = b.input("cin");

  for (unsigned s = 0; s < options.stages; ++s) {
    // Operand: the state rotated right by one (wiring only), mixed with b.
    std::vector<GateId> operand(options.bits);
    for (unsigned i = 0; i < options.bits; ++i) {
      operand[i] = b.xor_(state[(i + 1) % options.bits], mix[i]);
    }
    const AdderBits sum = cla_adder(b, state, operand, carry);
    state = sum.sum;
    carry = sum.carry_out;
    b.output("cout" + std::to_string(s), sum.carry_out);
  }
  b.bus_out("r", state);
  return b.take();
}

Netlist make_mesh_interconnect(const MeshOptions& options) {
  if (options.rows == 0 || options.cols == 0 || options.bits < 2) {
    throw std::invalid_argument("make_mesh_interconnect: need rows, cols >= 1 and bits >= 2");
  }
  Builder b("mesh" + std::to_string(options.rows) + "x" + std::to_string(options.cols) + "x" +
            std::to_string(options.bits));

  // North-edge buses (one per column) and west-edge buses (one per row).
  std::vector<std::vector<GateId>> north(options.cols);
  for (unsigned c = 0; c < options.cols; ++c) {
    north[c] = b.bus("n" + std::to_string(c) + "_", options.bits);
  }
  std::vector<std::vector<GateId>> west(options.rows);
  for (unsigned r = 0; r < options.rows; ++r) {
    west[r] = b.bus("w" + std::to_string(r) + "_", options.bits);
  }

  // Row-major sweep; `north` tracks the south-flowing bus per column and
  // `west[r]` the east-flowing bus of the current row.
  for (unsigned r = 0; r < options.rows; ++r) {
    for (unsigned c = 0; c < options.cols; ++c) {
      const GateId sel = b.input("sel" + std::to_string(r) + "_" + std::to_string(c));
      const std::vector<GateId>& n_bus = north[c];
      const std::vector<GateId>& w_bus = west[r];
      // cin = sel itself: observable and keeps the adder's carry chain live.
      const AdderBits sum = cla_adder(b, n_bus, w_bus, sel);
      std::vector<GateId> out(options.bits);
      for (unsigned i = 0; i < options.bits; ++i) {
        out[i] = b.mux(b.xor_(n_bus[i], w_bus[i]), sum.sum[i], sel);
      }
      b.output("co" + std::to_string(r) + "_" + std::to_string(c), sum.carry_out);
      north[c] = out;
      west[r] = std::move(out);
    }
  }
  for (unsigned r = 0; r < options.rows; ++r) {
    b.bus_out("e" + std::to_string(r) + "_", west[r]);
  }
  for (unsigned c = 0; c < options.cols; ++c) {
    b.bus_out("s" + std::to_string(c) + "_", north[c]);
  }
  return b.take();
}

Netlist make_random_dag(const RandomDagOptions& options) {
  if (options.n_inputs == 0 || options.n_gates == 0) {
    throw std::invalid_argument("make_random_dag: need inputs and gates");
  }
  util::Rng rng(options.seed);
  Builder b("rand" + std::to_string(options.seed));
  std::vector<GateId> nodes = b.bus("i", options.n_inputs);

  static constexpr GateFunc kFuncs[] = {GateFunc::kAnd,  GateFunc::kNand, GateFunc::kOr,
                                        GateFunc::kNor,  GateFunc::kXor,  GateFunc::kXnor,
                                        GateFunc::kInv,  GateFunc::kBuf,  GateFunc::kMux2,
                                        GateFunc::kAoi21, GateFunc::kOai21};
  for (unsigned i = 0; i < options.n_gates; ++i) {
    const GateFunc func = kFuncs[rng.index(std::size(kFuncs))];
    const auto range = netlist::func_arity(func);
    std::size_t arity = range.min;
    if (range.max > range.min) {
      const std::size_t cap = std::min<std::size_t>(range.max, options.max_arity);
      arity = range.min + rng.index(cap - range.min + 1);
    }
    std::vector<GateId> fanins;
    for (std::size_t k = 0; k < arity; ++k) {
      // Bias toward recent nodes to grow depth.
      const std::size_t window = std::max<std::size_t>(8, nodes.size() / 2);
      const std::size_t lo = nodes.size() > window ? nodes.size() - window : 0;
      fanins.push_back(nodes[lo + rng.index(nodes.size() - lo)]);
    }
    nodes.push_back(b.netlist().add_gate(func, fanins));
  }

  // Outputs: prefer sinks, fill with random nodes.
  std::vector<GateId> sinks;
  for (const GateId id : nodes) {
    if (b.netlist().gate(id).fanouts.empty() && !b.netlist().is_input(id)) {
      sinks.push_back(id);
    }
  }
  unsigned made = 0;
  for (const GateId s : sinks) {
    if (made >= options.n_outputs) break;
    b.output("o" + std::to_string(made++), s);
  }
  while (made < options.n_outputs) {
    b.output("o" + std::to_string(made++),
             nodes[options.n_inputs + rng.index(nodes.size() - options.n_inputs)]);
  }
  return b.take();
}

}  // namespace statsizer::circuits
