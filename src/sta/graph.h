// TimingContext: the timing view of a mapped netlist against a library and a
// variation model. One update() pass computes, for the current sizing state:
//   * per-gate capacitive load (consumer pin caps + primary-output load),
//   * per-gate worst output slew (propagated topologically),
//   * per-arc nominal delay (NLDM lookup) and delay sigma (variation model),
//   * total cell area.
// Every analysis engine (deterministic STA, FULLSSTA, FASSTA, Monte Carlo)
// reads this snapshot; the optimizer calls update() after committing resizes.
//
// The "what-if" queries evaluate a candidate cell binding for one gate
// without touching the snapshot — this is the contract FASSTA's inner loop
// is built on (paper section 4.5).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "liberty/model.h"
#include "netlist/netlist.h"
#include "netlist/topo.h"
#include "util/thread_pool.h"
#include "variation/model.h"

namespace statsizer::sta {

/// Dispatches one wavefront level: runs body(id) for every gate in @p level,
/// serially when @p width < @p cutoff (or threads == 1), otherwise fanned
/// across util::ThreadPool in fixed @p chunk pieces. @p width is the number
/// of gates that will actually do work — level.size() for a full sweep;
/// replays of a sparse dirty set pass the level's dirty count so clean or
/// thin waves never pay pool dispatch. Shared by update(), run_fullssta, and
/// the what-if cone replays; determinism follows from per-slot writes (chunk
/// geometry and thread count never affect results).
template <typename Body>
void run_wavefront_level(std::span<const netlist::GateId> level, std::size_t width,
                         std::size_t cutoff, std::size_t chunk, std::size_t threads,
                         Body&& body) {
  if (width == 0) return;
  if (threads == 1 || width < cutoff) {
    for (const netlist::GateId id : level) body(id);
    return;
  }
  util::parallel_for(level.size(), chunk, threads,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t i = begin; i < end; ++i) body(level[i]);
                     });
}

/// First two moments of a node's statistical arrival time. FULLSSTA computes
/// these for every node; FASSTA consumes them as subcircuit boundary
/// conditions (the paper's two-engine nesting).
struct NodeMoments {
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
};

/// External timing constraints (the SDC subset bench_format::read_sdc
/// understands). Constraints shape the *analysis* — arrival initialization
/// and required times — never the snapshot: update()'s loads, slews, and arc
/// delays are unaffected. Empty vectors mean "unconstrained"; with an empty
/// TimingConstraints every engine is bitwise-identical to its historical
/// constraint-free behaviour.
///
/// Engine contract: run_dsta honours all three fields. run_fullssta and
/// run_monte_carlo honour input_arrival_ps (the arrival pdf of a constrained
/// primary input starts as a point mass at its delay); clock_period_ps and
/// output_delay_ps are required-time concepts and only affect slack-style
/// analyses (run_dsta). The canonical/FASSTA engines operate on subcircuit
/// boundary moments supplied by FULLSSTA and pick constraints up through
/// them.
struct TimingConstraints {
  /// create_clock -period: the required-time target at primary outputs.
  std::optional<double> clock_period_ps;
  /// set_input_delay per primary input, indexed by GateId. Empty = all zero.
  /// When non-empty, the vector must cover every node; entries for nodes
  /// with fanins are ignored.
  std::vector<double> input_arrival_ps;
  /// set_output_delay per primary output, aligned with Netlist::outputs().
  /// Empty = all zero. Subtracted from the clock target to form each
  /// output's required time.
  std::vector<double> output_delay_ps;

  [[nodiscard]] bool empty() const {
    return !clock_period_ps.has_value() && input_arrival_ps.empty() &&
           output_delay_ps.empty();
  }
};

struct TimingOptions {
  double primary_input_slew_ps = 20.0;
  /// Capacitance modelled at each primary output (e.g. a register's D pin).
  double primary_output_load_ff = 4.0;
  /// Worker threads for update()'s wavefront passes (load fold, then the
  /// level-by-level slew/arc sweep). 1 = the classic serial topo-order loop,
  /// 0 = hardware concurrency. Results are bitwise-identical for any value
  /// (pinned by levelized_update_test): parallelism is only across the gates
  /// of one level, each gate's fanin fold stays sequential, and every write
  /// goes to the gate's own preallocated slot.
  std::size_t threads = 1;
  /// Wavefront levels narrower than this run serially even when threads > 1:
  /// a single-digit-gate level costs more in pool dispatch than its work.
  /// Default tuned on cla_adder(8) (levels of ~2-10 gates: serial wins) vs
  /// c880 (tens of gates per level: fan-out wins). Also consulted by
  /// ssta::run_fullssta and the what-if cone replay.
  std::size_t min_level_width_for_parallel = 16;
};

/// One addition into a driver's load, in update()'s exact accumulation
/// order. consumer == netlist::kNoGate encodes the primary-output load term;
/// otherwise the term is cell(consumer).input_cap_ff(fanin_index).
/// Floating-point addition is not associative, so every load computation
/// that must agree with the snapshot *bitwise* — update() itself and the
/// exact what-if overlays' speculative re-folds — goes through the same
/// per-driver term list (TimingContext::load_terms) and the same fold
/// (TimingContext::fold_load). The one deliberate exception is
/// load_ff_with_resize's cap-delta shortcut: FASSTA's approximate screening
/// is built on it and its (ULP-different) values are part of the sizer's
/// pinned trajectories.
struct LoadTerm {
  netlist::GateId consumer = netlist::kNoGate;
  std::uint32_t fanin_index = 0;
};

class TimingContext {
 public:
  /// The netlist must be mapped to @p lib (techmap::is_mapped). All three
  /// references must outlive the context. The netlist is held mutably so
  /// optimizers can change size indices through mutable_netlist() and then
  /// call update(); the context itself never alters the netlist.
  TimingContext(netlist::Netlist& nl, const liberty::Library& lib,
                const variation::VariationModel& var, TimingOptions options = {});

  /// Recomputes loads, slews, delays, sigmas, area for the netlist's current
  /// sizing state. Called automatically by the constructor. With
  /// TimingOptions::threads > 1 the load fold and the slew/arc sweep run as
  /// levelized wavefronts across util::ThreadPool — bitwise-identical to the
  /// serial pass for any thread count. Mutation rule unchanged: update() must
  /// only run with no parallel region reading the snapshot in flight.
  void update();

  // -- bound objects ---------------------------------------------------------
  [[nodiscard]] const netlist::Netlist& netlist() const { return nl_; }
  [[nodiscard]] netlist::Netlist& mutable_netlist() { return nl_; }
  [[nodiscard]] const liberty::Library& library() const { return lib_; }
  [[nodiscard]] const variation::VariationModel& variation() const { return var_; }
  [[nodiscard]] const TimingOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<netlist::GateId>& topo_order() const { return order_; }
  /// Cached level decomposition (computed with the topo order at
  /// construction; like order_, it describes the netlist's structure, which
  /// must not change over the context's lifetime). The wavefront kernels —
  /// update(), ssta::run_fullssta, the cone replay — iterate its levels.
  [[nodiscard]] const netlist::Levelization& levelization() const { return levels_; }

  // -- constraints -----------------------------------------------------------
  /// Installs external timing constraints (typically from an SDC file via
  /// bench_format::to_constraints). Non-empty vectors must be sized as
  /// documented on TimingConstraints. Does not trigger an update(): the
  /// snapshot is constraint-independent.
  void set_constraints(TimingConstraints constraints) {
    constraints_ = std::move(constraints);
  }
  [[nodiscard]] const TimingConstraints& constraints() const { return constraints_; }

  // -- per-node --------------------------------------------------------------
  /// True for nodes bound to a library cell (logic gates).
  [[nodiscard]] bool has_cell(netlist::GateId id) const;
  /// The cell currently bound to @p id. Precondition: has_cell(id).
  [[nodiscard]] const liberty::Cell& cell(netlist::GateId id) const;
  /// Drive strength of the bound cell (1.0 for unbound nodes).
  [[nodiscard]] double drive(netlist::GateId id) const;
  /// Capacitive load seen by the node's output.
  [[nodiscard]] double load_ff(netlist::GateId id) const { return load_[id]; }
  /// Worst output slew of the node (input slew for PIs).
  [[nodiscard]] double slew_ps(netlist::GateId id) const { return slew_[id]; }

  // -- per-arc (input index i of gate g) --------------------------------------
  [[nodiscard]] double arc_delay_ps(netlist::GateId g, std::size_t i) const {
    return arc_delay_[arc_offset_[g] + i];
  }
  [[nodiscard]] double arc_sigma_ps(netlist::GateId g, std::size_t i) const {
    return arc_sigma_[arc_offset_[g] + i];
  }
  /// Worst arc delay of the gate (its "gate delay").
  [[nodiscard]] double gate_delay_ps(netlist::GateId g) const;
  /// First slot of gate @p g in the dense arc arrays (arc (g, i) lives at
  /// arc_offset(g) + i). Exposed so incremental what-if overlays can mirror
  /// the snapshot's arc indexing (timing/cone.h).
  [[nodiscard]] std::uint32_t arc_offset(netlist::GateId g) const { return arc_offset_[g]; }
  /// Total number of arcs (the size of the dense arc arrays).
  [[nodiscard]] std::size_t arc_count() const { return arc_offset_[nl_.node_count()]; }

  // -- aggregates --------------------------------------------------------------
  [[nodiscard]] double area_um2() const { return area_um2_; }

  // -- load terms ---------------------------------------------------------------
  /// Driver @p d's ordered load-term list (structural: built with the topo
  /// order, never altered by sizing). Folding the terms in list order with
  /// the currently bound cells reproduces update()'s load bitwise; the
  /// what-if overlays fold the same list with candidate cells substituted.
  [[nodiscard]] std::span<const LoadTerm> load_terms(netlist::GateId d) const {
    return std::span<const LoadTerm>(load_terms_).subspan(
        load_term_offset_[d], load_term_offset_[d + 1] - load_term_offset_[d]);
  }

  /// The one load fold (see LoadTerm): driver @p d's load accumulated in
  /// update()'s exact term order, with @p cell_of(consumer) supplying each
  /// consumer's cell. update() passes the bound-cell lookup; speculative
  /// overlays substitute candidates.
  template <typename CellOf>
  [[nodiscard]] double fold_load(netlist::GateId d, CellOf&& cell_of) const {
    double load = 0.0;
    for (const LoadTerm& t : load_terms(d)) {
      if (t.consumer == netlist::kNoGate) {
        load += options_.primary_output_load_ff * nl_.gate(d).po_count;
      } else {
        load += cell_of(t.consumer).input_cap_ff(t.fanin_index);
      }
    }
    return load;
  }

  // -- what-if queries (candidate cell for one gate; snapshot unchanged) -------
  /// Load of @p driver if gate @p center were bound to @p candidate.
  [[nodiscard]] double load_ff_with_resize(netlist::GateId driver, netlist::GateId center,
                                           const liberty::Cell& candidate) const;
  /// Delay of arc @p i of gate @p g with an explicit cell binding and load,
  /// using the snapshot's fanin slews.
  [[nodiscard]] double arc_delay_with(netlist::GateId g, std::size_t i,
                                      const liberty::Cell& cell, double load_ff) const;
  /// Sigma for a delay through @p cell (variation model shortcut).
  [[nodiscard]] double sigma_for(const liberty::Cell& cell, double delay_ps) const;

  // -- incremental snapshot commit ---------------------------------------------
  /// Commits an exact what-if overlay (timing/cone.h) in place of a full
  /// update(): for every node with @p load_dirty set, writes @p load; for
  /// every node with @p dirty set, writes @p slew and the node's slots of
  /// @p arc_delay / @p arc_sigma (dense arrays in this context's arc
  /// indexing); then re-sums the cell area exactly as update() does
  /// (floating-point addition is not associative, so an area *delta* would
  /// drift by ULPs). The caller guarantees the patched values are what a full
  /// update() would compute for the netlist's current sizing state — after
  /// the call the snapshot is bitwise-identical to having called update().
  void apply_snapshot_patch(std::span<const std::uint8_t> dirty,
                            std::span<const std::uint8_t> load_dirty,
                            std::span<const double> load, std::span<const double> slew,
                            std::span<const double> arc_delay,
                            std::span<const double> arc_sigma);

 private:
  netlist::Netlist& nl_;
  const liberty::Library& lib_;
  const variation::VariationModel& var_;
  TimingOptions options_;
  TimingConstraints constraints_;

  /// Serial body of the slew/arc pass for one gate (shared by the serial
  /// topo-order loop and the per-level wavefront workers).
  void relax_gate(netlist::GateId id);

  std::vector<netlist::GateId> order_;
  netlist::Levelization levels_;
  std::vector<std::uint32_t> load_term_offset_;
  std::vector<LoadTerm> load_terms_;
  std::vector<double> load_;
  std::vector<double> slew_;
  std::vector<std::uint32_t> arc_offset_;
  std::vector<double> arc_delay_;
  std::vector<double> arc_sigma_;
  double area_um2_ = 0.0;
};

}  // namespace statsizer::sta
