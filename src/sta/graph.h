// TimingContext: the timing view of a mapped netlist against a library and a
// variation model. One update() pass computes, for the current sizing state:
//   * per-gate capacitive load (consumer pin caps + primary-output load),
//   * per-gate worst output slew (propagated topologically),
//   * per-arc nominal delay (NLDM lookup) and delay sigma (variation model),
//   * total cell area.
// Every analysis engine (deterministic STA, FULLSSTA, FASSTA, Monte Carlo)
// reads this snapshot; the optimizer calls update() after committing resizes.
//
// The "what-if" queries evaluate a candidate cell binding for one gate
// without touching the snapshot — this is the contract FASSTA's inner loop
// is built on (paper section 4.5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "liberty/model.h"
#include "netlist/netlist.h"
#include "variation/model.h"

namespace statsizer::sta {

/// First two moments of a node's statistical arrival time. FULLSSTA computes
/// these for every node; FASSTA consumes them as subcircuit boundary
/// conditions (the paper's two-engine nesting).
struct NodeMoments {
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
};

struct TimingOptions {
  double primary_input_slew_ps = 20.0;
  /// Capacitance modelled at each primary output (e.g. a register's D pin).
  double primary_output_load_ff = 4.0;
};

class TimingContext {
 public:
  /// The netlist must be mapped to @p lib (techmap::is_mapped). All three
  /// references must outlive the context. The netlist is held mutably so
  /// optimizers can change size indices through mutable_netlist() and then
  /// call update(); the context itself never alters the netlist.
  TimingContext(netlist::Netlist& nl, const liberty::Library& lib,
                const variation::VariationModel& var, TimingOptions options = {});

  /// Recomputes loads, slews, delays, sigmas, area for the netlist's current
  /// sizing state. Called automatically by the constructor.
  void update();

  // -- bound objects ---------------------------------------------------------
  [[nodiscard]] const netlist::Netlist& netlist() const { return nl_; }
  [[nodiscard]] netlist::Netlist& mutable_netlist() { return nl_; }
  [[nodiscard]] const liberty::Library& library() const { return lib_; }
  [[nodiscard]] const variation::VariationModel& variation() const { return var_; }
  [[nodiscard]] const TimingOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<netlist::GateId>& topo_order() const { return order_; }

  // -- per-node --------------------------------------------------------------
  /// True for nodes bound to a library cell (logic gates).
  [[nodiscard]] bool has_cell(netlist::GateId id) const;
  /// The cell currently bound to @p id. Precondition: has_cell(id).
  [[nodiscard]] const liberty::Cell& cell(netlist::GateId id) const;
  /// Drive strength of the bound cell (1.0 for unbound nodes).
  [[nodiscard]] double drive(netlist::GateId id) const;
  /// Capacitive load seen by the node's output.
  [[nodiscard]] double load_ff(netlist::GateId id) const { return load_[id]; }
  /// Worst output slew of the node (input slew for PIs).
  [[nodiscard]] double slew_ps(netlist::GateId id) const { return slew_[id]; }

  // -- per-arc (input index i of gate g) --------------------------------------
  [[nodiscard]] double arc_delay_ps(netlist::GateId g, std::size_t i) const {
    return arc_delay_[arc_offset_[g] + i];
  }
  [[nodiscard]] double arc_sigma_ps(netlist::GateId g, std::size_t i) const {
    return arc_sigma_[arc_offset_[g] + i];
  }
  /// Worst arc delay of the gate (its "gate delay").
  [[nodiscard]] double gate_delay_ps(netlist::GateId g) const;
  /// First slot of gate @p g in the dense arc arrays (arc (g, i) lives at
  /// arc_offset(g) + i). Exposed so incremental what-if overlays can mirror
  /// the snapshot's arc indexing (timing/cone.h).
  [[nodiscard]] std::uint32_t arc_offset(netlist::GateId g) const { return arc_offset_[g]; }
  /// Total number of arcs (the size of the dense arc arrays).
  [[nodiscard]] std::size_t arc_count() const { return arc_offset_[nl_.node_count()]; }

  // -- aggregates --------------------------------------------------------------
  [[nodiscard]] double area_um2() const { return area_um2_; }

  // -- what-if queries (candidate cell for one gate; snapshot unchanged) -------
  /// Load of @p driver if gate @p center were bound to @p candidate.
  [[nodiscard]] double load_ff_with_resize(netlist::GateId driver, netlist::GateId center,
                                           const liberty::Cell& candidate) const;
  /// Delay of arc @p i of gate @p g with an explicit cell binding and load,
  /// using the snapshot's fanin slews.
  [[nodiscard]] double arc_delay_with(netlist::GateId g, std::size_t i,
                                      const liberty::Cell& cell, double load_ff) const;
  /// Sigma for a delay through @p cell (variation model shortcut).
  [[nodiscard]] double sigma_for(const liberty::Cell& cell, double delay_ps) const;

  // -- incremental snapshot commit ---------------------------------------------
  /// Commits an exact what-if overlay (timing/cone.h) in place of a full
  /// update(): for every node with @p load_dirty set, writes @p load; for
  /// every node with @p dirty set, writes @p slew and the node's slots of
  /// @p arc_delay / @p arc_sigma (dense arrays in this context's arc
  /// indexing); then re-sums the cell area exactly as update() does
  /// (floating-point addition is not associative, so an area *delta* would
  /// drift by ULPs). The caller guarantees the patched values are what a full
  /// update() would compute for the netlist's current sizing state — after
  /// the call the snapshot is bitwise-identical to having called update().
  void apply_snapshot_patch(std::span<const std::uint8_t> dirty,
                            std::span<const std::uint8_t> load_dirty,
                            std::span<const double> load, std::span<const double> slew,
                            std::span<const double> arc_delay,
                            std::span<const double> arc_sigma);

 private:
  netlist::Netlist& nl_;
  const liberty::Library& lib_;
  const variation::VariationModel& var_;
  TimingOptions options_;

  std::vector<netlist::GateId> order_;
  std::vector<double> load_;
  std::vector<double> slew_;
  std::vector<std::uint32_t> arc_offset_;
  std::vector<double> arc_delay_;
  std::vector<double> arc_sigma_;
  double area_um2_ = 0.0;
};

}  // namespace statsizer::sta
