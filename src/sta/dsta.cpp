#include "sta/dsta.h"

#include <algorithm>
#include <limits>

namespace statsizer::sta {

using netlist::GateId;

DstaResult run_dsta(const TimingContext& ctx, std::optional<double> clock_period_ps) {
  const auto& nl = ctx.netlist();
  const TimingConstraints& cons = ctx.constraints();
  const std::size_t n = nl.node_count();
  DstaResult r;
  r.arrival_ps.assign(n, 0.0);

  for (const GateId id : ctx.topo_order()) {
    const auto& g = nl.gate(id);
    // Constrained primary inputs launch at their set_input_delay offset.
    double arr = (g.fanins.empty() && !cons.input_arrival_ps.empty())
                     ? cons.input_arrival_ps[id]
                     : 0.0;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      arr = std::max(arr, r.arrival_ps[g.fanins[i]] + ctx.arc_delay_ps(id, i));
    }
    r.arrival_ps[id] = arr;
  }

  for (const auto& out : nl.outputs()) {
    if (r.arrival_ps[out.driver] >= r.max_arrival_ps) {
      r.max_arrival_ps = r.arrival_ps[out.driver];
      r.critical_output = out.driver;
    }
  }

  // Required times: initialize at POs, relax backwards. Precedence for the
  // PO target: explicit argument, then the context's constraints
  // (create_clock), then zero-slack normalization at the observed max
  // arrival. set_output_delay tightens each output by its own margin.
  const double target =
      clock_period_ps.has_value()
          ? *clock_period_ps
          : cons.clock_period_ps.value_or(r.max_arrival_ps);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  r.required_ps.assign(n, kInf);
  for (std::size_t oi = 0; oi < nl.outputs().size(); ++oi) {
    const auto& out = nl.outputs()[oi];
    const double margin = cons.output_delay_ps.empty() ? 0.0 : cons.output_delay_ps[oi];
    r.required_ps[out.driver] = std::min(r.required_ps[out.driver], target - margin);
  }
  for (auto it = ctx.topo_order().rbegin(); it != ctx.topo_order().rend(); ++it) {
    const GateId id = *it;
    const auto& g = nl.gate(id);
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const GateId f = g.fanins[i];
      r.required_ps[f] =
          std::min(r.required_ps[f], r.required_ps[id] - ctx.arc_delay_ps(id, i));
    }
  }

  r.slack_ps.assign(n, 0.0);
  for (GateId id = 0; id < n; ++id) {
    r.slack_ps[id] =
        r.required_ps[id] == kInf ? 0.0 : r.required_ps[id] - r.arrival_ps[id];
  }

  r.wns_ps = kInf;
  for (const auto& out : nl.outputs()) r.wns_ps = std::min(r.wns_ps, r.slack_ps[out.driver]);
  if (nl.outputs().empty()) r.wns_ps = 0.0;

  // Critical path: walk back from the critical output along argmax fanins.
  if (r.critical_output != netlist::kNoGate) {
    GateId cursor = r.critical_output;
    r.critical_path.push_back(cursor);
    while (!nl.gate(cursor).fanins.empty()) {
      const auto& g = nl.gate(cursor);
      GateId best = g.fanins[0];
      double best_arr = -kInf;
      for (std::size_t i = 0; i < g.fanins.size(); ++i) {
        const double a = r.arrival_ps[g.fanins[i]] + ctx.arc_delay_ps(cursor, i);
        if (a > best_arr) {
          best_arr = a;
          best = g.fanins[i];
        }
      }
      cursor = best;
      r.critical_path.push_back(cursor);
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
  }
  return r;
}

}  // namespace statsizer::sta
