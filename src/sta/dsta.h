// Deterministic static timing analysis over a TimingContext: arrival times,
// required times, slack, worst-negative-slack (WNS) critical path. This is
// the classic analysis the paper's WNSS concept generalizes, and the engine
// behind the mean-delay baseline sizer.
#pragma once

#include <optional>
#include <vector>

#include "sta/graph.h"

namespace statsizer::sta {

struct DstaResult {
  /// Latest arrival time per node (0 at primary inputs).
  std::vector<double> arrival_ps;
  /// Required time per node (clock period, or max arrival if none given).
  std::vector<double> required_ps;
  /// slack = required - arrival.
  std::vector<double> slack_ps;
  /// Latest primary-output arrival (circuit delay).
  double max_arrival_ps = 0.0;
  /// Driver of the latest output.
  netlist::GateId critical_output = netlist::kNoGate;
  /// Critical path, primary input first, critical output driver last.
  std::vector<netlist::GateId> critical_path;
  /// Worst slack over primary outputs.
  double wns_ps = 0.0;
};

/// Runs deterministic STA. If @p clock_period_ps is empty, required times are
/// set to the observed max arrival (zero-slack normalization).
[[nodiscard]] DstaResult run_dsta(const TimingContext& ctx,
                                  std::optional<double> clock_period_ps = std::nullopt);

}  // namespace statsizer::sta
