#include "sta/graph.h"

#include <algorithm>
#include <stdexcept>

#include "debug/validate.h"
#include "netlist/topo.h"
#include "util/check.h"
#include "util/exec.h"
#include "util/thread_pool.h"

namespace statsizer::sta {

using netlist::GateId;

namespace {
// Wavefront chunk sizes: a gate's slew/arc relaxation is a handful of NLDM
// lookups (~hundreds of ns) and a load fold is cheaper still, so chunks are
// sized to amortize the pool's per-chunk dispatch. Chunk geometry never
// affects results (per-slot writes).
constexpr std::size_t kLoadChunk = 64;
constexpr std::size_t kRelaxChunk = 16;
}  // namespace

TimingContext::TimingContext(netlist::Netlist& nl, const liberty::Library& lib,
                             const variation::VariationModel& var, TimingOptions options)
    : nl_(nl), lib_(lib), var_(var), options_(options) {
  order_ = netlist::topological_order(nl_);
  levels_ = netlist::levelize(nl_);
  arc_offset_.assign(nl_.node_count() + 1, 0);
  for (GateId id = 0; id < nl_.node_count(); ++id) {
    arc_offset_[id + 1] =
        arc_offset_[id] + static_cast<std::uint32_t>(nl_.gate(id).fanins.size());
  }
  // Per-driver load-term lists (CSR), in update()'s historical visit order:
  // walking gates by id and appending to each driver's list reproduces, per
  // driver, the exact sequence of += the one-pass accumulation performed.
  load_term_offset_.assign(nl_.node_count() + 1, 0);
  for (GateId id = 0; id < nl_.node_count(); ++id) {
    const auto& g = nl_.gate(id);
    if (g.po_count > 0) ++load_term_offset_[id + 1];
    if (g.cell_group == netlist::kUnmapped) continue;
    for (const GateId f : g.fanins) ++load_term_offset_[f + 1];
  }
  for (GateId id = 0; id < nl_.node_count(); ++id) {
    load_term_offset_[id + 1] += load_term_offset_[id];
  }
  load_terms_.resize(load_term_offset_[nl_.node_count()]);
  std::vector<std::uint32_t> cursor(load_term_offset_.begin(), load_term_offset_.end() - 1);
  for (GateId id = 0; id < nl_.node_count(); ++id) {
    const auto& g = nl_.gate(id);
    if (g.po_count > 0) load_terms_[cursor[id]++] = LoadTerm{netlist::kNoGate, 0};
    if (g.cell_group == netlist::kUnmapped) continue;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      load_terms_[cursor[g.fanins[i]]++] =
          LoadTerm{id, static_cast<std::uint32_t>(i)};
    }
  }
  update();
}

bool TimingContext::has_cell(GateId id) const {
  return nl_.gate(id).cell_group != netlist::kUnmapped;
}

const liberty::Cell& TimingContext::cell(GateId id) const {
  const auto& g = nl_.gate(id);
  if (g.cell_group == netlist::kUnmapped) {
    throw std::logic_error("TimingContext::cell on unmapped node " + g.name);
  }
  return lib_.cell_for(g.cell_group, g.size_index);
}

double TimingContext::drive(GateId id) const { return has_cell(id) ? cell(id).drive : 1.0; }

double TimingContext::gate_delay_ps(GateId g) const {
  const std::size_t n = nl_.gate(g).fanins.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, arc_delay_ps(g, i));
  return worst;
}

void TimingContext::relax_gate(GateId id) {
  const auto& g = nl_.gate(id);
  if (g.cell_group == netlist::kUnmapped) return;  // PI or constant
  const liberty::Cell& c = lib_.cell_for(g.cell_group, g.size_index);
  const double load = load_[id];
  double out_slew = 0.0;
  for (std::size_t i = 0; i < g.fanins.size(); ++i) {
    const liberty::TimingArc& arc = c.arc_from(i);
    const double in_slew = slew_[g.fanins[i]];
    const double d = arc.delay(in_slew, load);
    arc_delay_[arc_offset_[id] + i] = d;
    arc_sigma_[arc_offset_[id] + i] = var_.sigma_ps(d, c.drive);
    out_slew = std::max(out_slew, arc.output_slew(in_slew, load));
  }
  slew_[id] = out_slew;
}

void TimingContext::update() {
  // The context's derived structure (topo order, levelization, arc offsets,
  // load-term lists) is frozen at construction; a structural netlist edit
  // afterwards would make this pass silently wrong, so fail loudly instead
  // (structure_version exists precisely for this check).
  if (!levels_.valid_for(nl_)) {
    throw std::logic_error(
        "TimingContext::update: netlist structure changed after construction "
        "(build a fresh TimingContext)");
  }
  if constexpr (debug::kParanoid) {
    // Deep audits of the frozen derived structure (the cheap version-counter
    // check above catches tracked mutations; these catch corruption of the
    // caches themselves).
    debug::validate_structure_fresh(nl_, levels_);
    debug::validate_levelization(nl_, levels_);
    debug::validate_load_terms(nl_, load_term_offset_, load_terms_);
  }
  const std::size_t n = nl_.node_count();
  load_.assign(n, 0.0);
  slew_.assign(n, options_.primary_input_slew_ps);
  arc_delay_.assign(arc_offset_[n], 0.0);
  arc_sigma_.assign(arc_offset_[n], 0.0);

  // Area: serial fold in id order — the accumulation sequence is part of the
  // bitwise contract (apply_snapshot_patch re-sums the same way).
  area_um2_ = 0.0;
  for (GateId id = 0; id < n; ++id) {
    const auto& g = nl_.gate(id);
    if (g.cell_group == netlist::kUnmapped) continue;
    area_um2_ += lib_.cell_for(g.cell_group, g.size_index).area_um2;
  }

  // Loads: each driver's terms fold independently (per-slot write, term
  // order fixed per driver), so this pass is level-free — any split works.
  const auto bound_cell = [this](GateId consumer) -> const liberty::Cell& {
    const auto& cg = nl_.gate(consumer);
    return lib_.cell_for(cg.cell_group, cg.size_index);
  };
  const std::size_t threads = options_.threads;
  if (threads == 1 || n < options_.min_level_width_for_parallel) {
    for (GateId id = 0; id < n; ++id) load_[id] = fold_load(id, bound_cell);
  } else {
    util::parallel_for(n, kLoadChunk, threads,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t id = begin; id < end; ++id) {
                           load_[id] = fold_load(static_cast<GateId>(id), bound_cell);
                         }
                       });
  }

  // Slews / arc delays / sigmas. Serial: the classic topological sweep.
  // Parallel: a levelized wavefront — all fanins of a level-l gate live in
  // strictly lower levels, so within a level gates only read finished slews
  // and write their own slots; levels form the barriers.
  // Cooperative control: the wavefront path checkpoints once per level on
  // the calling thread; the serial path matches that granularity with a
  // fixed gate stride. Checkpoints only abort or stall (see util/exec.h) —
  // never change values — so the bitwise contracts hold.
  if (threads == 1) {
    std::size_t relaxed = 0;
    for (const GateId id : order_) {
      if ((relaxed++ & 0xFF) == 0) util::checkpoint("sta/update/level");
      relax_gate(id);
    }
    return;
  }
  for (std::size_t l = 0; l < levels_.level_count(); ++l) {
    util::checkpoint("sta/update/level");
    const std::span<const GateId> level = levels_.level(l);
    run_wavefront_level(level, level.size(), options_.min_level_width_for_parallel,
                        kRelaxChunk, threads, [this](GateId id) { relax_gate(id); });
  }
}

double TimingContext::load_ff_with_resize(GateId driver, GateId center,
                                          const liberty::Cell& candidate) const {
  double load = load_[driver];
  const auto& center_gate = nl_.gate(center);
  if (center_gate.cell_group == netlist::kUnmapped) return load;
  const liberty::Cell& current = lib_.cell_for(center_gate.cell_group, center_gate.size_index);
  for (std::size_t i = 0; i < center_gate.fanins.size(); ++i) {
    if (center_gate.fanins[i] == driver) {
      load += candidate.input_cap_ff(i) - current.input_cap_ff(i);
    }
  }
  return load;
}

double TimingContext::arc_delay_with(GateId g, std::size_t i, const liberty::Cell& cell,
                                     double load_ff) const {
  const GateId fanin = nl_.gate(g).fanins[i];
  return cell.arc_from(i).delay(slew_[fanin], load_ff);
}

double TimingContext::sigma_for(const liberty::Cell& cell, double delay_ps) const {
  return var_.sigma_ps(delay_ps, cell.drive);
}

void TimingContext::apply_snapshot_patch(std::span<const std::uint8_t> dirty,
                                         std::span<const std::uint8_t> load_dirty,
                                         std::span<const double> load,
                                         std::span<const double> slew,
                                         std::span<const double> arc_delay,
                                         std::span<const double> arc_sigma) {
  const std::size_t n = nl_.node_count();
  if constexpr (debug::kParanoid) {
    debug::validate_structure_fresh(nl_, levels_);
    STATSIZER_PARANOID_CHECK(dirty.size() == n && load_dirty.size() == n &&
                                 load.size() == n && slew.size() == n &&
                                 arc_delay.size() == arc_count() &&
                                 arc_sigma.size() == arc_count(),
                             "apply_snapshot_patch",
                             "patch spans do not match the snapshot's node/arc shape");
  }
  for (GateId id = 0; id < n; ++id) {
    if (load_dirty[id]) load_[id] = load[id];
    if (!dirty[id]) continue;
    slew_[id] = slew[id];
    for (std::uint32_t a = arc_offset_[id]; a < arc_offset_[id + 1]; ++a) {
      arc_delay_[a] = arc_delay[a];
      arc_sigma_[a] = arc_sigma[a];
    }
  }
  // Area re-sum in update()'s exact visit order.
  area_um2_ = 0.0;
  for (GateId id = 0; id < n; ++id) {
    const auto& g = nl_.gate(id);
    if (g.cell_group == netlist::kUnmapped) continue;
    area_um2_ += lib_.cell_for(g.cell_group, g.size_index).area_um2;
  }
}

}  // namespace statsizer::sta
