// Internal plumbing shared by the timing::Analyzer adapters. Not installed;
// include only from src/timing/*.cpp.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "debug/validate.h"
#include "timing/analyzer.h"
#include "util/check.h"

namespace statsizer::timing::detail {

/// Bound-context / epoch / base-summary bookkeeping common to every adapter.
/// The epoch counter implements speculation invalidation: propose() stamps
/// the speculation with the current epoch, and commit()/analyze() bump it,
/// so a stale speculation's score() can fail loudly instead of silently
/// evaluating against a base that no longer exists.
class BoundAnalyzer : public Analyzer {
 public:
  const Summary& current() const final {
    if (!has_base_) {
      throw std::logic_error(std::string(name()) + ": current() before analyze()");
    }
    return base_;
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  void guard_epoch(std::uint64_t speculation_epoch) const {
    if constexpr (debug::kParanoid) {
      // A stamp *ahead* of the analyzer epoch can never come from correct
      // bookkeeping (stale stamps are the caller error handled below).
      debug::validate_epoch(name(), speculation_epoch, epoch_);
    }
    if (speculation_epoch != epoch_) {
      throw std::logic_error(std::string(name()) +
                             ": speculation invalidated by a commit or re-analyze");
    }
  }

 protected:
  sta::TimingContext& bound() const {
    if (ctx_ == nullptr) {
      throw std::logic_error(std::string(name()) + ": propose() before analyze()");
    }
    return *ctx_;
  }

  /// propose() preconditions: a bound context, at least one resize, distinct
  /// mapped gates, size indices inside each gate's group.
  void validate_resizes(std::span<const Resize> resizes) const;

  /// Installs a new base summary and invalidates outstanding speculations.
  void install_base(Summary base) {
    base_ = std::move(base);
    has_base_ = true;
    ++epoch_;
  }

  sta::TimingContext* ctx_ = nullptr;
  Summary base_;
  bool has_base_ = false;
  std::uint64_t epoch_ = 0;
};

/// The generic transactional fallback: score() applies the resizes, re-runs
/// the engine from scratch, and reverts — exact by construction, but it
/// mutates the shared TimingContext, so engines built on it report
/// concurrent_speculations = false and must be scored serially.
class SerializedSpeculation final : public Speculation {
 public:
  using Compute = std::function<Summary(sta::TimingContext&)>;

  SerializedSpeculation(BoundAnalyzer& owner, sta::TimingContext& ctx,
                        std::function<void(Summary)> install, Compute compute,
                        std::span<const Resize> resizes)
      : owner_(owner), ctx_(ctx), install_(std::move(install)), compute_(std::move(compute)),
        epoch_(owner.epoch()) {
    resizes_.assign(resizes.begin(), resizes.end());
    old_sizes_.reserve(resizes_.size());
    for (const Resize& r : resizes_) {
      old_sizes_.push_back(ctx_.netlist().gate(r.gate).size_index);
    }
  }

  const Summary& score() override {
    if (scored_) return result_;  // cached scores stay readable after invalidation
    owner_.guard_epoch(epoch_);
    apply();
    try {
      ctx_.update();
      result_ = compute_(ctx_);
    } catch (...) {
      // The transactional contract: score() must never leak the speculative
      // state, even when the engine throws mid-evaluation.
      revert();
      ctx_.update();
      throw;
    }
    revert();
    ctx_.update();  // pure function of the (restored) sizes: bitwise no-op
    scored_ = true;
    return result_;
  }

  void commit() override {
    if (committed_) return;  // uniform contract: a second commit is a no-op
    owner_.guard_epoch(epoch_);
    if (!scored_) (void)score();  // the base refresh reuses the scored summary
    apply();
    ctx_.update();
    install_(result_);  // bumps the epoch, invalidating siblings
    committed_ = true;
  }

  void rollback() override {}  // score() reverted eagerly; nothing was shared

 private:
  void apply() {
    auto& nl = ctx_.mutable_netlist();
    for (const Resize& r : resizes_) nl.gate(r.gate).size_index = r.size;
  }
  void revert() {
    auto& nl = ctx_.mutable_netlist();
    for (std::size_t i = 0; i < resizes_.size(); ++i) {
      nl.gate(resizes_[i].gate).size_index = old_sizes_[i];
    }
  }

  BoundAnalyzer& owner_;
  sta::TimingContext& ctx_;
  std::function<void(Summary)> install_;
  Compute compute_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint16_t> old_sizes_;  ///< pre-propose sizes, for revert()
  Summary result_;
  bool scored_ = false;
  bool committed_ = false;
};

/// Adapter base for engines whose what-if goes through the serialized
/// fallback. Subclasses supply compute() (a from-scratch run).
class SerializedAnalyzer : public BoundAnalyzer {
 public:
  const Summary& analyze(sta::TimingContext& ctx) override {
    ctx_ = &ctx;
    on_bind(ctx);
    install_base(compute(ctx));
    return current();
  }

  std::unique_ptr<Speculation> propose(netlist::GateId gate, std::uint16_t size) override {
    const Resize r{gate, size};
    return propose_resizes(std::span<const Resize>(&r, 1));
  }

  std::unique_ptr<Speculation> propose_resizes(std::span<const Resize> resizes) override {
    validate_resizes(resizes);
    return std::make_unique<SerializedSpeculation>(
        *this, bound(), [this](Summary s) { install_base(std::move(s)); },
        [this](sta::TimingContext& c) { return compute(c); }, resizes);
  }

 protected:
  virtual Summary compute(sta::TimingContext& ctx) = 0;
  virtual void on_bind(sta::TimingContext&) {}
};

std::unique_ptr<Analyzer> make_fullssta_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_fassta_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_canonical_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_dsta_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_mc_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_isle_analyzer(const AnalyzerOptions& options);

}  // namespace statsizer::timing::detail
