// Internal plumbing shared by the timing::Analyzer adapters. Not installed;
// include only from src/timing/*.cpp.
#pragma once

#include <stdexcept>
#include <string>

#include "timing/analyzer.h"

namespace statsizer::timing::detail {

/// Bound-context / epoch / base-summary bookkeeping common to every adapter.
/// The epoch counter implements speculation invalidation: propose() stamps
/// the speculation with the current epoch, and commit()/analyze() bump it,
/// so a stale speculation's score() can fail loudly instead of silently
/// evaluating against a base that no longer exists.
class BoundAnalyzer : public Analyzer {
 public:
  const Summary& current() const final {
    if (!has_base_) {
      throw std::logic_error(std::string(name()) + ": current() before analyze()");
    }
    return base_;
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  void guard_epoch(std::uint64_t speculation_epoch) const {
    if (speculation_epoch != epoch_) {
      throw std::logic_error(std::string(name()) +
                             ": speculation invalidated by a commit or re-analyze");
    }
  }

 protected:
  sta::TimingContext& bound() const {
    if (ctx_ == nullptr) {
      throw std::logic_error(std::string(name()) + ": propose() before analyze()");
    }
    return *ctx_;
  }

  /// propose() preconditions: a bound context, at least one resize, distinct
  /// mapped gates, size indices inside each gate's group.
  void validate_resizes(std::span<const Resize> resizes) const;

  /// Installs a new base summary and invalidates outstanding speculations.
  void install_base(Summary base) {
    base_ = std::move(base);
    has_base_ = true;
    ++epoch_;
  }

  sta::TimingContext* ctx_ = nullptr;
  Summary base_;
  bool has_base_ = false;
  std::uint64_t epoch_ = 0;
};

std::unique_ptr<Analyzer> make_fullssta_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_fassta_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_canonical_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_dsta_analyzer(const AnalyzerOptions& options);
std::unique_ptr<Analyzer> make_mc_analyzer(const AnalyzerOptions& options);

}  // namespace statsizer::timing::detail
