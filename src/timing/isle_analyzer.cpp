// The "isle" adapter: importance-sampled timing yield behind the
// engine-neutral timing::Analyzer seam (see ssta/isle.h for the estimator).
//
// analyze() runs the full estimator — surrogate build, defensive-mixture
// sampling, diagnostics — and summarizes the *delay* distribution with the
// self-normalized weighted moments (E_f[D] = E_q[w D]), so the summary is
// engine-comparable with fullssta/fassta/mc. Callers that want the yield
// number, its standard error, and the ESS diagnostics go through
// core::Flow::estimate_yield (or ssta::run_isle directly), which return the
// full IsleResult payload.
//
// What-if goes through the serialized fallback (apply / re-run / revert):
// the estimator is deterministic for a fixed seed and thread-count-invariant,
// so the speculation is exact, but score() mutates the shared context —
// hence concurrent_speculations = false.
#include "ssta/isle.h"
#include "timing/analyzer_impl.h"

namespace statsizer::timing::detail {

namespace {

class IsleAnalyzer final : public SerializedAnalyzer {
 public:
  explicit IsleAnalyzer(const AnalyzerOptions& options) : isle_(options.isle) {
    if (isle_.clock_period_ps <= 0.0 && options.clock_period_ps.has_value()) {
      isle_.clock_period_ps = *options.clock_period_ps;
    }
  }

  std::string_view name() const override { return "isle"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.what_if = true;
    c.exact_speculation = true;  // deterministic given (seed, options)
    return c;
  }

 private:
  Summary compute(sta::TimingContext& ctx) override {
    const ssta::IsleResult r = ssta::run_isle(ctx, isle_);
    Summary s;
    s.mean_ps = r.weighted_mean_ps;
    s.sigma_ps = r.weighted_sigma_ps;
    return s;
  }

  ssta::IsleOptions isle_;
};

}  // namespace

std::unique_ptr<Analyzer> make_isle_analyzer(const AnalyzerOptions& options) {
  return std::make_unique<IsleAnalyzer>(options);
}

}  // namespace statsizer::timing::detail
