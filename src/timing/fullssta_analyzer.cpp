// FULLSSTA behind the timing::Analyzer interface, with the incremental
// what-if overlay that makes parallel speculative confirmations possible.
//
// A speculation re-propagates only the resize's fanout cone: the snapshot
// half (loads of the resized gates' drivers re-folded in update()'s exact
// accumulation order, then slews / arc delays / arc sigmas over the dirty
// set) comes from the shared detail::ConeSnapshot (timing/cone.h — also the
// engine behind the FASSTA/DSTA what-ifs); this file adds the pdf half,
// propagating arrival pdfs over the same dirty set in topological order and
// reading everything outside the cone from the analyzer's cached base. The
// recomputation MIRRORS TimingContext::update() and ssta::run_fullssta()
// operation for operation, which is what makes the score — and the base
// state a commit() installs — bitwise-identical to a from-scratch update()
// + run_fullssta() of the resized netlist. The conformance suite
// (tests/analyzer_conformance_test.cpp) pins this. Commits install the
// snapshot half through TimingContext::apply_snapshot_patch (bitwise-equal
// to a full update(), without the O(E) rebuild).
//
// Overlay storage is dense (GateId-indexed vectors, cleared per score):
// the O(nodes) clears are memset-class and dwarfed by the cone's pdf
// convolutions, but each live speculation holds O(nodes + arcs) overlay
// memory — callers that score many speculations concurrently should window
// their waves (opt::size_statistically caps waves at a few times the worker
// count).
#include <algorithm>
#include <utility>

#include "timing/analyzer_impl.h"
#include "timing/cone.h"

namespace statsizer::timing::detail {

namespace {

using netlist::GateId;
using pdf::DiscretePdf;

class FullSstaAnalyzer final : public BoundAnalyzer {
 public:
  explicit FullSstaAnalyzer(const AnalyzerOptions& options) : options_(options.fullssta) {}

  std::string_view name() const override { return "fullssta"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.per_node_moments = true;
    c.output_pdf = true;
    c.what_if = true;
    c.concurrent_speculations = true;
    c.exact_speculation = true;
    return c;
  }

  const Summary& analyze(sta::TimingContext& ctx) override {
    ctx_ = &ctx;
    ssta::FullSstaOptions opt = options_;
    opt.keep_node_pdfs = true;
    ssta::FullSstaResult r = ssta::run_fullssta(ctx, opt);
    base_arrival_ = std::move(r.node_pdf);
    Summary s;
    s.mean_ps = r.mean_ps;
    s.sigma_ps = r.sigma_ps;
    s.node = std::move(r.node);
    s.output_pdf = std::move(r.output_pdf);
    install_base(std::move(s));
    return current();
  }

  std::unique_ptr<Speculation> propose(GateId gate, std::uint16_t size) override {
    const Resize r{gate, size};
    return propose_resizes(std::span<const Resize>(&r, 1));
  }

  std::unique_ptr<Speculation> propose_resizes(std::span<const Resize> resizes) override {
    validate_resizes(resizes);
    return std::make_unique<WhatIfSpeculation>(*this, bound(), resizes);
  }

 private:
  class WhatIfSpeculation final : public Speculation {
   public:
    WhatIfSpeculation(FullSstaAnalyzer& owner, sta::TimingContext& ctx,
                      std::span<const Resize> resizes)
        : owner_(owner), ctx_(ctx), epoch_(owner.epoch()) {
      resizes_.assign(resizes.begin(), resizes.end());
    }

    const Summary& score() override {
      if (scored_) return result_;
      owner_.guard_epoch(epoch_);
      propagate();
      scored_ = true;
      return result_;
    }

    void commit() override {
      if (committed_) return;
      owner_.guard_epoch(epoch_);
      if (!scored_) (void)score();  // must run against the pre-resize snapshot
      auto& nl = ctx_.mutable_netlist();
      for (const Resize& r : resizes_) nl.gate(r.gate).size_index = r.size;
      ctx_.apply_snapshot_patch(cone_.dirty, cone_.load_dirty, cone_.load, cone_.slew,
                                cone_.arc_delay, cone_.arc_sigma);
      owner_.merge(*this);  // installs the overlay as the new base; bumps epoch
      committed_ = true;
    }

    void rollback() override {}  // the overlay never touched shared state

   private:
    /// The incremental re-propagation: the shared snapshot half, then the
    /// pdf half mirroring run_fullssta()'s loop over the dirty set — both
    /// wavefront-parallel with FullSstaOptions::threads (a speculation
    /// scored from inside a pool worker runs inline; the big win is the
    /// atomic multi-resize confirmations scored on the caller's thread).
    void propagate() {
      const auto& nl = ctx_.netlist();
      const std::size_t n = nl.node_count();
      const std::size_t samples = owner_.options_.samples_per_pdf;
      const double span_sigmas = owner_.options_.span_sigmas;
      const std::size_t threads = owner_.options_.threads;

      cone_.propagate(ctx_, resizes_, threads);

      ov_arrival_.assign(n, DiscretePdf());
      ov_moments_.assign(n, sta::NodeMoments{});
      const auto arrival_of = [&](GateId id) -> const DiscretePdf& {
        return cone_.dirty[id] ? ov_arrival_[id] : owner_.base_arrival_[id];
      };
      const auto replay_gate = [&](GateId id) {
        if (!cone_.dirty[id]) return;
        const auto& g = nl.gate(id);
        if (g.fanins.empty()) {  // unreachable for dirty nodes; mirror anyway
          ov_arrival_[id] = DiscretePdf::point(0.0);
          return;
        }
        const std::uint32_t off = ctx_.arc_offset(id);
        DiscretePdf acc;
        for (std::size_t i = 0; i < g.fanins.size(); ++i) {
          const DiscretePdf delay = DiscretePdf::normal(
              cone_.arc_delay[off + i], cone_.arc_sigma[off + i], samples, span_sigmas);
          const DiscretePdf through = pdf::sum(arrival_of(g.fanins[i]), delay, samples);
          acc = (i == 0) ? through : pdf::max(acc, through, samples);
        }
        ov_moments_[id] = sta::NodeMoments{acc.mean(), acc.stddev()};
        ov_arrival_[id] = std::move(acc);
      };
      if (threads == 1) {
        for (const GateId id : ctx_.topo_order()) replay_gate(id);
      } else {
        // Same wavefront as the snapshot half, reusing its per-level dirty
        // counts (the cone just ran with the same threads value): clean
        // levels skip, thin ones run serially, pdf-heavy waves get per-gate
        // chunks.
        const netlist::Levelization& lv = ctx_.levelization();
        const std::size_t cutoff = ctx_.options().min_level_width_for_parallel;
        for (std::size_t l = 0; l < lv.level_count(); ++l) {
          sta::run_wavefront_level(lv.level(l), cone_.dirty_per_level[l], cutoff, 1,
                                   threads, replay_gate);
        }
      }

      // RV_O: statistical max over all primary outputs, in output order.
      DiscretePdf out = DiscretePdf::point(0.0);
      bool first = true;
      for (const auto& po : nl.outputs()) {
        const DiscretePdf& a = arrival_of(po.driver);
        out = first ? a : pdf::max(out, a, samples);
        first = false;
      }
      ov_output_ = std::move(out);
      result_.mean_ps = ov_output_.mean();
      result_.sigma_ps = ov_output_.stddev();
    }

    FullSstaAnalyzer& owner_;
    sta::TimingContext& ctx_;
    std::uint64_t epoch_ = 0;
    Summary result_;
    bool scored_ = false;
    bool committed_ = false;
    // Overlay state, kept after score() so commit() can merge it.
    ConeSnapshot cone_;
    std::vector<DiscretePdf> ov_arrival_;
    std::vector<sta::NodeMoments> ov_moments_;
    DiscretePdf ov_output_;

    friend class FullSstaAnalyzer;
  };

  /// Installs a committed speculation's overlay as the new base state.
  void merge(WhatIfSpeculation& spec) {
    const std::size_t n = base_arrival_.size();
    for (GateId id = 0; id < n; ++id) {
      if (!spec.cone_.dirty[id]) continue;
      base_arrival_[id] = std::move(spec.ov_arrival_[id]);
      base_.node[id] = spec.ov_moments_[id];
    }
    base_.output_pdf = std::move(spec.ov_output_);
    base_.mean_ps = spec.result_.mean_ps;
    base_.sigma_ps = spec.result_.sigma_ps;
    ++epoch_;  // siblings' base is gone
  }

  ssta::FullSstaOptions options_;
  std::vector<DiscretePdf> base_arrival_;
};

}  // namespace

std::unique_ptr<Analyzer> make_fullssta_analyzer(const AnalyzerOptions& options) {
  return std::make_unique<FullSstaAnalyzer>(options);
}

}  // namespace statsizer::timing::detail
