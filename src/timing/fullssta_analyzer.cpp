// FULLSSTA behind the timing::Analyzer interface, with the incremental
// what-if overlay that makes parallel speculative confirmations possible.
//
// A speculation re-propagates only the resize's fanout cone: the loads of
// the resized gates' drivers, then — in topological order over the dirty
// set — slews, arc delays, arc sigmas, and arrival pdfs, reading everything
// outside the cone from the analyzer's cached base. The recomputation
// MIRRORS TimingContext::update() and ssta::run_fullssta() operation for
// operation (same formulas, same accumulation order), which is what makes
// the score — and the base state a commit() installs — bitwise-identical to
// a from-scratch update() + run_fullssta() of the resized netlist. The
// conformance suite (tests/analyzer_conformance_test.cpp) pins this.
//
// The one subtle mirror is the load accumulation: update() folds every
// driver's load in netlist-visit order (the primary-output term when the
// outer loop reaches the driver itself, each consumer's pin cap when it
// reaches that consumer), and floating-point addition is not associative —
// adding a cap *delta* to the cached load would drift by an ULP. The
// analyzer therefore precomputes each driver's ordered term list once per
// analyze() and re-folds the full sum with candidate cells substituted.
//
// Overlay storage is dense (GateId-indexed vectors, cleared per score):
// the O(nodes) clears are memset-class and dwarfed by the cone's pdf
// convolutions, but each live speculation holds O(nodes) overlay memory —
// callers that score many speculations concurrently should window their
// waves (opt::size_statistically caps waves at a few times the worker
// count).
#include <algorithm>
#include <utility>

#include "timing/analyzer_impl.h"

namespace statsizer::timing::detail {

namespace {

using netlist::GateId;
using pdf::DiscretePdf;

class FullSstaAnalyzer final : public BoundAnalyzer {
 public:
  explicit FullSstaAnalyzer(const AnalyzerOptions& options) : options_(options.fullssta) {}

  std::string_view name() const override { return "fullssta"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.per_node_moments = true;
    c.output_pdf = true;
    c.what_if = true;
    c.concurrent_speculations = true;
    c.exact_speculation = true;
    return c;
  }

  const Summary& analyze(sta::TimingContext& ctx) override {
    ctx_ = &ctx;
    rebuild_load_terms(ctx);
    ssta::FullSstaOptions opt = options_;
    opt.keep_node_pdfs = true;
    ssta::FullSstaResult r = ssta::run_fullssta(ctx, opt);
    base_arrival_ = std::move(r.node_pdf);
    Summary s;
    s.mean_ps = r.mean_ps;
    s.sigma_ps = r.sigma_ps;
    s.node = std::move(r.node);
    s.output_pdf = std::move(r.output_pdf);
    install_base(std::move(s));
    return current();
  }

  std::unique_ptr<Speculation> propose(GateId gate, std::uint16_t size) override {
    const Resize r{gate, size};
    return propose_resizes(std::span<const Resize>(&r, 1));
  }

  std::unique_ptr<Speculation> propose_resizes(std::span<const Resize> resizes) override {
    validate_resizes(resizes);
    return std::make_unique<WhatIfSpeculation>(*this, bound(), resizes);
  }

 private:
  /// One addition into a driver's load, in TimingContext::update() order.
  /// consumer == kNoGate encodes the primary-output term.
  struct LoadTerm {
    GateId consumer = netlist::kNoGate;
    std::uint32_t fanin_index = 0;
  };

  void rebuild_load_terms(const sta::TimingContext& ctx) {
    const auto& nl = ctx.netlist();
    const std::size_t n = nl.node_count();
    load_terms_.assign(n, {});
    // Visit order identical to update()'s load loop: pushing onto the
    // driver's list as each gate is visited reproduces, per driver, the
    // exact sequence of += operations update() performs.
    for (GateId id = 0; id < n; ++id) {
      const auto& g = nl.gate(id);
      if (g.po_count > 0) load_terms_[id].push_back(LoadTerm{netlist::kNoGate, 0});
      if (g.cell_group == netlist::kUnmapped) continue;
      for (std::size_t i = 0; i < g.fanins.size(); ++i) {
        load_terms_[g.fanins[i]].push_back(LoadTerm{id, static_cast<std::uint32_t>(i)});
      }
    }
  }

  /// Driver @p d's load with the speculation's candidate cells substituted:
  /// the full sum re-folded in update() order (see the header comment).
  [[nodiscard]] double speculative_load(const sta::TimingContext& ctx, GateId d,
                                        std::span<const liberty::Cell* const> cand) const {
    const auto& nl = ctx.netlist();
    double load = 0.0;
    for (const LoadTerm& t : load_terms_[d]) {
      if (t.consumer == netlist::kNoGate) {
        load += ctx.options().primary_output_load_ff * nl.gate(d).po_count;
      } else {
        const auto& cg = nl.gate(t.consumer);
        const liberty::Cell* c = cand[t.consumer];
        if (c == nullptr) c = &ctx.library().cell_for(cg.cell_group, cg.size_index);
        load += c->input_cap_ff(t.fanin_index);
      }
    }
    return load;
  }

  class WhatIfSpeculation final : public Speculation {
   public:
    WhatIfSpeculation(FullSstaAnalyzer& owner, sta::TimingContext& ctx,
                      std::span<const Resize> resizes)
        : owner_(owner), ctx_(ctx), epoch_(owner.epoch()) {
      resizes_.assign(resizes.begin(), resizes.end());
    }

    const Summary& score() override {
      if (scored_) return result_;
      owner_.guard_epoch(epoch_);
      propagate();
      scored_ = true;
      return result_;
    }

    void commit() override {
      if (committed_) return;
      owner_.guard_epoch(epoch_);
      if (!scored_) (void)score();  // must run against the pre-resize snapshot
      auto& nl = ctx_.mutable_netlist();
      for (const Resize& r : resizes_) nl.gate(r.gate).size_index = r.size;
      ctx_.update();
      owner_.merge(*this);  // installs the overlay as the new base; bumps epoch
      committed_ = true;
    }

    void rollback() override {}  // the overlay never touched shared state

   private:
    /// The incremental re-propagation (see file header).
    void propagate() {
      const auto& nl = ctx_.netlist();
      const std::size_t n = nl.node_count();
      const std::size_t samples = owner_.options_.samples_per_pdf;
      const double span_sigmas = owner_.options_.span_sigmas;

      // Candidate cell per gate (nullptr = keep the bound cell).
      std::vector<const liberty::Cell*> cand(n, nullptr);
      for (const Resize& r : resizes_) {
        cand[r.gate] = &ctx_.library().cell_for(nl.gate(r.gate).cell_group, r.size);
      }

      // Seeds: every resized gate (its arc delays change) and each of its
      // mapped drivers (their loads — hence delays and slews — change).
      // Unconditionally recomputing a driver whose cap delta happens to be
      // zero is harmless: the recomputation reproduces the base bitwise.
      dirty_.assign(n, 0);
      std::vector<std::uint8_t> load_dirty(n, 0);
      std::vector<double> ov_load(n, 0.0);
      std::vector<double> ov_slew(n, 0.0);
      std::vector<GateId> stack;
      const auto mark = [&](GateId g) {
        if (!dirty_[g]) {
          dirty_[g] = 1;
          stack.push_back(g);
        }
      };
      for (const Resize& r : resizes_) {
        mark(r.gate);
        for (const GateId d : nl.gate(r.gate).fanins) {
          if (!ctx_.has_cell(d)) continue;  // PI/constant: load feeds no arc
          if (!load_dirty[d]) {
            load_dirty[d] = 1;
            ov_load[d] = owner_.speculative_load(ctx_, d, cand);
          }
          mark(d);
        }
      }
      // Downstream closure: a changed slew or arrival dirties every fanout.
      while (!stack.empty()) {
        const GateId g = stack.back();
        stack.pop_back();
        for (const GateId f : nl.gate(g).fanouts) mark(f);
      }

      // Re-propagate the dirty set in topological order, mirroring
      // update()'s slew/delay/sigma loop and run_fullssta()'s pdf loop.
      ov_arrival_.assign(n, DiscretePdf());
      ov_moments_.assign(n, sta::NodeMoments{});
      const auto arrival_of = [&](GateId id) -> const DiscretePdf& {
        return dirty_[id] ? ov_arrival_[id] : owner_.base_arrival_[id];
      };
      for (const GateId id : ctx_.topo_order()) {
        if (!dirty_[id]) continue;
        const auto& g = nl.gate(id);
        if (g.fanins.empty()) {  // unreachable for dirty nodes; mirror anyway
          ov_arrival_[id] = DiscretePdf::point(0.0);
          ov_slew[id] = ctx_.slew_ps(id);
          continue;
        }
        const bool mapped = ctx_.has_cell(id);
        const double load = load_dirty[id] ? ov_load[id] : ctx_.load_ff(id);
        const liberty::Cell* cell = nullptr;
        if (mapped) cell = cand[id] != nullptr ? cand[id] : &ctx_.cell(id);

        DiscretePdf acc;
        double out_slew = 0.0;
        for (std::size_t i = 0; i < g.fanins.size(); ++i) {
          const GateId fi = g.fanins[i];
          const double in_slew = dirty_[fi] ? ov_slew[fi] : ctx_.slew_ps(fi);
          double d = 0.0;
          double s = 0.0;
          if (mapped) {
            const liberty::TimingArc& arc = cell->arc_from(i);
            d = arc.delay(in_slew, load);
            s = ctx_.sigma_for(*cell, d);
            out_slew = std::max(out_slew, arc.output_slew(in_slew, load));
          }
          const DiscretePdf delay = DiscretePdf::normal(d, s, samples, span_sigmas);
          const DiscretePdf through = pdf::sum(arrival_of(fi), delay, samples);
          acc = (i == 0) ? through : pdf::max(acc, through, samples);
        }
        ov_slew[id] = mapped ? out_slew : ctx_.slew_ps(id);
        ov_moments_[id] = sta::NodeMoments{acc.mean(), acc.stddev()};
        ov_arrival_[id] = std::move(acc);
      }

      // RV_O: statistical max over all primary outputs, in output order.
      DiscretePdf out = DiscretePdf::point(0.0);
      bool first = true;
      for (const auto& po : nl.outputs()) {
        const DiscretePdf& a = arrival_of(po.driver);
        out = first ? a : pdf::max(out, a, samples);
        first = false;
      }
      ov_output_ = std::move(out);
      result_.mean_ps = ov_output_.mean();
      result_.sigma_ps = ov_output_.stddev();
    }

    FullSstaAnalyzer& owner_;
    sta::TimingContext& ctx_;
    std::uint64_t epoch_ = 0;
    Summary result_;
    bool scored_ = false;
    bool committed_ = false;
    // Overlay state, kept after score() so commit() can merge it.
    std::vector<std::uint8_t> dirty_;
    std::vector<DiscretePdf> ov_arrival_;
    std::vector<sta::NodeMoments> ov_moments_;
    DiscretePdf ov_output_;

    friend class FullSstaAnalyzer;
  };

  /// Installs a committed speculation's overlay as the new base state.
  void merge(WhatIfSpeculation& spec) {
    const std::size_t n = base_arrival_.size();
    for (GateId id = 0; id < n; ++id) {
      if (!spec.dirty_[id]) continue;
      base_arrival_[id] = std::move(spec.ov_arrival_[id]);
      base_.node[id] = spec.ov_moments_[id];
    }
    base_.output_pdf = std::move(spec.ov_output_);
    base_.mean_ps = spec.result_.mean_ps;
    base_.sigma_ps = spec.result_.sigma_ps;
    ++epoch_;  // siblings' base is gone
  }

  ssta::FullSstaOptions options_;
  std::vector<DiscretePdf> base_arrival_;
  std::vector<std::vector<LoadTerm>> load_terms_;
};

}  // namespace

std::unique_ptr<Analyzer> make_fullssta_analyzer(const AnalyzerOptions& options) {
  return std::make_unique<FullSstaAnalyzer>(options);
}

}  // namespace statsizer::timing::detail
