// timing::Analyzer — the engine-neutral analysis seam.
//
// The paper's StatisticalGreedy alternates a fast inner scorer (FASSTA) and
// an accurate outer confirmer (FULLSSTA); the surrounding codebase also runs
// deterministic STA and Monte Carlo over the same TimingContext. Before this
// layer each engine lived behind its own free-function signature, so every
// call site re-plumbed engines by hand. `Analyzer` unifies them:
//
//   auto an = timing::make_analyzer("fullssta");      // registry, by name
//   const timing::Summary& s = an->analyze(ctx);      // full analysis
//   auto spec = an->propose(gate, size);              // transactional what-if
//   double cost = spec->score().mean_ps + lambda * spec->score().sigma_ps;
//   spec->commit();   // or spec->rollback();
//
// The transaction lifecycle:
//   analyze(ctx) establishes the analyzer's *base state* (netlist sizing +
//   timing snapshot + cached engine results). propose() opens a speculation
//   against that base; score() evaluates the engine as if the resize were
//   applied, without touching the netlist, the TimingContext, or the base;
//   commit() applies the resize, refreshes the TimingContext (update()) and
//   the base state, and *invalidates every other outstanding speculation*
//   (their base is gone — computing a fresh score() on them throws
//   std::logic_error, though a score cached before the commit stays
//   readable);
//   rollback() discards the speculation and is guaranteed to leave netlist,
//   context, and analyzer bitwise-identical to the state before propose().
//   Destroying an unresolved speculation is an implicit rollback.
//
// Thread-safety contract (see docs/ARCHITECTURE.md): the Analyzer itself is
// shared; Speculations are per-worker. When capabilities().
// concurrent_speculations is set, any number of *single-resize* speculations
// from the same base may be propose()d and score()d concurrently — each one
// carries a private overlay and only reads the shared base. commit(),
// rollback(), and analyze() are serial operations (no speculation may be
// scoring while they run). Engines whose score() has to mutate the shared
// context (the generic mutate/re-run/revert fallback used by "canonical"
// and "mc") report concurrent_speculations = false and must be scored
// serially.
//
// The FULLSSTA, FASSTA, and DSTA implementations are *incremental*: a
// speculation re-propagates only the candidate's fanout cone (loads, slews,
// arc delays, then arrival pdfs / moments / deterministic arrivals) against
// a private overlay, and both the score and the committed base are
// bitwise-identical to a from-scratch TimingContext::update() + full engine
// run of the resized netlist. All three commit by patching the snapshot in
// place (TimingContext::apply_snapshot_patch — bitwise-equal to a full
// update() without the O(E) rebuild), which is what lets area recovery
// commit thousands of accepted downsizes without a single full snapshot
// refresh. This is also what lets the optimizer score accurate rescue
// confirmations in parallel and commit them serially in gain order without
// changing any result.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fassta/engine.h"
#include "pdf/discrete_pdf.h"
#include "ssta/fullssta.h"
#include "ssta/isle.h"
#include "ssta/monte_carlo.h"
#include "sta/graph.h"

namespace statsizer::timing {

/// What an engine behind the interface can deliver. Callers gate optional
/// behaviour (parallel confirmation fan-out, pdf-based yield, WNSS tracing)
/// on these flags instead of hard-coding engine names.
struct Capabilities {
  /// Summary::node carries per-node arrival moments (WNSS tracing and FASSTA
  /// boundary conditions need these).
  bool per_node_moments = false;
  /// Summary::output_pdf carries the full circuit-delay distribution.
  bool output_pdf = false;
  /// propose() is supported.
  bool what_if = false;
  /// Distinct single-resize speculations from one base may score() in
  /// parallel (each holds a private overlay; the base is read-only).
  /// Multi-resize speculations are always scored with no other speculation
  /// in flight (the optimizer's batch/bump pattern).
  bool concurrent_speculations = false;
  /// score() is bitwise-identical to a from-scratch analyze() of the resized
  /// netlist (FULLSSTA/FASSTA/DSTA re-propagate the full fanout cone —
  /// loads, slews, arc delays — so their incremental scores are exact).
  bool exact_speculation = false;
};

/// Engine-neutral analysis result. mean_ps/sigma_ps are always filled; node
/// and output_pdf only when the engine's capabilities say so. Speculative
/// scores (Speculation::score) fill only mean_ps/sigma_ps — the full payload
/// is guaranteed on analyze() / current().
struct Summary {
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
  /// Per-node arrival moments, indexed by GateId (per_node_moments).
  std::vector<sta::NodeMoments> node;
  /// Circuit-delay pdf: the statistical max over primary outputs (output_pdf).
  pdf::DiscretePdf output_pdf;
};

/// One hypothetical resize: bind @p gate to size index @p size of its group.
struct Resize {
  netlist::GateId gate = netlist::kNoGate;
  std::uint16_t size = 0;
};

/// A transactional what-if opened by Analyzer::propose. See the lifecycle in
/// the header comment. Not copyable; owned by the caller.
class Speculation {
 public:
  virtual ~Speculation() = default;
  Speculation(const Speculation&) = delete;
  Speculation& operator=(const Speculation&) = delete;

  /// The resizes under speculation.
  [[nodiscard]] std::span<const Resize> resizes() const { return resizes_; }

  /// Evaluates the engine as if the resizes were applied. Cached: repeated
  /// calls return the same object, and a score computed before a sibling's
  /// commit stays readable afterwards. Computing a *fresh* score after a
  /// sibling speculation committed (or analyze() re-based) throws
  /// std::logic_error — the base it would evaluate against is gone.
  virtual const Summary& score() = 0;

  /// Applies the resizes to the netlist, refreshes the TimingContext and the
  /// analyzer's base state, and invalidates sibling speculations. After
  /// commit, Analyzer::current() equals a from-scratch analyze() of the new
  /// state (bitwise, for deterministic engines). Committing twice is a
  /// no-op; committing an invalidated speculation throws std::logic_error.
  virtual void commit() = 0;

  /// Discards the speculation. Guaranteed no-op on netlist, context, and
  /// analyzer state. Safe to call on an invalidated speculation.
  virtual void rollback() = 0;

 protected:
  Speculation() = default;
  std::vector<Resize> resizes_;
};

/// Abstract analysis engine. Obtain instances via make_analyzer().
class Analyzer {
 public:
  virtual ~Analyzer() = default;

  /// Registry name ("fullssta", "fassta", "dsta", "mc", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Capabilities capabilities() const = 0;

  /// Full analysis of @p ctx's current state. Binds the analyzer to @p ctx,
  /// (re)establishes the base state for subsequent propose() calls, and
  /// invalidates outstanding speculations. The reference stays valid until
  /// the next analyze()/commit().
  virtual const Summary& analyze(sta::TimingContext& ctx) = 0;

  /// The cached base summary (the result of the last analyze() or commit()).
  /// Throws std::logic_error before the first analyze().
  [[nodiscard]] virtual const Summary& current() const = 0;

  /// Opens a speculation for one resize. Requires a prior analyze().
  /// Throws std::invalid_argument on an out-of-range size index.
  [[nodiscard]] virtual std::unique_ptr<Speculation> propose(netlist::GateId gate,
                                                             std::uint16_t size) = 0;

  /// Opens a speculation over several resizes applied together (an atomic
  /// batch: one score, one commit/rollback). Gates must be distinct.
  [[nodiscard]] virtual std::unique_ptr<Speculation> propose_resizes(
      std::span<const Resize> resizes) = 0;
};

/// Engine-specific knobs carried through the registry. Each adapter reads
/// only its own field.
struct AnalyzerOptions {
  ssta::FullSstaOptions fullssta;
  fassta::EngineOptions fassta;
  ssta::MonteCarloOptions monte_carlo;
  /// Importance-sampled yield engine ("isle"). Its clock_period_ps field
  /// falls back to the shared clock_period_ps below when unset.
  ssta::IsleOptions isle;
  /// Deterministic STA required-time reference (nullopt = zero-slack
  /// normalization at the observed max arrival).
  std::optional<double> clock_period_ps;
};

using AnalyzerFactory =
    std::function<std::unique_ptr<Analyzer>(const AnalyzerOptions&)>;

/// Creates an analyzer by registry name. Built-ins: "fullssta" (discrete-pdf
/// SSTA with the incremental what-if overlay), "fassta" (Clark-moment fast
/// engine), "canonical" (correlation-aware first-order SSTA), "dsta"
/// (deterministic STA; sigma = 0), "mc" (Monte Carlo), "isle" (importance-
/// sampled yield; summary carries the self-normalized weighted delay
/// moments). Throws std::invalid_argument for unknown names (message lists
/// the known ones).
[[nodiscard]] std::unique_ptr<Analyzer> make_analyzer(std::string_view name,
                                                      const AnalyzerOptions& options = {});

/// Registered names, sorted. The conformance suite iterates this.
[[nodiscard]] std::vector<std::string> analyzer_names();

/// Registers an additional backend. Returns false if the name is already
/// taken.
bool register_analyzer(std::string name, AnalyzerFactory factory);

}  // namespace statsizer::timing
