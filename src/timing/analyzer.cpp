// Registry plus the FASSTA / DSTA / Monte-Carlo adapters. The FULLSSTA
// adapter (the incremental what-if overlay) lives in fullssta_analyzer.cpp.
#include "timing/analyzer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "ssta/canonical.h"
#include "sta/dsta.h"
#include "timing/analyzer_impl.h"
#include "timing/cone.h"

namespace statsizer::timing {

namespace detail {

void BoundAnalyzer::validate_resizes(std::span<const Resize> resizes) const {
  const sta::TimingContext& ctx = bound();
  if (!has_base_) {
    throw std::logic_error(std::string(name()) + ": propose() before analyze()");
  }
  if (resizes.empty()) {
    throw std::invalid_argument(std::string(name()) + ": propose() with no resizes");
  }
  const auto& nl = ctx.netlist();
  for (const Resize& r : resizes) {
    if (r.gate >= nl.node_count() || !ctx.has_cell(r.gate)) {
      throw std::invalid_argument(std::string(name()) + ": propose() on unmapped gate");
    }
    const auto& group = ctx.library().group(nl.gate(r.gate).cell_group);
    if (r.size >= group.size_count()) {
      throw std::invalid_argument(std::string(name()) + ": size index out of range for " +
                                  nl.gate(r.gate).name);
    }
  }
  // Duplicate-gate detection, sized to the batch: the hot paths propose
  // single resizes (vacuously duplicate-free, no allocation), small batches
  // compare pairwise, and only the netlist-wide population bumps pay for a
  // seen-flag vector.
  if (resizes.size() < 2) return;
  if (resizes.size() <= 32) {
    for (std::size_t i = 1; i < resizes.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (resizes[j].gate == resizes[i].gate) {
          throw std::invalid_argument(std::string(name()) + ": duplicate gate " +
                                      nl.gate(resizes[i].gate).name + " in one speculation");
        }
      }
    }
    return;
  }
  std::vector<std::uint8_t> seen(nl.node_count(), 0);
  for (const Resize& r : resizes) {
    if (seen[r.gate] != 0) {
      throw std::invalid_argument(std::string(name()) + ": duplicate gate " +
                                  nl.gate(r.gate).name + " in one speculation");
    }
    seen[r.gate] = 1;
  }
}

namespace {

using netlist::GateId;

// The SerializedSpeculation / SerializedAnalyzer fallback plumbing lives in
// analyzer_impl.h (detail) so out-of-file adapters — the ISLE engine in
// isle_analyzer.cpp — can subclass it too.

// ---------------------------------------------------------------------------
// FASSTA and DSTA: exact incremental what-ifs over the shared ConeSnapshot.
//
// Both engines propagate a scalar "arrival" per node (moment pairs for
// FASSTA, latest arrival for DSTA) from the snapshot's arc delays, so an
// exact speculation needs the same two halves:
//   1. the snapshot half — loads (re-folded in update()'s accumulation
//      order), slews, arc delays and sigmas over the resize's fanout cone
//      (detail::ConeSnapshot, mirroring TimingContext::update() bitwise);
//   2. the engine half — arrival propagation over the dirty set in
//      topological order, reading everything outside the cone from the
//      analyzer's cached base (Summary::node).
// score() touches only the speculation's private overlay, so speculations
// fan out in parallel; commit() installs the overlay incrementally — sizes
// into the netlist, the snapshot half through
// TimingContext::apply_snapshot_patch() (bitwise-equal to a full update()),
// the arrival half into the base summary — with no O(E) re-run. This is
// what lets opt::recover_area screen thousands of downsize trials without a
// single full TimingContext::update().
// ---------------------------------------------------------------------------

/// Shared plumbing of the two cone speculations: epoch/caching discipline,
/// the snapshot half, and the incremental commit. Subclasses implement the
/// engine half (propagate_arrivals) and the base merge (merge_arrivals).
template <typename Owner>
class ConeSpeculation : public Speculation {
 public:
  ConeSpeculation(Owner& owner, sta::TimingContext& ctx, std::span<const Resize> resizes)
      : owner_(owner), ctx_(ctx), epoch_(owner.epoch()) {
    resizes_.assign(resizes.begin(), resizes.end());
  }

  const Summary& score() final {
    if (scored_) return result_;  // cached scores stay readable after invalidation
    owner_.guard_epoch(epoch_);
    // The snapshot half replays with update()'s thread knob (wavefront on
    // the caller's thread; inline when scoring inside a pool worker).
    cone_.propagate(ctx_, resizes_, ctx_.options().threads);
    propagate_arrivals();
    scored_ = true;
    return result_;
  }

  void commit() final {
    if (committed_) return;  // uniform contract: a second commit is a no-op
    owner_.guard_epoch(epoch_);
    if (!scored_) (void)score();  // must run against the pre-resize snapshot
    auto& nl = ctx_.mutable_netlist();
    for (const Resize& r : resizes_) nl.gate(r.gate).size_index = r.size;
    ctx_.apply_snapshot_patch(cone_.dirty, cone_.load_dirty, cone_.load, cone_.slew,
                              cone_.arc_delay, cone_.arc_sigma);
    merge_arrivals();          // dirty nodes of the base summary
    owner_.merge_committed(result_);  // summary scalars; bumps the epoch
    committed_ = true;
  }

  void rollback() final {}  // the overlay never touched shared state

 protected:
  /// Engine half of score(): propagate arrivals over cone_.dirty and fill
  /// result_.mean_ps / result_.sigma_ps.
  virtual void propagate_arrivals() = 0;
  /// Commit half: write the overlay arrivals into the owner's base summary.
  virtual void merge_arrivals() = 0;

  Owner& owner_;
  sta::TimingContext& ctx_;
  std::uint64_t epoch_ = 0;
  detail::ConeSnapshot cone_;
  Summary result_;
  bool scored_ = false;
  bool committed_ = false;
};

class FasstaAnalyzer final : public SerializedAnalyzer {
 public:
  explicit FasstaAnalyzer(const AnalyzerOptions& options) : options_(options.fassta) {}

  std::string_view name() const override { return "fassta"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.per_node_moments = true;
    c.what_if = true;
    c.concurrent_speculations = true;
    c.exact_speculation = true;
    return c;
  }

  // Single-resize propose() is inherited: it delegates to this override.
  std::unique_ptr<Speculation> propose_resizes(std::span<const Resize> resizes) override {
    validate_resizes(resizes);
    return std::make_unique<WhatIfSpeculation>(*this, bound(), resizes);
  }

 private:
  class WhatIfSpeculation final : public ConeSpeculation<FasstaAnalyzer> {
   public:
    using ConeSpeculation::ConeSpeculation;

   private:
    /// Mirrors fassta::Engine::run() over the dirty set: moment propagation
    /// from the cone's arc delays/sigmas, base moments outside the cone.
    void propagate_arrivals() override {
      const auto& nl = ctx_.netlist();
      ov_moments_.assign(nl.node_count(), sta::NodeMoments{});
      const fassta::Engine& engine = *owner_.engine_;
      const std::span<const sta::NodeMoments> base = owner_.current().node;
      const auto arrival_of = [&](GateId id) -> const sta::NodeMoments& {
        return cone_.dirty[id] ? ov_moments_[id] : base[id];
      };
      for (const GateId id : ctx_.topo_order()) {
        if (!cone_.dirty[id]) continue;
        const auto& g = nl.gate(id);
        if (g.fanins.empty()) continue;  // PI/constant: arrival (0, 0)
        const std::uint32_t off = ctx_.arc_offset(id);
        sta::NodeMoments acc;
        for (std::size_t i = 0; i < g.fanins.size(); ++i) {
          const sta::NodeMoments& in = arrival_of(g.fanins[i]);
          const double d = cone_.arc_delay[off + i];
          const double s = cone_.arc_sigma[off + i];
          const sta::NodeMoments through{in.mean_ps + d,
                                         std::sqrt(in.sigma_ps * in.sigma_ps + s * s)};
          acc = (i == 0) ? through : engine.stat_max(acc, through);
        }
        ov_moments_[id] = acc;
      }
      sta::NodeMoments out{0.0, 0.0};
      bool first = true;
      for (const auto& po : nl.outputs()) {
        out = first ? arrival_of(po.driver) : engine.stat_max(out, arrival_of(po.driver));
        first = false;
      }
      result_.mean_ps = out.mean_ps;
      result_.sigma_ps = out.sigma_ps;
    }

    void merge_arrivals() override {
      for (GateId id = 0; id < ov_moments_.size(); ++id) {
        if (cone_.dirty[id]) owner_.base_.node[id] = ov_moments_[id];
      }
    }

    std::vector<sta::NodeMoments> ov_moments_;
  };

  Summary compute(sta::TimingContext& ctx) override {
    Summary s;
    sta::NodeMoments circuit;
    s.node = engine_->run(&circuit);
    s.mean_ps = circuit.mean_ps;
    s.sigma_ps = circuit.sigma_ps;
    (void)ctx;
    return s;
  }

  void on_bind(sta::TimingContext& ctx) override { engine_.emplace(ctx, options_); }

  /// Installs a committed speculation's summary scalars (merge_arrivals
  /// already patched the node moments) and invalidates siblings.
  void merge_committed(const Summary& scored) {
    base_.mean_ps = scored.mean_ps;
    base_.sigma_ps = scored.sigma_ps;
    ++epoch_;
  }

  fassta::EngineOptions options_;
  std::optional<fassta::Engine> engine_;

  template <typename Owner>
  friend class ConeSpeculation;
};

// ---------------------------------------------------------------------------
// Deterministic STA: mean = latest primary-output arrival, sigma = 0.
// ---------------------------------------------------------------------------

class DstaAnalyzer final : public SerializedAnalyzer {
 public:
  explicit DstaAnalyzer(const AnalyzerOptions& options)
      : clock_period_ps_(options.clock_period_ps) {}

  std::string_view name() const override { return "dsta"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.per_node_moments = true;
    c.what_if = true;
    c.concurrent_speculations = true;
    c.exact_speculation = true;
    return c;
  }

  // Single-resize propose() is inherited: it delegates to this override.
  std::unique_ptr<Speculation> propose_resizes(std::span<const Resize> resizes) override {
    validate_resizes(resizes);
    return std::make_unique<WhatIfSpeculation>(*this, bound(), resizes);
  }

 private:
  class WhatIfSpeculation final : public ConeSpeculation<DstaAnalyzer> {
   public:
    using ConeSpeculation::ConeSpeculation;

   private:
    /// Mirrors run_dsta()'s forward pass over the dirty set: latest arrival
    /// from the cone's arc delays, base arrivals outside the cone.
    void propagate_arrivals() override {
      const auto& nl = ctx_.netlist();
      ov_arrival_.assign(nl.node_count(), 0.0);
      const std::span<const sta::NodeMoments> base = owner_.current().node;
      const auto arrival_of = [&](GateId id) {
        return cone_.dirty[id] ? ov_arrival_[id] : base[id].mean_ps;
      };
      for (const GateId id : ctx_.topo_order()) {
        if (!cone_.dirty[id]) continue;
        const auto& g = nl.gate(id);
        const std::uint32_t off = ctx_.arc_offset(id);
        double arr = 0.0;
        for (std::size_t i = 0; i < g.fanins.size(); ++i) {
          arr = std::max(arr, arrival_of(g.fanins[i]) + cone_.arc_delay[off + i]);
        }
        ov_arrival_[id] = arr;
      }
      // run_dsta's max fold over primary outputs (>= keeps the last winner).
      double max_arrival = 0.0;
      for (const auto& po : nl.outputs()) {
        if (arrival_of(po.driver) >= max_arrival) max_arrival = arrival_of(po.driver);
      }
      result_.mean_ps = max_arrival;
      result_.sigma_ps = 0.0;
    }

    void merge_arrivals() override {
      for (GateId id = 0; id < ov_arrival_.size(); ++id) {
        if (cone_.dirty[id]) owner_.base_.node[id] = sta::NodeMoments{ov_arrival_[id], 0.0};
      }
    }

    std::vector<double> ov_arrival_;
  };

  Summary compute(sta::TimingContext& ctx) override {
    const sta::DstaResult r = sta::run_dsta(ctx, clock_period_ps_);
    Summary s;
    s.mean_ps = r.max_arrival_ps;
    s.sigma_ps = 0.0;
    s.node.resize(r.arrival_ps.size());
    for (std::size_t i = 0; i < r.arrival_ps.size(); ++i) {
      s.node[i] = sta::NodeMoments{r.arrival_ps[i], 0.0};
    }
    return s;
  }

  void merge_committed(const Summary& scored) {
    base_.mean_ps = scored.mean_ps;
    base_.sigma_ps = 0.0;
    ++epoch_;
  }

  std::optional<double> clock_period_ps_;

  template <typename Owner>
  friend class ConeSpeculation;
};

// ---------------------------------------------------------------------------
// Canonical first-order SSTA: the correlation-aware engine (one shared
// global variable). Unlike FULLSSTA/FASSTA it tracks the variation model's
// global_fraction through the max.
// ---------------------------------------------------------------------------

class CanonicalAnalyzer final : public SerializedAnalyzer {
 public:
  explicit CanonicalAnalyzer(const AnalyzerOptions&) {}

  std::string_view name() const override { return "canonical"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.per_node_moments = true;
    c.what_if = true;
    c.exact_speculation = true;
    return c;
  }

 private:
  Summary compute(sta::TimingContext& ctx) override {
    const ssta::CanonicalResult r = ssta::run_canonical(ctx);
    Summary s;
    s.mean_ps = r.mean_ps;
    s.sigma_ps = r.sigma_ps;
    s.node.resize(r.node.size());
    for (std::size_t i = 0; i < r.node.size(); ++i) {
      s.node[i] = sta::NodeMoments{r.node[i].mean_ps(), r.node[i].sigma_ps()};
    }
    return s;
  }
};

// ---------------------------------------------------------------------------
// Monte Carlo: the sampling reference. Deterministic for a fixed seed (and
// for any MonteCarloOptions::threads value — counter-based sample streams),
// so the serialized what-if is exact.
// ---------------------------------------------------------------------------

class McAnalyzer final : public SerializedAnalyzer {
 public:
  explicit McAnalyzer(const AnalyzerOptions& options) : mc_(options.monte_carlo) {}

  std::string_view name() const override { return "mc"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.per_node_moments = mc_.per_node_stats;
    c.what_if = true;
    c.exact_speculation = true;
    return c;
  }

 private:
  Summary compute(sta::TimingContext& ctx) override {
    const ssta::MonteCarloResult r = ssta::run_monte_carlo(ctx, mc_);
    Summary s;
    s.mean_ps = r.mean_ps;
    s.sigma_ps = r.sigma_ps;
    s.node = r.node;  // empty unless per_node_stats
    return s;
  }

  ssta::MonteCarloOptions mc_;
};

}  // namespace

std::unique_ptr<Analyzer> make_fassta_analyzer(const AnalyzerOptions& options) {
  return std::make_unique<FasstaAnalyzer>(options);
}
std::unique_ptr<Analyzer> make_canonical_analyzer(const AnalyzerOptions& options) {
  return std::make_unique<CanonicalAnalyzer>(options);
}
std::unique_ptr<Analyzer> make_dsta_analyzer(const AnalyzerOptions& options) {
  return std::make_unique<DstaAnalyzer>(options);
}
std::unique_ptr<Analyzer> make_mc_analyzer(const AnalyzerOptions& options) {
  return std::make_unique<McAnalyzer>(options);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, AnalyzerFactory, std::less<>> factories;

  Registry() {
    factories.emplace("fullssta", detail::make_fullssta_analyzer);
    factories.emplace("fassta", detail::make_fassta_analyzer);
    factories.emplace("canonical", detail::make_canonical_analyzer);
    factories.emplace("dsta", detail::make_dsta_analyzer);
    factories.emplace("mc", detail::make_mc_analyzer);
    factories.emplace("isle", detail::make_isle_analyzer);
  }

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_analyzer(std::string_view name, const AnalyzerOptions& options) {
  Registry& reg = Registry::instance();
  AnalyzerFactory factory;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it == reg.factories.end()) {
      std::string known;
      for (const auto& [n, f] : reg.factories) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::invalid_argument("unknown analyzer \"" + std::string(name) +
                                  "\" (known: " + known + ")");
    }
    factory = it->second;
  }
  return factory(options);
}

std::vector<std::string> analyzer_names() {
  Registry& reg = Registry::instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [n, f] : reg.factories) names.push_back(n);
  return names;  // std::map iterates sorted
}

bool register_analyzer(std::string name, AnalyzerFactory factory) {
  Registry& reg = Registry::instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.factories.emplace(std::move(name), std::move(factory)).second;
}

}  // namespace statsizer::timing
