// Shared machinery for *exact* incremental what-if speculations: the
// snapshot half of re-evaluating a set of resizes without mutating the
// TimingContext. Internal to src/timing (not installed).
//
// Two pieces:
//
//  * LoadTerms — per-driver ordered load-term lists. TimingContext::update()
//    folds every driver's load in netlist-visit order (the primary-output
//    term when the outer loop reaches the driver itself, each consumer's pin
//    cap when it reaches that consumer), and floating-point addition is not
//    associative — adding a cap *delta* to the cached load would drift by an
//    ULP. speculative_load() therefore re-folds the full sum with candidate
//    cells substituted, reproducing update()'s exact accumulation order.
//
//  * ConeSnapshot — the dirty closure of a resize set plus the recomputed
//    loads, slews, arc delays, and arc sigmas over it, mirroring update()
//    operation for operation. Values outside the cone are untouched (they
//    are bitwise-unchanged by the resizes), so an engine that propagates
//    arrivals over `dirty` in topological order — reading everything else
//    from its cached base — reproduces a from-scratch update() + full run
//    bitwise. TimingContext::apply_snapshot_patch() consumes the same arrays
//    to commit the overlay in place of a full update().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "timing/analyzer.h"

namespace statsizer::timing::detail {

/// One addition into a driver's load, in TimingContext::update() order.
/// consumer == kNoGate encodes the primary-output term.
struct LoadTerm {
  netlist::GateId consumer = netlist::kNoGate;
  std::uint32_t fanin_index = 0;
};

/// Per-driver ordered load-term lists (structural: rebuild whenever the
/// analyzer re-binds; sizing changes never alter the term lists).
class LoadTerms {
 public:
  void rebuild(const sta::TimingContext& ctx);

  /// Driver @p d's load with the speculation's candidate cells substituted:
  /// the full sum re-folded in update() order (see the header comment).
  /// @p cand maps GateId -> candidate cell (nullptr = currently bound cell).
  [[nodiscard]] double speculative_load(const sta::TimingContext& ctx, netlist::GateId d,
                                        std::span<const liberty::Cell* const> cand) const;

 private:
  std::vector<std::vector<LoadTerm>> terms_;
};

/// The snapshot overlay of one exact what-if: dirty flags plus the
/// recomputed load/slew/arc values for the resize set's fanout cone. Dense
/// (GateId / arc-slot indexed) so the arrays drop straight into
/// TimingContext::apply_snapshot_patch(); each live speculation holds
/// O(nodes + arcs) overlay memory, so callers scoring many speculations
/// concurrently should window their waves.
struct ConeSnapshot {
  /// Candidate cell per gate (nullptr = keep the bound cell).
  std::vector<const liberty::Cell*> cand;
  /// Nodes whose slews/arc delays/arc sigmas are recomputed (the resized
  /// gates, their mapped drivers, and the downstream fanout closure).
  std::vector<std::uint8_t> dirty;
  /// Nodes whose loads are recomputed: every driver of a resized gate,
  /// including unmapped ones (a primary input's load feeds no arc, but
  /// apply_snapshot_patch must still write it to stay bitwise-equal to a
  /// full update()).
  std::vector<std::uint8_t> load_dirty;
  std::vector<double> load;       ///< valid where load_dirty
  std::vector<double> slew;       ///< valid where dirty
  std::vector<double> arc_delay;  ///< dense, ctx.arc_offset() indexing, valid where dirty
  std::vector<double> arc_sigma;

  /// Recomputes the cone for @p resizes against @p ctx's current snapshot,
  /// mirroring update()'s load fold and slew/delay/sigma loop bitwise.
  void propagate(const sta::TimingContext& ctx, const LoadTerms& terms,
                 std::span<const Resize> resizes);
};

}  // namespace statsizer::timing::detail
