// Shared machinery for *exact* incremental what-if speculations: the
// snapshot half of re-evaluating a set of resizes without mutating the
// TimingContext. Internal to src/timing (not installed).
//
// ConeSnapshot is the dirty closure of a resize set plus the recomputed
// loads, slews, arc delays, and arc sigmas over it, mirroring update()
// operation for operation. Loads are re-folded through the context's shared
// per-driver term lists (TimingContext::fold_load — floating-point addition
// is not associative, so adding a cap *delta* to the cached load would
// drift by an ULP; the full sum is re-folded in update()'s exact
// accumulation order with candidate cells substituted). Values outside the
// cone are untouched (they are bitwise-unchanged by the resizes), so an
// engine that propagates arrivals over `dirty` in topological order —
// reading everything else from its cached base — reproduces a from-scratch
// update() + full run bitwise. TimingContext::apply_snapshot_patch()
// consumes the same arrays to commit the overlay in place of a full
// update().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "timing/analyzer.h"

namespace statsizer::timing::detail {

/// The snapshot overlay of one exact what-if: dirty flags plus the
/// recomputed load/slew/arc values for the resize set's fanout cone. Dense
/// (GateId / arc-slot indexed) so the arrays drop straight into
/// TimingContext::apply_snapshot_patch(); each live speculation holds
/// O(nodes + arcs) overlay memory, so callers scoring many speculations
/// concurrently should window their waves.
struct ConeSnapshot {
  /// Candidate cell per gate (nullptr = keep the bound cell).
  std::vector<const liberty::Cell*> cand;
  /// Nodes whose slews/arc delays/arc sigmas are recomputed (the resized
  /// gates, their mapped drivers, and the downstream fanout closure).
  std::vector<std::uint8_t> dirty;
  /// Nodes whose loads are recomputed: every driver of a resized gate,
  /// including unmapped ones (a primary input's load feeds no arc, but
  /// apply_snapshot_patch must still write it to stay bitwise-equal to a
  /// full update()).
  std::vector<std::uint8_t> load_dirty;
  std::vector<double> load;       ///< valid where load_dirty
  std::vector<double> slew;       ///< valid where dirty
  std::vector<double> arc_delay;  ///< dense, ctx.arc_offset() indexing, valid where dirty
  std::vector<double> arc_sigma;
  /// Dirty gates per wavefront level — populated only when propagate() ran
  /// with threads > 1 (empty otherwise). Engine halves replaying the same
  /// dirty set in parallel reuse it to skip clean levels without another
  /// O(nodes) count.
  std::vector<std::uint32_t> dirty_per_level;

  /// Recomputes the cone for @p resizes against @p ctx's current snapshot,
  /// mirroring update()'s load fold and slew/delay/sigma loop bitwise. With
  /// @p threads > 1 the dirty replay runs as a levelized wavefront (same
  /// decomposition as the parallel update(); bitwise-identical results for
  /// any value). Callers already running inside a pool worker — a wave of
  /// speculations scoring concurrently — execute inline regardless.
  void propagate(const sta::TimingContext& ctx, std::span<const Resize> resizes,
                 std::size_t threads = 1);
};

}  // namespace statsizer::timing::detail
