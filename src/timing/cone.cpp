#include "timing/cone.h"

#include <algorithm>

namespace statsizer::timing::detail {

using netlist::GateId;

void LoadTerms::rebuild(const sta::TimingContext& ctx) {
  const auto& nl = ctx.netlist();
  const std::size_t n = nl.node_count();
  terms_.assign(n, {});
  // Visit order identical to update()'s load loop: pushing onto the
  // driver's list as each gate is visited reproduces, per driver, the
  // exact sequence of += operations update() performs.
  for (GateId id = 0; id < n; ++id) {
    const auto& g = nl.gate(id);
    if (g.po_count > 0) terms_[id].push_back(LoadTerm{netlist::kNoGate, 0});
    if (g.cell_group == netlist::kUnmapped) continue;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      terms_[g.fanins[i]].push_back(LoadTerm{id, static_cast<std::uint32_t>(i)});
    }
  }
}

double LoadTerms::speculative_load(const sta::TimingContext& ctx, GateId d,
                                   std::span<const liberty::Cell* const> cand) const {
  const auto& nl = ctx.netlist();
  double load = 0.0;
  for (const LoadTerm& t : terms_[d]) {
    if (t.consumer == netlist::kNoGate) {
      load += ctx.options().primary_output_load_ff * nl.gate(d).po_count;
    } else {
      const auto& cg = nl.gate(t.consumer);
      const liberty::Cell* c = cand[t.consumer];
      if (c == nullptr) c = &ctx.library().cell_for(cg.cell_group, cg.size_index);
      load += c->input_cap_ff(t.fanin_index);
    }
  }
  return load;
}

void ConeSnapshot::propagate(const sta::TimingContext& ctx, const LoadTerms& terms,
                             std::span<const Resize> resizes) {
  const auto& nl = ctx.netlist();
  const std::size_t n = nl.node_count();

  cand.assign(n, nullptr);
  for (const Resize& r : resizes) {
    cand[r.gate] = &ctx.library().cell_for(nl.gate(r.gate).cell_group, r.size);
  }

  // Seeds: every resized gate (its arc delays change) and each of its
  // drivers (their loads change; for mapped drivers that also means delays
  // and slews). Unconditionally recomputing a driver whose cap delta happens
  // to be zero is harmless: the recomputation reproduces the base bitwise.
  dirty.assign(n, 0);
  load_dirty.assign(n, 0);
  load.assign(n, 0.0);
  slew.assign(n, 0.0);
  arc_delay.assign(ctx.arc_count(), 0.0);
  arc_sigma.assign(ctx.arc_count(), 0.0);
  std::vector<GateId> stack;
  const auto mark = [&](GateId g) {
    if (!dirty[g]) {
      dirty[g] = 1;
      stack.push_back(g);
    }
  };
  for (const Resize& r : resizes) {
    mark(r.gate);
    for (const GateId d : nl.gate(r.gate).fanins) {
      if (!load_dirty[d]) {
        load_dirty[d] = 1;
        load[d] = terms.speculative_load(ctx, d, cand);
      }
      // A PI/constant driver's load feeds no arc: patch it, don't propagate.
      if (ctx.has_cell(d)) mark(d);
    }
  }
  // Downstream closure: a changed slew or arrival dirties every fanout.
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId f : nl.gate(g).fanouts) mark(f);
  }

  // Re-propagate the dirty set in topological order, mirroring update()'s
  // slew/delay/sigma loop (unmapped nodes keep the base slew and zero arcs,
  // exactly as update() leaves them).
  for (const GateId id : ctx.topo_order()) {
    if (!dirty[id]) continue;
    const auto& g = nl.gate(id);
    if (!ctx.has_cell(id)) {
      slew[id] = ctx.slew_ps(id);
      continue;
    }
    const liberty::Cell* cell = cand[id] != nullptr ? cand[id] : &ctx.cell(id);
    const double ld = load_dirty[id] ? load[id] : ctx.load_ff(id);
    double out_slew = 0.0;
    const std::uint32_t off = ctx.arc_offset(id);
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const GateId fi = g.fanins[i];
      const double in_slew = dirty[fi] ? slew[fi] : ctx.slew_ps(fi);
      const liberty::TimingArc& arc = cell->arc_from(i);
      const double d = arc.delay(in_slew, ld);
      arc_delay[off + i] = d;
      arc_sigma[off + i] = ctx.sigma_for(*cell, d);
      out_slew = std::max(out_slew, arc.output_slew(in_slew, ld));
    }
    slew[id] = out_slew;
  }
}

}  // namespace statsizer::timing::detail
