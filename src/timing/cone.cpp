#include "timing/cone.h"

#include <algorithm>

namespace statsizer::timing::detail {

using netlist::GateId;

void ConeSnapshot::propagate(const sta::TimingContext& ctx, std::span<const Resize> resizes,
                             std::size_t threads) {
  const auto& nl = ctx.netlist();
  const std::size_t n = nl.node_count();

  cand.assign(n, nullptr);
  for (const Resize& r : resizes) {
    cand[r.gate] = &ctx.library().cell_for(nl.gate(r.gate).cell_group, r.size);
  }
  const auto cell_of = [&](GateId consumer) -> const liberty::Cell& {
    const liberty::Cell* c = cand[consumer];
    return c != nullptr ? *c : ctx.cell(consumer);
  };

  // Seeds: every resized gate (its arc delays change) and each of its
  // drivers (their loads change; for mapped drivers that also means delays
  // and slews). Unconditionally recomputing a driver whose cap delta happens
  // to be zero is harmless: the recomputation reproduces the base bitwise.
  dirty.assign(n, 0);
  load_dirty.assign(n, 0);
  load.assign(n, 0.0);
  slew.assign(n, 0.0);
  arc_delay.assign(ctx.arc_count(), 0.0);
  arc_sigma.assign(ctx.arc_count(), 0.0);
  std::vector<GateId> stack;
  const auto mark = [&](GateId g) {
    if (!dirty[g]) {
      dirty[g] = 1;
      stack.push_back(g);
    }
  };
  for (const Resize& r : resizes) {
    mark(r.gate);
    for (const GateId d : nl.gate(r.gate).fanins) {
      if (!load_dirty[d]) {
        load_dirty[d] = 1;
        // The shared fold (TimingContext::fold_load): the full sum in
        // update()'s exact accumulation order, candidates substituted.
        load[d] = ctx.fold_load(d, cell_of);
      }
      // A PI/constant driver's load feeds no arc: patch it, don't propagate.
      if (ctx.has_cell(d)) mark(d);
    }
  }
  // Downstream closure: a changed slew or arrival dirties every fanout.
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const GateId f : nl.gate(g).fanouts) mark(f);
  }

  // Re-propagate the dirty set, mirroring update()'s slew/delay/sigma loop
  // (unmapped nodes keep the base slew and zero arcs, exactly as update()
  // leaves them). A dirty gate reads only lower-level slews — finished by
  // the level barrier — and writes its own slots, so the wavefront is
  // bitwise-identical to the serial topological sweep.
  const auto replay_gate = [&](GateId id) {
    if (!dirty[id]) return;
    const auto& g = nl.gate(id);
    if (!ctx.has_cell(id)) {
      slew[id] = ctx.slew_ps(id);
      return;
    }
    const liberty::Cell* cell = cand[id] != nullptr ? cand[id] : &ctx.cell(id);
    const double ld = load_dirty[id] ? load[id] : ctx.load_ff(id);
    double out_slew = 0.0;
    const std::uint32_t off = ctx.arc_offset(id);
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const GateId fi = g.fanins[i];
      const double in_slew = dirty[fi] ? slew[fi] : ctx.slew_ps(fi);
      const liberty::TimingArc& arc = cell->arc_from(i);
      const double d = arc.delay(in_slew, ld);
      arc_delay[off + i] = d;
      arc_sigma[off + i] = ctx.sigma_for(*cell, d);
      out_slew = std::max(out_slew, arc.output_slew(in_slew, ld));
    }
    slew[id] = out_slew;
  };

  dirty_per_level.clear();
  if (threads == 1) {
    for (const GateId id : ctx.topo_order()) replay_gate(id);
    return;
  }
  // Fan out only where the cone actually is: a resize's dirty closure
  // usually touches a sliver of each level, so the dispatch decision uses
  // the level's *dirty* count (clean levels skip entirely, thin ones run
  // serially). One O(nodes) byte scan — trivial next to the replay work.
  const netlist::Levelization& lv = ctx.levelization();
  dirty_per_level.assign(lv.level_count(), 0);
  for (GateId id = 0; id < n; ++id) {
    if (dirty[id]) ++dirty_per_level[lv.level_of[id]];
  }
  const std::size_t cutoff = ctx.options().min_level_width_for_parallel;
  for (std::size_t l = 0; l < lv.level_count(); ++l) {
    sta::run_wavefront_level(lv.level(l), dirty_per_level[l], cutoff, 16, threads,
                             replay_gate);
  }
}

}  // namespace statsizer::timing::detail
