#include "serve/session.h"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "util/exec.h"

namespace statsizer::serve {

namespace {

/// Formats the first error-severity DRC finding as the admission-gate
/// rejection message.
Status preflight_rejection(const drc::DrcReport& report) {
  const drc::Diagnostic& d = *report.first_error();
  return Status::invalid_argument("preflight DRC failed [" +
                                  std::string(drc::rule_id(d.rule)) + "] " + d.message);
}

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {
  // Capability probe (construction only, no analysis): decides up front
  // whether single-resize what-ifs may share the lock. An unknown engine
  // name is surfaced as kInvalidArgument by the first load.
  try {
    concurrent_whatif_ =
        timing::make_analyzer(options_.engine)->capabilities().concurrent_speculations;
  } catch (const std::invalid_argument&) {
  }
}

Session::~Session() = default;

void Session::rebase(core::Flow& flow) {
  if (analyzer_ == nullptr) analyzer_ = flow.make_analyzer(options_.engine);
  (void)analyzer_->analyze(flow.timing());
}

Status Session::load_workload(std::string_view name, bool run_baseline) {
  util::checkpoint("serve/session/load");
  // Build the new state in a scratch Flow (no lock held: reads keep serving
  // the previous design). A failure anywhere — parse, DRC gate, abort —
  // discards the scratch and leaves the session untouched.
  auto scratch = std::make_unique<core::Flow>(options_.flow);
  if (Status s = scratch->load_table1(name); !s.ok()) return s;
  if (scratch->preflight().has_errors()) return preflight_rejection(scratch->last_drc());
  if (run_baseline) (void)scratch->run_baseline();
  std::unique_ptr<timing::Analyzer> analyzer;
  try {
    analyzer = scratch->make_analyzer(options_.engine);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  }
  (void)analyzer->analyze(scratch->timing());

  const std::unique_lock<std::shared_mutex> lock(mutex_);
  flow_ = std::move(scratch);
  analyzer_ = std::move(analyzer);
  ++epoch_;
  return Status();
}

Status Session::load_file(const std::string& path, bool run_baseline) {
  util::checkpoint("serve/session/load");
  auto scratch = std::make_unique<core::Flow>(options_.flow);
  const bool verilog = path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0;
  Status loaded = verilog ? scratch->load_verilog_file(path) : scratch->load_bench_file(path);
  if (!loaded.ok()) return loaded;  // readers attach kInvalidArgument themselves
  if (scratch->preflight().has_errors()) return preflight_rejection(scratch->last_drc());
  if (run_baseline) (void)scratch->run_baseline();
  std::unique_ptr<timing::Analyzer> analyzer;
  try {
    analyzer = scratch->make_analyzer(options_.engine);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  }
  (void)analyzer->analyze(scratch->timing());

  const std::unique_lock<std::shared_mutex> lock(mutex_);
  flow_ = std::move(scratch);
  analyzer_ = std::move(analyzer);
  ++epoch_;
  return Status();
}

Status Session::apply_sdc_text(std::string_view text) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  util::checkpoint("serve/session/sdc");
  if (flow_ == nullptr) return Status::invalid_argument("apply_sdc: no design loaded");
  // apply_sdc itself is transactional (constraints install only after a full
  // parse + port resolution), so a parse error leaves the old constraints.
  const sta::TimingConstraints previous = flow_->timing().constraints();
  if (Status s = flow_->apply_sdc(text); !s.ok()) return s;
  // DRC admission gate over the new constraints (e.g. SDC coverage rules):
  // revert on error findings.
  if (flow_->preflight().has_errors()) {
    const Status rejection = preflight_rejection(flow_->last_drc());
    flow_->timing().set_constraints(previous);
    return rejection;
  }
  try {
    flow_->timing().update();  // constraints feed arrivals/required times
    rebase(*flow_);
    ++epoch_;
    return Status();
  } catch (const StatusError& e) {
    // Aborted mid-refresh (deadline/cancel/fault): restore a consistent,
    // fully analyzed state with checkpoints suppressed, then report.
    const util::ScopedExecSuspend suspend;
    flow_->timing().update();
    rebase(*flow_);
    ++epoch_;
    return e.status();
  }
}

StatusOr<WhatIfReport> Session::what_if(const std::vector<ResizeRequest>& resizes) {
  if (resizes.empty()) return Status::invalid_argument("what_if: no resizes given");

  // Single-resize speculations score concurrently against the shared base
  // (private overlays; see the analyzer contract). Multi-resize batches —
  // and engines without the capability — need the base to themselves.
  const bool shared_ok = resizes.size() == 1 && concurrent_whatif_;
  std::shared_lock<std::shared_mutex> read_lock(mutex_, std::defer_lock);
  std::unique_lock<std::shared_mutex> write_lock(mutex_, std::defer_lock);
  if (shared_ok) {
    read_lock.lock();
  } else {
    write_lock.lock();
  }

  util::checkpoint("serve/session/whatif");
  if (flow_ == nullptr) return Status::invalid_argument("what_if: no design loaded");

  const netlist::Netlist& nl = flow_->netlist();
  std::vector<timing::Resize> resolved;
  resolved.reserve(resizes.size());
  for (const ResizeRequest& r : resizes) {
    const netlist::GateId id = nl.find(r.gate);
    if (id == netlist::kNoGate) {
      return Status::invalid_argument("what_if: unknown gate '" + r.gate + "'");
    }
    const netlist::Gate& gate = nl.gate(id);
    if (gate.cell_group == netlist::kUnmapped ||
        r.size >= flow_->library().group(gate.cell_group).size_count()) {
      return Status::invalid_argument("what_if: size index " + std::to_string(r.size) +
                                      " out of range for gate '" + r.gate + "'");
    }
    resolved.push_back(timing::Resize{id, r.size});
  }

  try {
    std::unique_ptr<timing::Speculation> spec =
        resolved.size() == 1 ? analyzer_->propose(resolved[0].gate, resolved[0].size)
                             : analyzer_->propose_resizes(resolved);
    const timing::Summary& speculative = spec->score();
    const timing::Summary& base = analyzer_->current();
    WhatIfReport report;
    report.epoch = epoch_;
    report.mean_ps = speculative.mean_ps;
    report.sigma_ps = speculative.sigma_ps;
    report.base_mean_ps = base.mean_ps;
    report.base_sigma_ps = base.sigma_ps;
    spec->rollback();
    return report;
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(std::string("what_if: ") + e.what());
  } catch (const std::logic_error& e) {
    return Status::invalid_argument(std::string("what_if: ") + e.what());
  }
  // StatusError (cancellation, deadline, injected fault) propagates: the
  // speculation destructor is a guaranteed-no-op rollback on the shared base.
}

StatusOr<SizeResult> Session::size(double lambda) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  util::checkpoint("serve/session/size");
  if (flow_ == nullptr) return Status::invalid_argument("size: no design loaded");
  try {
    core::OptimizationRecord record = flow_->optimize(lambda);
    rebase(*flow_);
    ++epoch_;
    SizeResult result;
    result.epoch = epoch_;
    result.record = std::move(record);
    return result;
  } catch (const StatusError& e) {
    // size() is not transactional under aborts: resizes committed before the
    // cancellation/deadline persist. Restore consistency (full re-analysis
    // with checkpoints suppressed), record the mutation in the epoch, and
    // surface the structured status.
    const util::ScopedExecSuspend suspend;
    flow_->timing().update();
    rebase(*flow_);
    ++epoch_;
    return e.status();
  } catch (const std::logic_error& e) {
    return Status::invalid_argument(std::string("size: ") + e.what());
  }
}

StatusOr<YieldResult> Session::yield(double clock_period_ps, std::string_view engine) {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  util::checkpoint("serve/session/yield");
  if (flow_ == nullptr) return Status::invalid_argument("yield: no design loaded");
  try {
    const core::YieldReport report = flow_->estimate_yield(clock_period_ps, engine);
    YieldResult result;
    result.epoch = epoch_;
    result.engine = report.engine;
    result.yield = report.yield();
    result.std_error = report.std_error();
    result.draws = report.draws();
    result.clock_period_ps = report.result.clock_period_ps;
    return result;
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(std::string("yield: ") + e.what());
  } catch (const std::logic_error& e) {
    return Status::invalid_argument(std::string("yield: ") + e.what());
  }
}

SessionInfo Session::info() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  SessionInfo info;
  info.epoch = epoch_;
  if (flow_ == nullptr) return info;
  info.loaded = true;
  info.circuit = flow_->netlist().name();
  info.gates = flow_->netlist().node_count();
  const timing::Summary& base = analyzer_->current();
  info.mean_ps = base.mean_ps;
  info.sigma_ps = base.sigma_ps;
  info.area_um2 = flow_->timing().area_um2();
  return info;
}

std::uint64_t Session::approx_cost_bytes() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  if (flow_ == nullptr) return 0;
  // Order-of-magnitude working set of one engine evaluation: a few hundred
  // bytes of pdf/moment state per node. Admission control only needs a
  // consistent relative measure, not an exact byte count.
  return static_cast<std::uint64_t>(flow_->netlist().node_count()) * 512;
}

}  // namespace statsizer::serve
