#include "serve/job.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace statsizer::serve {

// ---------------------------------------------------------------------------
// Job
// ---------------------------------------------------------------------------

bool Job::done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

const Status& Job::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return status_;
}

Status Job::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

void Job::cancel() { cancel_.cancel(); }

int Job::attempts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return attempts_;
}

std::chrono::milliseconds Job::retry_after() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return retry_after_;
}

std::chrono::microseconds Job::queue_time() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_us_;
}

std::chrono::microseconds Job::run_time() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return run_us_;
}

void Job::finish(Status status) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    status_ = std::move(status);
    done_ = true;
  }
  done_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// JobManager
// ---------------------------------------------------------------------------

JobManager::JobManager(JobManagerOptions options)
    : options_(options), pool_(options.threads) {}

JobManager::~JobManager() {
  // Cancel everything still pending; the queued run_one tokens drain each
  // pending job to a terminal kCancelled. The pool destructor then joins
  // after the queue is empty.
  std::vector<JobRef> to_cancel;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // The priority queue has no iteration API; snapshotting via the
    // underlying container would need friend access. Cancelling via the
    // tokens is enough: mark by draining into a scratch copy.
    auto copy = pending_;
    while (!copy.empty()) {
      to_cancel.push_back(copy.top());
      copy.pop();
    }
  }
  for (const JobRef& job : to_cancel) job->cancel();
  wait_all();
}

JobRef JobManager::submit(std::function<void()> body, JobOptions options) {
  auto job = JobRef(new Job());
  job->priority_ = options.priority;
  job->cost_bytes_ = options.cost_bytes;
  job->max_retries_ = options.max_retries;
  job->backoff_ = std::max(options.backoff, std::chrono::milliseconds(1));
  job->submitted_at_ = std::chrono::steady_clock::now();
  if (options.deadline.count() > 0) {
    job->deadline_ = job->submitted_at_ + options.deadline;
  }
  job->body_ = std::move(body);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->id_ = next_id_++;
    job->fault_scope_ = options.fault_scope.value_or(job->id_);

    const JobLimits& limits = options_.limits;
    const bool queue_full = pending_.size() >= limits.max_queue_depth;
    const bool cost_full =
        limits.max_inflight_bytes != 0 && stats_.inflight_bytes > 0 &&
        stats_.inflight_bytes + job->cost_bytes_ > limits.max_inflight_bytes;
    if (queue_full || cost_full) {
      ++stats_.shed;
      job->retry_after_ = limits.retry_after;
      job->body_ = nullptr;
      // finish() outside the manager lock would also work, but nothing can
      // be waiting on a job that was never returned; keep it simple.
      job->finish(Status::resource_exhausted(
          std::string("admission rejected: ") +
          (queue_full ? "queue depth " + std::to_string(pending_.size()) + " at limit"
                      : "in-flight cost at limit") +
          "; retry after " + std::to_string(limits.retry_after.count()) + "ms"));
      return job;
    }

    ++stats_.submitted;
    stats_.inflight_bytes += job->cost_bytes_;
    pending_.push(job);
    stats_.queue_depth = pending_.size();
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, pending_.size());
  }
  // One pool token per admitted job; the token runs whatever is the
  // highest-priority pending job at execution time.
  pool_.submit([this] { run_one(); });
  return job;
}

void JobManager::run_one() {
  JobRef job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) return;  // stolen by a sibling token (cannot happen, but safe)
    job = pending_.top();
    pending_.pop();
    stats_.queue_depth = pending_.size();
    ++stats_.running;
  }
  job->started_at_ = std::chrono::steady_clock::now();
  job->queue_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
      job->started_at_ - job->submitted_at_);

  // Pre-run triage: cancellation and queue-expired deadlines resolve without
  // touching the body.
  if (job->cancel_.cancelled()) {
    retire(job, Status::cancelled("cancelled while queued"));
    return;
  }
  if (job->deadline_.has_value() && job->started_at_ >= *job->deadline_) {
    retire(job, Status::deadline_exceeded("deadline expired while queued"));
    return;
  }
  execute(job);
}

void JobManager::execute(const JobRef& job) {
  Status status;
  std::chrono::milliseconds backoff = job->backoff_;
  for (int attempt = 1;; ++attempt) {
    {
      const std::lock_guard<std::mutex> lock(job->mutex_);
      job->attempts_ = attempt;
    }
    util::ExecContext exec;
    exec.cancel = job->cancel_;
    exec.deadline = job->deadline_;
    exec.faults = options_.faults;
    exec.fault_scope = job->fault_scope_;
    try {
      const util::ScopedExecContext scope(exec);
      util::checkpoint(attempt == 1 ? "serve/job/start" : "serve/job/retry");
      job->body_();
      status = Status();
    } catch (const StatusError& e) {
      status = e.status();
    } catch (const std::exception& e) {
      status = Status::internal(std::string("job failed: ") + e.what());
    } catch (...) {
      status = Status::internal("job failed: unknown exception");
    }

    if (status.ok() || !status.transient() || attempt > job->max_retries_) break;

    // Transient failure with retry budget left: back off (bounded by the
    // remaining deadline), re-check the cooperative controls, go again.
    std::chrono::milliseconds sleep = backoff;
    if (job->deadline_.has_value()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= *job->deadline_) {
        status = Status::deadline_exceeded("deadline exceeded before retry");
        break;
      }
      sleep = std::min(
          sleep, std::chrono::duration_cast<std::chrono::milliseconds>(*job->deadline_ - now));
    }
    std::this_thread::sleep_for(sleep);
    backoff *= 2;
    if (job->cancel_.cancelled()) {
      status = Status::cancelled("cancelled before retry");
      break;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retried;
    }
  }
  retire(job, std::move(status));
}

void JobManager::retire(const JobRef& job, Status status) {
  job->run_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - job->started_at_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stats_.running > 0) --stats_.running;
    stats_.inflight_bytes -= std::min(stats_.inflight_bytes, job->cost_bytes_);
    if (status.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
      if (status.code() == StatusCode::kCancelled) ++stats_.cancelled;
      if (status.code() == StatusCode::kDeadlineExceeded) ++stats_.deadline_exceeded;
    }
  }
  job->finish(std::move(status));
  idle_cv_.notify_all();
}

void JobManager::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && stats_.running == 0; });
}

JobStats JobManager::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace statsizer::serve
