// serve::Server — the newline-JSON protocol front end over JobManager +
// Session. One request per input line, one response per output line.
//
// Request envelope (any op):
//   {"op":"whatif", "id":7, "session":"a", "priority":1, "deadline_ms":50, ...}
//     op          required; see the table below
//     id          echoed verbatim in the response (any JSON value)
//     session     tenant name; created on first use (default "default")
//     priority    higher runs earlier (default 0)
//     deadline_ms cooperative deadline from submission; 0 = none
//
// Ops and payloads:
//   load    {"workload":"c432"} or {"file":"x.bench"|"x.v"}; "baseline":true
//           runs the mean-delay baseline after loading
//   sdc     {"text":"create_clock -period 0.8 ..."}
//   whatif  {"gate":"g12","size":3} or {"resizes":[{"gate":..,"size":..},..]}
//   size    {"lambda":3.0}
//   yield   {"clock_period_ps":800,"engine":"isle"}  (both optional)
//   info    cached design snapshot (cheap)
//   status  job-system counters (served inline, never queued)
//   quit    drain all in-flight work, respond, stop serving
//
// Responses: {"id":..,"ok":true,...payload} on success, or
//   {"id":..,"ok":false,"code":"resource_exhausted","error":"...",
//    "retry_after_ms":10}
// with "code" the canonical lower_snake_case StatusCode spelling and
// retry_after_ms present on shed requests. Malformed JSON and unknown ops
// answer ok:false without consuming a job slot.
//
// Ordering: responses are written in request order (a single writer drains
// completions in submission sequence), so clients may correlate by position
// as well as by id. Admission control, deadlines, cancellation, retry, and
// fault injection all come from the underlying JobManager.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/job.h"
#include "serve/session.h"
#include "util/fault.h"

namespace statsizer::serve {

struct ServerOptions {
  /// Worker threads for request execution. 0 = hardware concurrency.
  std::size_t threads = 1;
  JobLimits limits;
  /// Deterministic fault plan applied to every request job (empty = off).
  /// Request N (0-based admission sequence) is fault scope N.
  util::FaultPlan faults;
  /// Per-tenant session configuration (engines, flow options).
  SessionOptions session;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves the protocol until EOF or a quit op. Blocks; returns the number
  /// of requests answered.
  std::uint64_t run(std::istream& in, std::ostream& out);

  [[nodiscard]] JobStats stats() const { return manager_->stats(); }

 private:
  SessionRef session_for(const std::string& name);

  ServerOptions options_;
  std::unique_ptr<JobManager> manager_;
  std::mutex sessions_mutex_;
  std::map<std::string, SessionRef, std::less<>> sessions_;
};

}  // namespace statsizer::serve
