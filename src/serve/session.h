// serve::Session — one long-lived timing-as-a-service tenant.
//
// A Session caches the expensive per-design state (parsed/generated circuit,
// technology mapping, levelized TimingContext, and a committed
// timing::Analyzer base) across requests, so a what-if or yield query costs
// its engine evaluation instead of a full reload. Concurrent requests from
// many clients are served against that shared base:
//
//   - Read requests (what_if with a single resize, yield, info) hold a
//     shared lock. Single-resize what-ifs ride the analyzer's
//     concurrent_speculations contract: each opens a private-overlay
//     speculation against the committed base, scores it, and rolls it back —
//     any number may be in flight at once, and each result is
//     bitwise-identical to the same query against an idle single-tenant
//     Flow.
//   - Mutations (load, SDC changes, size) and multi-resize what-ifs hold the
//     exclusive lock. Every mutation bumps the session epoch; responses
//     carry the epoch they were computed against, so clients can detect that
//     a what-if raced a commit.
//
// Loads and SDC changes are transactional: the new state is built in a
// scratch Flow and swapped in only after the DRC preflight admission gate
// passes, so a rejected or aborted load leaves the previous design
// serving. size() mutates in place and is NOT transactional under
// cancellation — resizes committed before the abort persist — but the
// session always recovers to a consistent, freshly analyzed state (the
// abort handler suspends the exec context, re-runs update() + analyze(),
// and bumps the epoch).
//
// Deadlines/cancellation: Session methods run under the caller's installed
// ExecContext (serve::JobManager installs one per job). Lock acquisition is
// not deadline-aware; the first checkpoint after acquisition observes an
// expired deadline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/flow.h"
#include "timing/analyzer.h"
#include "util/status.h"

namespace statsizer::serve {

struct SessionOptions {
  core::FlowOptions flow;
  /// What-if engine (timing::make_analyzer registry name). Must support
  /// what_if; "fullssta" (default) also supports concurrent single-resize
  /// speculations.
  std::string engine = "fullssta";
};

/// One requested resize, by gate name (resolved against the loaded netlist).
struct ResizeRequest {
  std::string gate;
  std::uint16_t size = 0;
};

struct WhatIfReport {
  std::uint64_t epoch = 0;
  /// Speculative moments with the resizes applied.
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
  /// Committed-base moments the speculation was scored against.
  double base_mean_ps = 0.0;
  double base_sigma_ps = 0.0;
};

struct SizeResult {
  std::uint64_t epoch = 0;  ///< epoch of the new (post-size) state
  core::OptimizationRecord record;
};

struct YieldResult {
  std::uint64_t epoch = 0;
  std::string engine;
  double yield = 0.0;
  double std_error = 0.0;
  std::uint64_t draws = 0;
  double clock_period_ps = 0.0;
};

struct SessionInfo {
  std::uint64_t epoch = 0;
  bool loaded = false;
  std::string circuit;
  std::uint64_t gates = 0;
  /// Committed-base moments (cached; no recompute).
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
  double area_um2 = 0.0;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Loads a Table-1 workload (optionally running the deterministic + polish
  /// baseline so the design sits at its mean-delay optimum) and makes it the
  /// served design. DRC preflight is the admission gate: error-severity
  /// findings reject the load with kInvalidArgument and the previous design
  /// keeps serving.
  [[nodiscard]] Status load_workload(std::string_view name, bool run_baseline = false);
  /// Same, from an ISCAS .bench or structural-Verilog file (by extension).
  [[nodiscard]] Status load_file(const std::string& path, bool run_baseline = false);

  /// Applies SDC text to the served design (exclusive; epoch bump). The DRC
  /// sweep re-runs as the admission gate; like loads, a rejected SDC leaves
  /// the previous constraints serving.
  [[nodiscard]] Status apply_sdc_text(std::string_view text);

  /// Scores the resizes against the committed base without mutating it.
  [[nodiscard]] StatusOr<WhatIfReport> what_if(const std::vector<ResizeRequest>& resizes);

  /// StatisticalGreedy at @p lambda on the served design (exclusive).
  [[nodiscard]] StatusOr<SizeResult> size(double lambda);

  /// Timing yield of the served design. @p clock_period_ps 0 = resolve from
  /// the installed SDC / options; @p engine "isle" or "mc".
  [[nodiscard]] StatusOr<YieldResult> yield(double clock_period_ps = 0.0,
                                            std::string_view engine = "isle");

  /// Cheap snapshot of the served design (cached base moments).
  [[nodiscard]] SessionInfo info() const;

  /// Rough per-request working-set estimate for admission control:
  /// proportional to the design size (0 when nothing is loaded).
  [[nodiscard]] std::uint64_t approx_cost_bytes() const;

 private:
  /// Builds the analyzer base for flow's current state. Caller holds the
  /// exclusive lock.
  void rebase(core::Flow& flow);

  SessionOptions options_;
  /// Engine capability probed at construction: single-resize what-ifs may
  /// score under the shared lock.
  bool concurrent_whatif_ = false;
  mutable std::shared_mutex mutex_;
  std::unique_ptr<core::Flow> flow_;              // null until first load
  std::unique_ptr<timing::Analyzer> analyzer_;    // committed base for flow_
  std::uint64_t epoch_ = 0;                       // guarded by mutex_
};

using SessionRef = std::shared_ptr<Session>;

}  // namespace statsizer::serve
