// Fault-isolated async job system: a priority queue + futures layer over
// util::ThreadPool with per-job error isolation, cooperative deadlines and
// cancellation, bounded-queue admission control with graceful shedding, and
// retry-with-backoff for transient failures.
//
// Layering: this header depends only on util/ — core::Flow's batch API and
// the serving layer (serve/session.h, serve/server.h, which sit *above*
// core) both build on it.
//
// Contract highlights:
//   - submit() never throws and never blocks on the queue: when admission
//     control rejects (queue depth or in-flight cost over limit) the
//     returned job is already terminal with kResourceExhausted and carries a
//     retry_after hint.
//   - Any exception escaping a job body is captured as that job's Status
//     (StatusError keeps its structured code; anything else becomes
//     kInternal). One poisoned job can never take down the manager or
//     perturb sibling jobs.
//   - Deadlines and cancellation are cooperative: the runner installs a
//     util::ExecContext for the body's duration, so every
//     util::checkpoint() inside the timing/SSTA kernels becomes a
//     cancellation point. Jobs whose deadline expires while still queued
//     complete kDeadlineExceeded without running.
//   - A body that fails with a *transient* status (kUnavailable) is retried
//     in place up to JobOptions::max_retries times with doubling backoff
//     (capped by the remaining deadline). Bodies must therefore be
//     re-runnable from scratch.
//   - Priorities order the pending queue (higher first, FIFO within a
//     priority); they never preempt running jobs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "util/exec.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace statsizer::serve {

/// Admission-control limits. A submit that would exceed either bound is
/// shed immediately with kResourceExhausted.
struct JobLimits {
  /// Maximum number of pending (queued, not yet running) jobs.
  std::size_t max_queue_depth = 1024;
  /// Maximum summed JobOptions::cost_bytes of queued + running jobs;
  /// 0 = unlimited. A job whose own cost exceeds the bound is still admitted
  /// when the manager is otherwise empty (it could never run otherwise).
  std::size_t max_inflight_bytes = 0;
  /// Retry hint attached to shed jobs (Job::retry_after()).
  std::chrono::milliseconds retry_after{10};
};

struct JobManagerOptions {
  /// Worker threads (the manager owns its pool). 0 = hardware concurrency.
  std::size_t threads = 1;
  JobLimits limits;
  /// Deterministic fault plan installed for every job (not owned; must
  /// outlive the manager). nullptr = no injection.
  const util::FaultPlan* faults = nullptr;
};

struct JobOptions {
  /// Higher runs earlier; FIFO within equal priorities.
  int priority = 0;
  /// Cooperative deadline measured from submission; zero = none.
  std::chrono::milliseconds deadline{0};
  /// Admission-control cost estimate (e.g. bytes of working state the job
  /// will hold). 0 = free.
  std::size_t cost_bytes = 0;
  /// Retries for transient (Status::transient()) failures.
  int max_retries = 0;
  /// Initial retry backoff; doubles per retry, capped by the remaining
  /// deadline.
  std::chrono::milliseconds backoff{1};
  /// Fault-injection scope for this job; defaults to the job id (the
  /// submission sequence number), so a plan can poison job N specifically.
  std::optional<std::uint64_t> fault_scope;
};

/// Counters snapshot (JobManager::stats()). Monotonic except the gauges.
struct JobStats {
  std::uint64_t submitted = 0;   ///< admitted jobs (excludes shed)
  std::uint64_t completed = 0;   ///< terminal with ok status
  std::uint64_t failed = 0;      ///< terminal with non-ok status (any code)
  std::uint64_t cancelled = 0;   ///< subset of failed: kCancelled
  std::uint64_t deadline_exceeded = 0;  ///< subset of failed: kDeadlineExceeded
  std::uint64_t shed = 0;        ///< rejected by admission control
  std::uint64_t retried = 0;     ///< transient-failure re-runs
  std::size_t queue_depth = 0;   ///< gauge: pending jobs
  std::size_t running = 0;       ///< gauge: executing jobs
  std::size_t inflight_bytes = 0;  ///< gauge: admitted cost
  std::size_t peak_queue_depth = 0;
};

class JobManager;

/// Shared handle to one submitted job. Thread-safe.
class Job {
 public:
  /// Job id: the submission sequence number (also the default fault scope).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  [[nodiscard]] bool done() const;
  /// Blocks until terminal; returns the job's status.
  const Status& wait() const;
  /// Current status; meaningful once done() (ok() until then).
  [[nodiscard]] Status status() const;

  /// Requests cooperative cancellation. Queued jobs complete kCancelled
  /// without running; running jobs stop at their next checkpoint.
  void cancel();

  /// Total body attempts (>= 1 once run; 0 for jobs that never ran).
  [[nodiscard]] int attempts() const;
  /// For shed jobs: the admission controller's suggested backoff.
  [[nodiscard]] std::chrono::milliseconds retry_after() const;
  /// Queue wait and body execution time (terminal jobs).
  [[nodiscard]] std::chrono::microseconds queue_time() const;
  [[nodiscard]] std::chrono::microseconds run_time() const;

 private:
  friend class JobManager;
  Job() = default;

  void finish(Status status);

  mutable std::mutex mutex_;
  mutable std::condition_variable done_cv_;
  Status status_;
  bool done_ = false;

  std::uint64_t id_ = 0;
  int priority_ = 0;
  int attempts_ = 0;
  std::size_t cost_bytes_ = 0;
  int max_retries_ = 0;
  std::chrono::milliseconds backoff_{1};
  std::chrono::milliseconds retry_after_{0};
  std::uint64_t fault_scope_ = 0;
  util::CancelToken cancel_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::chrono::steady_clock::time_point submitted_at_;
  std::chrono::steady_clock::time_point started_at_;
  std::chrono::microseconds queue_us_{0};
  std::chrono::microseconds run_us_{0};
  std::function<void()> body_;
};

using JobRef = std::shared_ptr<Job>;

/// The manager. Owns its worker pool; destruction cancels still-pending
/// jobs (they complete kCancelled) and waits for running ones.
class JobManager {
 public:
  explicit JobManager(JobManagerOptions options = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Submits @p body. Never throws, never blocks: the result is either an
  /// admitted pending job or an already-terminal shed job
  /// (kResourceExhausted, retry_after() set).
  JobRef submit(std::function<void()> body, JobOptions options = {});

  /// Blocks until every admitted job is terminal.
  void wait_all();

  [[nodiscard]] JobStats stats() const;
  [[nodiscard]] std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  void run_one();
  void execute(const JobRef& job);
  /// Terminal bookkeeping shared by every completion path.
  void retire(const JobRef& job, Status status);

  JobManagerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  struct QueueOrder {
    bool operator()(const JobRef& a, const JobRef& b) const {
      if (a->priority_ != b->priority_) return a->priority_ < b->priority_;
      return a->id_ > b->id_;  // FIFO within a priority
    }
  };
  std::priority_queue<JobRef, std::vector<JobRef>, QueueOrder> pending_;
  JobStats stats_;
  std::uint64_t next_id_ = 0;

  util::ThreadPool pool_;  // last member: workers must die before the queue
};

}  // namespace statsizer::serve
