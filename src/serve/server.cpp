#include "serve/server.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/json.h"

namespace statsizer::serve {

namespace {

using util::Json;

std::string get_string(const Json& req, std::string_view key, std::string_view fallback) {
  const Json* v = req.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string(fallback);
}

double get_number(const Json& req, std::string_view key, double fallback) {
  const Json* v = req.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool get_bool(const Json& req, std::string_view key, bool fallback) {
  const Json* v = req.find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

Status parse_resizes(const Json& req, std::vector<ResizeRequest>& out) {
  if (const Json* arr = req.find("resizes"); arr != nullptr) {
    if (!arr->is_array() || arr->as_array().empty()) {
      return Status::invalid_argument("whatif: 'resizes' must be a non-empty array");
    }
    for (const Json& e : arr->as_array()) {
      const Json* gate = e.find("gate");
      const Json* size = e.find("size");
      if (gate == nullptr || !gate->is_string() || size == nullptr || !size->is_number()) {
        return Status::invalid_argument(
            "whatif: each resize needs a string 'gate' and a numeric 'size'");
      }
      out.push_back(ResizeRequest{gate->as_string(),
                                  static_cast<std::uint16_t>(size->as_number())});
    }
    return Status();
  }
  const Json* gate = req.find("gate");
  const Json* size = req.find("size");
  if (gate == nullptr || !gate->is_string() || size == nullptr || !size->is_number()) {
    return Status::invalid_argument(
        "whatif: needs 'gate' + 'size' (or a 'resizes' array)");
  }
  out.push_back(ResizeRequest{gate->as_string(),
                              static_cast<std::uint16_t>(size->as_number())});
  return Status();
}

/// One output line, in request order. Either an already-rendered inline
/// response (malformed input, status, quit) or a submitted job whose payload
/// the body fills on success.
struct Pending {
  Json id;
  JobRef job;                           // null for inline responses
  std::shared_ptr<Json> payload;        // success payload (job responses)
  Json inline_response;
};

Json render(const Json& id, const Status& status, const Json* payload,
            std::chrono::milliseconds retry_after) {
  Json r;
  if (status.ok()) {
    if (payload != nullptr) r = *payload;
    r["ok"] = true;
  } else {
    r["ok"] = false;
    r["code"] = to_string(status.code());
    r["error"] = std::string(status.message());
    if (status.code() == StatusCode::kResourceExhausted && retry_after.count() > 0) {
      r["retry_after_ms"] = static_cast<double>(retry_after.count());
    }
  }
  r["id"] = id;
  return r;
}

Json render_inline(const Json& id, const Status& status) {
  return render(id, status, nullptr, std::chrono::milliseconds(0));
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  JobManagerOptions mo;
  mo.threads = options_.threads;
  mo.limits = options_.limits;
  mo.faults = options_.faults.empty() ? nullptr : &options_.faults;
  manager_ = std::make_unique<JobManager>(mo);
}

Server::~Server() = default;

SessionRef Server::session_for(const std::string& name) {
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    it = sessions_.emplace(name, std::make_shared<Session>(options_.session)).first;
  }
  return it->second;
}

std::uint64_t Server::run(std::istream& in, std::ostream& out) {
  std::deque<Pending> queue;
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  bool closed = false;
  std::uint64_t served = 0;

  // Single writer: drains completions in submission order, so responses come
  // back in request order and output lines never interleave.
  std::thread writer([&] {
    for (;;) {
      Pending entry;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return !queue.empty() || closed; });
        if (queue.empty()) return;
        entry = std::move(queue.front());
        queue.pop_front();
      }
      Json response;
      if (entry.job != nullptr) {
        const Status status = entry.job->wait();
        response = render(entry.id, status, entry.payload.get(), entry.job->retry_after());
      } else {
        response = std::move(entry.inline_response);
      }
      out << response.dump() << '\n' << std::flush;
      ++served;
    }
  });

  const auto enqueue = [&](Pending entry) {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    queue.push_back(std::move(entry));
    queue_cv.notify_one();
  };
  const auto enqueue_inline = [&](Json response) {
    Pending entry;
    entry.inline_response = std::move(response);
    enqueue(std::move(entry));
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto parsed = Json::parse(line);
    if (!parsed.ok()) {
      enqueue_inline(render_inline(Json(), parsed.status()));
      continue;
    }
    const Json& req = parsed.value();
    const Json* id_field = req.find("id");
    const Json id = id_field != nullptr ? *id_field : Json();
    const std::string op = get_string(req, "op", "");
    if (op.empty()) {
      enqueue_inline(render_inline(id, Status::invalid_argument("missing string 'op'")));
      continue;
    }

    if (op == "quit") {
      manager_->wait_all();
      Json response;
      response["ok"] = true;
      response["id"] = id;
      enqueue_inline(std::move(response));
      break;
    }
    if (op == "status") {
      const JobStats s = manager_->stats();
      Json response;
      response["ok"] = true;
      response["id"] = id;
      response["submitted"] = s.submitted;
      response["completed"] = s.completed;
      response["failed"] = s.failed;
      response["cancelled"] = s.cancelled;
      response["deadline_exceeded"] = s.deadline_exceeded;
      response["shed"] = s.shed;
      response["retried"] = s.retried;
      response["queue_depth"] = s.queue_depth;
      response["running"] = s.running;
      {
        const std::lock_guard<std::mutex> lock(sessions_mutex_);
        response["sessions"] = sessions_.size();
      }
      enqueue_inline(std::move(response));
      continue;
    }

    const SessionRef session = session_for(get_string(req, "session", "default"));
    JobOptions job_options;
    job_options.priority = static_cast<int>(get_number(req, "priority", 0.0));
    job_options.deadline =
        std::chrono::milliseconds(static_cast<long>(get_number(req, "deadline_ms", 0.0)));

    auto payload = std::make_shared<Json>();
    std::function<void()> body;

    if (op == "load") {
      const std::string workload = get_string(req, "workload", "");
      const std::string file = get_string(req, "file", "");
      const bool baseline = get_bool(req, "baseline", false);
      if (workload.empty() == file.empty()) {
        enqueue_inline(render_inline(
            id, Status::invalid_argument("load: needs exactly one of 'workload' / 'file'")));
        continue;
      }
      job_options.cost_bytes = 1 << 20;  // design size unknown until loaded
      body = [session, workload, file, baseline, payload] {
        const Status s = workload.empty() ? session->load_file(file, baseline)
                                          : session->load_workload(workload, baseline);
        if (!s.ok()) throw StatusError(s);
        const SessionInfo info = session->info();
        Json& p = *payload;
        p["circuit"] = info.circuit;
        p["gates"] = info.gates;
        p["epoch"] = info.epoch;
        p["mean_ps"] = info.mean_ps;
        p["sigma_ps"] = info.sigma_ps;
      };
    } else if (op == "sdc") {
      const Json* text = req.find("text");
      if (text == nullptr || !text->is_string()) {
        enqueue_inline(render_inline(id, Status::invalid_argument("sdc: needs string 'text'")));
        continue;
      }
      const std::string sdc = text->as_string();
      job_options.cost_bytes = session->approx_cost_bytes();
      body = [session, sdc, payload] {
        if (const Status s = session->apply_sdc_text(sdc); !s.ok()) throw StatusError(s);
        (*payload)["epoch"] = session->info().epoch;
      };
    } else if (op == "whatif") {
      std::vector<ResizeRequest> resizes;
      if (const Status s = parse_resizes(req, resizes); !s.ok()) {
        enqueue_inline(render_inline(id, s));
        continue;
      }
      body = [session, resizes, payload] {
        const StatusOr<WhatIfReport> r = session->what_if(resizes);
        if (!r.ok()) throw StatusError(r.status());
        const WhatIfReport& w = r.value();
        Json& p = *payload;
        p["epoch"] = w.epoch;
        p["mean_ps"] = w.mean_ps;
        p["sigma_ps"] = w.sigma_ps;
        p["base_mean_ps"] = w.base_mean_ps;
        p["base_sigma_ps"] = w.base_sigma_ps;
        p["delta_mean_ps"] = w.mean_ps - w.base_mean_ps;
        p["delta_sigma_ps"] = w.sigma_ps - w.base_sigma_ps;
      };
    } else if (op == "size") {
      const Json* lambda = req.find("lambda");
      if (lambda == nullptr || !lambda->is_number()) {
        enqueue_inline(
            render_inline(id, Status::invalid_argument("size: needs numeric 'lambda'")));
        continue;
      }
      const double lambda_value = lambda->as_number();
      job_options.cost_bytes = session->approx_cost_bytes();
      body = [session, lambda_value, payload] {
        const StatusOr<SizeResult> r = session->size(lambda_value);
        if (!r.ok()) throw StatusError(r.status());
        const SizeResult& s = r.value();
        Json& p = *payload;
        p["epoch"] = s.epoch;
        p["lambda"] = s.record.lambda;
        p["mean_ps"] = s.record.after.mean_ps;
        p["sigma_ps"] = s.record.after.sigma_ps;
        p["area_um2"] = s.record.after.area_um2;
        p["mean_change"] = s.record.mean_change;
        p["sigma_change"] = s.record.sigma_change;
        p["area_change"] = s.record.area_change;
        p["iterations"] = s.record.iterations;
        p["resizes"] = s.record.resizes;
      };
    } else if (op == "yield") {
      const double clock = get_number(req, "clock_period_ps", 0.0);
      const std::string engine = get_string(req, "engine", "isle");
      job_options.cost_bytes = session->approx_cost_bytes();
      body = [session, clock, engine, payload] {
        const StatusOr<YieldResult> r = session->yield(clock, engine);
        if (!r.ok()) throw StatusError(r.status());
        const YieldResult& y = r.value();
        Json& p = *payload;
        p["epoch"] = y.epoch;
        p["engine"] = y.engine;
        p["yield"] = y.yield;
        p["std_error"] = y.std_error;
        p["draws"] = y.draws;
        p["clock_period_ps"] = y.clock_period_ps;
      };
    } else if (op == "info") {
      body = [session, payload] {
        const SessionInfo info = session->info();
        Json& p = *payload;
        p["epoch"] = info.epoch;
        p["loaded"] = info.loaded;
        p["circuit"] = info.circuit;
        p["gates"] = info.gates;
        p["mean_ps"] = info.mean_ps;
        p["sigma_ps"] = info.sigma_ps;
        p["area_um2"] = info.area_um2;
      };
    } else {
      enqueue_inline(render_inline(
          id, Status::invalid_argument(
                  "unknown op '" + op +
                  "' (known: load, sdc, whatif, size, yield, info, status, quit)")));
      continue;
    }

    Pending entry;
    entry.id = id;
    entry.payload = payload;
    entry.job = manager_->submit(std::move(body), job_options);
    enqueue(std::move(entry));
  }

  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    closed = true;
    queue_cv.notify_one();
  }
  writer.join();
  return served;
}

}  // namespace statsizer::serve
