// Monte-Carlo SSTA: samples per-arc gate delays from the variation model and
// runs deterministic longest-path analysis per sample. Slow but assumption-
// free (no independence approximation in the max, exact handling of
// reconvergent fanout and of the global process variable) — the golden
// reference the test suite validates FULLSSTA/FASSTA/canonical against.
//
// Sampling is embarrassingly parallel and the engine shards it across a
// thread pool (options.threads). Every sample i draws from its own
// counter-based RNG stream derived from (seed, i) — see util::stream_seed —
// so results (mean, sigma, circuit_samples, per-node moments) are
// bitwise-identical for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "sta/graph.h"

namespace statsizer::ssta {

struct MonteCarloOptions {
  std::size_t samples = 2000;
  std::uint64_t seed = 12345;
  /// Worker threads sharding the sample loop. 1 = serial on the calling
  /// thread; 0 = hardware concurrency. Results are identical for any value.
  std::size_t threads = 1;
  /// Also accumulate per-node arrival statistics (slower, more memory).
  bool per_node_stats = false;
};

struct MonteCarloResult {
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
  /// Circuit delay (max over POs) per sample; kept for quantiles/tests.
  std::vector<double> circuit_samples;
  /// Per-node arrival moments (only if per_node_stats).
  std::vector<sta::NodeMoments> node;
};

[[nodiscard]] MonteCarloResult run_monte_carlo(const sta::TimingContext& ctx,
                                               const MonteCarloOptions& options = {});

}  // namespace statsizer::ssta
