// Monte-Carlo SSTA: samples per-arc gate delays from the variation model and
// runs deterministic longest-path analysis per sample. Slow but assumption-
// free (no independence approximation in the max, exact handling of
// reconvergent fanout and of the global process variable) — the golden
// reference the test suite validates FULLSSTA/FASSTA/canonical against.
#pragma once

#include <cstdint>
#include <vector>

#include "sta/graph.h"

namespace statsizer::ssta {

struct MonteCarloOptions {
  std::size_t samples = 2000;
  std::uint64_t seed = 12345;
  /// Also accumulate per-node arrival statistics (slower, more memory).
  bool per_node_stats = false;
};

struct MonteCarloResult {
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
  /// Circuit delay (max over POs) per sample; kept for quantiles/tests.
  std::vector<double> circuit_samples;
  /// Per-node arrival moments (only if per_node_stats).
  std::vector<sta::NodeMoments> node;
};

[[nodiscard]] MonteCarloResult run_monte_carlo(const sta::TimingContext& ctx,
                                               const MonteCarloOptions& options = {});

}  // namespace statsizer::ssta
