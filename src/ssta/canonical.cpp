#include "ssta/canonical.h"

#include <algorithm>
#include <cmath>

#include "fassta/clark.h"

namespace statsizer::ssta {

using netlist::GateId;

double CanonicalForm::sigma_ps() const {
  return std::sqrt(global_coeff * global_coeff + independent_ps * independent_ps);
}

CanonicalForm canonical_sum(const CanonicalForm& a, const CanonicalForm& b) {
  CanonicalForm r;
  r.nominal_ps = a.nominal_ps + b.nominal_ps;
  r.global_coeff = a.global_coeff + b.global_coeff;
  r.independent_ps = std::sqrt(a.independent_ps * a.independent_ps +
                               b.independent_ps * b.independent_ps);
  return r;
}

CanonicalForm canonical_max(const CanonicalForm& a, const CanonicalForm& b) {
  const double sig_a = a.sigma_ps();
  const double sig_b = b.sigma_ps();
  // Correlation comes only from the shared global variable.
  double rho = 0.0;
  if (sig_a > 0.0 && sig_b > 0.0) {
    rho = (a.global_coeff * b.global_coeff) / (sig_a * sig_b);
    rho = std::clamp(rho, -1.0, 1.0);
  }
  const fassta::ClarkResult m =
      fassta::clark_max_exact(a.nominal_ps, sig_a, b.nominal_ps, sig_b, rho);

  CanonicalForm r;
  r.nominal_ps = m.mean;
  // Tightness-weighted blending of sensitivities (Visweswariah/Chang style).
  const double t = m.tightness;
  r.global_coeff = t * a.global_coeff + (1.0 - t) * b.global_coeff;
  const double residual = m.var - r.global_coeff * r.global_coeff;
  r.independent_ps = std::sqrt(std::max(0.0, residual));
  return r;
}

CanonicalResult run_canonical(const sta::TimingContext& ctx) {
  const auto& nl = ctx.netlist();
  const auto& var = ctx.variation();
  const double gf = var.params().global_fraction;

  CanonicalResult result;
  result.node.assign(nl.node_count(), CanonicalForm{});

  for (const GateId id : ctx.topo_order()) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) continue;
    CanonicalForm acc;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const double d = ctx.arc_delay_ps(id, i);
      const double sys = var.systematic_sigma_ps(d, ctx.drive(id));
      CanonicalForm delay;
      delay.nominal_ps = d;
      delay.global_coeff = std::sqrt(gf) * sys;
      const double rand = var.random_sigma_ps();
      delay.independent_ps = std::sqrt((1.0 - gf) * sys * sys + rand * rand);

      const CanonicalForm through = canonical_sum(result.node[g.fanins[i]], delay);
      acc = (i == 0) ? through : canonical_max(acc, through);
    }
    result.node[id] = acc;
  }

  CanonicalForm out;
  bool first = true;
  for (const auto& po : nl.outputs()) {
    out = first ? result.node[po.driver] : canonical_max(out, result.node[po.driver]);
    first = false;
  }
  result.output = out;
  result.mean_ps = out.mean_ps();
  result.sigma_ps = out.sigma_ps();
  return result;
}

}  // namespace statsizer::ssta
