#include "ssta/isle.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/exec.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace statsizer::ssta {

using netlist::GateId;

namespace {

// Samples per parallel_for chunk — the same fixed geometry as
// ssta::run_monte_carlo, so the two engines shard identically.
constexpr std::size_t kChunkSamples = 64;

// Salt deriving the mixture-component selector stream from the main seed.
// Keeping the selection draws out of the main per-sample stream means the
// main stream's draw order is exactly run_monte_carlo's, which is what makes
// the kNominal mode bitwise-equal to the plain MC engine.
constexpr std::uint64_t kSelectorSalt = 0x49534c45u;  // "ISLE"

// One arc of a dominant path with its linear-Gaussian coefficients: the
// sampled delay is delay + sqrt(gf)*sys * x_g + local_coeff * x1 +
// floor_coeff * x2 in the underlying standard normals (truncation aside).
struct PathArc {
  GateId gate = netlist::kNoGate;
  std::uint32_t fanin = 0;
  std::uint32_t slot = 0;  ///< index into the tracked-coordinate scratch
  double local_coeff = 0.0;
  double floor_coeff = 0.0;
};

// A shifted mixture component = one dominant path with its mean shift.
struct Component {
  std::vector<PathArc> arcs;
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
  double global_coeff = 0.0;  ///< sum of sqrt(gf)*sys over the path
  double beta = 0.0;
  double theta_global = 0.0;
  double half_norm = 0.0;  ///< |theta|^2 / 2 (== beta^2 / 2 by construction)
};

struct Proposal {
  std::vector<Component> components;
  /// Dense arc index (arc_offset(g) + i) -> tracked slot, -1 if untracked.
  std::vector<std::int32_t> slot_of_arc;
  std::size_t tracked = 0;
  /// Per component, dense over tracked slots (0 for arcs off that path).
  std::vector<std::vector<double>> shift1, shift2;
  bool shift_clamped = false;
};

// The surrogate DP: longest path under score = delay + kappa * sigma, with
// the same arrival initialization as run_monte_carlo (constrained primary
// inputs launch at their set_input_delay offset). Returns the top-K paths
// (distinct primary-output drivers) with their linear-Gaussian moments.
std::vector<Component> build_surrogate_paths(const sta::TimingContext& ctx,
                                             const IsleOptions& options) {
  const auto& nl = ctx.netlist();
  const auto& var = ctx.variation();
  const auto& pi_arrival = ctx.constraints().input_arrival_ps;
  const double gf = var.params().global_fraction;
  const double sqrt_gf = std::sqrt(gf);
  const double sqrt_1mgf = std::sqrt(1.0 - gf);

  std::vector<double> score(nl.node_count(), 0.0);
  std::vector<std::int32_t> best(nl.node_count(), -1);
  for (const GateId id : ctx.topo_order()) {
    const auto& g = nl.gate(id);
    double s = (g.fanins.empty() && !pi_arrival.empty()) ? pi_arrival[id] : 0.0;
    std::int32_t arg = -1;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const double cand = score[g.fanins[i]] + ctx.arc_delay_ps(id, i) +
                          options.surrogate_kappa * ctx.arc_sigma_ps(id, i);
      if (arg < 0 || cand > s) {
        s = cand;
        arg = static_cast<std::int32_t>(i);
      }
    }
    score[id] = s;
    best[id] = arg;
  }

  // Top-K distinct primary-output drivers by surrogate score.
  std::vector<GateId> drivers;
  for (const auto& po : nl.outputs()) {
    if (std::find(drivers.begin(), drivers.end(), po.driver) == drivers.end()) {
      drivers.push_back(po.driver);
    }
  }
  std::sort(drivers.begin(), drivers.end(),
            [&](GateId a, GateId b) { return score[a] > score[b]; });
  const std::size_t k = std::min<std::size_t>(std::max<std::size_t>(options.dominant_paths, 1),
                                              drivers.size());

  std::vector<Component> components;
  components.reserve(k);
  for (std::size_t p = 0; p < k; ++p) {
    Component c;
    GateId g = drivers[p];
    double var_sum = 0.0;
    while (best[g] >= 0) {
      const auto i = static_cast<std::uint32_t>(best[g]);
      const double delay = ctx.arc_delay_ps(g, i);
      const double sys = var.systematic_sigma_ps(delay, ctx.drive(g));
      PathArc arc;
      arc.gate = g;
      arc.fanin = i;
      arc.local_coeff = sqrt_1mgf * sys;
      arc.floor_coeff = var.random_sigma_ps();
      c.arcs.push_back(arc);
      c.mean_ps += delay;
      c.global_coeff += sqrt_gf * sys;
      var_sum += arc.local_coeff * arc.local_coeff + arc.floor_coeff * arc.floor_coeff;
      g = nl.gate(g).fanins[i];
    }
    if (!pi_arrival.empty()) c.mean_ps += pi_arrival[g];
    c.sigma_ps = std::sqrt(c.global_coeff * c.global_coeff + var_sum);
    components.push_back(std::move(c));
  }
  return components;
}

// Turns the surrogate paths into shifted mixture components for clock period
// T: theta = beta * c / sigma with beta = (T - mean) / sigma clamped to
// max_shift. Registers every retained path arc as a tracked coordinate.
//
// Only the dominant (highest-scored) path decides the proposal's health: if
// *its* sigma vanishes or *its* beta clamps, the target is genuinely out of
// the proposal's reach and the result is flagged. A *secondary* path tripping
// the same limits just means that PO cone is a useless failure direction
// (e.g. a short side-output whose T sits hundreds of path-sigmas out) — it is
// dropped from the mixture, which stays unbiased with whatever survives.
Proposal finalize_proposal(const sta::TimingContext& ctx, const IsleOptions& options,
                           std::vector<Component> components, double clock_period_ps) {
  Proposal prop;
  prop.slot_of_arc.assign(ctx.arc_count(), -1);
  std::vector<Component> kept;
  for (std::size_t kc = 0; kc < components.size(); ++kc) {
    Component& c = components[kc];
    const bool dominant = kc == 0;
    if (c.sigma_ps < 1e-9) {
      // No variation along the path: nothing to shift, and the surrogate
      // cannot point at a failure region.
      if (!dominant) continue;
      prop.shift_clamped = true;  // keep it with theta = 0, flagged
      kept.push_back(std::move(c));
      continue;
    }
    const double raw_beta = (clock_period_ps - c.mean_ps) / c.sigma_ps;
    c.beta = std::clamp(raw_beta, -options.max_shift, options.max_shift);
    if (c.beta != raw_beta) {
      if (!dominant) continue;
      prop.shift_clamped = true;
    }
    c.theta_global = c.beta * c.global_coeff / c.sigma_ps;
    kept.push_back(std::move(c));
  }
  prop.components = std::move(kept);
  for (Component& c : prop.components) {
    for (PathArc& arc : c.arcs) {
      const std::size_t dense = ctx.arc_offset(arc.gate) + arc.fanin;
      if (prop.slot_of_arc[dense] < 0) {
        prop.slot_of_arc[dense] = static_cast<std::int32_t>(prop.tracked++);
      }
      arc.slot = static_cast<std::uint32_t>(prop.slot_of_arc[dense]);
    }
  }
  prop.shift1.assign(prop.components.size(), std::vector<double>(prop.tracked, 0.0));
  prop.shift2.assign(prop.components.size(), std::vector<double>(prop.tracked, 0.0));
  for (std::size_t kc = 0; kc < prop.components.size(); ++kc) {
    Component& c = prop.components[kc];
    double norm2 = c.theta_global * c.theta_global;
    if (c.sigma_ps >= 1e-9) {
      const double scale = c.beta / c.sigma_ps;
      for (const PathArc& arc : c.arcs) {
        prop.shift1[kc][arc.slot] = scale * arc.local_coeff;
        prop.shift2[kc][arc.slot] = scale * arc.floor_coeff;
        norm2 += prop.shift1[kc][arc.slot] * prop.shift1[kc][arc.slot] +
                 prop.shift2[kc][arc.slot] * prop.shift2[kc][arc.slot];
      }
    }
    c.half_norm = 0.5 * norm2;
  }
  return prop;
}

}  // namespace

IsleResult run_isle(const sta::TimingContext& ctx, const IsleOptions& options) {
  if (options.defensive_fraction < 0.0 || options.defensive_fraction > 1.0) {
    throw std::invalid_argument("run_isle: defensive_fraction must be in [0, 1]");
  }
  if (options.clock_period_ps < 0.0) {
    throw std::invalid_argument("run_isle: negative clock_period_ps");
  }
  if (options.max_shift <= 0.0) {
    throw std::invalid_argument("run_isle: max_shift must be positive");
  }
  if (options.target_yield_se < 0.0) {
    throw std::invalid_argument("run_isle: negative target_yield_se");
  }

  const auto& nl = ctx.netlist();
  const auto& var = ctx.variation();
  const auto& pi_arrival = ctx.constraints().input_arrival_ps;
  const double gf = var.params().global_fraction;
  const double sqrt_gf = std::sqrt(gf);
  const double sqrt_1mgf = std::sqrt(1.0 - gf);
  const double floor_ps = var.random_sigma_ps();
  const double min_frac = var.params().min_delay_fraction;

  IsleResult result;

  // The surrogate is always built: it supplies the unconstrained clock-period
  // fallback and the reported dominant-path moments even in kNominal mode.
  std::vector<Component> paths = build_surrogate_paths(ctx, options);
  if (!paths.empty()) {
    result.surrogate_mean_ps = paths.front().mean_ps;
    result.surrogate_sigma_ps = paths.front().sigma_ps;
  }

  double clock_period_ps = options.clock_period_ps;
  if (clock_period_ps <= 0.0 && ctx.constraints().clock_period_ps.has_value()) {
    clock_period_ps = *ctx.constraints().clock_period_ps;
  }
  if (clock_period_ps <= 0.0) {
    clock_period_ps = result.surrogate_mean_ps + 2.0 * result.surrogate_sigma_ps;
  }
  result.clock_period_ps = clock_period_ps;

  // A defensive fraction of 1 is all-nominal sampling: take the kNominal
  // fast path (no tracked coordinates, weights identically 1).
  const bool importance = options.proposal == IsleProposal::kImportance &&
                          options.defensive_fraction < 1.0 && !paths.empty();
  Proposal prop;
  if (importance) {
    prop = finalize_proposal(ctx, options, std::move(paths), clock_period_ps);
    result.shift_clamped = prop.shift_clamped;
    result.proposal_paths = prop.components.size();
    if (!prop.components.empty()) result.shift_beta = prop.components.front().beta;
  }
  const std::size_t num_components = prop.components.size();
  const double alpha = importance ? options.defensive_fraction : 1.0;

  const std::size_t cap = options.samples;
  const std::size_t batch = std::max<std::size_t>(options.batch, 1);
  result.delay_samples.reserve(std::min(cap, batch));
  result.weights.reserve(std::min(cap, batch));

  // One batch of draws [base, base + count). Per-slot writes into the result
  // vectors; every sample's randomness comes only from its counter-based
  // streams, so the batch is bitwise thread-count-invariant.
  const auto run_batch = [&](std::size_t base, std::size_t count) {
    util::parallel_for(
        count, kChunkSamples, options.threads,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<double> arrival(nl.node_count(), 0.0);
          std::vector<double> x1s(prop.tracked, 0.0);
          std::vector<double> x2s(prop.tracked, 0.0);
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t s = base + i;
            // Component selection from its own derived stream: the main
            // stream below consumes draws in run_monte_carlo's exact order.
            std::ptrdiff_t comp = -1;
            if (importance) {
              util::Rng sel(util::stream_seed(options.seed ^ kSelectorSalt, s));
              if (!sel.flip(alpha)) {
                comp = static_cast<std::ptrdiff_t>(sel.index(num_components));
              }
            }
            util::Rng rng(util::stream_seed(options.seed, s));
            const double zg = rng.normal();
            const double xg =
                zg + (comp >= 0 ? prop.components[comp].theta_global : 0.0);
            for (const GateId id : ctx.topo_order()) {
              const auto& g = nl.gate(id);
              double arr =
                  (g.fanins.empty() && !pi_arrival.empty()) ? pi_arrival[id] : 0.0;
              const std::uint32_t off = ctx.arc_offset(id);
              for (std::size_t a = 0; a < g.fanins.size(); ++a) {
                double d;
                const std::int32_t slot =
                    prop.tracked == 0 ? -1 : prop.slot_of_arc[off + a];
                if (slot >= 0) {
                  // Tracked coordinate: decompose the draw so the shift can
                  // be applied and x recorded for the likelihood ratio.
                  // Mirrors VariationModel::sample_delay_ps with the z's
                  // drawn in explicit sequence.
                  const double delay = ctx.arc_delay_ps(id, a);
                  const double sys = var.systematic_sigma_ps(delay, ctx.drive(id));
                  const double z1 = rng.normal();
                  const double z2 = rng.normal();
                  const double x1 = z1 + (comp >= 0 ? prop.shift1[comp][slot] : 0.0);
                  const double x2 = z2 + (comp >= 0 ? prop.shift2[comp][slot] : 0.0);
                  x1s[slot] = x1;
                  x2s[slot] = x2;
                  const double raw = delay + sqrt_gf * sys * xg +
                                     sqrt_1mgf * sys * x1 + floor_ps * x2;
                  d = std::max(raw, min_frac * delay);
                } else {
                  d = var.sample_delay_ps(ctx.arc_delay_ps(id, a), ctx.drive(id), xg,
                                          rng);
                }
                arr = std::max(arr, arrival[g.fanins[a]] + d);
              }
              arrival[id] = arr;
            }
            double circuit = 0.0;
            for (const auto& po : nl.outputs()) {
              circuit = std::max(circuit, arrival[po.driver]);
            }
            result.delay_samples[s] = circuit;
            // Likelihood ratio against the defensive mixture:
            //   w = 1 / (alpha + (1-alpha)/K * sum_k exp(theta_k.x - |theta_k|^2/2)).
            double w = 1.0;
            if (importance) {
              double sum_exp = 0.0;
              for (std::size_t kc = 0; kc < num_components; ++kc) {
                double dot = prop.components[kc].theta_global * xg;
                const std::vector<double>& s1 = prop.shift1[kc];
                const std::vector<double>& s2 = prop.shift2[kc];
                for (std::size_t t = 0; t < prop.tracked; ++t) {
                  dot += s1[t] * x1s[t] + s2[t] * x2s[t];
                }
                sum_exp += std::exp(dot - prop.components[kc].half_norm);
              }
              w = 1.0 / (alpha + (1.0 - alpha) / static_cast<double>(num_components) *
                                     sum_exp);
            }
            result.weights[s] = w;
          }
        });
  };

  // Draws grow in fixed `batch` steps; after each batch one serial in-order
  // fold updates every statistic, and the adaptive stop is evaluated only at
  // batch boundaries — both pure functions of the options, never of the
  // thread count.
  util::RunningStats wi_stats;  // per-draw weighted failure indicator
  util::RunningStats w_stats;
  double sum_w = 0.0, sum_w2 = 0.0, sum_wi = 0.0, sum_wi2 = 0.0;
  double sum_wd = 0.0, sum_wd2 = 0.0;
  double max_w = 0.0;
  std::size_t failures_seen = 0;
  std::size_t drawn = 0;
  while (drawn < cap) {
    // Cooperative control at batch granularity, always on the calling
    // thread: the batch sequence is a pure function of the options, so
    // fault-injection hit counts stay deterministic for any thread count.
    util::checkpoint("ssta/isle/batch");
    const std::size_t count = std::min(batch, cap - drawn);
    result.delay_samples.resize(drawn + count);
    result.weights.resize(drawn + count);
    run_batch(drawn, count);
    for (std::size_t s = drawn; s < drawn + count; ++s) {
      const double d = result.delay_samples[s];
      const double w = result.weights[s];
      const double wi = d > clock_period_ps ? w : 0.0;
      if (wi > 0.0) ++failures_seen;
      wi_stats.add(wi);
      w_stats.add(w);
      sum_w += w;
      sum_w2 += w * w;
      sum_wi += wi;
      sum_wi2 += wi * wi;
      sum_wd += w * d;
      sum_wd2 += w * d * d;
      max_w = std::max(max_w, w);
    }
    drawn += count;
    // A sample with no failure hits reports a zero standard error that says
    // nothing about the true one — the adaptive stop must not trust it, or a
    // deep-tail nominal run would "converge" instantly at min_draws. With no
    // failures ever seen the loop runs to the cap (you cannot certify a CI
    // you have not observed).
    if (options.target_yield_se > 0.0 && drawn >= options.min_draws &&
        failures_seen > 0) {
      const double se =
          std::sqrt(wi_stats.sample_variance() / static_cast<double>(drawn));
      if (se <= options.target_yield_se) break;
    }
  }

  result.draws = drawn;
  if (drawn == 0) {
    result.degenerate = true;
    return result;
  }

  const double p_fail = std::clamp(wi_stats.mean(), 0.0, 1.0);
  result.failure_probability = p_fail;
  result.yield = 1.0 - p_fail;
  result.std_error = std::sqrt(wi_stats.sample_variance() / static_cast<double>(drawn));
  result.ess = sum_w2 > 0.0 ? sum_w * sum_w / sum_w2 : 0.0;
  result.failure_ess = sum_wi2 > 0.0 ? sum_wi * sum_wi / sum_wi2 : 0.0;
  result.weight_variance = w_stats.sample_variance();
  result.max_weight = max_w;
  if (sum_w > 0.0) {
    result.weighted_mean_ps = sum_wd / sum_w;
    const double wv = sum_wd2 / sum_w - result.weighted_mean_ps * result.weighted_mean_ps;
    result.weighted_sigma_ps = std::sqrt(std::max(wv, 0.0));
  }
  result.degenerate =
      result.shift_clamped ||
      result.ess < options.min_ess_fraction * static_cast<double>(drawn) ||
      (p_fail > 0.0 && result.failure_ess < options.min_failure_ess);
  return result;
}

}  // namespace statsizer::ssta
