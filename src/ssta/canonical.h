// Canonical first-order SSTA with one global process component — the
// correlation-aware outer-loop alternative the paper points to in section
// 4.3 ("the outer loop relies on the more accurate ... approach that can
// track correlations ... using Principal Component Analysis or other
// methods"). Every arrival time is kept in canonical form
//
//   A = nominal + g * G + r * R_A
//
// where G is a standard-normal global variable shared by all gates (process
// corner) and R_A aggregates node-local independent variation. Sums add
// coefficients (independent parts in RSS); max uses Clark's formulas with the
// correlation implied by the shared G, and blends coefficients by tightness.
#pragma once

#include <vector>

#include "sta/graph.h"

namespace statsizer::ssta {

/// First-order canonical arrival form.
struct CanonicalForm {
  double nominal_ps = 0.0;
  double global_coeff = 0.0;     ///< sensitivity to the shared variable G
  double independent_ps = 0.0;   ///< RSS of node-local variation

  [[nodiscard]] double sigma_ps() const;
  [[nodiscard]] double mean_ps() const { return nominal_ps; }
};

struct CanonicalResult {
  std::vector<CanonicalForm> node;  ///< per-node arrival (indexed by GateId)
  CanonicalForm output;             ///< statistical max over primary outputs
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
};

/// Sum of a canonical arrival and a canonical gate delay.
[[nodiscard]] CanonicalForm canonical_sum(const CanonicalForm& a, const CanonicalForm& b);

/// Clark max of two canonical forms, honouring the correlation induced by the
/// shared global component.
[[nodiscard]] CanonicalForm canonical_max(const CanonicalForm& a, const CanonicalForm& b);

/// Runs canonical SSTA. The split of each arc's sigma into global/independent
/// parts follows the variation model's global_fraction.
[[nodiscard]] CanonicalResult run_canonical(const sta::TimingContext& ctx);

}  // namespace statsizer::ssta
