#include "ssta/fullssta.h"

#include <cmath>

namespace statsizer::ssta {

using netlist::GateId;
using pdf::DiscretePdf;

FullSstaResult run_fullssta(const sta::TimingContext& ctx, const FullSstaOptions& options) {
  const auto& nl = ctx.netlist();
  const std::size_t samples = options.samples_per_pdf;

  FullSstaResult result;
  result.node.assign(nl.node_count(), sta::NodeMoments{});

  std::vector<DiscretePdf> arrival(nl.node_count(), DiscretePdf::point(0.0));

  for (const GateId id : ctx.topo_order()) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) continue;  // PI / constant: point mass at 0

    DiscretePdf acc;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const DiscretePdf delay = DiscretePdf::normal(
          ctx.arc_delay_ps(id, i), ctx.arc_sigma_ps(id, i), samples, options.span_sigmas);
      const DiscretePdf through = pdf::sum(arrival[g.fanins[i]], delay, samples);
      acc = (i == 0) ? through : pdf::max(acc, through, samples);
    }
    result.node[id] = sta::NodeMoments{acc.mean(), acc.stddev()};
    arrival[id] = std::move(acc);
  }

  // RV_O = statistical max over all primary outputs.
  DiscretePdf out = DiscretePdf::point(0.0);
  bool first = true;
  for (const auto& po : nl.outputs()) {
    out = first ? arrival[po.driver] : pdf::max(out, arrival[po.driver], samples);
    first = false;
  }
  result.output_pdf = std::move(out);
  result.mean_ps = result.output_pdf.mean();
  result.sigma_ps = result.output_pdf.stddev();
  if (options.keep_node_pdfs) result.node_pdf = std::move(arrival);
  return result;
}

}  // namespace statsizer::ssta
