#include "ssta/fullssta.h"

#include <cmath>

#include "debug/validate.h"
#include "util/check.h"
#include "util/exec.h"

namespace statsizer::ssta {

using netlist::GateId;
using pdf::DiscretePdf;

FullSstaResult run_fullssta(const sta::TimingContext& ctx, const FullSstaOptions& options) {
  const auto& nl = ctx.netlist();
  const std::size_t samples = options.samples_per_pdf;

  if constexpr (debug::kParanoid) {
    debug::validate_structure_fresh(nl, ctx.levelization());
  }

  FullSstaResult result;
  result.node.assign(nl.node_count(), sta::NodeMoments{});

  std::vector<DiscretePdf> arrival(nl.node_count(), DiscretePdf::point(0.0));

  // Constrained primary inputs (set_input_delay) launch as a point mass at
  // their delay. Guarded so the unconstrained path stays bitwise-identical.
  const auto& input_arrival = ctx.constraints().input_arrival_ps;
  if (!input_arrival.empty()) {
    for (GateId id = 0; id < nl.node_count(); ++id) {
      if (!nl.gate(id).fanins.empty() || input_arrival[id] == 0.0) continue;
      arrival[id] = DiscretePdf::point(input_arrival[id]);
      result.node[id] = sta::NodeMoments{input_arrival[id], 0.0};
    }
  }

  // One gate's arrival from its (already finished) fanins: reads lower-level
  // pdfs, writes only the gate's own slots.
  const auto propagate_gate = [&](GateId id) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) return;  // PI / constant: point mass at 0

    DiscretePdf acc;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const DiscretePdf delay = DiscretePdf::normal(
          ctx.arc_delay_ps(id, i), ctx.arc_sigma_ps(id, i), samples, options.span_sigmas);
      const DiscretePdf through = pdf::sum(arrival[g.fanins[i]], delay, samples);
      acc = (i == 0) ? through : pdf::max(acc, through, samples);
    }
    if constexpr (debug::kParanoid) {
      // Exceptions from a wavefront worker are captured and rethrown on the
      // calling thread by parallel_for, so the audit is safe in both modes.
      debug::validate_pdf(acc);
    }
    result.node[id] = sta::NodeMoments{acc.mean(), acc.stddev()};
    arrival[id] = std::move(acc);
  };

  // Cooperative control at wavefront granularity (see util/exec.h): one
  // checkpoint per level on the calling thread, or a fixed gate stride on
  // the serial path. Value-neutral — aborts or stalls only.
  if (options.threads == 1) {
    std::size_t propagated = 0;
    for (const GateId id : ctx.topo_order()) {
      if ((propagated++ & 0xFF) == 0) util::checkpoint("ssta/fullssta/level");
      propagate_gate(id);
    }
  } else {
    // Levelized wavefront: gates of one level are independent (all fanins
    // live in strictly lower levels), so each level fans across the pool and
    // acts as the barrier for the next. Per-gate pdf convolutions are heavy
    // (~samples^2 work each), so chunk size 1 load-balances best.
    const netlist::Levelization& lv = ctx.levelization();
    const std::size_t cutoff = ctx.options().min_level_width_for_parallel;
    for (std::size_t l = 0; l < lv.level_count(); ++l) {
      util::checkpoint("ssta/fullssta/level");
      const std::span<const GateId> level = lv.level(l);
      // Chunk size 1: per-gate pdf convolutions are heavy (~samples^2 work
      // each), so per-gate scheduling load-balances best.
      sta::run_wavefront_level(level, level.size(), cutoff, 1, options.threads,
                               propagate_gate);
    }
  }

  // RV_O = statistical max over all primary outputs.
  DiscretePdf out = DiscretePdf::point(0.0);
  bool first = true;
  for (const auto& po : nl.outputs()) {
    out = first ? arrival[po.driver] : pdf::max(out, arrival[po.driver], samples);
    first = false;
  }
  if constexpr (debug::kParanoid) {
    debug::validate_pdf(out);
  }
  result.output_pdf = std::move(out);
  result.mean_ps = result.output_pdf.mean();
  result.sigma_ps = result.output_pdf.stddev();
  if (options.keep_node_pdfs) result.node_pdf = std::move(arrival);
  return result;
}

}  // namespace statsizer::ssta
