// FULLSSTA — the paper's accurate outer-loop statistical timing engine
// (section 4.2, after Liou et al. DAC'01). Arrival times are full discrete
// pdfs propagated through the netlist:
//   through an arc:  arrival_out = arrival_in (+) Normal(d_arc, sigma_arc)
//   across fanins:   statistical max via CDF product
// pdfs are kept at a user-controlled sampling rate (paper: 10-15 points).
// Besides the pdfs, the engine records mean/sigma at every node — exactly the
// values FASSTA later uses as subcircuit boundary conditions.
#pragma once

#include <vector>

#include "pdf/discrete_pdf.h"
#include "sta/graph.h"

namespace statsizer::ssta {

struct FullSstaOptions {
  std::size_t samples_per_pdf = 13;  ///< paper: "10-15 samples per pdf"
  double span_sigmas = 4.0;          ///< grid half-width for gate-delay pdfs
  /// Also return the arrival pdf of every node (FullSstaResult::node_pdf).
  /// Off by default: the pdfs are only needed by consumers that re-propagate
  /// increments against them (timing::Analyzer's what-if overlay).
  bool keep_node_pdfs = false;
  /// Worker threads for the arrival-pdf propagation: gates of one level fan
  /// across util::ThreadPool (fanins live in strictly lower levels, so a
  /// level's gates are independent; levels are barriers). 1 = the classic
  /// serial topo-order loop, 0 = hardware concurrency; results are
  /// bitwise-identical for any value (levelized_update_test pins this).
  /// Levels narrower than the context's
  /// TimingOptions::min_level_width_for_parallel run serially.
  std::size_t threads = 1;
};

struct FullSstaResult {
  /// Arrival moments per node (indexed by GateId).
  std::vector<sta::NodeMoments> node;
  /// Arrival pdf per node (indexed by GateId; only if keep_node_pdfs).
  std::vector<pdf::DiscretePdf> node_pdf;
  /// Arrival pdf of the statistical max over all primary outputs: the random
  /// variable RV_O that "characterizes the mean and variance of the entire
  /// circuit" (paper section 2.1).
  pdf::DiscretePdf output_pdf;
  double mean_ps = 0.0;
  double sigma_ps = 0.0;
};

/// Runs discrete-pdf SSTA over the whole netlist.
[[nodiscard]] FullSstaResult run_fullssta(const sta::TimingContext& ctx,
                                          const FullSstaOptions& options = {});

}  // namespace statsizer::ssta
