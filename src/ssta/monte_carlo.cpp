#include "ssta/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "util/exec.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace statsizer::ssta {

using netlist::GateId;

namespace {

// Samples per parallel_for chunk. Fixed (never a function of the thread
// count) so per-chunk partial statistics merge to the same floating-point
// result for any number of workers. Large enough to amortize the per-chunk
// arrival-vector allocation, small enough to load-balance across threads.
constexpr std::size_t kChunkSamples = 64;

}  // namespace

MonteCarloResult run_monte_carlo(const sta::TimingContext& ctx,
                                 const MonteCarloOptions& options) {
  const auto& nl = ctx.netlist();
  const auto& var = ctx.variation();
  const auto& pi_arrival = ctx.constraints().input_arrival_ps;

  MonteCarloResult result;
  result.circuit_samples.resize(options.samples, 0.0);
  if (options.samples == 0) return result;

  // Per-node accumulators with a streaming in-order merge: each finished
  // chunk's partials are folded in strictly ascending chunk order (chunks
  // completing early wait in `pending`), so the result is bitwise-identical
  // for any thread count while memory stays bounded by the out-of-order
  // completion window (~thread count) instead of the total chunk count.
  std::vector<util::RunningStats> node_stats;
  std::mutex merge_mutex;
  std::size_t next_merge_chunk = 0;
  std::map<std::size_t, std::vector<util::RunningStats>> pending;
  if (options.per_node_stats) node_stats.resize(nl.node_count());

  // Cooperative control at sample-chunk granularity, but only when the
  // chunk loop runs inline in deterministic order (threads == 1, the
  // serving layer's configuration): with pool workers in play the caller
  // would drain a scheduling-dependent subset of chunks, making fault-
  // injection hit counts nondeterministic. Workers carry no ExecContext, so
  // gating on the option (not the thread identity) keeps the semantics
  // explicit.
  const bool cooperative = options.threads == 1;

  util::parallel_for(
      options.samples, kChunkSamples, options.threads,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        if (cooperative) util::checkpoint("ssta/mc/chunk");
        std::vector<double> arrival(nl.node_count(), 0.0);
        std::vector<util::RunningStats> local_node_stats;
        std::vector<util::RunningStats>* node_stats_ptr = nullptr;
        if (options.per_node_stats) {
          local_node_stats.resize(nl.node_count());
          node_stats_ptr = &local_node_stats;
        }
        for (std::size_t s = begin; s < end; ++s) {
          // Counter-based stream: sample s sees the same draws no matter
          // which thread runs it.
          util::Rng rng(util::stream_seed(options.seed, s));
          const double global_z = rng.normal();
          for (const GateId id : ctx.topo_order()) {
            const auto& g = nl.gate(id);
            // Constrained primary inputs (set_input_delay) launch at their
            // fixed offset; the guard keeps the unconstrained path bitwise.
            double arr = (g.fanins.empty() && !pi_arrival.empty()) ? pi_arrival[id] : 0.0;
            for (std::size_t i = 0; i < g.fanins.size(); ++i) {
              const double d = var.sample_delay_ps(ctx.arc_delay_ps(id, i), ctx.drive(id),
                                                   global_z, rng);
              arr = std::max(arr, arrival[g.fanins[i]] + d);
            }
            arrival[id] = arr;
            if (node_stats_ptr != nullptr) (*node_stats_ptr)[id].add(arr);
          }
          double circuit = 0.0;
          for (const auto& po : nl.outputs()) {
            circuit = std::max(circuit, arrival[po.driver]);
          }
          result.circuit_samples[s] = circuit;
        }
        if (options.per_node_stats) {
          const std::lock_guard<std::mutex> lock(merge_mutex);
          // lint-ok: shared-mutable-capture merge_mutex serializes this block; folds run in ascending chunk order, so the result is thread-count-invariant
          pending.emplace(chunk, std::move(local_node_stats));
          while (!pending.empty() && pending.begin()->first == next_merge_chunk) {
            const auto& ready = pending.begin()->second;
            for (GateId id = 0; id < nl.node_count(); ++id) {
              node_stats[id].merge(ready[id]);
            }
            // lint-ok: shared-mutable-capture same critical section as above
            pending.erase(pending.begin());
            // lint-ok: shared-mutable-capture same critical section as above
            ++next_merge_chunk;
          }
        }
      });

  // Circuit moments: one serial Welford pass over the sample vector, in
  // sample order — identical for any thread count.
  util::RunningStats circuit_stats;
  for (const double x : result.circuit_samples) circuit_stats.add(x);
  result.mean_ps = circuit_stats.mean();
  result.sigma_ps = circuit_stats.stddev();

  if (options.per_node_stats) {
    result.node.resize(nl.node_count());
    for (GateId id = 0; id < nl.node_count(); ++id) {
      result.node[id] = sta::NodeMoments{node_stats[id].mean(), node_stats[id].stddev()};
    }
  }
  return result;
}

}  // namespace statsizer::ssta
