#include "ssta/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "util/numeric.h"
#include "util/rng.h"

namespace statsizer::ssta {

using netlist::GateId;

MonteCarloResult run_monte_carlo(const sta::TimingContext& ctx,
                                 const MonteCarloOptions& options) {
  const auto& nl = ctx.netlist();
  const auto& var = ctx.variation();
  util::Rng rng(options.seed);

  MonteCarloResult result;
  result.circuit_samples.reserve(options.samples);

  std::vector<double> arrival(nl.node_count(), 0.0);
  std::vector<util::RunningStats> node_stats;
  if (options.per_node_stats) node_stats.resize(nl.node_count());

  util::RunningStats circuit_stats;
  for (std::size_t s = 0; s < options.samples; ++s) {
    const double global_z = rng.normal();
    for (const GateId id : ctx.topo_order()) {
      const auto& g = nl.gate(id);
      double arr = 0.0;
      for (std::size_t i = 0; i < g.fanins.size(); ++i) {
        const double d = var.sample_delay_ps(ctx.arc_delay_ps(id, i), ctx.drive(id),
                                             global_z, rng);
        arr = std::max(arr, arrival[g.fanins[i]] + d);
      }
      arrival[id] = arr;
      if (options.per_node_stats) node_stats[id].add(arr);
    }
    double circuit = 0.0;
    for (const auto& po : nl.outputs()) circuit = std::max(circuit, arrival[po.driver]);
    result.circuit_samples.push_back(circuit);
    circuit_stats.add(circuit);
  }

  result.mean_ps = circuit_stats.mean();
  result.sigma_ps = circuit_stats.stddev();
  if (options.per_node_stats) {
    result.node.resize(nl.node_count());
    for (GateId id = 0; id < nl.node_count(); ++id) {
      result.node[id] = sta::NodeMoments{node_stats[id].mean(), node_stats[id].stddev()};
    }
  }
  return result;
}

}  // namespace statsizer::ssta
