// ISLE: importance-sampled timing-yield estimation (after Bayrakci, Demir &
// Tasiran, "Fast Monte Carlo Estimation of Timing Yield: Importance Sampling
// with Stochastic Logical Effort").
//
// Plain Monte Carlo needs O(1 / P_fail) draws to see a failure at all; at
// the clock periods designers actually sign off (P_fail ~ 1e-2 .. 1e-4) that
// is tens of thousands of full-netlist sample propagations. ISLE gets the
// same unbiased estimate from orders of magnitude fewer draws:
//
//   1. A cheap *stochastic-logical-effort surrogate* — one deterministic DP
//      over the levelized netlist scoring every arc at delay + kappa * sigma
//      — identifies the dominant paths (the region of variation space where
//      failures concentrate).
//   2. Each dominant path's delay is linear-Gaussian in the underlying
//      standard-normal variation variables, so the most-likely failure point
//      for a clock period T is an explicit mean shift theta = beta * c /
//      |c|, beta = (T - mean) / sigma. Sampling is done under a *defensive
//      mixture* proposal (Hesterberg): with probability `defensive_fraction`
//      the nominal distribution, otherwise one of the per-path shifted
//      Gaussians — which bounds every likelihood ratio by
//      1 / defensive_fraction.
//   3. Every draw is reweighted by the exact likelihood ratio f(x) / q(x),
//      so the failure-probability estimate is unbiased *regardless* of how
//      good the surrogate is; the surrogate only buys variance.
//
// Diagnostics are first-class: the effective sample size (overall and
// restricted to failure hits), the weight variance, and the max weight are
// always reported, and `degenerate` trips when the proposal could not be
// trusted (clamped shift, vanishing path sigma, collapsed ESS) instead of
// returning a silently garbage yield.
//
// Determinism contract (docs/ARCHITECTURE.md): draws shard across
// util::ThreadPool exactly like ssta::run_monte_carlo — every sample s draws
// from the counter-based stream (seed, s), mixture-component selection from
// a separate derived stream (seed ^ salt, s), per-sample results land in
// per-slot vectors, and all statistics fold serially in sample order — so
// the estimate, the weights, and every diagnostic are bitwise-identical for
// any thread count. With `proposal = kNominal` the sampler *is* plain Monte
// Carlo: weights are identically 1 and the per-draw circuit delays are
// bitwise-equal to run_monte_carlo's circuit_samples for the same seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sta/graph.h"

namespace statsizer::ssta {

enum class IsleProposal {
  /// Surrogate-guided defensive-mixture proposal (the point of ISLE).
  kImportance,
  /// Nominal distribution, weights identically 1 — plain Monte Carlo through
  /// the same batching/diagnostics machinery. The apples-to-apples baseline
  /// for draws-to-target-CI comparisons.
  kNominal,
};

struct IsleOptions {
  /// Draw budget. With target_yield_se == 0 exactly this many draws run;
  /// otherwise it is the cap on the adaptive loop.
  std::size_t samples = 4096;
  std::uint64_t seed = 12345;
  /// Worker threads sharding the draw loop. 1 = serial on the calling
  /// thread; 0 = hardware concurrency. Results are identical for any value.
  std::size_t threads = 1;
  /// Clock period (the yield target). 0 = take the bound context's SDC
  /// constraint (TimingConstraints::clock_period_ps); when that is absent
  /// too, fall back to surrogate mean + 2 * surrogate sigma (documented
  /// default so analyze() works unconstrained).
  double clock_period_ps = 0.0;
  IsleProposal proposal = IsleProposal::kImportance;
  /// Mixture weight of the nominal component (Hesterberg's defensive
  /// mixture). Bounds every likelihood ratio by 1 / defensive_fraction.
  /// Must be in [0, 1]; 1 degenerates to kNominal sampling.
  double defensive_fraction = 0.25;
  /// Number of dominant paths backing the shifted mixture components (top-K
  /// distinct primary-output cones of the surrogate DP).
  std::size_t dominant_paths = 3;
  /// Surrogate arc score is delay + kappa * sigma: kappa > 0 ranks paths by
  /// their high-quantile delay, not just the nominal critical path.
  double surrogate_kappa = 1.0;
  /// Clamp on |beta| = |(T - mean) / sigma| of a shifted component. A clamp
  /// firing marks the result degenerate (the target is further out than the
  /// proposal can reliably cover).
  double max_shift = 8.0;
  /// Adaptive stopping: grow the draw count in `batch` steps until the
  /// standard error of the yield estimate reaches this, then stop (subject
  /// to min_draws / samples). 0 disables adaptivity. Batch boundaries are a
  /// pure function of the options, never of the thread count.
  double target_yield_se = 0.0;
  std::size_t min_draws = 256;
  std::size_t batch = 256;
  /// Degeneracy trip-wires: overall ESS below min_ess_fraction * draws, or
  /// (with failures observed) failure-restricted ESS below min_failure_ess.
  double min_ess_fraction = 0.05;
  double min_failure_ess = 8.0;
};

struct IsleResult {
  /// The clock period the yield refers to (resolved per IsleOptions).
  double clock_period_ps = 0.0;
  /// Y(T) = P(circuit delay <= T) = 1 - failure_probability.
  double yield = 1.0;
  double failure_probability = 0.0;
  /// Standard error of yield / failure_probability (sample variance of the
  /// per-draw weighted indicator over `draws`).
  double std_error = 0.0;
  /// Draws actually taken (== options.samples unless adaptive stopping).
  std::size_t draws = 0;

  // -- weight diagnostics ----------------------------------------------------
  /// Effective sample size (sum w)^2 / sum w^2 over all draws.
  double ess = 0.0;
  /// ESS restricted to failure hits: (sum wI)^2 / sum (wI)^2. The one that
  /// matters for the failure estimate; 0 when no failures were seen.
  double failure_ess = 0.0;
  double weight_variance = 0.0;
  double max_weight = 0.0;
  /// |beta| hit max_shift (or a path sigma vanished) while building the
  /// proposal.
  bool shift_clamped = false;
  /// The estimate should not be trusted: shift clamped, vanishing surrogate
  /// sigma, ESS collapse, or failure-ESS collapse. Never silently hidden.
  bool degenerate = false;

  // -- surrogate -------------------------------------------------------------
  /// Mixture components actually built (<= options.dominant_paths).
  std::size_t proposal_paths = 0;
  /// Dominant path's linear-Gaussian delay moments and its mean shift.
  double surrogate_mean_ps = 0.0;
  double surrogate_sigma_ps = 0.0;
  double shift_beta = 0.0;

  // -- weighted delay moments (self-normalized) ------------------------------
  double weighted_mean_ps = 0.0;
  double weighted_sigma_ps = 0.0;

  // -- per-draw record (slot s = draw s; for reproducibility pins) -----------
  std::vector<double> delay_samples;
  std::vector<double> weights;
};

[[nodiscard]] IsleResult run_isle(const sta::TimingContext& ctx,
                                  const IsleOptions& options = {});

}  // namespace statsizer::ssta
