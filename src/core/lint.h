// Lint driver: load a design (netlist file or builtin workload), run the
// full DRC sweep, and hand back a structured report — the engine behind
// `example_ingest --lint` and `check.sh --drc`.
//
// The driver is deliberately forgiving where Flow is strict: a parse failure
// caused by a combinational cycle, a structural refusal (multi-driven
// output), or an SDC that names unknown ports all come back as diagnostics
// in the report instead of bare Status errors, so the CLI can print every
// finding with file:line provenance and exit with a meaningful code.
#pragma once

#include <string>
#include <string_view>

#include "core/flow.h"
#include "drc/drc.h"
#include "util/status.h"

namespace statsizer::core {

struct LintOptions {
  /// DRC thresholds and parallelism for the sweep.
  drc::DrcOptions drc;
  /// Optional SDC file checked for coverage against the design.
  std::string sdc_path;
};

struct LintResult {
  drc::DrcReport report;
  /// Set when the input could not be analyzed at all (unreadable file,
  /// malformed syntax with no DRC interpretation). A cycle or a structural
  /// refusal leaves status OK and puts the finding in @p report.
  Status status;
  /// True when the full sweep ran (false = structural findings only).
  bool analyzed = false;

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Lints a netlist file (.bench or .v, by extension).
[[nodiscard]] LintResult lint_file(const std::string& path, const LintOptions& options = {});

/// Lints one of the builtin workloads (circuits::make_table1_circuit names).
[[nodiscard]] LintResult lint_workload(std::string_view name,
                                       const LintOptions& options = {});

}  // namespace statsizer::core
