// Flow — the library's front door. Wires together the whole stack
// (synthetic library or parsed Liberty, circuit generation or .bench input,
// technology mapping, variation model, baseline mean-delay sizing,
// StatisticalGreedy optimization, reporting) behind a handful of calls:
//
//   core::Flow flow;
//   flow.load_table1("c432");
//   flow.run_baseline();                       // the paper's "original" point
//   auto rec = flow.optimize(/*lambda=*/3.0);  // StatisticalGreedy
//   std::cout << rec.sigma_reduction;          // ~ -0.5 .. -0.8
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_format/provenance.h"
#include "bench_format/sdc_reader.h"
#include "drc/drc.h"
#include "liberty/model.h"
#include "liberty/synthetic.h"
#include "netlist/netlist.h"
#include "opt/area_recovery.h"
#include "opt/initial_sizing.h"
#include "opt/objective.h"
#include "opt/sizer_deterministic.h"
#include "opt/sizer_statistical.h"
#include "pdf/discrete_pdf.h"
#include "sta/graph.h"
#include "ssta/fullssta.h"
#include "ssta/isle.h"
#include "ssta/monte_carlo.h"
#include "techmap/mapper.h"
#include "timing/analyzer.h"
#include "util/fault.h"
#include "util/status.h"
#include "variation/model.h"

namespace statsizer::core {

struct FlowOptions {
  liberty::SyntheticOptions library;
  variation::VariationParams variation;
  sta::TimingOptions timing;
  techmap::MapOptions mapping;
  opt::InitialSizingOptions initial_sizing;
  opt::DeterministicSizerOptions baseline;
  ssta::FullSstaOptions fullssta;
  /// Importance-sampled yield estimation (Flow::estimate_yield and the
  /// "isle" analyzer created through Flow::make_analyzer).
  ssta::IsleOptions isle;
  /// Baseline shaping: how constrained-mode area recovery guards timing, its
  /// tolerance, and how many lambda = 0 polish iterations run after recovery
  /// to leave the "original" circuit near its mean-delay optimum (the paper's
  /// premise; without it the lambda runs would harvest mean instead of
  /// variance).
  opt::RecoveryCriterion recovery_criterion = opt::RecoveryCriterion::kDeterministicArrival;
  double recovery_tolerance = 0.003;
  std::size_t post_recovery_polish_iterations = 20;
  /// Worker threads for StatisticalGreedy's candidate scoring and area
  /// recovery's screening waves, applied to run_baseline's stages and to
  /// optimize() when no overrides are passed (explicit overrides carry their
  /// own threads field, which optimize() also forwards to its recovery
  /// stage). 1 = serial, 0 = hardware concurrency; results are identical for
  /// any value.
  std::size_t sizer_threads = 1;
  /// Engine selection for the statistical sizer and area recovery
  /// (timing::make_analyzer registry names), applied — like sizer_threads —
  /// to run_baseline's stages and to optimize() without overrides.
  /// confirm_engine is the accurate acceptance/verification engine (the
  /// sizer needs what-if + per-node moments; recovery needs what-if);
  /// score_engine is the fast inner-loop scorer ("fassta" = the specialized
  /// kernel) and doubles as optimize()'s recovery screen.
  std::string confirm_engine = "fullssta";
  std::string score_engine = "fassta";
  /// Design-rule analysis thresholds (loading and preflight()).
  drc::DrcOptions drc;
  /// When set (the default), run_baseline() and optimize() refuse — with a
  /// std::logic_error naming the first finding — to size a design whose
  /// preflight() reports error-severity diagnostics. Warnings never block.
  bool preflight = true;
};

/// Everything one statistical optimization run produced.
struct OptimizationRecord {
  double lambda = 0.0;
  opt::CircuitStats before;
  opt::CircuitStats after;
  /// Relative changes (fractions; sigma_change is typically negative).
  double mean_change = 0.0;
  double sigma_change = 0.0;
  double area_change = 0.0;
  std::size_t iterations = 0;
  std::size_t resizes = 0;
  double runtime_seconds = 0.0;
  /// Output-delay pdf after optimization (Fig. 1 material). Empty when the
  /// configured confirm engine cannot produce a pdf (non-default engines
  /// without the output_pdf capability).
  pdf::DiscretePdf output_pdf;
};

/// One unit of work for run_monte_carlo_batch: a Table-1 workload, an
/// optional StatisticalGreedy lambda (nullopt = Monte-Carlo the baseline
/// point), and the Monte-Carlo configuration for that circuit.
struct MonteCarloJob {
  std::string table1_name;
  std::optional<double> lambda;
  ssta::MonteCarloOptions mc;
};

struct MonteCarloJobResult {
  Status status;  ///< load failure leaves mc/record empty
  ssta::MonteCarloResult mc;
  /// Present when the job requested an optimization lambda.
  std::optional<OptimizationRecord> record;
};

/// Flow::estimate_yield's payload: which engine produced the estimate plus
/// the full estimator result (yield, standard error, draws, ESS/weight
/// diagnostics, resolved clock period).
struct YieldReport {
  std::string engine;
  ssta::IsleResult result;

  [[nodiscard]] double yield() const { return result.yield; }
  [[nodiscard]] double std_error() const { return result.std_error; }
  [[nodiscard]] std::size_t draws() const { return result.draws; }
};

class Flow {
 public:
  explicit Flow(FlowOptions options = {});

  // -- circuit loading (each call replaces the current circuit) --------------
  /// Maps and adopts an externally built netlist.
  [[nodiscard]] Status load_circuit(netlist::Netlist nl);
  /// Generates one of the 13 Table-1 workloads.
  [[nodiscard]] Status load_table1(std::string_view name);
  /// Reads an ISCAS .bench file.
  [[nodiscard]] Status load_bench_file(const std::string& path);
  /// Reads a structural-Verilog file against this flow's library. The file's
  /// cell bindings (drive strengths) are adopted as-is: load_circuit skips
  /// re-mapping for already-mapped netlists.
  [[nodiscard]] Status load_verilog_file(const std::string& path);

  // -- constraints ------------------------------------------------------------
  /// Parses SDC text / a file and installs the resulting constraints on the
  /// current TimingContext (clock period as the required-time target,
  /// set_input_delay as primary-input arrivals, set_output_delay as
  /// per-output required-time margins). Port names are matched against the
  /// loaded netlist; unknown ports are errors. Precondition: a circuit is
  /// loaded.
  [[nodiscard]] Status apply_sdc(std::string_view text);
  [[nodiscard]] Status apply_sdc_file(const std::string& path);

  // -- write-back -------------------------------------------------------------
  /// Writes the current (sized) netlist as structural Verilog.
  [[nodiscard]] Status write_verilog_file(const std::string& path) const;

  // -- design-rule analysis ----------------------------------------------------
  /// Runs the full DRC sweep (structural + binding + electrical + SDC
  /// coverage) over the current circuit with FlowOptions::drc, using the
  /// ingestion provenance and the most recent apply_sdc source when
  /// available. The report is stored (last_drc()) and returned.
  /// Precondition: a circuit is loaded.
  const drc::DrcReport& preflight();
  /// The most recent DRC report: the structural screen from the last load,
  /// or the last explicit preflight() sweep.
  [[nodiscard]] const drc::DrcReport& last_drc() const { return last_drc_; }
  /// Name -> source-line provenance of the last file-based load (empty for
  /// generated and in-memory circuits).
  [[nodiscard]] const bench_format::Provenance& provenance() const { return provenance_; }

  // -- optimization -----------------------------------------------------------
  /// Deterministic mean-delay sizing: establishes the paper's "original"
  /// operating point. Precondition: a circuit is loaded.
  opt::DeterministicSizerStats run_baseline();

  /// StatisticalGreedy at the given lambda, measured against the state at
  /// call time. @p overrides tweaks the sizer beyond the lambda (optional).
  OptimizationRecord optimize(double lambda,
                              const opt::StatisticalSizerOptions* overrides = nullptr);

  // -- batch analysis ---------------------------------------------------------
  /// Evaluates many (circuit, lambda) points concurrently: each job gets its
  /// own Flow (load_table1 -> run_baseline -> optional optimize) and a
  /// Monte-Carlo run of the resulting circuit. Jobs run through the general
  /// async job system (serve::JobManager; @p threads workers, 0 = hardware
  /// concurrency) with per-job error isolation — any failure becomes that
  /// job's structured Status (its code classifying parse errors vs injected
  /// faults vs internal exceptions) and never perturbs sibling results.
  /// Each job's Monte Carlo runs serially inside it to avoid
  /// oversubscription. Results are index-aligned with @p jobs and
  /// deterministic for any thread count. @p faults optionally installs a
  /// deterministic fault-injection plan; job i reports fault scope i.
  [[nodiscard]] static std::vector<MonteCarloJobResult> run_monte_carlo_batch(
      const std::vector<MonteCarloJob>& jobs, std::size_t threads = 0,
      const FlowOptions& options = {}, const util::FaultPlan* faults = nullptr);

  // -- analysis ----------------------------------------------------------------
  /// Timing yield Y(T) = P(circuit delay <= T) of the current state.
  /// @p clock_period_ps 0 = resolve per FlowOptions::isle (explicit option,
  /// then the installed SDC clock, then the surrogate fallback). @p engine
  /// selects the estimator: "isle" (importance sampling, the default) or
  /// "mc" (plain Monte Carlo through the same machinery — weights are 1 and
  /// the draw budget/adaptive stopping behave identically, which makes the
  /// two reports draw-for-draw comparable). Throws std::invalid_argument for
  /// other names, std::logic_error when no circuit is loaded.
  [[nodiscard]] YieldReport estimate_yield(double clock_period_ps = 0.0,
                                           std::string_view engine = "isle") const;
  /// FULLSSTA-based summary of the current state.
  [[nodiscard]] opt::CircuitStats analyze() const;
  /// Full FULLSSTA result (pdfs, per-node moments).
  [[nodiscard]] ssta::FullSstaResult full_analysis() const;
  /// A timing::Analyzer from the registry, configured with this flow's
  /// engine options (not yet bound: call ->analyze(flow.timing())). Throws
  /// std::invalid_argument for unknown names.
  [[nodiscard]] std::unique_ptr<timing::Analyzer> make_analyzer(
      std::string_view name = "fullssta") const;

  // -- access -------------------------------------------------------------------
  [[nodiscard]] bool has_circuit() const { return netlist_ != nullptr; }
  [[nodiscard]] const netlist::Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] const liberty::Library& library() const { return library_; }
  [[nodiscard]] sta::TimingContext& timing() { return *context_; }
  [[nodiscard]] const FlowOptions& options() const { return options_; }

 private:
  /// Shared tail of the load_* paths: structural DRC screen (errors refuse
  /// the circuit, with the first diagnostic as the status message), netlist
  /// invariants, mapping, context construction. Does not touch provenance_ —
  /// the file loaders fill it before delegating.
  [[nodiscard]] Status adopt_circuit(netlist::Netlist nl);
  /// Throws std::logic_error when preflighting is on and the current design
  /// has error-severity diagnostics. @p stage names the refusing API.
  void require_clean(const char* stage);

  FlowOptions options_;
  liberty::Library library_;
  variation::VariationModel variation_;
  std::unique_ptr<netlist::Netlist> netlist_;       // stable address for context_
  std::unique_ptr<sta::TimingContext> context_;
  bench_format::Provenance provenance_;
  std::optional<bench_format::Sdc> sdc_;            // last applied SDC, for DRC
  std::string sdc_file_;
  drc::DrcReport last_drc_;
};

}  // namespace statsizer::core
