#include "core/flow.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include <unordered_map>

#include "bench_format/bench_reader.h"
#include "bench_format/sdc_reader.h"
#include "bench_format/verilog_reader.h"
#include "bench_format/verilog_writer.h"
#include "circuits/iscas_suite.h"
#include "serve/job.h"
#include "util/thread_pool.h"

namespace statsizer::core {

Flow::Flow(FlowOptions options)
    : options_(std::move(options)),
      library_(liberty::build_synthetic_90nm(options_.library)),
      variation_(options_.variation) {}

Status Flow::adopt_circuit(netlist::Netlist nl) {
  // The structural DRC screen runs before Netlist::check(): its diagnostics
  // (named cycle witness, duplicated output with both drivers) subsume the
  // invariant checker's messages for the overlapping failures, and the
  // warnings (dangling outputs, dead cones) are kept for last_drc().
  last_drc_ = drc::check_netlist(nl, options_.drc, &provenance_);
  if (last_drc_.has_errors()) {
    const drc::Diagnostic& d = *last_drc_.first_error();
    return Status::invalid_argument(std::string(drc::rule_id(d.rule)) + ": " + d.message);
  }
  if (const Status s = nl.check(); !s.ok()) return s;
  auto owned = std::make_unique<netlist::Netlist>(std::move(nl));
  // An already-mapped netlist (e.g. read from structural Verilog, where each
  // instantiation names its cell and drive) keeps its bindings; everything
  // else goes through the mapper.
  if (!techmap::is_mapped(*owned, library_)) {
    if (const Status s = techmap::map_to_library(*owned, library_, options_.mapping);
        !s.ok()) {
      return s;
    }
  }
  netlist_ = std::move(owned);
  context_ = std::make_unique<sta::TimingContext>(*netlist_, library_, variation_,
                                                  options_.timing);
  sdc_.reset();
  sdc_file_.clear();
  return Status();
}

Status Flow::load_circuit(netlist::Netlist nl) {
  provenance_.clear();
  return adopt_circuit(std::move(nl));
}

Status Flow::load_table1(std::string_view name) {
  try {
    return load_circuit(circuits::make_table1_circuit(name));
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  }
}

Status Flow::load_bench_file(const std::string& path) {
  provenance_.clear();
  auto parsed = bench_format::read_bench_file(path, &provenance_);
  if (!parsed.ok()) return parsed.status();
  return adopt_circuit(std::move(parsed.value()));
}

Status Flow::load_verilog_file(const std::string& path) {
  provenance_.clear();
  auto parsed = bench_format::read_verilog_file(path, library_, &provenance_);
  if (!parsed.ok()) return parsed.status();
  return adopt_circuit(std::move(parsed.value()));
}

namespace {

/// Resolves the parsed SDC's port names against the netlist into the sta
/// layer's dense constraint vectors. Lives here (not in bench_format) to
/// keep the format readers below the sta layer.
StatusOr<sta::TimingConstraints> to_constraints(const bench_format::Sdc& sdc,
                                                const netlist::Netlist& nl) {
  sta::TimingConstraints c;
  c.clock_period_ps = sdc.clock_period_ps;

  if (!sdc.input_delays.empty()) {
    c.input_arrival_ps.assign(nl.node_count(), 0.0);
    for (const auto& entry : sdc.input_delays) {
      if (entry.all_ports) {
        for (const netlist::GateId id : nl.inputs()) {
          c.input_arrival_ps[id] = entry.delay_ps;
        }
        continue;
      }
      for (const std::string& port : entry.ports) {
        const netlist::GateId id = nl.find(port);
        if (id == netlist::kNoGate || !nl.is_input(id)) {
          return Status::invalid_argument("set_input_delay: '" + port + "' is not a primary input of " +
                               nl.name());
        }
        c.input_arrival_ps[id] = entry.delay_ps;
      }
    }
  }

  if (!sdc.output_delays.empty()) {
    c.output_delay_ps.assign(nl.outputs().size(), 0.0);
    std::unordered_map<std::string_view, std::size_t> output_index;
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      output_index.emplace(nl.outputs()[i].name, i);
    }
    for (const auto& entry : sdc.output_delays) {
      if (entry.all_ports) {
        for (double& d : c.output_delay_ps) d = entry.delay_ps;
        continue;
      }
      for (const std::string& port : entry.ports) {
        const auto it = output_index.find(port);
        if (it == output_index.end()) {
          return Status::invalid_argument("set_output_delay: '" + port + "' is not a primary output of " +
                               nl.name());
        }
        c.output_delay_ps[it->second] = entry.delay_ps;
      }
    }
  }
  return c;
}

}  // namespace

Status Flow::apply_sdc(std::string_view text) {
  if (!has_circuit()) return Status::invalid_argument("apply_sdc: no circuit loaded");
  auto sdc = bench_format::read_sdc(text);
  if (!sdc.ok()) return sdc.status();
  auto constraints = to_constraints(*sdc, *netlist_);
  if (!constraints.ok()) return constraints.status();
  context_->set_constraints(std::move(constraints.value()));
  sdc_ = std::move(sdc.value());
  sdc_file_.clear();
  return Status();
}

Status Flow::apply_sdc_file(const std::string& path) {
  if (!has_circuit()) return Status::invalid_argument("apply_sdc_file: no circuit loaded");
  auto sdc = bench_format::read_sdc_file(path);
  if (!sdc.ok()) return sdc.status();
  auto constraints = to_constraints(*sdc, *netlist_);
  if (!constraints.ok()) return constraints.status();
  context_->set_constraints(std::move(constraints.value()));
  sdc_ = std::move(sdc.value());
  sdc_file_ = path;
  return Status();
}

const drc::DrcReport& Flow::preflight() {
  if (!has_circuit()) throw std::logic_error("Flow::preflight: no circuit loaded");
  last_drc_ = drc::run_drc(*context_, options_.drc, &provenance_,
                           sdc_.has_value() ? &*sdc_ : nullptr, sdc_file_);
  return last_drc_;
}

void Flow::require_clean(const char* stage) {
  if (!options_.preflight) return;
  if (!preflight().has_errors()) return;
  const drc::Diagnostic& d = *last_drc_.first_error();
  throw std::logic_error(std::string(stage) + ": design fails preflight DRC [" +
                         std::string(drc::rule_id(d.rule)) + "] " + d.message);
}

Status Flow::write_verilog_file(const std::string& path) const {
  if (!has_circuit()) return Status::invalid_argument("write_verilog_file: no circuit loaded");
  return bench_format::write_verilog_file(*netlist_, library_, path);
}

opt::DeterministicSizerStats Flow::run_baseline() {
  if (!has_circuit()) throw std::logic_error("Flow::run_baseline: no circuit loaded");
  require_clean("Flow::run_baseline");
  // The paper's "original" is a circuit "obtained by optimizing ... with a
  // goal of minimizing the mean of the longest delay". Three stages:
  // load-balanced initial sizing (what synthesis emits), TILOS-style
  // critical-path sizing, then the statistical machinery at lambda = 0 —
  // pure mean optimization — until no further improvement.
  (void)opt::apply_initial_sizing(*context_, options_.initial_sizing);
  const opt::DeterministicSizerStats tilos =
      opt::size_for_mean_delay(*context_, options_.baseline);

  opt::StatisticalSizerOptions polish;
  polish.objective.lambda = 0.0;
  polish.threads = options_.sizer_threads;
  polish.confirm_engine = options_.confirm_engine;
  polish.score_engine = options_.score_engine;
  // Bounded effort on large circuits: the polish exists to put the baseline
  // at its E[max] optimum, and diminishing returns set in well before the
  // default cap on multi-thousand-gate netlists.
  polish.max_iterations = netlist_->logic_gate_count() > 1500 ? 50 : 150;
  polish.fullssta = options_.fullssta;
  (void)opt::size_statistically(*context_, polish);

  // Constrained-mode area recovery (paper section 2.1: "delay ... is
  // optimized first then area is recovered as far as possible without
  // violating a delay constraint"). This is what leaves off-critical gates
  // small — and why the mean-optimized circuit has the widest spread.
  // screen_engine stays on the criterion-based default (dsta for the
  // deterministic arrival guard, fassta for the statistical one).
  opt::AreaRecoveryOptions recovery;
  recovery.criterion = options_.recovery_criterion;
  recovery.tolerance = options_.recovery_tolerance;
  recovery.objective.lambda = 0.0;
  recovery.threads = options_.sizer_threads;
  recovery.confirm_engine = options_.confirm_engine;
  recovery.fullssta = options_.fullssta;
  (void)opt::recover_area(*context_, recovery);

  // Short re-polish so the baseline sits at (not merely near) its E[max]
  // optimum: the statistical runs should pay mean for variance, not find
  // leftover mean wins.
  if (options_.post_recovery_polish_iterations > 0) {
    polish.max_iterations = options_.post_recovery_polish_iterations;
    (void)opt::size_statistically(*context_, polish);
  }
  return tilos;
}

OptimizationRecord Flow::optimize(double lambda,
                                  const opt::StatisticalSizerOptions* overrides) {
  if (!has_circuit()) throw std::logic_error("Flow::optimize: no circuit loaded");
  require_clean("Flow::optimize");

  opt::StatisticalSizerOptions sizer = overrides != nullptr ? *overrides
                                                            : opt::StatisticalSizerOptions{};
  if (overrides == nullptr) {
    // Flow defaults apply only when the caller passed no overrides — an
    // explicit overrides struct carries its own engine configuration
    // (including fullssta options) untouched.
    sizer.threads = options_.sizer_threads;
    sizer.confirm_engine = options_.confirm_engine;
    sizer.score_engine = options_.score_engine;
    sizer.fullssta = options_.fullssta;
  }
  sizer.objective.lambda = lambda;

  const auto t0 = std::chrono::steady_clock::now();
  opt::StatisticalSizerStats stats = opt::size_statistically(*context_, sizer);

  // Constrained-mode cleanup: the optimizer's coordinated moves (population
  // bumps) oversize gates whose contribution to the achieved objective is
  // marginal; recover that area without giving the objective back. Recovery
  // guards and measures with the sizer's engines and FullSstaOptions, so its
  // exact budgets agree with the record reported below.
  opt::AreaRecoveryOptions recovery;
  recovery.criterion = opt::RecoveryCriterion::kStatisticalCost;
  recovery.objective = sizer.objective;
  recovery.tolerance = 0.002;
  recovery.threads = sizer.threads;
  recovery.screen_engine = sizer.score_engine;
  recovery.confirm_engine = sizer.confirm_engine;
  recovery.fullssta = sizer.fullssta;
  recovery.fassta = sizer.fassta;
  opt::AreaRecoveryStats recovered = opt::recover_area(*context_, recovery);
  // Statistical-criterion recovery always returns its confirm engine's exact
  // summary of the committed final state (bitwise what a fresh run_fullssta
  // would report), so the old post-recovery refresh is gone.
  stats.final_.mean_ps = recovered.final_summary.mean_ps;
  stats.final_.sigma_ps = recovered.final_summary.sigma_ps;
  stats.final_.area_um2 = context_->area_um2();
  const auto t1 = std::chrono::steady_clock::now();

  OptimizationRecord rec;
  rec.lambda = lambda;
  rec.before = stats.initial;
  rec.after = stats.final_;
  rec.mean_change = stats.initial.mean_ps > 0.0
                        ? stats.final_.mean_ps / stats.initial.mean_ps - 1.0
                        : 0.0;
  rec.sigma_change = stats.initial.sigma_ps > 0.0
                         ? stats.final_.sigma_ps / stats.initial.sigma_ps - 1.0
                         : 0.0;
  rec.area_change = stats.initial.area_um2 > 0.0
                        ? stats.final_.area_um2 / stats.initial.area_um2 - 1.0
                        : 0.0;
  rec.iterations = stats.iterations;
  rec.resizes = stats.resizes;
  rec.runtime_seconds = std::chrono::duration<double>(t1 - t0).count();
  // The recovery's final analysis already holds the pdf of this exact state.
  rec.output_pdf = std::move(recovered.final_summary.output_pdf);
  return rec;
}

std::vector<MonteCarloJobResult> Flow::run_monte_carlo_batch(
    const std::vector<MonteCarloJob>& jobs, std::size_t threads,
    const FlowOptions& options, const util::FaultPlan* faults) {
  std::vector<MonteCarloJobResult> results(jobs.size());
  // The manager parallelizes across jobs; inner parallelism (Monte-Carlo
  // sharding, sizer candidate scoring) is pinned to 1 — partly to avoid
  // oversubscription, partly so every kernel runs its inline deterministic
  // path, where cooperative checkpoints (cancellation, deadlines, fault
  // injection) have full coverage. Determinism makes 1 and N threads
  // equivalent result-wise.
  FlowOptions job_options = options;
  job_options.sizer_threads = 1;
  serve::JobManagerOptions manager_options;
  manager_options.threads = threads;
  // Batch mode admits everything: admission control is a serving concern.
  manager_options.limits.max_queue_depth = std::max<std::size_t>(jobs.size(), 1);
  manager_options.faults = faults;
  serve::JobManager manager(manager_options);

  std::vector<serve::JobRef> handles(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    serve::JobOptions job_opts;
    job_opts.fault_scope = j;  // fault plans address jobs by batch index
    handles[j] = manager.submit(
        [&jobs, &results, &job_options, j] {
          const MonteCarloJob& job = jobs[j];
          MonteCarloJobResult& out = results[j];
          out = MonteCarloJobResult{};  // re-runnable under retry
          Flow flow(job_options);
          if (Status s = flow.load_table1(job.table1_name); !s.ok()) {
            throw StatusError(std::move(s));  // keeps kInvalidArgument
          }
          (void)flow.run_baseline();
          if (job.lambda.has_value()) {
            out.record = flow.optimize(*job.lambda);
          }
          ssta::MonteCarloOptions mc = job.mc;
          mc.threads = 1;  // the manager parallelizes across jobs
          out.mc = ssta::run_monte_carlo(flow.timing(), mc);
        },
        job_opts);
  }
  manager.wait_all();

  // Per-job error isolation: a failed job carries its structured Status and
  // empty payloads; siblings are untouched (bitwise-identical to a clean run).
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    results[j].status = handles[j]->status();
    if (!results[j].status.ok()) {
      results[j].mc = ssta::MonteCarloResult{};
      results[j].record.reset();
    }
  }
  return results;
}

YieldReport Flow::estimate_yield(double clock_period_ps, std::string_view engine) const {
  if (!has_circuit()) throw std::logic_error("Flow::estimate_yield: no circuit loaded");
  ssta::IsleOptions isle = options_.isle;
  if (clock_period_ps > 0.0) isle.clock_period_ps = clock_period_ps;
  if (engine == "mc") {
    isle.proposal = ssta::IsleProposal::kNominal;
  } else if (engine != "isle") {
    throw std::invalid_argument("Flow::estimate_yield: unknown engine \"" +
                                std::string(engine) + "\" (known: isle, mc)");
  }
  YieldReport report;
  report.engine = engine;
  report.result = ssta::run_isle(*context_, isle);
  return report;
}

opt::CircuitStats Flow::analyze() const {
  if (!has_circuit()) throw std::logic_error("Flow::analyze: no circuit loaded");
  const ssta::FullSstaResult full = ssta::run_fullssta(*context_, options_.fullssta);
  opt::CircuitStats s;
  s.mean_ps = full.mean_ps;
  s.sigma_ps = full.sigma_ps;
  s.area_um2 = context_->area_um2();
  return s;
}

ssta::FullSstaResult Flow::full_analysis() const {
  if (!has_circuit()) throw std::logic_error("Flow::full_analysis: no circuit loaded");
  return ssta::run_fullssta(*context_, options_.fullssta);
}

std::unique_ptr<timing::Analyzer> Flow::make_analyzer(std::string_view name) const {
  timing::AnalyzerOptions analyzer_options;
  analyzer_options.fullssta = options_.fullssta;
  analyzer_options.isle = options_.isle;
  return timing::make_analyzer(name, analyzer_options);
}

}  // namespace statsizer::core
