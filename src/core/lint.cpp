#include "core/lint.h"

#include <optional>
#include <utility>

#include "bench_format/sdc_reader.h"

namespace statsizer::core {

namespace {

/// Runs the sweep on a loaded flow, folding in the optional SDC. SDC parse
/// failures abort (malformed syntax has no DRC interpretation); port-name
/// and coverage problems come back as diagnostics.
LintResult sweep(Flow& flow, const LintOptions& options) {
  LintResult result;
  std::optional<bench_format::Sdc> sdc;
  if (!options.sdc_path.empty()) {
    auto parsed = bench_format::read_sdc_file(options.sdc_path);
    if (!parsed.ok()) {
      result.status = parsed.status();
      return result;
    }
    sdc = std::move(parsed.value());
  }
  result.report = drc::run_drc(flow.timing(), options.drc, &flow.provenance(),
                               sdc.has_value() ? &*sdc : nullptr, options.sdc_path);
  result.analyzed = true;
  return result;
}

/// Converts a load failure into a report when the failure has a DRC shape:
/// a reader-detected cycle (witness recorded in provenance) or a structural
/// refusal (the screen's findings are in last_drc()). Returns nullopt for
/// plain parse errors.
std::optional<LintResult> diagnose_load_failure(const Flow& flow, const Status& load,
                                                const std::string& path) {
  if (!flow.provenance().cycle.empty()) {
    LintResult result;
    drc::Diagnostic d;
    d.rule = drc::Rule::kCombinationalCycle;
    d.severity = drc::Severity::kError;
    d.witness = flow.provenance().cycle;
    d.object = d.witness.front();
    d.message = load.message();
    d.file = path;
    d.line = flow.provenance().line(d.object);
    result.report.diagnostics.push_back(std::move(d));
    return result;
  }
  if (flow.last_drc().has_errors()) {
    LintResult result;
    result.report = flow.last_drc();
    return result;
  }
  return std::nullopt;
}

}  // namespace

LintResult lint_file(const std::string& path, const LintOptions& options) {
  FlowOptions flow_options;
  flow_options.drc = options.drc;
  Flow flow(flow_options);

  const auto dot = path.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  Status load;
  if (ext == ".bench") {
    load = flow.load_bench_file(path);
  } else if (ext == ".v") {
    load = flow.load_verilog_file(path);
  } else {
    LintResult result;
    result.status =
        Status::invalid_argument("lint_file: unsupported extension '" + ext + "' (want .bench or .v)");
    return result;
  }
  if (!load.ok()) {
    if (auto diagnosed = diagnose_load_failure(flow, load, path); diagnosed.has_value()) {
      return *std::move(diagnosed);
    }
    LintResult result;
    result.status = load;
    return result;
  }
  return sweep(flow, options);
}

LintResult lint_workload(std::string_view name, const LintOptions& options) {
  FlowOptions flow_options;
  flow_options.drc = options.drc;
  Flow flow(flow_options);
  if (const Status load = flow.load_table1(name); !load.ok()) {
    LintResult result;
    result.status = load;
    return result;
  }
  return sweep(flow, options);
}

}  // namespace statsizer::core
