#include "pdf/discrete_pdf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "debug/validate.h"
#include "util/check.h"
#include "util/numeric.h"

namespace statsizer::pdf {

namespace {
/// Deposits @p mass at continuous position @p x onto the grid (origin, step,
/// bins), splitting linearly between the two neighbouring bins so the first
/// moment is preserved exactly.
void deposit(std::vector<double>& bins, double origin, double step, double x, double mass) {
  if (step == 0.0 || bins.size() == 1) {
    bins[0] += mass;
    return;
  }
  const double pos = (x - origin) / step;
  if (pos <= 0.0) {
    bins.front() += mass;
    return;
  }
  if (pos >= static_cast<double>(bins.size() - 1)) {
    bins.back() += mass;
    return;
  }
  const auto lo = static_cast<std::size_t>(pos);
  const double t = pos - static_cast<double>(lo);
  bins[lo] += mass * (1.0 - t);
  bins[lo + 1] += mass * t;
}

/// Grid half-width in sigmas for freshly produced pdfs. Without this trim the
/// support of a sum grows linearly with path depth (min/max add) while the
/// true sigma only grows as sqrt(depth); a fixed sample count would then
/// become so coarse that rebinning noise dominates the variance. Trimming to
/// a moment-based window keeps the per-bin resolution proportional to sigma
/// at any depth. Mass outside the window (~1e-6) folds into the end bins.
constexpr double kGridSpanSigmas = 5.0;

/// Affinely rescales @p p around its mean so that its mean/variance equal the
/// externally known exact values. Grid-based sum/max unavoidably smear mass
/// across bins (each linear deposit adds ~step^2/6 of variance); left alone
/// that error *compounds exponentially with logic depth*. Both operations can
/// compute their exact result moments cheaply, so the residual error after
/// this correction is only in shape, not in the first two moments.
DiscretePdf moment_matched(const DiscretePdf& p, double mean_target, double var_target) {
  if (var_target <= 0.0) return DiscretePdf::point(mean_target);
  if (p.is_point()) return DiscretePdf::point(mean_target);
  const double mean_actual = p.mean();
  const double var_actual = p.variance();
  if (var_actual <= 0.0) return DiscretePdf::point(mean_target);
  const double r = std::sqrt(var_target / var_actual);
  // The affine map x -> mean_target + r * (x - mean_actual) preserves masses.
  return DiscretePdf::from_masses(mean_target + r * (p.origin() - mean_actual),
                                  r * p.step(), std::vector<double>(p.masses()));
}
}  // namespace

DiscretePdf DiscretePdf::point(double value) {
  DiscretePdf p;
  p.origin_ = value;
  p.step_ = 0.0;
  p.mass_ = {1.0};
  return p;
}

DiscretePdf DiscretePdf::normal(double mean, double sigma, std::size_t samples,
                                double span_sigmas) {
  if (sigma < 0.0) throw std::invalid_argument("DiscretePdf::normal: negative sigma");
  if (sigma == 0.0 || samples < 2) return point(mean);
  DiscretePdf p;
  const double lo = mean - span_sigmas * sigma;
  const double hi = mean + span_sigmas * sigma;
  p.origin_ = lo;
  p.step_ = (hi - lo) / static_cast<double>(samples - 1);
  p.mass_.resize(samples);
  // Exact bin masses: each grid point owns the CDF mass of the half-open
  // interval around it (tails folded into the end bins).
  double prev_cdf = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double right_edge = (i + 1 < samples)
                                  ? (p.value_at(i) + 0.5 * p.step_ - mean) / sigma
                                  : std::numeric_limits<double>::infinity();
    const double c = (i + 1 < samples) ? util::normal_cdf(right_edge) : 1.0;
    p.mass_[i] = c - prev_cdf;
    prev_cdf = c;
  }
  // Tail folding biases the raw bin moments (noticeably so at coarse sample
  // counts); pin them to the requested values.
  return moment_matched(p, mean, sigma * sigma);
}

DiscretePdf DiscretePdf::from_masses(double origin, double step, std::vector<double> masses) {
  if (masses.empty()) throw std::invalid_argument("DiscretePdf: empty mass vector");
  double total = 0.0;
  for (const double m : masses) {
    if (m < 0.0) throw std::invalid_argument("DiscretePdf: negative mass");
    total += m;
  }
  if (total <= 0.0) throw std::invalid_argument("DiscretePdf: all-zero masses");
  for (double& m : masses) m /= total;
  DiscretePdf p;
  p.origin_ = origin;
  p.step_ = masses.size() == 1 ? 0.0 : step;
  p.mass_ = std::move(masses);
  return p;
}

double DiscretePdf::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) m += value_at(i) * mass_[i];
  return m;
}

double DiscretePdf::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    const double d = value_at(i) - m;
    v += d * d * mass_[i];
  }
  return v;
}

double DiscretePdf::stddev() const { return std::sqrt(variance()); }

double DiscretePdf::cdf(double x) const {
  if (is_point()) return x >= origin_ ? 1.0 : 0.0;
  // Centered-bin convention: the mass at grid point v is spread uniformly
  // over [v - step/2, v + step/2], so a symmetric pdf has cdf(mean) = 0.5.
  const double half = 0.5 * step_;
  double acc = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    const double lo = value_at(i) - half;
    if (x >= lo + step_) {
      acc += mass_[i];
    } else if (x > lo) {
      acc += mass_[i] * (x - lo) / step_;
      break;
    } else {
      break;
    }
  }
  return std::min(acc, 1.0);
}

double DiscretePdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::domain_error("DiscretePdf::quantile: q outside [0,1]");
  if (is_point()) return origin_;
  const double half = 0.5 * step_;
  double acc = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    if (acc + mass_[i] >= q) {
      if (mass_[i] == 0.0) return value_at(i);
      const double t = (q - acc) / mass_[i];
      return value_at(i) - half + t * step_;
    }
    acc += mass_[i];
  }
  return max_value() + half;
}

DiscretePdf DiscretePdf::shifted(double c) const {
  DiscretePdf p = *this;
  p.origin_ += c;
  return p;
}

DiscretePdf DiscretePdf::resampled(std::size_t samples) const {
  if (samples == 0) throw std::invalid_argument("resampled: zero samples");
  if (is_point() || samples == 1) return point(mean());
  if (samples == size()) return *this;
  DiscretePdf p;
  p.origin_ = origin_;
  p.step_ = (max_value() - origin_) / static_cast<double>(samples - 1);
  p.mass_.assign(samples, 0.0);
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    deposit(p.mass_, p.origin_, p.step_, value_at(i), mass_[i]);
  }
  // Rebinning smears mass across neighbouring bins; restore the moments.
  return moment_matched(p, mean(), variance());
}



DiscretePdf sum(const DiscretePdf& x, const DiscretePdf& y, std::size_t samples) {
  if (x.is_point()) return y.shifted(x.origin());
  if (y.is_point()) return x.shifted(y.origin());

  // Independence: moments of the result are exactly known — use them to pick
  // a tight grid before convolving.
  const double mu = x.mean() + y.mean();
  const double sd = std::sqrt(x.variance() + y.variance());
  const double lo = std::max(x.min_value() + y.min_value(), mu - kGridSpanSigmas * sd);
  const double hi = std::min(x.max_value() + y.max_value(), mu + kGridSpanSigmas * sd);
  if (hi <= lo) return DiscretePdf::point(mu);

  std::vector<double> bins(std::max<std::size_t>(samples, 2), 0.0);
  const double step = (hi - lo) / static_cast<double>(bins.size() - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xv = x.value_at(i);
    const double xm = x.mass_at(i);
    if (xm == 0.0) continue;
    for (std::size_t j = 0; j < y.size(); ++j) {
      const double m = xm * y.mass_at(j);
      if (m == 0.0) continue;
      deposit(bins, lo, step, xv + y.value_at(j), m);
    }
  }
  // Independence: exact result moments are known — pin them.
  DiscretePdf r = moment_matched(DiscretePdf::from_masses(lo, step, std::move(bins)), mu,
                                 x.variance() + y.variance());
  if constexpr (debug::kParanoid) {
    debug::validate_pdf(r);
  }
  return r;
}

DiscretePdf max(const DiscretePdf& x, const DiscretePdf& y, std::size_t samples) {
  // Degenerate cases: max with a point clips the other distribution.
  const double lo_support = std::max(x.min_value(), y.min_value());
  const double hi_support = std::max(x.max_value(), y.max_value());
  if (hi_support <= lo_support) return DiscretePdf::point(hi_support);

  // Two-pass evaluation: a coarse pass estimates the result's moments, a
  // second pass lays the final grid tightly around them (same trimming
  // rationale as in sum()).
  const std::size_t n = std::max<std::size_t>(samples, 2);
  const auto eval = [&](double lo, double hi) {
    std::vector<double> bins(n, 0.0);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    double prev = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = lo + step * static_cast<double>(i);
      // Independence: F_max(t) = Fx(t) * Fy(t).
      const double c = std::min(1.0, x.cdf(t) * y.cdf(t));
      bins[i] = std::max(0.0, c - prev);
      prev = c;
    }
    // Guarantee total mass 1 even if the top grid point undershoots F = 1.
    bins[n - 1] += std::max(0.0, 1.0 - prev);
    return DiscretePdf::from_masses(lo, step, std::move(bins));
  };

  // Exact moments of max(X, Y) over the discrete input atoms — O(|x| * |y|),
  // used both to window the grid and to pin the result's moments.
  double e1 = 0.0;
  double e2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xv = x.value_at(i);
    const double xm = x.mass_at(i);
    if (xm == 0.0) continue;
    for (std::size_t j = 0; j < y.size(); ++j) {
      const double v = std::max(xv, y.value_at(j));
      const double m = xm * y.mass_at(j);
      e1 += v * m;
      e2 += v * v * m;
    }
  }
  const double var = std::max(0.0, e2 - e1 * e1);
  const double sd = std::sqrt(var);
  if (sd == 0.0) return DiscretePdf::point(e1);
  const double lo = std::max(lo_support, e1 - kGridSpanSigmas * sd);
  const double hi = std::min(hi_support, e1 + kGridSpanSigmas * sd);
  if (hi <= lo) return DiscretePdf::point(e1);
  DiscretePdf r = moment_matched(eval(lo, hi), e1, var);
  if constexpr (debug::kParanoid) {
    debug::validate_pdf(r);
  }
  return r;
}

}  // namespace statsizer::pdf
