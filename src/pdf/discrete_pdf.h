// Discrete probability distributions on a uniform grid — the representation
// behind FULLSSTA (after Liou et al., DAC'01: pdfs discretized at a
// user-controlled sampling rate; sum and max performed by shifting, scaling
// and min/max reduction). The paper used 10-15 samples per pdf as its
// accuracy/speed tradeoff.
#pragma once

#include <cstddef>
#include <vector>

namespace statsizer::pdf {

/// A probability mass function on the uniform grid
///   x_i = origin + i * step,  i in [0, size)
/// with masses that sum to 1. step == 0 encodes a point mass (size 1).
class DiscretePdf {
 public:
  DiscretePdf() = default;

  /// Point mass at @p value.
  static DiscretePdf point(double value);

  /// Discretization of Normal(mean, sigma) over +-span_sigmas using exact bin
  /// masses (CDF differences), @p samples grid points. sigma == 0 degenerates
  /// to a point mass.
  static DiscretePdf normal(double mean, double sigma, std::size_t samples = 13,
                            double span_sigmas = 4.0);

  /// Raw construction; masses are normalized to sum 1. Throws on empty or
  /// all-zero masses, or negative entries.
  static DiscretePdf from_masses(double origin, double step, std::vector<double> masses);

  // -- grid access -------------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return mass_.size(); }
  [[nodiscard]] double origin() const { return origin_; }
  [[nodiscard]] double step() const { return step_; }
  [[nodiscard]] double value_at(std::size_t i) const { return origin_ + step_ * i; }
  [[nodiscard]] double mass_at(std::size_t i) const { return mass_[i]; }
  [[nodiscard]] const std::vector<double>& masses() const { return mass_; }
  [[nodiscard]] double min_value() const { return origin_; }
  [[nodiscard]] double max_value() const { return value_at(size() - 1); }
  [[nodiscard]] bool is_point() const { return mass_.size() == 1; }

  // -- moments / statistics ------------------------------------------------------
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// P(X <= x), with linear interpolation between grid points.
  [[nodiscard]] double cdf(double x) const;
  /// Smallest grid-interpolated x with P(X <= x) >= q.
  [[nodiscard]] double quantile(double q) const;

  // -- transforms -----------------------------------------------------------------
  /// X + c.
  [[nodiscard]] DiscretePdf shifted(double c) const;
  /// Rebin onto a @p samples-point grid spanning the same range (mass is
  /// split linearly between neighbouring target bins; mean is preserved).
  [[nodiscard]] DiscretePdf resampled(std::size_t samples) const;

 private:
  double origin_ = 0.0;
  double step_ = 0.0;
  std::vector<double> mass_;
};

/// X + Y for independent X, Y: full discrete convolution, rebinned to
/// @p samples points. The result's first two moments are *exact* (pinned to
/// the analytic values via an affine grid correction); in exchange the grid
/// may extend a fraction of one bin beyond the true support.
[[nodiscard]] DiscretePdf sum(const DiscretePdf& x, const DiscretePdf& y, std::size_t samples);

/// max(X, Y) for independent X, Y via the CDF product
/// P(max <= t) = Fx(t) * Fy(t), evaluated on a @p samples-point grid. Moments
/// are pinned to the exact discrete values (same support caveat as sum).
[[nodiscard]] DiscretePdf max(const DiscretePdf& x, const DiscretePdf& y, std::size_t samples);

}  // namespace statsizer::pdf
