#include "bench_format/sdc_reader.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace statsizer::bench_format {

namespace {

Status err(int line, const std::string& what) {
  return Status::invalid_argument("line " + std::to_string(line) + ": " + what);
}

/// Tokens of one SDC line: words, '[', ']', and brace-quoted literals
/// (returned with their braces stripped; inner '[' ']' are literal, so port
/// names like "a[3]" survive when written as {a[3]}).
struct SdcToken {
  enum class Kind { kWord, kOpenBracket, kCloseBracket, kBraced } kind = Kind::kWord;
  std::string value;
};

StatusOr<std::vector<SdcToken>> lex_line(const std::string& line, int line_no) {
  std::vector<SdcToken> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') break;  // comment to end of line
    if (c == '[') {
      tokens.push_back({SdcToken::Kind::kOpenBracket, "["});
      ++i;
      continue;
    }
    if (c == ']') {
      tokens.push_back({SdcToken::Kind::kCloseBracket, "]"});
      ++i;
      continue;
    }
    if (c == '{') {
      const auto close = line.find('}', i + 1);
      if (close == std::string::npos) return err(line_no, "unterminated '{' in: " + line);
      tokens.push_back({SdcToken::Kind::kBraced, line.substr(i + 1, close - i - 1)});
      i = close + 1;
      continue;
    }
    if (c == '}') return err(line_no, "unmatched '}' in: " + line);
    std::string word;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != '[' && line[i] != ']' && line[i] != '{' && line[i] != '}' &&
           line[i] != '#') {
      word += line[i++];
    }
    tokens.push_back({SdcToken::Kind::kWord, std::move(word)});
  }
  return tokens;
}

StatusOr<double> parse_number(const std::string& word, int line_no) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), value);
  if (ec != std::errc() || ptr != word.data() + word.size()) {
    return err(line_no, "expected a number, got '" + word + "'");
  }
  return value;
}

/// Parses a bracketed object list: "[get_ports {a b}]", "[get_ports a]",
/// "[all_inputs]" / "[all_outputs]". @p cursor starts at the '['.
StatusOr<SdcPortDelay> parse_object_list(const std::vector<SdcToken>& tokens,
                                         std::size_t& cursor, bool inputs, int line_no) {
  SdcPortDelay result;
  ++cursor;  // consume '['
  if (cursor >= tokens.size() || tokens[cursor].kind != SdcToken::Kind::kWord) {
    return err(line_no, "expected get_ports / all_inputs / all_outputs after '['");
  }
  const std::string& command = tokens[cursor].value;
  const char* all_cmd = inputs ? "all_inputs" : "all_outputs";
  if (command == all_cmd) {
    result.all_ports = true;
    ++cursor;
  } else if (command == "get_ports") {
    ++cursor;
    while (cursor < tokens.size() &&
           (tokens[cursor].kind == SdcToken::Kind::kWord ||
            tokens[cursor].kind == SdcToken::Kind::kBraced)) {
      if (tokens[cursor].kind == SdcToken::Kind::kBraced) {
        // A braced literal may list several whitespace-separated ports.
        std::istringstream parts(tokens[cursor].value);
        std::string p;
        while (parts >> p) result.ports.push_back(p);
      } else {
        result.ports.push_back(tokens[cursor].value);
      }
      ++cursor;
    }
    if (result.ports.empty()) return err(line_no, "get_ports with no ports");
  } else {
    return err(line_no, "unsupported object query '" + command + "'");
  }
  if (cursor >= tokens.size() || tokens[cursor].kind != SdcToken::Kind::kCloseBracket) {
    return err(line_no, "expected ']' to close the object list");
  }
  ++cursor;
  return result;
}

Status parse_port_delay(const std::vector<SdcToken>& tokens, bool inputs, int line_no,
                        Sdc& sdc) {
  SdcPortDelay entry;
  bool have_delay = false;
  bool have_objects = false;
  std::size_t cursor = 1;
  while (cursor < tokens.size()) {
    const SdcToken& t = tokens[cursor];
    if (t.kind == SdcToken::Kind::kWord && t.value == "-clock") {
      if (cursor + 1 >= tokens.size()) return err(line_no, "-clock needs a clock name");
      cursor += 2;  // clock name recorded nowhere: single-clock analysis
      continue;
    }
    if (t.kind == SdcToken::Kind::kWord && !t.value.empty() && t.value[0] == '-') {
      return err(line_no, "unsupported flag '" + t.value + "'");
    }
    if (t.kind == SdcToken::Kind::kWord && !have_delay) {
      auto v = parse_number(t.value, line_no);
      if (!v.ok()) return v.status();
      entry.delay_ps = *v;
      have_delay = true;
      ++cursor;
      continue;
    }
    if (t.kind == SdcToken::Kind::kOpenBracket) {
      if (have_objects) return err(line_no, "more than one object list");
      auto objects = parse_object_list(tokens, cursor, inputs, line_no);
      if (!objects.ok()) return objects.status();
      entry.ports = std::move(objects->ports);
      entry.all_ports = objects->all_ports;
      have_objects = true;
      continue;
    }
    return err(line_no, "unexpected '" + t.value + "'");
  }
  if (!have_delay) return err(line_no, "missing delay value");
  if (!have_objects) return err(line_no, "missing [get_ports ...] / [all_...] object list");
  entry.line = line_no;
  (inputs ? sdc.input_delays : sdc.output_delays).push_back(std::move(entry));
  return Status();
}

}  // namespace

StatusOr<Sdc> read_sdc(std::string_view text) {
  Sdc sdc;
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    auto tokens_or = lex_line(line, line_no);
    if (!tokens_or.ok()) return tokens_or.status();
    const std::vector<SdcToken>& tokens = *tokens_or;
    if (tokens.empty()) continue;
    if (tokens[0].kind != SdcToken::Kind::kWord) {
      return err(line_no, "expected a command, got '" + tokens[0].value + "'");
    }
    const std::string& command = tokens[0].value;

    if (command == "create_clock") {
      std::size_t cursor = 1;
      while (cursor < tokens.size()) {
        const SdcToken& t = tokens[cursor];
        if (t.kind == SdcToken::Kind::kWord && t.value == "-period") {
          if (cursor + 1 >= tokens.size() ||
              tokens[cursor + 1].kind != SdcToken::Kind::kWord) {
            return err(line_no, "-period needs a value");
          }
          auto v = parse_number(tokens[cursor + 1].value, line_no);
          if (!v.ok()) return v.status();
          sdc.clock_period_ps = *v;
          cursor += 2;
          continue;
        }
        if (t.kind == SdcToken::Kind::kWord && t.value == "-name") {
          if (cursor + 1 >= tokens.size() ||
              tokens[cursor + 1].kind != SdcToken::Kind::kWord) {
            return err(line_no, "-name needs a value");
          }
          sdc.clock_name = tokens[cursor + 1].value;
          cursor += 2;
          continue;
        }
        if (t.kind == SdcToken::Kind::kOpenBracket) {
          // Clock source object list ("[get_ports clk]"): parsed for syntax,
          // unused — combinational netlists have no clock pin.
          auto objects = parse_object_list(tokens, cursor, /*inputs=*/true, line_no);
          if (!objects.ok()) return objects.status();
          continue;
        }
        return err(line_no, "unexpected '" + t.value + "' in create_clock");
      }
      if (!sdc.clock_period_ps.has_value()) {
        return err(line_no, "create_clock without -period");
      }
      sdc.clock_line = line_no;
      continue;
    }

    if (command == "set_input_delay" || command == "set_output_delay") {
      if (Status s = parse_port_delay(tokens, command == "set_input_delay", line_no, sdc);
          !s.ok()) {
        return s;
      }
      continue;
    }

    return err(line_no, "unsupported SDC command '" + command + "'");
  }
  return sdc;
}

StatusOr<Sdc> read_sdc_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::invalid_argument("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return read_sdc(buffer.str());
}

}  // namespace statsizer::bench_format
