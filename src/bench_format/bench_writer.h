// Writer for the ISCAS ".bench" format. Only pre-mapping netlists (pure
// AND/OR/... functions) can be represented; AOI/OAI/MUX gates are expanded
// into equivalent primitive trees on the fly so any netlist can be dumped.
#pragma once

#include <string>

#include "netlist/netlist.h"
#include "util/status.h"

namespace statsizer::bench_format {

/// Serializes the netlist as .bench text (parse-compatible with read_bench).
[[nodiscard]] std::string write_bench(const netlist::Netlist& nl);

/// Writes .bench text to a file.
[[nodiscard]] Status write_bench_file(const netlist::Netlist& nl, const std::string& path);

}  // namespace statsizer::bench_format
