#include "bench_format/verilog_writer.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace statsizer::bench_format {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

namespace {

bool is_plain_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') return false;
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '$') return false;
  }
  static const std::unordered_set<std::string> kKeywords = {
      "module", "endmodule", "input", "output", "wire", "assign"};
  return !kKeywords.contains(name);
}

/// Verilog spelling of a net name: plain, or `\escaped ` (the trailing space
/// is part of the escaped-identifier syntax).
std::string vname(const std::string& name) {
  if (is_plain_identifier(name)) return name;
  return "\\" + name + " ";
}

void emit_decl_list(std::ostringstream& os, const char* kind,
                    const std::vector<std::string>& names) {
  constexpr std::size_t kPerLine = 8;
  for (std::size_t i = 0; i < names.size(); i += kPerLine) {
    os << "  " << kind << " ";
    for (std::size_t j = i; j < std::min(names.size(), i + kPerLine); ++j) {
      if (j > i) os << ", ";
      os << vname(names[j]);
    }
    os << ";\n";
  }
}

}  // namespace

StatusOr<std::string> write_verilog(const Netlist& nl, const liberty::Library& lib) {
  // Primary outputs: a PO whose name matches its driving net is the net
  // itself (declared `output`); otherwise the port is a distinct name fed by
  // an `assign`. Either way the port name must not collide with an unrelated
  // net — Verilog cannot express that, so it is an error (the .bench writer's
  // silent-rename fallback would break the lossless round-trip contract).
  std::vector<std::string> output_ports;
  std::vector<std::pair<std::string, GateId>> aliases;  // port -> driver
  std::unordered_set<std::string> port_names;
  for (const auto& out : nl.outputs()) {
    if (!port_names.insert(out.name).second) {
      return Status::error("duplicate output port '" + out.name + "'");
    }
    output_ports.push_back(out.name);
    const GateId named = nl.find(out.name);
    if (named == out.driver) {
      if (nl.is_input(out.driver)) {
        return Status::error("output '" + out.name +
                             "' is also a primary input; Verilog has no such port");
      }
      continue;  // the driving net is the port
    }
    if (named != netlist::kNoGate) {
      return Status::error("output port '" + out.name +
                           "' collides with a different net of the same name");
    }
    aliases.emplace_back(out.name, out.driver);
  }

  std::vector<std::string> input_ports;
  input_ports.reserve(nl.inputs().size());
  for (const GateId id : nl.inputs()) input_ports.push_back(nl.gate(id).name);

  // Everything that is neither a port nor a PI is an internal wire.
  std::vector<std::string> wires;
  for (GateId id = 0; id < nl.node_count(); ++id) {
    const auto& g = nl.gate(id);
    if (g.func == GateFunc::kInput) continue;
    if (port_names.contains(g.name) && nl.find(g.name) == id) continue;
    wires.push_back(g.name);
  }

  std::ostringstream os;
  os << "// " << nl.name() << " — written by statsizer\n";
  os << "// " << nl.inputs().size() << " inputs, " << nl.outputs().size() << " outputs, "
     << nl.logic_gate_count() << " gates, library " << lib.name() << "\n";
  os << "module " << vname(nl.name()) << " (";
  bool first = true;
  for (const std::string& p : input_ports) {
    if (!first) os << ", ";
    os << vname(p);
    first = false;
  }
  for (const std::string& p : output_ports) {
    if (!first) os << ", ";
    os << vname(p);
    first = false;
  }
  os << ");\n";
  emit_decl_list(os, "input", input_ports);
  emit_decl_list(os, "output", output_ports);
  emit_decl_list(os, "wire", wires);

  // Instances are emitted in GateId order (named pin connections don't need
  // def-before-use, and read_verilog resolves any order). This makes
  // write∘read idempotent after one trip: the reader's DFS hands out ids
  // fanins-first, so a reader-produced netlist has topologically sorted ids,
  // and re-reading its id-ordered text reassigns exactly the same ids.
  std::size_t inst_index = 0;
  for (GateId id = 0; id < nl.node_count(); ++id) {
    const auto& g = nl.gate(id);
    if (g.func == GateFunc::kInput) continue;
    if (g.func == GateFunc::kConst0 || g.func == GateFunc::kConst1) {
      // Constants carry no cell (techmap leaves them unbound); spell them as
      // constant assigns, which read_verilog turns back into kConst nodes.
      os << "  assign " << vname(g.name) << " = "
         << (g.func == GateFunc::kConst0 ? "1'b0" : "1'b1") << ";\n";
      continue;
    }
    if (g.cell_group == netlist::kUnmapped) {
      return Status::error("gate '" + g.name +
                           "' is not mapped to a library cell (run techmap first)");
    }
    const liberty::Cell& cell = lib.cell_for(g.cell_group, g.size_index);
    const auto input_pins = cell.input_pins();
    if (input_pins.size() != g.fanins.size()) {
      return Status::error("gate '" + g.name + "': cell " + cell.name + " has " +
                           std::to_string(input_pins.size()) + " input pins but the gate has " +
                           std::to_string(g.fanins.size()) + " fanins");
    }
    os << "  " << cell.name << " u" << inst_index++ << " (";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      os << "." << input_pins[i]->name << "(" << vname(nl.gate(g.fanins[i]).name) << "), ";
    }
    os << "." << cell.output().name << "(" << vname(g.name) << "));\n";
  }

  for (const auto& [port, driver] : aliases) {
    os << "  assign " << vname(port) << " = " << vname(nl.gate(driver).name) << ";\n";
  }
  os << "endmodule\n";
  return os.str();
}

Status write_verilog_file(const Netlist& nl, const liberty::Library& lib,
                          const std::string& path) {
  auto text = write_verilog(nl, lib);
  if (!text.ok()) return text.status();
  std::ofstream file(path);
  if (!file) return Status::error("cannot open " + path + " for writing");
  file << *text;
  return file.good() ? Status() : Status::error("write failed: " + path);
}

}  // namespace statsizer::bench_format
