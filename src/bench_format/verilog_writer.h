// Writer for structural gate-level Verilog (the inverse of
// verilog_reader.h). Requires a mapped netlist: every gate is emitted as an
// instantiation of its currently bound library cell, so drive-strength
// choices made by the sizer survive the round trip bitwise
// (read_verilog(write_verilog(nl)) reproduces names, functions, fanins,
// cell groups and size indices). Names that are not plain Verilog
// identifiers are emitted as `\escaped ` identifiers.
#pragma once

#include <string>

#include "liberty/model.h"
#include "netlist/netlist.h"
#include "util/status.h"

namespace statsizer::bench_format {

/// Serializes @p nl (which must be mapped to @p lib) as structural Verilog.
/// Fails if a gate is unmapped or if an output port's name collides with a
/// differently-named net in a way Verilog cannot express.
[[nodiscard]] StatusOr<std::string> write_verilog(const netlist::Netlist& nl,
                                                  const liberty::Library& lib);

/// Writes structural Verilog to a file.
[[nodiscard]] Status write_verilog_file(const netlist::Netlist& nl,
                                        const liberty::Library& lib,
                                        const std::string& path);

}  // namespace statsizer::bench_format
