// Reader for structural gate-level Verilog, the netlist exchange format of
// the standard sizing flows (cell library + netlist + SDC -> STA -> sizing
// -> write-back):
//
//   // comment
//   module c17 (N1, N2, N22);
//     input N1, N2;
//     output N22;
//     wire n5;
//     NAND2_X1 u0 (.A1(N1), .A2(N2), .ZN(n5));
//     NAND2_X2 u1 (.A1(n5), .A2(N2), .ZN(N22));
//   endmodule
//
// Supported subset:
//   * one module per file; `//` and `/* */` comments,
//   * `input` / `output` / `wire` declarations (comma lists, no vectors —
//     buses are flattened, bit names via escaped identifiers `\a[3] `),
//   * cell instantiations with *named* pin connections, where the cell name
//     is resolved against the given liberty::Library (drive suffix and all:
//     "NAND2_X4" binds group NAND2 at the X4 size),
//   * `assign <net> = 1'b0;` / `1'b1` constant drivers (kConst nodes), and
//   * `assign <output port> = <net>;` to alias a primary output to its
//     driving net (no other expressions).
//
// The returned netlist is fully mapped (techmap::is_mapped holds): every
// gate carries the cell_group/size_index its instantiation named, so sized
// netlists written by write_verilog round-trip losslessly. Instances may
// appear in any order; undeclared nets, unknown cells or pins, duplicate
// drivers, undriven outputs and combinational cycles are reported with line
// numbers.
#pragma once

#include <string_view>

#include "bench_format/provenance.h"
#include "liberty/model.h"
#include "netlist/netlist.h"
#include "util/status.h"

namespace statsizer::bench_format {

/// Parses structural Verilog against @p lib. The netlist takes the module's
/// name. @p provenance (optional) receives net -> line locations and, on
/// cycle failure, the witness path.
[[nodiscard]] StatusOr<netlist::Netlist> read_verilog(std::string_view text,
                                                      const liberty::Library& lib,
                                                      Provenance* provenance = nullptr);

/// Reads a structural-Verilog file from disk.
[[nodiscard]] StatusOr<netlist::Netlist> read_verilog_file(const std::string& path,
                                                           const liberty::Library& lib,
                                                           Provenance* provenance = nullptr);

}  // namespace statsizer::bench_format
