// Source-location side channel the netlist/constraint readers fill while
// parsing: name -> defining line for every port, net, and gate target, plus
// the witness path when a parse failed on a combinational cycle. The DRC
// layer (src/drc) uses it to attribute diagnostics to file:line; readers
// populate it only when the caller passes one, so parse performance and
// behaviour without provenance are unchanged.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace statsizer::bench_format {

struct Provenance {
  /// Source path; empty when parsing from an in-memory string.
  std::string file;
  /// Signal/net/port name -> 1-based line of its definition.
  std::unordered_map<std::string, int> line_of;
  /// When a parse failed on a combinational cycle: the named path around the
  /// loop, first node repeated at the end ("y", "z", "y"). Empty otherwise.
  std::vector<std::string> cycle;

  /// Line of @p name's definition; 0 when unknown.
  [[nodiscard]] int line(const std::string& name) const {
    const auto it = line_of.find(name);
    return it == line_of.end() ? 0 : it->second;
  }

  void clear() {
    file.clear();
    line_of.clear();
    cycle.clear();
  }
};

}  // namespace statsizer::bench_format
