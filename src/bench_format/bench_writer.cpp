#include "bench_format/bench_writer.h"

#include <fstream>
#include <sstream>

#include "netlist/topo.h"

namespace statsizer::bench_format {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

namespace {

std::string bench_func_name(GateFunc f) {
  switch (f) {
    case GateFunc::kAnd: return "AND";
    case GateFunc::kNand: return "NAND";
    case GateFunc::kOr: return "OR";
    case GateFunc::kNor: return "NOR";
    case GateFunc::kXor: return "XOR";
    case GateFunc::kXnor: return "XNOR";
    case GateFunc::kInv: return "NOT";
    case GateFunc::kBuf: return "BUFF";
    default: return "";
  }
}

void emit_gate(std::ostringstream& os, const std::string& target, const std::string& func,
               const std::vector<std::string>& args) {
  os << target << " = " << func << "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << args[i];
  }
  os << ")\n";
}

}  // namespace

std::string write_bench(const Netlist& nl) {
  std::ostringstream os;
  os << "# " << nl.name() << " — written by statsizer\n";
  os << "# " << nl.inputs().size() << " inputs, " << nl.outputs().size() << " outputs, "
     << nl.logic_gate_count() << " gates\n";
  for (const GateId id : nl.inputs()) os << "INPUT(" << nl.gate(id).name << ")\n";

  // .bench has no separate output names — outputs are named signals. When a
  // PO name differs from its driver's name, alias it through a BUFF so the
  // interface survives a round trip. A name collision with an unrelated
  // signal forces falling back to the driver's name.
  std::vector<std::pair<std::string, GateId>> aliases;  // alias name -> driver
  for (const auto& out : nl.outputs()) {
    std::string name = out.name;
    if (name != nl.gate(out.driver).name) {
      const GateId clash = nl.find(name);
      if (clash != netlist::kNoGate && clash != out.driver) {
        name = nl.gate(out.driver).name;  // collision: keep the driver name
      } else {
        aliases.emplace_back(name, out.driver);
      }
    }
    os << "OUTPUT(" << name << ")\n";
  }
  os << "\n";
  for (const auto& [name, driver] : aliases) {
    emit_gate(os, name, "BUFF", {nl.gate(driver).name});
  }

  for (const GateId id : netlist::topological_order(nl)) {
    const auto& g = nl.gate(id);
    if (g.func == GateFunc::kInput) continue;
    std::vector<std::string> args;
    args.reserve(g.fanins.size());
    for (const GateId f : g.fanins) args.push_back(nl.gate(f).name);

    switch (g.func) {
      case GateFunc::kConst0:
        // .bench has no constants; encode as XOR(x, x) over an arbitrary input.
        emit_gate(os, g.name, "XOR",
                  {nl.gate(nl.inputs()[0]).name, nl.gate(nl.inputs()[0]).name});
        break;
      case GateFunc::kConst1:
        emit_gate(os, g.name, "XNOR",
                  {nl.gate(nl.inputs()[0]).name, nl.gate(nl.inputs()[0]).name});
        break;
      case GateFunc::kAoi21: {
        // !(a&b | c) -> t = AND(a,b); z = NOR(t, c)
        const std::string t = g.name + "_and";
        emit_gate(os, t, "AND", {args[0], args[1]});
        emit_gate(os, g.name, "NOR", {t, args[2]});
        break;
      }
      case GateFunc::kOai21: {
        const std::string t = g.name + "_or";
        emit_gate(os, t, "OR", {args[0], args[1]});
        emit_gate(os, g.name, "NAND", {t, args[2]});
        break;
      }
      case GateFunc::kMux2: {
        // (d0 & !s) | (d1 & s)
        const std::string ns = g.name + "_ns";
        const std::string t0 = g.name + "_t0";
        const std::string t1 = g.name + "_t1";
        emit_gate(os, ns, "NOT", {args[2]});
        emit_gate(os, t0, "AND", {args[0], ns});
        emit_gate(os, t1, "AND", {args[1], args[2]});
        emit_gate(os, g.name, "OR", {t0, t1});
        break;
      }
      default:
        emit_gate(os, g.name, bench_func_name(g.func), args);
        break;
    }
  }
  return os.str();
}

Status write_bench_file(const Netlist& nl, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::error("cannot open " + path + " for writing");
  file << write_bench(nl);
  return file.good() ? Status() : Status::error("write failed: " + path);
}

}  // namespace statsizer::bench_format
