#include "bench_format/bench_reader.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace statsizer::bench_format {

using netlist::GateFunc;
using netlist::GateId;
using netlist::Netlist;

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

struct GateDef {
  GateFunc func;
  std::vector<std::string> fanins;
  int line;
};

StatusOr<GateFunc> func_from_name(const std::string& raw, int line) {
  const std::string f = upper(raw);
  if (f == "AND") return GateFunc::kAnd;
  if (f == "NAND") return GateFunc::kNand;
  if (f == "OR") return GateFunc::kOr;
  if (f == "NOR") return GateFunc::kNor;
  if (f == "XOR") return GateFunc::kXor;
  if (f == "NXOR" || f == "XNOR") return GateFunc::kXnor;
  if (f == "NOT" || f == "INV") return GateFunc::kInv;
  if (f == "BUF" || f == "BUFF") return GateFunc::kBuf;
  if (f == "DFF") {
    return Status::invalid_argument("line " + std::to_string(line) +
                         ": DFF is not supported (combinational netlists only)");
  }
  return Status::invalid_argument("line " + std::to_string(line) + ": unknown function '" + raw + "'");
}

}  // namespace

StatusOr<Netlist> read_bench(std::string_view text, std::string name,
                             Provenance* provenance) {
  std::vector<std::pair<std::string, int>> input_names;   // name, line
  std::vector<std::pair<std::string, int>> output_names;  // name, line
  std::unordered_map<std::string, GateDef> defs;
  std::vector<std::string> def_order;

  std::istringstream stream{std::string(text)};
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string line = trim(raw_line);
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    // A port declaration is INPUT(name) / OUTPUT(name); a gate assignment has
    // an '='. Checking the prefix alone would misparse gate targets that
    // merely *start* with INPUT/OUTPUT (e.g. "INPUT_REG_3 = AND(a, b)"), so
    // the port branch requires the absence of '=' AND the keyword to be
    // exactly INPUT/OUTPUT up to the '('.
    const std::string uline = upper(line);
    const bool port_prefix = uline.rfind("INPUT", 0) == 0 || uline.rfind("OUTPUT", 0) == 0;
    if (port_prefix && line.find('=') == std::string::npos) {
      const bool is_input = uline.rfind("INPUT", 0) == 0;
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close <= open) {
        return Status::invalid_argument("line " + std::to_string(line_no) + ": malformed port: " + line);
      }
      const std::string keyword = trim(std::string_view(uline).substr(0, open));
      if (keyword != "INPUT" && keyword != "OUTPUT") {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                             ": expected INPUT(...) or OUTPUT(...), got: " + line);
      }
      if (!trim(std::string_view(line).substr(close + 1)).empty()) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                             ": trailing text after port declaration: " + line);
      }
      const std::string port = trim(std::string_view(line).substr(open + 1, close - open - 1));
      if (port.empty()) {
        return Status::invalid_argument("line " + std::to_string(line_no) + ": empty port name");
      }
      if (is_input) {
        input_names.emplace_back(port, line_no);
      } else {
        // A repeated OUTPUT declaration parses: both primary outputs are
        // materialized and drc::check_netlist reports the multi-driven net.
        output_names.emplace_back(port, line_no);
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::invalid_argument("line " + std::to_string(line_no) + ": expected assignment: " + line);
    }
    const std::string target = trim(std::string_view(line).substr(0, eq));
    const std::string rhs = trim(std::string_view(line).substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close <= open) {
      return Status::invalid_argument("line " + std::to_string(line_no) + ": malformed gate: " + line);
    }
    if (!trim(std::string_view(rhs).substr(close + 1)).empty()) {
      return Status::invalid_argument("line " + std::to_string(line_no) +
                           ": trailing text after gate definition: " + line);
    }
    auto func = func_from_name(trim(std::string_view(rhs).substr(0, open)), line_no);
    if (!func.ok()) return func.status();

    GateDef def;
    def.func = *func;
    def.line = line_no;
    const std::string args(rhs.substr(open + 1, close - open - 1));
    if (!trim(args).empty()) {
      std::size_t pos = 0;
      for (;;) {
        auto comma = args.find(',', pos);
        if (comma == std::string::npos) comma = args.size();
        const std::string arg = trim(std::string_view(args).substr(pos, comma - pos));
        if (arg.empty()) {
          return Status::invalid_argument("line " + std::to_string(line_no) +
                               ": empty fanin argument (stray comma?): " + line);
        }
        def.fanins.push_back(arg);
        if (comma == args.size()) break;
        pos = comma + 1;
      }
    }
    if (def.fanins.empty()) {
      return Status::invalid_argument("line " + std::to_string(line_no) + ": gate with no fanins");
    }
    if (defs.contains(target)) {
      return Status::invalid_argument("line " + std::to_string(line_no) + ": signal '" + target +
                           "' defined twice");
    }
    defs.emplace(target, std::move(def));
    def_order.push_back(target);
  }

  Netlist nl(std::move(name));
  std::unordered_map<std::string, GateId> ids;
  for (const auto& [in, line] : input_names) {
    if (ids.contains(in)) return Status::invalid_argument("input '" + in + "' declared twice");
    if (defs.contains(in)) {
      return Status::invalid_argument("signal '" + in + "' is both an INPUT and a gate output");
    }
    ids.emplace(in, nl.add_input(in));
    if (provenance != nullptr) provenance->line_of.emplace(in, line);
  }

  // Resolve definitions depth-first; state 1 = on stack (cycle detection).
  std::unordered_map<std::string, int> state;
  std::vector<std::string> stack;  // current DFS path, for cycle witnesses
  Status failure;
  const std::function<GateId(const std::string&)> resolve =
      [&](const std::string& signal) -> GateId {
    if (const auto it = ids.find(signal); it != ids.end()) return it->second;
    const auto def_it = defs.find(signal);
    if (def_it == defs.end()) {
      if (failure.ok()) failure = Status::invalid_argument("undefined signal '" + signal + "'");
      return netlist::kNoGate;
    }
    if (state[signal] == 1) {
      if (failure.ok()) {
        // The DFS stack from the first occurrence of @p signal down to here
        // is the cycle; report it in signal-flow order as the witness.
        std::vector<std::string> cycle;
        const auto first = std::find(stack.begin(), stack.end(), signal);
        cycle.assign(first, stack.end());
        cycle.push_back(signal);
        std::string path;
        for (const std::string& s : cycle) {
          if (!path.empty()) path += " -> ";
          path += s;
        }
        failure = Status::invalid_argument("line " + std::to_string(def_it->second.line) +
                                ": combinational cycle: " + path);
        if (provenance != nullptr) provenance->cycle = std::move(cycle);
      }
      return netlist::kNoGate;
    }
    state[signal] = 1;
    stack.push_back(signal);
    std::vector<GateId> fanins;
    fanins.reserve(def_it->second.fanins.size());
    for (const std::string& f : def_it->second.fanins) {
      const GateId fid = resolve(f);
      if (fid == netlist::kNoGate) return netlist::kNoGate;
      fanins.push_back(fid);
    }
    state[signal] = 2;
    stack.pop_back();
    GateFunc func = def_it->second.func;
    // .bench allows 1-input AND/OR (identity): normalize to BUF.
    if (fanins.size() == 1 &&
        (func == GateFunc::kAnd || func == GateFunc::kOr)) {
      func = GateFunc::kBuf;
    }
    if (fanins.size() == 1 && (func == GateFunc::kNand || func == GateFunc::kNor)) {
      func = GateFunc::kInv;
    }
    const GateId id = nl.add_gate(func, fanins, signal);
    ids.emplace(signal, id);
    if (provenance != nullptr) provenance->line_of.emplace(signal, def_it->second.line);
    return id;
  };

  for (const std::string& signal : def_order) {
    resolve(signal);
    if (!failure.ok()) return failure;
  }
  for (const auto& [out, line] : output_names) {
    const GateId id = resolve(out);
    if (!failure.ok()) return failure;
    if (id == netlist::kNoGate) {
      return Status::invalid_argument("line " + std::to_string(line) + ": undefined output '" + out + "'");
    }
    nl.add_output(out, id);
    if (provenance != nullptr) provenance->line_of.emplace(out, line);
  }

  if (const Status s = nl.check(); !s.ok()) return s;
  return nl;
}

StatusOr<Netlist> read_bench_file(const std::string& path, Provenance* provenance) {
  std::ifstream file(path);
  if (!file) return Status::invalid_argument("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  if (provenance != nullptr) provenance->file = path;
  return read_bench(buffer.str(), name, provenance);
}

}  // namespace statsizer::bench_format
