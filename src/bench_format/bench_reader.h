// Reader for the ISCAS-85/89 ".bench" netlist format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G23)
//   G10 = NAND(G1, G3)
//   G11 = NOT(G10)
//
// Supported functions: AND, NAND, OR, NOR, XOR, NXOR/XNOR, NOT, BUF/BUFF.
// DFFs are rejected (this library models combinational timing only).
// Definitions may appear in any order; the reader resolves dependencies and
// reports undefined signals and combinational cycles (with the witness path)
// with line numbers. A duplicated OUTPUT declaration is *not* a syntax
// error: both primary outputs are materialized and the DRC layer reports the
// multi-driven net with provenance.
#pragma once

#include <string_view>

#include "bench_format/provenance.h"
#include "netlist/netlist.h"
#include "util/status.h"

namespace statsizer::bench_format {

/// Parses .bench text into a netlist. @p name names the resulting netlist.
/// @p provenance (optional) receives name -> line locations and, on cycle
/// failure, the witness path.
[[nodiscard]] StatusOr<netlist::Netlist> read_bench(std::string_view text,
                                                    std::string name = "bench",
                                                    Provenance* provenance = nullptr);

/// Reads a .bench file from disk.
[[nodiscard]] StatusOr<netlist::Netlist> read_bench_file(const std::string& path,
                                                         Provenance* provenance = nullptr);

}  // namespace statsizer::bench_format
