#include "bench_format/verilog_reader.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace statsizer::bench_format {

using netlist::GateId;
using netlist::Netlist;

namespace {

Status err(int line, const std::string& what) {
  return Status::invalid_argument("line " + std::to_string(line) + ": " + what);
}

/// Character-level lexer over comment-stripped text. Identifiers are liberal
/// (any run outside whitespace and punctuation) so flattened bus-bit names
/// survive; `\escaped ` identifiers are also accepted (backslash dropped,
/// terminated by whitespace) per the Verilog LRM.
class Lexer {
 public:
  explicit Lexer(std::string text) : text_(std::move(text)) {}

  struct Token {
    enum class Kind { kId, kPunct, kEnd } kind = Kind::kEnd;
    std::string value;  // identifier text, or the punctuation character
    int line = 0;
  };

  Token next() {
    skip_space();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;
    const char c = text_[pos_];
    if (is_punct(c)) {
      t.kind = Token::Kind::kPunct;
      t.value = std::string(1, c);
      ++pos_;
      return t;
    }
    t.kind = Token::Kind::kId;
    if (c == '\\') {
      ++pos_;  // escaped identifier: everything up to whitespace, '\' dropped
      while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        t.value += text_[pos_++];
      }
      return t;
    }
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(d)) || is_punct(d)) break;
      t.value += d;
      ++pos_;
    }
    return t;
  }

 private:
  static bool is_punct(char c) {
    return c == '(' || c == ')' || c == ',' || c == ';' || c == '.' || c == '=';
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Replaces `//` and `/* */` comments with spaces, preserving newlines so
/// token line numbers stay accurate.
std::string strip_comments(std::string_view text) {
  std::string out(text);
  std::size_t i = 0;
  while (i + 1 < out.size()) {
    if (out[i] == '/' && out[i + 1] == '/') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
    } else if (out[i] == '/' && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i + 1 < out.size() && !(out[i] == '*' && out[i + 1] == '/')) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i + 1 >= out.size()) return out;  // unterminated; caught as junk later
      out[i] = out[i + 1] = ' ';
      i += 2;
    } else {
      ++i;
    }
  }
  return out;
}

struct Connection {
  std::string pin;
  std::string net;
  int line = 0;
};

struct Instance {
  std::string cell_name;
  std::string inst_name;
  std::vector<Connection> connections;
  int line = 0;
};

struct Assign {
  std::string lhs;
  std::string rhs;
  int line = 0;
};

}  // namespace

StatusOr<Netlist> read_verilog(std::string_view text, const liberty::Library& lib,
                               Provenance* provenance) {
  Lexer lex(strip_comments(text));
  using Token = Lexer::Token;

  const auto expect_punct = [&](const char* what) -> StatusOr<Token> {
    Token t = lex.next();
    if (t.kind != Token::Kind::kPunct || t.value != what) {
      return err(t.line, std::string("expected '") + what + "', got '" +
                             (t.kind == Token::Kind::kEnd ? "<eof>" : t.value) + "'");
    }
    return t;
  };
  const auto expect_id = [&](const char* what) -> StatusOr<Token> {
    Token t = lex.next();
    if (t.kind != Token::Kind::kId) {
      return err(t.line, std::string("expected ") + what + ", got '" +
                             (t.kind == Token::Kind::kEnd ? "<eof>" : t.value) + "'");
    }
    return t;
  };

  // ---- module header -------------------------------------------------------
  auto kw = expect_id("'module'");
  if (!kw.ok()) return kw.status();
  if (kw->value != "module") return err(kw->line, "expected 'module', got '" + kw->value + "'");
  auto mod_name = expect_id("module name");
  if (!mod_name.ok()) return mod_name.status();

  std::vector<std::string> header_ports;
  Token t = lex.next();
  if (t.kind == Token::Kind::kPunct && t.value == "(") {
    for (;;) {
      t = lex.next();
      if (t.kind == Token::Kind::kPunct && t.value == ")") break;
      if (t.kind != Token::Kind::kId) return err(t.line, "expected port name in module header");
      header_ports.push_back(t.value);
      t = lex.next();
      if (t.kind == Token::Kind::kPunct && t.value == ")") break;
      if (t.kind != Token::Kind::kPunct || t.value != ",") {
        return err(t.line, "expected ',' or ')' in module port list");
      }
    }
    t = lex.next();
  }
  if (t.kind != Token::Kind::kPunct || t.value != ";") {
    return err(t.line, "expected ';' after module header");
  }

  // ---- body ---------------------------------------------------------------
  std::vector<std::pair<std::string, int>> input_decls;   // name, line
  std::vector<std::pair<std::string, int>> output_decls;  // name, line
  std::unordered_map<std::string, int> declared;          // any net -> decl line
  std::vector<Instance> instances;
  std::vector<Assign> assigns;

  const auto declare = [&](const std::string& name, int line) -> Status {
    if (!declared.emplace(name, line).second) {
      return err(line, "net '" + name + "' declared twice (first at line " +
                           std::to_string(declared[name]) + ")");
    }
    return Status();
  };

  bool saw_endmodule = false;
  for (;;) {
    t = lex.next();
    if (t.kind == Token::Kind::kEnd) break;
    if (t.kind != Token::Kind::kId) return err(t.line, "unexpected '" + t.value + "'");

    if (t.value == "endmodule") {
      saw_endmodule = true;
      t = lex.next();
      if (t.kind != Token::Kind::kEnd) return err(t.line, "text after 'endmodule'");
      break;
    }

    if (t.value == "input" || t.value == "output" || t.value == "wire") {
      const std::string kind = t.value;
      for (;;) {
        auto id = expect_id("net name");
        if (!id.ok()) return id.status();
        if (Status s = declare(id->value, id->line); !s.ok()) return s;
        if (kind == "input") input_decls.emplace_back(id->value, id->line);
        if (kind == "output") output_decls.emplace_back(id->value, id->line);
        Token sep = lex.next();
        if (sep.kind == Token::Kind::kPunct && sep.value == ";") break;
        if (sep.kind != Token::Kind::kPunct || sep.value != ",") {
          return err(sep.line, "expected ',' or ';' in " + kind + " declaration");
        }
      }
      continue;
    }

    if (t.value == "assign") {
      Assign a;
      a.line = t.line;
      auto lhs = expect_id("assign target");
      if (!lhs.ok()) return lhs.status();
      a.lhs = lhs->value;
      if (auto p = expect_punct("="); !p.ok()) return p.status();
      auto rhs = expect_id("assign source net");
      if (!rhs.ok()) return rhs.status();
      a.rhs = rhs->value;
      if (auto p = expect_punct(";"); !p.ok()) return p.status();
      assigns.push_back(std::move(a));
      continue;
    }

    // Cell instantiation: <CELL> <inst> ( .PIN(net), ... );
    Instance inst;
    inst.cell_name = t.value;
    inst.line = t.line;
    auto inst_name = expect_id("instance name");
    if (!inst_name.ok()) return inst_name.status();
    inst.inst_name = inst_name->value;
    if (auto p = expect_punct("("); !p.ok()) return p.status();
    for (;;) {
      Token dot = lex.next();
      if (dot.kind == Token::Kind::kPunct && dot.value == ")") break;
      if (dot.kind != Token::Kind::kPunct || dot.value != ".") {
        return err(dot.line, "expected named connection '.PIN(net)' in instance '" +
                                 inst.inst_name + "'");
      }
      Connection c;
      auto pin = expect_id("pin name");
      if (!pin.ok()) return pin.status();
      c.pin = pin->value;
      c.line = pin->line;
      if (auto p = expect_punct("("); !p.ok()) return p.status();
      auto net = expect_id("net name");
      if (!net.ok()) return net.status();
      c.net = net->value;
      if (auto p = expect_punct(")"); !p.ok()) return p.status();
      inst.connections.push_back(std::move(c));
      Token sep = lex.next();
      if (sep.kind == Token::Kind::kPunct && sep.value == ")") break;
      if (sep.kind != Token::Kind::kPunct || sep.value != ",") {
        return err(sep.line, "expected ',' or ')' in instance connection list");
      }
    }
    if (auto p = expect_punct(";"); !p.ok()) return p.status();
    instances.push_back(std::move(inst));
  }
  if (!saw_endmodule) return Status::invalid_argument("missing 'endmodule'");

  // Header ports and directional declarations must agree.
  if (!header_ports.empty()) {
    const std::unordered_set<std::string> in_header(header_ports.begin(), header_ports.end());
    for (const auto& [name, line] : input_decls) {
      if (!in_header.contains(name)) {
        return err(line, "input '" + name + "' not listed in the module port list");
      }
    }
    for (const auto& [name, line] : output_decls) {
      if (!in_header.contains(name)) {
        return err(line, "output '" + name + "' not listed in the module port list");
      }
    }
  }

  // ---- bind instances against the library ---------------------------------
  struct GateDef {
    const Instance* inst = nullptr;
    const liberty::Cell* cell = nullptr;
    std::uint32_t group_index = 0;
    std::uint16_t size_index = 0;
    std::vector<std::string> fanin_nets;  // in cell input-pin order
  };
  std::unordered_map<std::string, GateDef> driven;  // output net -> definition
  std::vector<std::string> driven_order;

  for (const Instance& inst : instances) {
    const auto cell_index = lib.find_cell(inst.cell_name);
    if (!cell_index.has_value()) {
      return err(inst.line, "unknown cell '" + inst.cell_name + "' (library " +
                                lib.name() + ")");
    }
    const liberty::Cell& cell = lib.cell(*cell_index);
    const auto parsed = liberty::parse_cell_name(inst.cell_name);
    const auto group_index = lib.find_group(parsed.base);
    if (!group_index.has_value()) {
      return err(inst.line, "cell '" + inst.cell_name + "' has no sizing group");
    }
    const liberty::CellGroup& group = lib.group(*group_index);
    std::uint16_t size_index = 0;
    bool size_found = false;
    for (std::size_t s = 0; s < group.sizes().size(); ++s) {
      if (group.sizes()[s] == *cell_index) {
        size_index = static_cast<std::uint16_t>(s);
        size_found = true;
        break;
      }
    }
    if (!size_found) {
      return err(inst.line, "cell '" + inst.cell_name + "' missing from group '" +
                                group.base_name() + "'");
    }

    GateDef def;
    def.inst = &inst;
    def.cell = &cell;
    def.group_index = *group_index;
    def.size_index = size_index;
    const auto input_pins = cell.input_pins();
    def.fanin_nets.assign(input_pins.size(), std::string());
    std::vector<bool> pin_seen(input_pins.size(), false);
    std::string out_net;

    for (const Connection& c : inst.connections) {
      if (!declared.contains(c.net)) {
        return err(c.line, "net '" + c.net + "' is not declared");
      }
      if (c.pin == cell.output().name) {
        if (!out_net.empty()) {
          return err(c.line, "output pin '" + c.pin + "' connected twice on instance '" +
                                 inst.inst_name + "'");
        }
        out_net = c.net;
        continue;
      }
      bool matched = false;
      for (std::size_t i = 0; i < input_pins.size(); ++i) {
        if (input_pins[i]->name == c.pin) {
          if (pin_seen[i]) {
            return err(c.line, "pin '" + c.pin + "' connected twice on instance '" +
                                   inst.inst_name + "'");
          }
          pin_seen[i] = true;
          def.fanin_nets[i] = c.net;
          matched = true;
          break;
        }
      }
      if (!matched) {
        return err(c.line, "cell '" + inst.cell_name + "' has no pin '" + c.pin + "'");
      }
    }
    if (out_net.empty()) {
      return err(inst.line, "instance '" + inst.inst_name + "' leaves output pin '" +
                                cell.output().name + "' unconnected");
    }
    for (std::size_t i = 0; i < input_pins.size(); ++i) {
      if (!pin_seen[i]) {
        return err(inst.line, "instance '" + inst.inst_name + "' leaves input pin '" +
                                  input_pins[i]->name + "' unconnected");
      }
    }
    if (driven.contains(out_net)) {
      return err(inst.line, "net '" + out_net + "' driven twice (also by instance '" +
                                driven[out_net].inst->inst_name + "')");
    }
    driven.emplace(out_net, std::move(def));
    driven_order.push_back(out_net);
  }

  // ---- classify assigns: constant drivers vs output aliases ---------------
  // `assign x = 1'b0;` drives net x with a constant (kConst node);
  // `assign y = net;` aliases output port y to an existing net.
  const std::unordered_set<std::string> output_set = [&] {
    std::unordered_set<std::string> s;
    for (const auto& [name, _] : output_decls) s.insert(name);
    return s;
  }();
  std::unordered_map<std::string, netlist::GateFunc> const_nets;
  std::unordered_map<std::string, int> const_lines;  // const net -> assign line
  std::unordered_map<std::string, std::pair<std::string, int>> alias;  // port -> (net, line)
  for (const Assign& a : assigns) {
    if (!declared.contains(a.lhs)) return err(a.line, "net '" + a.lhs + "' is not declared");
    if (driven.contains(a.lhs)) {
      return err(a.line, "net '" + a.lhs + "' is driven both by an instance and an assign");
    }
    if (a.rhs == "1'b0" || a.rhs == "1'b1") {
      if (alias.contains(a.lhs) ||
          !const_nets.emplace(a.lhs, a.rhs == "1'b0" ? netlist::GateFunc::kConst0
                                                     : netlist::GateFunc::kConst1)
               .second) {
        return err(a.line, "net '" + a.lhs + "' assigned twice");
      }
      const_lines.emplace(a.lhs, a.line);
      continue;
    }
    if (!output_set.contains(a.lhs)) {
      return err(a.line, "assign target '" + a.lhs +
                             "' is not an output port (only constants and output aliasing "
                             "are supported)");
    }
    if (!declared.contains(a.rhs)) return err(a.line, "net '" + a.rhs + "' is not declared");
    if (const_nets.contains(a.lhs) ||
        !alias.emplace(a.lhs, std::make_pair(a.rhs, a.line)).second) {
      return err(a.line, "output '" + a.lhs + "' assigned twice");
    }
  }

  // ---- build the netlist (depth-first resolution, like read_bench) --------
  Netlist nl(mod_name->value);
  std::unordered_map<std::string, GateId> ids;
  for (const auto& [name, line] : input_decls) {
    if (driven.contains(name) || const_nets.contains(name)) {
      return err(line, "input '" + name + "' is also driven inside the module");
    }
    ids.emplace(name, nl.add_input(name));
    if (provenance != nullptr) provenance->line_of.emplace(name, line);
  }

  std::unordered_map<std::string, int> state;   // 1 = on stack (cycle detection)
  std::vector<std::string> stack;               // current DFS path, for cycle witnesses
  Status failure;
  const std::function<GateId(const std::string&)> resolve =
      [&](const std::string& net) -> GateId {
    if (const auto it = ids.find(net); it != ids.end()) return it->second;
    if (const auto it = const_nets.find(net); it != const_nets.end()) {
      const GateId id = nl.add_gate(it->second, std::initializer_list<GateId>{}, net);
      ids.emplace(net, id);
      if (provenance != nullptr) {
        if (const auto cl = const_lines.find(net); cl != const_lines.end()) {
          provenance->line_of.emplace(net, cl->second);
        }
      }
      return id;
    }
    const auto def_it = driven.find(net);
    if (def_it == driven.end()) {
      if (failure.ok()) failure = Status::invalid_argument("net '" + net + "' has no driver");
      return netlist::kNoGate;
    }
    if (state[net] == 1) {
      if (failure.ok()) {
        // The DFS stack from the first occurrence of @p net down to here is
        // the cycle; report it in signal-flow order as the witness.
        std::vector<std::string> cycle;
        const auto first = std::find(stack.begin(), stack.end(), net);
        cycle.assign(first, stack.end());
        cycle.push_back(net);
        std::string path;
        for (const std::string& s : cycle) {
          if (!path.empty()) path += " -> ";
          path += s;
        }
        failure = Status::invalid_argument("line " + std::to_string(def_it->second.inst->line) +
                                ": combinational cycle: " + path);
        if (provenance != nullptr) provenance->cycle = std::move(cycle);
      }
      return netlist::kNoGate;
    }
    state[net] = 1;
    stack.push_back(net);
    GateDef& def = def_it->second;
    std::vector<GateId> fanins;
    fanins.reserve(def.fanin_nets.size());
    for (const std::string& f : def.fanin_nets) {
      const GateId fid = resolve(f);
      if (fid == netlist::kNoGate) return netlist::kNoGate;
      fanins.push_back(fid);
    }
    state[net] = 2;
    stack.pop_back();
    const GateId id = nl.add_gate(lib.group(def.group_index).func(), fanins, net);
    nl.gate(id).cell_group = def.group_index;
    nl.gate(id).size_index = def.size_index;
    ids.emplace(net, id);
    if (provenance != nullptr) provenance->line_of.emplace(net, def.inst->line);
    return id;
  };

  // Constants first (in file order), then instance outputs: every declared
  // driver is materialized even when unreachable from a primary output, so
  // write_verilog(read_verilog(text)) reproduces the full structure.
  for (const Assign& a : assigns) {
    if (const_nets.contains(a.lhs)) {
      resolve(a.lhs);
      if (!failure.ok()) return failure;
    }
  }
  for (const std::string& net : driven_order) {
    resolve(net);
    if (!failure.ok()) return failure;
  }

  // ---- primary outputs: direct nets or assign-aliases ---------------------
  for (const auto& [name, line] : output_decls) {
    const auto alias_it = alias.find(name);
    const std::string& net = alias_it == alias.end() ? name : alias_it->second.first;
    const int at = alias_it == alias.end() ? line : alias_it->second.second;
    const GateId id = resolve(net);
    if (!failure.ok()) return failure;
    if (id == netlist::kNoGate) {
      return err(at, "output '" + name + "' has no driver");
    }
    nl.add_output(name, id);
    if (provenance != nullptr) provenance->line_of.emplace(name, line);
  }

  if (const Status s = nl.check(); !s.ok()) return s;
  return nl;
}

StatusOr<Netlist> read_verilog_file(const std::string& path, const liberty::Library& lib,
                                    Provenance* provenance) {
  std::ifstream file(path);
  if (!file) return Status::invalid_argument("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (provenance != nullptr) provenance->file = path;
  return read_verilog(buffer.str(), lib, provenance);
}

}  // namespace statsizer::bench_format
