// Reader for the SDC (Synopsys Design Constraints) subset the timing
// engines consume:
//
//   # comment
//   create_clock -period 800 -name clk
//   set_input_delay -clock clk 120 [get_ports {a b}]
//   set_input_delay -clock clk 60 [all_inputs]
//   set_output_delay -clock clk 50 [get_ports y]
//
// Times are in picoseconds (the library's unit convention). Later commands
// override earlier ones per port, so the idiomatic "[all_inputs] first, then
// specific ports" layering works. Unknown commands, flags, or malformed
// object lists are loud errors with line numbers; matching port names
// against a netlist happens in core::Flow::apply_sdc, which also reports
// unknown ports loudly.
//
// The result is a plain data struct: bench_format stays below the sta layer,
// so conversion to sta::TimingConstraints lives in core/flow.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace statsizer::bench_format {

/// One set_input_delay / set_output_delay statement's effect.
struct SdcPortDelay {
  /// Named ports; empty when @p all_ports is set.
  std::vector<std::string> ports;
  /// [all_inputs] / [all_outputs].
  bool all_ports = false;
  double delay_ps = 0.0;
  /// 1-based source line of the statement (0 when built programmatically).
  int line = 0;
};

/// Parsed SDC contents, command order preserved.
struct Sdc {
  std::optional<double> clock_period_ps;
  std::string clock_name;
  /// 1-based source line of create_clock (0 when absent or programmatic).
  int clock_line = 0;
  std::vector<SdcPortDelay> input_delays;
  std::vector<SdcPortDelay> output_delays;
};

/// Parses SDC text.
[[nodiscard]] StatusOr<Sdc> read_sdc(std::string_view text);

/// Reads an SDC file from disk.
[[nodiscard]] StatusOr<Sdc> read_sdc_file(const std::string& path);

}  // namespace statsizer::bench_format
