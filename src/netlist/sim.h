// 64-way bit-parallel functional simulation. Used to *prove* that circuit
// generators and technology mapping preserve logic (adders add, multipliers
// multiply, ECC corrects) — the test suite leans on this heavily.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace statsizer::netlist {

/// Evaluates the netlist on 64 input patterns at once. `input_words[i]` holds
/// 64 values (one per bit position) for `nl.inputs()[i]`.
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Returns one word per primary output (same order as nl.outputs()).
  [[nodiscard]] std::vector<std::uint64_t> eval(std::span<const std::uint64_t> input_words) const;

  /// Returns one word per node (indexed by GateId); useful for probing
  /// internal equivalence.
  [[nodiscard]] std::vector<std::uint64_t> eval_all(
      std::span<const std::uint64_t> input_words) const;

 private:
  const Netlist& nl_;
  std::vector<GateId> order_;
};

/// Convenience: evaluate a single scalar pattern (bit 0 of each word).
[[nodiscard]] std::vector<bool> eval_single(const Netlist& nl, const std::vector<bool>& inputs);

/// True if the two netlists have identical PI/PO names (as multisets, in
/// order) and agree on @p rounds * 64 random patterns. A probabilistic
/// equivalence check — adequate for catching mapping bugs.
[[nodiscard]] bool probably_equivalent(const Netlist& a, const Netlist& b,
                                       std::uint64_t seed, unsigned rounds = 8);

}  // namespace statsizer::netlist
