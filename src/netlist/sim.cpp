#include "netlist/sim.h"

#include <stdexcept>

#include "netlist/topo.h"
#include "util/rng.h"

namespace statsizer::netlist {

Simulator::Simulator(const Netlist& nl) : nl_(nl), order_(topological_order(nl)) {}

std::vector<std::uint64_t> Simulator::eval_all(std::span<const std::uint64_t> input_words) const {
  if (input_words.size() != nl_.inputs().size()) {
    throw std::invalid_argument("Simulator::eval: one word per primary input required");
  }
  std::vector<std::uint64_t> value(nl_.node_count(), 0);
  for (std::size_t i = 0; i < input_words.size(); ++i) value[nl_.inputs()[i]] = input_words[i];

  for (GateId id : order_) {
    const Gate& g = nl_.gate(id);
    const auto& in = g.fanins;
    std::uint64_t v = 0;
    switch (g.func) {
      case GateFunc::kInput:
        continue;  // already seeded
      case GateFunc::kConst0:
        v = 0;
        break;
      case GateFunc::kConst1:
        v = ~0ULL;
        break;
      case GateFunc::kBuf:
        v = value[in[0]];
        break;
      case GateFunc::kInv:
        v = ~value[in[0]];
        break;
      case GateFunc::kAnd:
      case GateFunc::kNand:
        v = ~0ULL;
        for (GateId f : in) v &= value[f];
        if (g.func == GateFunc::kNand) v = ~v;
        break;
      case GateFunc::kOr:
      case GateFunc::kNor:
        v = 0;
        for (GateId f : in) v |= value[f];
        if (g.func == GateFunc::kNor) v = ~v;
        break;
      case GateFunc::kXor:
      case GateFunc::kXnor:
        v = 0;
        for (GateId f : in) v ^= value[f];
        if (g.func == GateFunc::kXnor) v = ~v;
        break;
      case GateFunc::kAoi21:
        v = ~((value[in[0]] & value[in[1]]) | value[in[2]]);
        break;
      case GateFunc::kOai21:
        v = ~((value[in[0]] | value[in[1]]) & value[in[2]]);
        break;
      case GateFunc::kMux2:
        v = (value[in[0]] & ~value[in[2]]) | (value[in[1]] & value[in[2]]);
        break;
    }
    value[id] = v;
  }
  return value;
}

std::vector<std::uint64_t> Simulator::eval(std::span<const std::uint64_t> input_words) const {
  const std::vector<std::uint64_t> value = eval_all(input_words);
  std::vector<std::uint64_t> out;
  out.reserve(nl_.outputs().size());
  for (const Output& o : nl_.outputs()) out.push_back(value[o.driver]);
  return out;
}

std::vector<bool> eval_single(const Netlist& nl, const std::vector<bool>& inputs) {
  std::vector<std::uint64_t> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) words[i] = inputs[i] ? 1 : 0;
  const auto outs = Simulator(nl).eval(words);
  std::vector<bool> result(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) result[i] = (outs[i] & 1ULL) != 0;
  return result;
}

bool probably_equivalent(const Netlist& a, const Netlist& b, std::uint64_t seed,
                         unsigned rounds) {
  if (a.inputs().size() != b.inputs().size()) return false;
  if (a.outputs().size() != b.outputs().size()) return false;
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    if (a.gate(a.inputs()[i]).name != b.gate(b.inputs()[i]).name) return false;
  }
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    if (a.outputs()[i].name != b.outputs()[i].name) return false;
  }

  util::Rng rng(seed);
  const Simulator sim_a(a);
  const Simulator sim_b(b);
  std::vector<std::uint64_t> words(a.inputs().size());
  for (unsigned round = 0; round < rounds; ++round) {
    for (auto& w : words) {
      w = (static_cast<std::uint64_t>(rng.index(1ULL << 32)) << 32) ^ rng.index(1ULL << 32);
    }
    if (sim_a.eval(words) != sim_b.eval(words)) return false;
  }
  return true;
}

}  // namespace statsizer::netlist
