#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

#include "netlist/topo.h"

namespace statsizer::netlist {

std::string_view func_name(GateFunc func) {
  switch (func) {
    case GateFunc::kInput: return "INPUT";
    case GateFunc::kBuf: return "BUF";
    case GateFunc::kInv: return "INV";
    case GateFunc::kAnd: return "AND";
    case GateFunc::kNand: return "NAND";
    case GateFunc::kOr: return "OR";
    case GateFunc::kNor: return "NOR";
    case GateFunc::kXor: return "XOR";
    case GateFunc::kXnor: return "XNOR";
    case GateFunc::kAoi21: return "AOI21";
    case GateFunc::kOai21: return "OAI21";
    case GateFunc::kMux2: return "MUX2";
    case GateFunc::kConst0: return "CONST0";
    case GateFunc::kConst1: return "CONST1";
  }
  return "?";
}

bool is_inverting(GateFunc func) {
  switch (func) {
    case GateFunc::kInv:
    case GateFunc::kNand:
    case GateFunc::kNor:
    case GateFunc::kXnor:
    case GateFunc::kAoi21:
    case GateFunc::kOai21:
      return true;
    default:
      return false;
  }
}

ArityRange func_arity(GateFunc func) {
  constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();
  switch (func) {
    case GateFunc::kInput:
    case GateFunc::kConst0:
    case GateFunc::kConst1:
      return {0, 0};
    case GateFunc::kBuf:
    case GateFunc::kInv:
      return {1, 1};
    case GateFunc::kAnd:
    case GateFunc::kNand:
    case GateFunc::kOr:
    case GateFunc::kNor:
    case GateFunc::kXor:
    case GateFunc::kXnor:
      return {2, kUnbounded};
    case GateFunc::kAoi21:
    case GateFunc::kOai21:
    case GateFunc::kMux2:
      return {3, 3};
  }
  return {0, 0};
}

namespace {
void validate_arity(GateFunc func, std::size_t n) {
  const ArityRange r = func_arity(func);
  if (n < r.min || n > r.max) {
    throw std::invalid_argument(std::string("bad fanin count for ") +
                                std::string(func_name(func)) + ": " + std::to_string(n));
  }
}
}  // namespace

std::string Netlist::unique_name(std::string base) {
  if (!base.empty() && !by_name_.contains(base)) return base;
  std::string candidate;
  do {
    candidate = (base.empty() ? std::string("g") : base + "_") + std::to_string(autoname_++);
  } while (by_name_.contains(candidate));
  return candidate;
}

GateId Netlist::add_input(std::string name) {
  if (name.empty()) throw std::invalid_argument("primary input needs a name");
  if (by_name_.contains(name)) throw std::invalid_argument("duplicate node name: " + name);
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.name = name;
  g.func = GateFunc::kInput;
  gates_.push_back(std::move(g));
  by_name_.emplace(std::move(name), id);
  inputs_.push_back(id);
  ++structure_version_;
  return id;
}

GateId Netlist::add_gate(GateFunc func, std::span<const GateId> fanins, std::string name) {
  if (func == GateFunc::kInput) throw std::invalid_argument("use add_input for primary inputs");
  validate_arity(func, fanins.size());
  for (GateId f : fanins) {
    if (f >= gates_.size()) throw std::out_of_range("fanin id out of range");
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.name = unique_name(std::move(name));
  g.func = func;
  g.fanins.assign(fanins.begin(), fanins.end());
  by_name_.emplace(g.name, id);
  gates_.push_back(std::move(g));
  for (GateId f : fanins) gates_[f].fanouts.push_back(id);
  ++structure_version_;
  return id;
}

GateId Netlist::add_gate(GateFunc func, std::initializer_list<GateId> fanins, std::string name) {
  return add_gate(func, std::span<const GateId>(fanins.begin(), fanins.size()), std::move(name));
}

void Netlist::add_output(std::string name, GateId driver) {
  if (driver >= gates_.size()) throw std::out_of_range("output driver id out of range");
  outputs_.push_back(Output{std::move(name), driver});
  ++gates_[driver].po_count;
  ++structure_version_;
}

void Netlist::detach_fanin_edges(GateId id) {
  for (GateId f : gates_[id].fanins) {
    auto& outs = gates_[f].fanouts;
    // Remove one occurrence (parallel edges are legal, e.g. XOR(a,a) pre-cleanup).
    const auto it = std::find(outs.begin(), outs.end(), id);
    if (it != outs.end()) outs.erase(it);
  }
}

void Netlist::rewire(GateId id, GateFunc func, std::span<const GateId> fanins) {
  if (func == GateFunc::kInput) throw std::invalid_argument("cannot rewire to INPUT");
  validate_arity(func, fanins.size());
  for (GateId f : fanins) {
    if (f >= gates_.size()) throw std::out_of_range("fanin id out of range");
  }
  detach_fanin_edges(id);
  gates_[id].func = func;
  gates_[id].fanins.assign(fanins.begin(), fanins.end());
  for (GateId f : fanins) gates_[f].fanouts.push_back(id);
  ++structure_version_;
}

void Netlist::transfer_fanouts(GateId from, GateId to) {
  if (from == to) return;
  for (GateId consumer : gates_[from].fanouts) {
    for (GateId& f : gates_[consumer].fanins) {
      if (f == from) f = to;
    }
    gates_[to].fanouts.push_back(consumer);
  }
  gates_[from].fanouts.clear();
  for (Output& o : outputs_) {
    if (o.driver == from) {
      o.driver = to;
      --gates_[from].po_count;
      ++gates_[to].po_count;
    }
  }
  ++structure_version_;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.func != GateFunc::kInput && g.func != GateFunc::kConst0 &&
        g.func != GateFunc::kConst1) {
      ++n;
    }
  }
  return n;
}

GateId Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoGate : it->second;
}

std::vector<std::uint16_t> Netlist::sizes() const {
  std::vector<std::uint16_t> out(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) out[i] = gates_[i].size_index;
  return out;
}

void Netlist::set_sizes(std::span<const std::uint16_t> sizes) {
  if (sizes.size() != gates_.size()) {
    throw std::invalid_argument("set_sizes: size vector arity mismatch");
  }
  for (std::size_t i = 0; i < gates_.size(); ++i) gates_[i].size_index = sizes[i];
}

Status Netlist::check() const {
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    const ArityRange r = func_arity(g.func);
    if (g.fanins.size() < r.min || g.fanins.size() > r.max) {
      return Status::error("gate " + g.name + ": bad arity for " +
                           std::string(func_name(g.func)));
    }
    for (GateId f : g.fanins) {
      if (f >= gates_.size()) return Status::error("gate " + g.name + ": fanin out of range");
      const auto& outs = gates_[f].fanouts;
      if (std::count(outs.begin(), outs.end(), id) <
          std::count(g.fanins.begin(), g.fanins.end(), f)) {
        return Status::error("gate " + g.name + ": fanout list of " + gates_[f].name +
                             " missing back-edge");
      }
    }
    for (GateId consumer : g.fanouts) {
      if (consumer >= gates_.size()) {
        return Status::error("gate " + g.name + ": fanout out of range");
      }
      const auto& ins = gates_[consumer].fanins;
      if (std::find(ins.begin(), ins.end(), id) == ins.end()) {
        return Status::error("gate " + g.name + ": stale fanout edge to " +
                             gates_[consumer].name);
      }
    }
  }
  for (const Output& o : outputs_) {
    if (o.driver >= gates_.size()) return Status::error("output " + o.name + ": bad driver");
  }
  if (!is_acyclic(*this)) return Status::error("netlist contains a combinational cycle");
  return Status();
}

}  // namespace statsizer::netlist
