// Topological utilities over Netlist: Kahn ordering, levelization, depth,
// cycle detection. All algorithms are O(V + E).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace statsizer::netlist {

/// Topological order of all nodes (inputs first). Throws std::logic_error if
/// the netlist has a cycle — construction normally prevents cycles, so a cycle
/// here is a programming error.
[[nodiscard]] std::vector<GateId> topological_order(const Netlist& nl);

/// True if the netlist is a DAG.
[[nodiscard]] bool is_acyclic(const Netlist& nl);

/// Level of each node: inputs/constants are level 0; otherwise
/// 1 + max(level of fanins). Index by GateId.
[[nodiscard]] std::vector<std::uint32_t> levels(const Netlist& nl);

/// Maximum over levels(); the logic depth of the circuit.
[[nodiscard]] std::uint32_t depth(const Netlist& nl);

/// Nodes from which at least one primary output is reachable. Index by GateId.
[[nodiscard]] std::vector<bool> observable_mask(const Netlist& nl);

/// Cached levelization of a netlist: the node set bucketed by level (see
/// levels()), with level buckets laid out contiguously. Because a node's
/// level is 1 + max(level of fanins), every edge goes *strictly* level-up —
/// nodes inside one level never feed each other, so all gates of a level can
/// be processed concurrently once every lower level is done. This is the
/// wavefront decomposition TimingContext::update(), ssta::run_fullssta, and
/// the what-if cone replay parallelize over.
///
/// The struct is a value: compute it once with levelize() and reuse it until
/// the netlist's *structure* changes (sizing changes never invalidate it —
/// levels depend only on edges). valid_for() checks the netlist's structure
/// version, so caches can fail loudly instead of going silently stale.
struct Levelization {
  /// Level of each node, indexed by GateId (same values as levels()).
  std::vector<std::uint32_t> level_of;
  /// Bucket boundaries: level l occupies
  /// order_by_level[level_offset[l] .. level_offset[l + 1]). Always
  /// level_count() + 1 entries (a single {0} for an empty netlist).
  std::vector<std::uint32_t> level_offset;
  /// All nodes grouped by level — the stable partition of topological_order()
  /// by level_of, so concatenating the buckets yields a valid topological
  /// order and each bucket preserves the Kahn order of its members.
  std::vector<GateId> order_by_level;
  /// Netlist::structure_version() at the time of the build.
  std::uint64_t structure_version = 0;

  [[nodiscard]] std::size_t level_count() const { return level_offset.size() - 1; }
  [[nodiscard]] std::span<const GateId> level(std::size_t l) const {
    return std::span<const GateId>(order_by_level)
        .subspan(level_offset[l], level_offset[l + 1] - level_offset[l]);
  }
  /// True while the levelization still describes @p nl's structure.
  [[nodiscard]] bool valid_for(const Netlist& nl) const {
    return structure_version == nl.structure_version() && level_of.size() == nl.node_count();
  }
};

/// Builds the level decomposition of @p nl. O(V + E); throws like
/// topological_order() on a cyclic netlist.
[[nodiscard]] Levelization levelize(const Netlist& nl);

}  // namespace statsizer::netlist
