// Topological utilities over Netlist: Kahn ordering, levelization, depth,
// cycle detection. All algorithms are O(V + E).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace statsizer::netlist {

/// Topological order of all nodes (inputs first). Throws std::logic_error if
/// the netlist has a cycle — construction normally prevents cycles, so a cycle
/// here is a programming error.
[[nodiscard]] std::vector<GateId> topological_order(const Netlist& nl);

/// True if the netlist is a DAG.
[[nodiscard]] bool is_acyclic(const Netlist& nl);

/// Level of each node: inputs/constants are level 0; otherwise
/// 1 + max(level of fanins). Index by GateId.
[[nodiscard]] std::vector<std::uint32_t> levels(const Netlist& nl);

/// Maximum over levels(); the logic depth of the circuit.
[[nodiscard]] std::uint32_t depth(const Netlist& nl);

/// Nodes from which at least one primary output is reachable. Index by GateId.
[[nodiscard]] std::vector<bool> observable_mask(const Netlist& nl);

}  // namespace statsizer::netlist
