#include "netlist/subcircuit.h"

#include <algorithm>
#include <stdexcept>

#include "netlist/topo.h"

namespace statsizer::netlist {

namespace {

/// BFS over fanins (dir = false) or fanouts (dir = true), up to @p levels
/// edges from @p start; marks reached gates in @p member (PIs excluded).
void mark_cone(const Netlist& nl, GateId start, unsigned levels, bool towards_outputs,
               std::vector<bool>& member) {
  std::vector<std::pair<GateId, unsigned>> frontier{{start, 0}};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const auto [id, dist] = frontier[head];
    if (dist >= levels) continue;
    const Gate& g = nl.gate(id);
    const auto& next = towards_outputs ? g.fanouts : g.fanins;
    for (GateId n : next) {
      if (nl.is_input(n) || nl.is_constant(n)) continue;
      if (!member[n]) {
        member[n] = true;
        frontier.emplace_back(n, dist + 1);
      } else if (dist + 1 < levels) {
        // Already a member but may now be reachable with budget left; re-expand
        // only if this path is shorter than any seen. For the tiny windows we
        // use (k <= 3) revisiting is cheap and keeps the code simple.
        frontier.emplace_back(n, dist + 1);
      }
    }
  }
}

}  // namespace

Subcircuit extract_subcircuit(const Netlist& nl, GateId center, unsigned fanin_levels,
                              unsigned fanout_levels) {
  if (center >= nl.node_count()) throw std::out_of_range("extract_subcircuit: bad center");
  if (nl.is_input(center)) {
    throw std::invalid_argument("extract_subcircuit: center cannot be a primary input");
  }

  Subcircuit sc;
  sc.center = center;
  sc.member.assign(nl.node_count(), false);
  sc.member[center] = true;
  mark_cone(nl, center, fanin_levels, /*towards_outputs=*/false, sc.member);
  mark_cone(nl, center, fanout_levels, /*towards_outputs=*/true, sc.member);

  // Collect members in global topological order so moment propagation can run
  // in one pass.
  for (GateId id : topological_order(nl)) {
    if (sc.member[id]) sc.gates.push_back(id);
  }

  // Boundary inputs: any non-member feeding a member, deduplicated.
  std::vector<bool> seen(nl.node_count(), false);
  for (GateId id : sc.gates) {
    for (GateId f : nl.gate(id).fanins) {
      if (!sc.member[f] && !seen[f]) {
        seen[f] = true;
        sc.boundary_inputs.push_back(f);
      }
    }
  }

  // Outputs: members observable outside the window.
  for (GateId id : sc.gates) {
    const Gate& g = nl.gate(id);
    bool escapes = g.po_count > 0 || g.fanouts.empty();
    for (GateId consumer : g.fanouts) {
      if (!sc.member[consumer]) {
        escapes = true;
        break;
      }
    }
    if (escapes) sc.outputs.push_back(id);
  }
  return sc;
}

}  // namespace statsizer::netlist
