// Subcircuit extraction for the optimizer's inner loop (paper section 4.5):
// around a candidate gate, take k levels of transitive fanin and k levels of
// transitive fanout; arrival-time boundary conditions at the cut come from the
// outer FULLSSTA pass. The paper found k = 2 "sufficiently accurate without
// being too costly".
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace statsizer::netlist {

/// A window of the netlist around one gate.
struct Subcircuit {
  GateId center = kNoGate;
  /// Member gates in topological order (consistent with the parent netlist's
  /// order). Excludes boundary inputs.
  std::vector<GateId> gates;
  /// Non-member nodes (gates or PIs) feeding at least one member: their
  /// arrival statistics are the boundary conditions for evaluation.
  std::vector<GateId> boundary_inputs;
  /// Member gates whose value leaves the window (fanout to a non-member or a
  /// primary output). Subcircuit cost (paper eq. 7) is evaluated over these.
  std::vector<GateId> outputs;
  /// Membership test indexed by GateId (size = parent netlist node count).
  std::vector<bool> member;
};

/// Extracts the k-level fanin/fanout window around @p center.
/// @p fanin_levels / @p fanout_levels count edges walked from the center;
/// the center itself is always a member. Primary inputs are never members
/// (they appear as boundary inputs).
[[nodiscard]] Subcircuit extract_subcircuit(const Netlist& nl, GateId center,
                                            unsigned fanin_levels = 2,
                                            unsigned fanout_levels = 2);

}  // namespace statsizer::netlist
