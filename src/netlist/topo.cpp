#include "netlist/topo.h"

#include <algorithm>
#include <stdexcept>

namespace statsizer::netlist {

namespace {
/// Kahn's algorithm; returns empty vector if a cycle prevents completion.
std::vector<GateId> kahn(const Netlist& nl) {
  const std::size_t n = nl.node_count();
  std::vector<std::uint32_t> pending(n);
  std::vector<GateId> ready;
  ready.reserve(n);
  for (GateId id = 0; id < n; ++id) {
    pending[id] = static_cast<std::uint32_t>(nl.gate(id).fanins.size());
    if (pending[id] == 0) ready.push_back(id);
  }
  std::vector<GateId> order;
  order.reserve(n);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId id = ready[head];
    order.push_back(id);
    for (GateId consumer : nl.gate(id).fanouts) {
      if (--pending[consumer] == 0) ready.push_back(consumer);
    }
  }
  if (order.size() != n) order.clear();
  return order;
}
}  // namespace

std::vector<GateId> topological_order(const Netlist& nl) {
  std::vector<GateId> order = kahn(nl);
  if (order.empty() && nl.node_count() != 0) {
    throw std::logic_error("topological_order: netlist has a combinational cycle");
  }
  return order;
}

bool is_acyclic(const Netlist& nl) {
  return nl.node_count() == 0 || !kahn(nl).empty();
}

std::vector<std::uint32_t> levels(const Netlist& nl) {
  std::vector<std::uint32_t> level(nl.node_count(), 0);
  for (GateId id : topological_order(nl)) {
    std::uint32_t lv = 0;
    for (GateId f : nl.gate(id).fanins) lv = std::max(lv, level[f] + 1);
    level[id] = lv;
  }
  return level;
}

std::uint32_t depth(const Netlist& nl) {
  const auto lv = levels(nl);
  return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

Levelization levelize(const Netlist& nl) {
  Levelization lv;
  lv.structure_version = nl.structure_version();
  const std::vector<GateId> order = topological_order(nl);

  lv.level_of.assign(nl.node_count(), 0);
  std::uint32_t max_level = 0;
  for (const GateId id : order) {
    std::uint32_t l = 0;
    for (GateId f : nl.gate(id).fanins) l = std::max(l, lv.level_of[f] + 1);
    lv.level_of[id] = l;
    max_level = std::max(max_level, l);
  }

  // Counting sort of the topo order by level: stable, so each bucket keeps
  // its members in Kahn order and the concatenation is itself topological.
  const std::size_t n_levels = nl.node_count() == 0 ? 0 : max_level + 1u;
  lv.level_offset.assign(n_levels + 1, 0);
  for (const GateId id : order) ++lv.level_offset[lv.level_of[id] + 1];
  for (std::size_t l = 1; l <= n_levels; ++l) lv.level_offset[l] += lv.level_offset[l - 1];
  lv.order_by_level.resize(order.size());
  std::vector<std::uint32_t> cursor(lv.level_offset.begin(), lv.level_offset.end() - 1);
  for (const GateId id : order) lv.order_by_level[cursor[lv.level_of[id]]++] = id;
  return lv;
}

std::vector<bool> observable_mask(const Netlist& nl) {
  std::vector<bool> mask(nl.node_count(), false);
  std::vector<GateId> stack;
  for (const Output& o : nl.outputs()) {
    if (!mask[o.driver]) {
      mask[o.driver] = true;
      stack.push_back(o.driver);
    }
  }
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    for (GateId f : nl.gate(id).fanins) {
      if (!mask[f]) {
        mask[f] = true;
        stack.push_back(f);
      }
    }
  }
  return mask;
}

}  // namespace statsizer::netlist
