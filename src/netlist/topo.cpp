#include "netlist/topo.h"

#include <algorithm>
#include <stdexcept>

namespace statsizer::netlist {

namespace {
/// Kahn's algorithm; returns empty vector if a cycle prevents completion.
std::vector<GateId> kahn(const Netlist& nl) {
  const std::size_t n = nl.node_count();
  std::vector<std::uint32_t> pending(n);
  std::vector<GateId> ready;
  ready.reserve(n);
  for (GateId id = 0; id < n; ++id) {
    pending[id] = static_cast<std::uint32_t>(nl.gate(id).fanins.size());
    if (pending[id] == 0) ready.push_back(id);
  }
  std::vector<GateId> order;
  order.reserve(n);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId id = ready[head];
    order.push_back(id);
    for (GateId consumer : nl.gate(id).fanouts) {
      if (--pending[consumer] == 0) ready.push_back(consumer);
    }
  }
  if (order.size() != n) order.clear();
  return order;
}
}  // namespace

std::vector<GateId> topological_order(const Netlist& nl) {
  std::vector<GateId> order = kahn(nl);
  if (order.empty() && nl.node_count() != 0) {
    throw std::logic_error("topological_order: netlist has a combinational cycle");
  }
  return order;
}

bool is_acyclic(const Netlist& nl) {
  return nl.node_count() == 0 || !kahn(nl).empty();
}

std::vector<std::uint32_t> levels(const Netlist& nl) {
  std::vector<std::uint32_t> level(nl.node_count(), 0);
  for (GateId id : topological_order(nl)) {
    std::uint32_t lv = 0;
    for (GateId f : nl.gate(id).fanins) lv = std::max(lv, level[f] + 1);
    level[id] = lv;
  }
  return level;
}

std::uint32_t depth(const Netlist& nl) {
  const auto lv = levels(nl);
  return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

std::vector<bool> observable_mask(const Netlist& nl) {
  std::vector<bool> mask(nl.node_count(), false);
  std::vector<GateId> stack;
  for (const Output& o : nl.outputs()) {
    if (!mask[o.driver]) {
      mask[o.driver] = true;
      stack.push_back(o.driver);
    }
  }
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    for (GateId f : nl.gate(id).fanins) {
      if (!mask[f]) {
        mask[f] = true;
        stack.push_back(f);
      }
    }
  }
  return mask;
}

}  // namespace statsizer::netlist
