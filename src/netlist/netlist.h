// Combinational gate-level netlist.
//
// Design notes:
//  * Gates and primary inputs are nodes in one dense id space (GateId); every
//    per-gate attribute elsewhere in the library is a parallel vector indexed
//    by GateId. Primary outputs are (name, driver) references, not nodes.
//  * Before technology mapping a gate carries only a logic function
//    (GateFunc) of arbitrary arity; mapping binds it to a library cell group
//    and a size index (see techmap::Mapper). Sizing only ever changes
//    size_index, never the structure, so optimizers can snapshot/restore
//    sizing state as a plain vector<uint16>.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace statsizer::netlist {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = std::numeric_limits<GateId>::max();
inline constexpr std::uint32_t kUnmapped = std::numeric_limits<std::uint32_t>::max();

/// Logic function of a node. kInput marks a primary-input node (no fanins).
/// Multi-input functions accept arbitrary arity before mapping; the mapper
/// guarantees arity <= the library's maximum afterwards.
enum class GateFunc : std::uint8_t {
  kInput,
  kBuf,
  kInv,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kAoi21,  // !(a & b | c)
  kOai21,  // !((a | b) & c)
  kMux2,   // fanins (d0, d1, s): s ? d1 : d0
  kConst0,
  kConst1,
};

/// Human-readable function name ("NAND", "AOI21", ...).
[[nodiscard]] std::string_view func_name(GateFunc func);

/// True if the function is one of the inverting primitives
/// (INV/NAND/NOR/XNOR/AOI21/OAI21).
[[nodiscard]] bool is_inverting(GateFunc func);

/// Allowed fanin count for a function: returns {min, max} arity
/// (max == SIZE_MAX for the tree-decomposable associative functions).
struct ArityRange {
  std::size_t min;
  std::size_t max;
};
[[nodiscard]] ArityRange func_arity(GateFunc func);

/// One node of the netlist.
struct Gate {
  std::string name;
  GateFunc func = GateFunc::kBuf;
  std::vector<GateId> fanins;
  std::vector<GateId> fanouts;  ///< derived; kept consistent by Netlist
  /// Index of the library cell group implementing this gate (kUnmapped before
  /// technology mapping). Assigned by techmap::Mapper.
  std::uint32_t cell_group = kUnmapped;
  /// Index into the cell group's size list (drive strength choice).
  std::uint16_t size_index = 0;
  /// Number of primary outputs this gate drives directly (a gate can both
  /// feed other gates and be observable).
  std::uint16_t po_count = 0;
};

/// A primary output: a named reference to the gate that drives it.
struct Output {
  std::string name;
  GateId driver = kNoGate;
};

/// Combinational netlist. Construction is additive (add_input/add_gate/
/// add_output); structural edits are limited to what the mapper needs
/// (replace_gate_function, rewire). The class maintains fanout lists and
/// name->id lookup as invariants.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // -- construction ---------------------------------------------------------

  /// Adds a primary input node. Names must be unique across all nodes.
  GateId add_input(std::string name);

  /// Adds a gate computing @p func over @p fanins. Arity is validated.
  /// If @p name is empty a unique one is generated ("g123").
  GateId add_gate(GateFunc func, std::span<const GateId> fanins, std::string name = {});

  /// Convenience overload.
  GateId add_gate(GateFunc func, std::initializer_list<GateId> fanins, std::string name = {});

  /// Declares @p driver as the primary output @p name.
  void add_output(std::string name, GateId driver);

  // -- structural edits (used by techmap) ------------------------------------

  /// Replaces gate @p id's function and fanins in place; fixes fanout lists.
  void rewire(GateId id, GateFunc func, std::span<const GateId> fanins);

  /// Moves every fanout-consumer of @p from (and every PO reference) to @p to.
  /// @p from becomes dangling (no fanouts); it still occupies its id.
  void transfer_fanouts(GateId from, GateId to);

  // -- access ----------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t node_count() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id]; }
  [[nodiscard]] Gate& gate(GateId id) { return gates_[id]; }

  [[nodiscard]] std::span<const GateId> inputs() const { return inputs_; }
  [[nodiscard]] std::span<const Output> outputs() const { return outputs_; }

  /// Number of logic gates (nodes that are not primary inputs / constants).
  [[nodiscard]] std::size_t logic_gate_count() const;

  /// Looks up a node id by name; kNoGate if absent.
  [[nodiscard]] GateId find(std::string_view name) const;

  [[nodiscard]] bool is_input(GateId id) const { return gates_[id].func == GateFunc::kInput; }
  [[nodiscard]] bool is_constant(GateId id) const {
    return gates_[id].func == GateFunc::kConst0 || gates_[id].func == GateFunc::kConst1;
  }

  // -- sizing state -----------------------------------------------------------

  /// Snapshot of all size indices (restore with set_sizes).
  [[nodiscard]] std::vector<std::uint16_t> sizes() const;
  void set_sizes(std::span<const std::uint16_t> sizes);

  // -- structure version -------------------------------------------------------

  /// Monotone counter bumped by every structural mutation (add_input,
  /// add_gate, add_output, rewire, transfer_fanouts). Sizing changes
  /// (size_index, set_sizes) do NOT bump it. Derived caches keyed on the
  /// structure — topological orders, Levelization — record the version they
  /// were built at and compare against this to detect staleness.
  [[nodiscard]] std::uint64_t structure_version() const { return structure_version_; }

  // -- validation --------------------------------------------------------------

  /// Structural sanity: fanin/fanout symmetry, arities, outputs driven,
  /// acyclicity. Returns an error describing the first violation.
  [[nodiscard]] Status check() const;

 private:
  std::string unique_name(std::string base);
  void detach_fanin_edges(GateId id);

  std::string name_ = "netlist";
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<Output> outputs_;
  std::unordered_map<std::string, GateId> by_name_;
  std::uint64_t autoname_ = 0;
  std::uint64_t structure_version_ = 0;
};

}  // namespace statsizer::netlist
