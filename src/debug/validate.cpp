#include "debug/validate.h"

#include <cmath>
#include <string>
#include <vector>

#include "util/check.h"

namespace statsizer::debug {

using netlist::GateId;

void validate_levelization(const netlist::Netlist& nl, const netlist::Levelization& lv) {
  constexpr const char* kWhere = "validate_levelization";
  const std::size_t n = nl.node_count();
  STATSIZER_PARANOID_CHECK(lv.level_of.size() == n, kWhere,
                           "level_of covers " + std::to_string(lv.level_of.size()) +
                               " nodes, netlist has " + std::to_string(n));
  STATSIZER_PARANOID_CHECK(!lv.level_offset.empty() && lv.level_offset.front() == 0, kWhere,
                           "level_offset must start at 0");
  for (std::size_t l = 0; l + 1 < lv.level_offset.size(); ++l) {
    STATSIZER_PARANOID_CHECK(lv.level_offset[l] <= lv.level_offset[l + 1], kWhere,
                             "level_offset decreases at level " + std::to_string(l));
  }
  STATSIZER_PARANOID_CHECK(lv.level_offset.back() == n, kWhere,
                           "level_offset must end at node_count");
  STATSIZER_PARANOID_CHECK(lv.order_by_level.size() == n, kWhere,
                           "order_by_level covers " + std::to_string(lv.order_by_level.size()) +
                               " nodes, netlist has " + std::to_string(n));

  // order_by_level is a permutation, and each bucket member carries the
  // bucket's level.
  std::vector<bool> seen(n, false);
  for (std::size_t l = 0; l + 1 < lv.level_offset.size(); ++l) {
    for (std::uint32_t i = lv.level_offset[l]; i < lv.level_offset[l + 1]; ++i) {
      const GateId id = lv.order_by_level[i];
      STATSIZER_PARANOID_CHECK(id < n, kWhere,
                               "order_by_level holds out-of-range node " + std::to_string(id));
      STATSIZER_PARANOID_CHECK(!seen[id], kWhere,
                               "node " + std::to_string(id) + " appears twice in order_by_level");
      seen[id] = true;
      STATSIZER_PARANOID_CHECK(lv.level_of[id] == l, kWhere,
                               "node " + std::to_string(id) + " sits in bucket " +
                                   std::to_string(l) + " but level_of says " +
                                   std::to_string(lv.level_of[id]));
    }
  }

  // Every edge strictly level-up; sources sit at level 0.
  for (GateId id = 0; id < n; ++id) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) {
      STATSIZER_PARANOID_CHECK(lv.level_of[id] == 0, kWhere,
                               "fanin-less node " + std::to_string(id) + " at level " +
                                   std::to_string(lv.level_of[id]));
      continue;
    }
    for (const GateId f : g.fanins) {
      STATSIZER_PARANOID_CHECK(
          lv.level_of[f] < lv.level_of[id], kWhere,
          "edge " + std::to_string(f) + " -> " + std::to_string(id) +
              " is not strictly level-up (levels " + std::to_string(lv.level_of[f]) + " -> " +
              std::to_string(lv.level_of[id]) + ")");
    }
  }
}

void validate_load_terms(const netlist::Netlist& nl,
                         std::span<const std::uint32_t> load_term_offset,
                         std::span<const sta::LoadTerm> load_terms) {
  constexpr const char* kWhere = "validate_load_terms";
  const std::size_t n = nl.node_count();
  STATSIZER_PARANOID_CHECK(load_term_offset.size() == n + 1, kWhere,
                           "offset array has " + std::to_string(load_term_offset.size()) +
                               " entries, want node_count + 1 = " + std::to_string(n + 1));
  STATSIZER_PARANOID_CHECK(load_term_offset.front() == 0, kWhere, "offsets must start at 0");
  for (std::size_t i = 0; i < n; ++i) {
    STATSIZER_PARANOID_CHECK(load_term_offset[i] <= load_term_offset[i + 1], kWhere,
                             "offsets decrease at node " + std::to_string(i));
  }
  STATSIZER_PARANOID_CHECK(load_term_offset.back() == load_terms.size(), kWhere,
                           "offsets end at " + std::to_string(load_term_offset.back()) +
                               " but there are " + std::to_string(load_terms.size()) + " terms");

  // Rebuild the expected sequence with the constructor's algorithm: walk
  // gates by id; a driver's PO term first (at the driver's cursor), then each
  // mapped gate appends (gate, fanin_index) to the fanin's cursor.
  std::vector<std::uint32_t> cursor(load_term_offset.begin(), load_term_offset.end() - 1);
  const auto expect_term = [&](GateId driver, const sta::LoadTerm& want) {
    const std::uint32_t at = cursor[driver]++;
    STATSIZER_PARANOID_CHECK(at < load_term_offset[driver + 1], kWhere,
                             "driver " + std::to_string(driver) + " has more terms than its slot");
    const sta::LoadTerm& got = load_terms[at];
    STATSIZER_PARANOID_CHECK(
        got.consumer == want.consumer && got.fanin_index == want.fanin_index, kWhere,
        "term " + std::to_string(at) + " of driver " + std::to_string(driver) + " is (" +
            std::to_string(got.consumer) + ", " + std::to_string(got.fanin_index) +
            "), want (" + std::to_string(want.consumer) + ", " +
            std::to_string(want.fanin_index) + ")");
  };
  for (GateId id = 0; id < n; ++id) {
    const auto& g = nl.gate(id);
    if (g.po_count > 0) expect_term(id, sta::LoadTerm{netlist::kNoGate, 0});
    if (g.cell_group == netlist::kUnmapped) continue;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      expect_term(g.fanins[i], sta::LoadTerm{id, static_cast<std::uint32_t>(i)});
    }
  }
  for (GateId id = 0; id < n; ++id) {
    STATSIZER_PARANOID_CHECK(cursor[id] == load_term_offset[id + 1], kWhere,
                             "driver " + std::to_string(id) + " has fewer terms than its slot");
  }
}

void validate_pdf(double origin, double step, std::span<const double> masses) {
  constexpr const char* kWhere = "validate_pdf";
  STATSIZER_PARANOID_CHECK(!masses.empty(), kWhere, "empty mass vector");
  STATSIZER_PARANOID_CHECK(std::isfinite(origin), kWhere, "non-finite origin");
  STATSIZER_PARANOID_CHECK(std::isfinite(step), kWhere, "non-finite step");
  if (masses.size() == 1) {
    STATSIZER_PARANOID_CHECK(step == 0.0, kWhere, "point mass must have step 0");
  } else {
    STATSIZER_PARANOID_CHECK(step > 0.0, kWhere,
                             "grid step must be positive, got " + std::to_string(step));
  }
  // Non-negative finite masses => the running CDF is monotone by
  // construction; auditing the partial sums directly also catches NaN
  // poisoning part-way through.
  double cdf = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < masses.size(); ++i) {
    STATSIZER_PARANOID_CHECK(std::isfinite(masses[i]), kWhere,
                             "non-finite mass at bin " + std::to_string(i));
    STATSIZER_PARANOID_CHECK(masses[i] >= 0.0, kWhere,
                             "negative mass " + std::to_string(masses[i]) + " at bin " +
                                 std::to_string(i));
    cdf += masses[i];
    STATSIZER_PARANOID_CHECK(cdf >= prev, kWhere,
                             "CDF decreases at bin " + std::to_string(i));
    prev = cdf;
  }
  STATSIZER_PARANOID_CHECK(std::abs(cdf - 1.0) <= 1e-9, kWhere,
                           "masses sum to " + std::to_string(cdf) + ", want 1");
}

void validate_pdf(const pdf::DiscretePdf& p) {
  validate_pdf(p.origin(), p.step(), p.masses());
}

void validate_epoch(std::string_view engine, std::uint64_t speculation_epoch,
                    std::uint64_t analyzer_epoch) {
  STATSIZER_PARANOID_CHECK(speculation_epoch <= analyzer_epoch, "validate_epoch",
                           std::string(engine) + ": speculation stamped at epoch " +
                               std::to_string(speculation_epoch) +
                               " is newer than the analyzer epoch " +
                               std::to_string(analyzer_epoch) +
                               " (epoch bookkeeping corrupted)");
}

void validate_structure_fresh(const netlist::Netlist& nl, const netlist::Levelization& lv) {
  STATSIZER_PARANOID_CHECK(
      lv.valid_for(nl), "validate_structure_fresh",
      "levelization built at structure_version " + std::to_string(lv.structure_version) +
          " for " + std::to_string(lv.level_of.size()) + " nodes, netlist is at version " +
          std::to_string(nl.structure_version()) + " with " + std::to_string(nl.node_count()) +
          " nodes");
}

}  // namespace statsizer::debug
