// Deep invariant validators — the paranoid layer's checking logic.
//
// Each validate_* function audits one standing invariant of the codebase and
// funnels violations through debug::check_fail (a std::logic_error whose
// message starts with "paranoid: "). The functions are always compiled and
// side-effect free, so tests call them directly on deliberately corrupted
// inputs to prove they trip; with cmake -DSTATSIZER_PARANOID=ON the hot
// paths also call them automatically (see util/check.h for the gating
// contract and the list of call sites).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "netlist/netlist.h"
#include "netlist/topo.h"
#include "pdf/discrete_pdf.h"
#include "sta/graph.h"

namespace statsizer::debug {

/// Levelization invariants against @p nl: level_of covers every node, the
/// bucket offsets are a monotone partition of [0, node_count), every bucket
/// member has the bucket's level, order_by_level is a permutation of the node
/// set, and — the property the wavefront kernels' correctness rests on —
/// every edge goes *strictly* level-up (fanin-less nodes sit at level 0).
void validate_levelization(const netlist::Netlist& nl, const netlist::Levelization& lv);

/// Load-term CSR consistency against @p nl's structure: offsets form a
/// monotone [node_count + 1] prefix-sum ending at terms.size(), and the term
/// sequence is exactly what TimingContext's constructor builds — per driver,
/// the PO term (for po_count > 0 drivers) then each mapped consumer's
/// (consumer, fanin_index) pair in gate-id visit order. A mismatch means the
/// CSR no longer reproduces update()'s bitwise load-fold order.
void validate_load_terms(const netlist::Netlist& nl,
                         std::span<const std::uint32_t> load_term_offset,
                         std::span<const sta::LoadTerm> load_terms);

/// DiscretePdf invariants on raw grid data: a non-empty grid, finite origin
/// and step, step > 0 unless the pdf is a point mass, finite non-negative
/// masses summing to 1 (1e-9 slack), and a monotone non-decreasing running
/// CDF that ends at the total mass.
void validate_pdf(double origin, double step, std::span<const double> masses);

/// Convenience overload over an assembled pdf.
void validate_pdf(const pdf::DiscretePdf& p);

/// Speculation-epoch discipline: a speculation can be stamped at or before
/// the analyzer's current epoch, never after it. (Stale speculations —
/// stamp < epoch — are a *caller* error handled loudly by guard_epoch; a
/// stamp from the future means the analyzer's own bookkeeping is corrupt.)
/// @p engine names the analyzer for the failure message.
void validate_epoch(std::string_view engine, std::uint64_t speculation_epoch,
                    std::uint64_t analyzer_epoch);

/// Structure-version staleness: @p lv must still describe @p nl (same
/// structure_version, same node count). Trips when a structural edit slipped
/// in under a live TimingContext / cached levelization.
void validate_structure_fresh(const netlist::Netlist& nl, const netlist::Levelization& lv);

}  // namespace statsizer::debug
