#include "fassta/clark.h"

#include <algorithm>
#include <cmath>

#include "util/numeric.h"

namespace statsizer::fassta {

namespace {

/// Shared Clark evaluation once Phi(alpha) / phi(alpha) are chosen.
ClarkResult clark_core(double mu_a, double sigma_a, double mu_b, double sigma_b, double a,
                       double phi_alpha, double cdf_alpha) {
  const double cdf_neg = 1.0 - cdf_alpha;
  ClarkResult r;
  r.tightness = cdf_alpha;
  r.mean = mu_a * cdf_alpha + mu_b * cdf_neg + a * phi_alpha;
  const double nu2 = (mu_a * mu_a + sigma_a * sigma_a) * cdf_alpha +
                     (mu_b * mu_b + sigma_b * sigma_b) * cdf_neg +
                     (mu_a + mu_b) * a * phi_alpha;
  r.var = std::max(0.0, nu2 - r.mean * r.mean);
  return r;
}

ClarkResult degenerate_max(double mu_a, double sigma_a, double mu_b, double sigma_b) {
  // a == 0: identical-variance, perfectly-tracking inputs (or two
  // deterministic values): the max is whichever mean is larger.
  ClarkResult r;
  if (mu_a >= mu_b) {
    r.mean = mu_a;
    r.var = sigma_a * sigma_a;
    r.tightness = 1.0;
  } else {
    r.mean = mu_b;
    r.var = sigma_b * sigma_b;
    r.tightness = 0.0;
  }
  return r;
}

}  // namespace

int dominance(double mu_a, double sigma_a, double mu_b, double sigma_b, double threshold) {
  const double a2 = sigma_a * sigma_a + sigma_b * sigma_b;
  if (a2 <= 0.0) return mu_a >= mu_b ? +1 : -1;
  const double alpha = (mu_a - mu_b) / std::sqrt(a2);
  if (alpha >= threshold) return +1;
  if (alpha <= -threshold) return -1;
  return 0;
}

ClarkResult clark_max_exact(double mu_a, double sigma_a, double mu_b, double sigma_b,
                            double rho) {
  const double a2 =
      sigma_a * sigma_a + sigma_b * sigma_b - 2.0 * rho * sigma_a * sigma_b;
  if (a2 <= 1e-24) return degenerate_max(mu_a, sigma_a, mu_b, sigma_b);
  const double a = std::sqrt(a2);
  const double alpha = (mu_a - mu_b) / a;
  return clark_core(mu_a, sigma_a, mu_b, sigma_b, a, util::normal_pdf(alpha),
                    util::normal_cdf(alpha));
}

ClarkResult clark_max_fast(double mu_a, double sigma_a, double mu_b, double sigma_b) {
  const double a2 = sigma_a * sigma_a + sigma_b * sigma_b;
  if (a2 <= 1e-24) return degenerate_max(mu_a, sigma_a, mu_b, sigma_b);
  const double a = std::sqrt(a2);
  const double alpha = (mu_a - mu_b) / a;

  // Paper eqs. (5)/(6): the quadratic erf approximation saturates at
  // |alpha| = 2.6 — beyond it, Phi = 1, phi = 0 and the dominant input's
  // moments pass through unchanged. No further math needed.
  if (alpha >= 2.6) return ClarkResult{mu_a, sigma_a * sigma_a, 1.0};
  if (alpha <= -2.6) return ClarkResult{mu_b, sigma_b * sigma_b, 0.0};

  return clark_core(mu_a, sigma_a, mu_b, sigma_b, a, util::normal_pdf(alpha),
                    util::normal_cdf_fast(alpha));
}

double max_var_sensitivity_mu_a(double mu_a, double sigma_a, double mu_b, double sigma_b,
                                double h_frac, double c_a, bool use_fast) {
  const auto var_of = [&](double ma, double sa, double mb, double sb) {
    return use_fast ? clark_max_fast(ma, sa, mb, sb).var
                    : clark_max_exact(ma, sa, mb, sb).var;
  };
  const double h = std::max(h_frac * std::abs(mu_a), 1e-6);
  const double g = c_a * h;  // coupled sigma movement along the path
  const double base = var_of(mu_a, sigma_a, mu_b, sigma_b);
  const double bumped = var_of(mu_a + h, sigma_a + g, mu_b, sigma_b);
  return (bumped - base) / h;
}

}  // namespace statsizer::fassta
