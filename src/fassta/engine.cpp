#include "fassta/engine.h"

#include <algorithm>
#include <cmath>

#include "fassta/clark.h"

namespace statsizer::fassta {

using netlist::GateId;
using sta::NodeMoments;

Engine::Engine(const sta::TimingContext& ctx, EngineOptions options)
    : ctx_(ctx), options_(options) {}

NodeMoments Engine::stat_max(const NodeMoments& a, const NodeMoments& b) const {
  if (options_.max_mode == MaxMode::kFast) {
    // Dominance early-outs with the configured threshold (2.6 in the paper —
    // the point where the quadratic erf approximation saturates).
    const int dom = dominance(a.mean_ps, a.sigma_ps, b.mean_ps, b.sigma_ps,
                              options_.dominance_threshold);
    if (dom > 0) return a;
    if (dom < 0) return b;
    const ClarkResult r = clark_max_fast(a.mean_ps, a.sigma_ps, b.mean_ps, b.sigma_ps);
    return NodeMoments{r.mean, std::sqrt(r.var)};
  }
  const ClarkResult r = clark_max_exact(a.mean_ps, a.sigma_ps, b.mean_ps, b.sigma_ps);
  return NodeMoments{r.mean, std::sqrt(r.var)};
}

std::vector<NodeMoments> Engine::run(NodeMoments* circuit) const {
  const auto& nl = ctx_.netlist();
  std::vector<NodeMoments> arrival(nl.node_count());

  for (const GateId id : ctx_.topo_order()) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) continue;  // PI/constant: arrival (0, 0)
    NodeMoments acc;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const NodeMoments& in = arrival[g.fanins[i]];
      const double d = ctx_.arc_delay_ps(id, i);
      const double s = ctx_.arc_sigma_ps(id, i);
      const NodeMoments through{in.mean_ps + d,
                                std::sqrt(in.sigma_ps * in.sigma_ps + s * s)};
      acc = (i == 0) ? through : stat_max(acc, through);
    }
    arrival[id] = acc;
  }

  if (circuit != nullptr) {
    NodeMoments out{0.0, 0.0};
    bool first = true;
    for (const auto& po : nl.outputs()) {
      out = first ? arrival[po.driver] : stat_max(out, arrival[po.driver]);
      first = false;
    }
    *circuit = out;
  }
  return arrival;
}

sta::NodeMoments Engine::run_with_candidate(GateId center,
                                            const liberty::Cell& candidate) const {
  Scratch scratch;
  return run_with_candidate(center, candidate, scratch);
}

sta::NodeMoments Engine::run_with_candidate(GateId center, const liberty::Cell& candidate,
                                            Scratch& scratch) const {
  const auto& nl = ctx_.netlist();
  std::vector<NodeMoments>& arrival = scratch.arrival;
  arrival.assign(nl.node_count(), NodeMoments{});

  for (const GateId id : ctx_.topo_order()) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) continue;

    const bool is_center = (id == center);
    // Drivers of the center see a load delta; everything else is snapshot.
    double load = ctx_.load_ff(id);
    bool perturbed = is_center;
    if (!is_center) {
      const auto& outs = g.fanouts;
      if (std::find(outs.begin(), outs.end(), center) != outs.end()) {
        load = ctx_.load_ff_with_resize(id, center, candidate);
        perturbed = (load != ctx_.load_ff(id));
      }
    }
    const liberty::Cell* cell = nullptr;
    if (perturbed) cell = is_center ? &candidate : &ctx_.cell(id);

    NodeMoments acc;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const NodeMoments& in = arrival[g.fanins[i]];
      const double d =
          perturbed ? ctx_.arc_delay_with(id, i, *cell, load) : ctx_.arc_delay_ps(id, i);
      const double s =
          perturbed ? ctx_.sigma_for(*cell, d) : ctx_.arc_sigma_ps(id, i);
      const NodeMoments through{in.mean_ps + d,
                                std::sqrt(in.sigma_ps * in.sigma_ps + s * s)};
      acc = (i == 0) ? through : stat_max(acc, through);
    }
    arrival[id] = acc;
  }

  NodeMoments out{0.0, 0.0};
  bool first = true;
  for (const auto& po : nl.outputs()) {
    out = first ? arrival[po.driver] : stat_max(out, arrival[po.driver]);
    first = false;
  }
  return out;
}

std::vector<NodeMoments> Engine::compute_downstream() const {
  const auto& nl = ctx_.netlist();
  std::vector<NodeMoments> down(nl.node_count(), NodeMoments{0.0, 0.0});
  std::vector<bool> seeded(nl.node_count(), false);
  for (const auto& po : nl.outputs()) seeded[po.driver] = true;  // downstream = 0

  const auto& order = ctx_.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId id = *it;
    NodeMoments acc{};
    bool first = !seeded[id];  // if a PO driver, the (0,0) observation competes
    for (const GateId consumer : nl.gate(id).fanouts) {
      const auto& cg = nl.gate(consumer);
      for (std::size_t i = 0; i < cg.fanins.size(); ++i) {
        if (cg.fanins[i] != id) continue;
        const double d = ctx_.arc_delay_ps(consumer, i);
        const double s = ctx_.arc_sigma_ps(consumer, i);
        const NodeMoments& cd = down[consumer];
        const NodeMoments through{cd.mean_ps + d,
                                  std::sqrt(cd.sigma_ps * cd.sigma_ps + s * s)};
        acc = first ? through : stat_max(acc, through);
        first = false;
      }
    }
    if (!first) down[id] = acc;  // seeded nodes started from the (0,0) observation
  }
  return down;
}

SubcircuitCost Engine::evaluate_candidate(const netlist::Subcircuit& sc,
                                          std::span<const NodeMoments> boundary,
                                          std::span<const NodeMoments> downstream,
                                          GateId center, const liberty::Cell& candidate,
                                          double lambda) const {
  Scratch scratch;
  return evaluate_candidate(sc, boundary, downstream, center, candidate, lambda, scratch);
}

SubcircuitCost Engine::evaluate_candidate(const netlist::Subcircuit& sc,
                                          std::span<const NodeMoments> boundary,
                                          std::span<const NodeMoments> downstream,
                                          GateId center, const liberty::Cell& candidate,
                                          double lambda, Scratch& scratch) const {
  const auto& nl = ctx_.netlist();

  // Local arrival moments for members only, indexed by position in sc.gates.
  // A parallel map from GateId -> local index keeps lookups O(1). The map is
  // kept all-UINT32_MAX between calls: only the member entries are set here
  // and restored before returning, so a reused scratch pays O(|sc|), not
  // O(nodes), per candidate.
  std::vector<NodeMoments>& local = scratch.local;
  local.assign(sc.gates.size(), NodeMoments{});
  std::vector<std::uint32_t>& local_index = scratch.local_index;
  if (local_index.size() != nl.node_count()) {
    local_index.assign(nl.node_count(), UINT32_MAX);
  }
  for (std::uint32_t i = 0; i < sc.gates.size(); ++i) local_index[sc.gates[i]] = i;

  const auto arrival_of = [&](GateId id) -> NodeMoments {
    const std::uint32_t li = local_index[id];
    if (li != UINT32_MAX) return local[li];
    return boundary[id];
  };

  for (std::uint32_t gi = 0; gi < sc.gates.size(); ++gi) {
    const GateId id = sc.gates[gi];
    const auto& g = nl.gate(id);
    const bool is_center = (id == center);
    const liberty::Cell& cell = is_center ? candidate : ctx_.cell(id);

    // Load: the only load perturbed by the candidate is on gates driving the
    // center (its input pin caps change). The center's own load is untouched.
    double load = ctx_.load_ff(id);
    if (!is_center) {
      const auto& outs = g.fanouts;
      if (std::find(outs.begin(), outs.end(), center) != outs.end()) {
        load = ctx_.load_ff_with_resize(id, center, candidate);
      }
    }

    NodeMoments acc;
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      const NodeMoments in = arrival_of(g.fanins[i]);
      // Recompute the arc delay only where the candidate perturbs it; reuse
      // the snapshot everywhere else (this is what makes FASSTA fast).
      double d = 0.0;
      if (is_center || load != ctx_.load_ff(id)) {
        d = ctx_.arc_delay_with(id, i, cell, load);
      } else {
        d = ctx_.arc_delay_ps(id, i);
      }
      const double s = ctx_.sigma_for(cell, d);
      const NodeMoments through{in.mean_ps + d,
                                std::sqrt(in.sigma_ps * in.sigma_ps + s * s)};
      acc = (i == 0) ? through : stat_max(acc, through);
    }
    local[gi] = acc;
  }

  SubcircuitCost result;
  bool first = true;
  for (const GateId out : sc.outputs) {
    const NodeMoments m = local[local_index[out]];
    // Project the window output to the primary outputs: local arrival plus
    // the node's downstream potential (independent path segments => RSS).
    const NodeMoments& d = downstream[out];
    const double mean = m.mean_ps + d.mean_ps;
    const double sigma =
        std::sqrt(m.sigma_ps * m.sigma_ps + d.sigma_ps * d.sigma_ps);
    const double cost = mean + lambda * sigma;
    if (first || cost > result.cost) {
      result.cost = cost;
      result.worst_mean_ps = mean;
      result.worst_sigma_ps = sigma;
      first = false;
    }
  }

  for (const GateId g : sc.gates) local_index[g] = UINT32_MAX;
  return result;
}

}  // namespace statsizer::fassta
