// FASSTA — the fast moment-only statistical timing engine (paper section
// 4.3). It propagates (mean, sigma) pairs instead of full pdfs:
//   sum:  mu = mu_in + d_arc,  var = var_in + sigma_arc^2
//   max:  Clark moments with dominance early-outs and the quadratic erf
//         approximation (fassta/clark.h)
// Boundary conditions at a subcircuit cut come from the most recent FULLSSTA
// pass. The engine's whole reason to exist is evaluating candidate gate sizes
// inside the optimizer's inner loop at negligible cost.
//
// Thread safety: an Engine holds only a const reference to the TimingContext
// snapshot plus immutable options, and every method is const and re-entrant —
// one Engine may be shared by any number of threads as long as nobody mutates
// the netlist or calls TimingContext::update() concurrently. The only mutable
// state a call needs lives in an explicit Scratch workspace; give each worker
// thread its own (see docs/ARCHITECTURE.md, "Concurrency & determinism
// contracts").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/subcircuit.h"
#include "sta/graph.h"

namespace statsizer::fassta {

/// How max is folded over a gate's arcs.
enum class MaxMode {
  kFast,   ///< paper: dominance early-out + quadratic erf
  kExact,  ///< Clark with std::erf (accuracy reference / ablations)
};

struct EngineOptions {
  MaxMode max_mode = MaxMode::kFast;
  double dominance_threshold = 2.6;  ///< |alpha| beyond which one input wins
};

/// Cost summary for a subcircuit under paper eq. 7:
///   cost = max over outputs of (mu_i + lambda * sigma_i).
struct SubcircuitCost {
  double cost = 0.0;
  double worst_mean_ps = 0.0;   ///< moments of the output attaining the max
  double worst_sigma_ps = 0.0;
};

class Engine {
 public:
  /// Reusable workspace for the scoring entry points. A Scratch is NOT
  /// thread-safe: each thread scoring candidates must own its own instance
  /// (the engine itself may be shared). Reusing one Scratch across calls
  /// avoids an O(nodes) allocation per candidate, which is what makes the
  /// optimizer's parallel inner loop cheap. If a call throws, discard the
  /// Scratch (its bookkeeping may be mid-reset).
  struct Scratch {
    std::vector<sta::NodeMoments> arrival;   ///< run_with_candidate workspace
    std::vector<sta::NodeMoments> local;     ///< evaluate_candidate: member arrivals
    std::vector<std::uint32_t> local_index;  ///< evaluate_candidate: GateId -> member slot
  };

  explicit Engine(const sta::TimingContext& ctx, EngineOptions options = {});

  /// Statistical max of two Gaussian moment pairs under the engine's options.
  /// Pure function of its arguments — safe from any thread.
  [[nodiscard]] sta::NodeMoments stat_max(const sta::NodeMoments& a,
                                          const sta::NodeMoments& b) const;

  /// Full-netlist moment propagation (used standalone and in benchmarks).
  /// Returns per-node arrival moments; @p circuit is filled with the moments
  /// of the statistical max over all primary outputs if non-null. Const and
  /// re-entrant.
  [[nodiscard]] std::vector<sta::NodeMoments> run(sta::NodeMoments* circuit = nullptr) const;

  /// Full-netlist moment propagation with gate @p center hypothetically bound
  /// to @p candidate: loads of the center's drivers and the affected arc
  /// delays are recomputed, everything else reuses the snapshot. Returns the
  /// circuit moments (statistical max over primary outputs). This is the
  /// robust inner-loop score: unlike a truncated window it sees the
  /// max-over-all-paths behaviour of the objective (see DESIGN.md,
  /// "window truncation"). Cost: one O(E) pass, a few microseconds per call.
  /// Const and re-entrant; allocates its own workspace. Hot loops should use
  /// the Scratch overload instead.
  [[nodiscard]] sta::NodeMoments run_with_candidate(netlist::GateId center,
                                                    const liberty::Cell& candidate) const;

  /// Same, reusing @p scratch for the per-call workspace. Safe to call
  /// concurrently from many threads as long as every thread passes a distinct
  /// Scratch; returns moments bitwise-identical to the allocating overload.
  [[nodiscard]] sta::NodeMoments run_with_candidate(netlist::GateId center,
                                                    const liberty::Cell& candidate,
                                                    Scratch& scratch) const;

  /// Backward moment pass: for every node, the statistical moments of the
  /// worst downstream path from the node's *output* to any primary output
  /// (0 for PO drivers' direct observation). Window outputs are scored as
  /// local-arrival (+) downstream-potential, which makes costs of different
  /// window outputs globally comparable — without this, a candidate that
  /// slows a side path with deep downstream logic can look like a win inside
  /// a truncated window (see DESIGN.md, "window truncation"). Const and
  /// re-entrant.
  [[nodiscard]] std::vector<sta::NodeMoments> compute_downstream() const;

  /// Evaluates paper eq. 7 over @p sc with gate @p center hypothetically
  /// bound to @p candidate (pass the currently bound cell to score the status
  /// quo). @p boundary are FULLSSTA's per-node arrival moments (subcircuit
  /// members are recomputed, boundary nodes are read as-is); @p downstream
  /// comes from compute_downstream() on the same snapshot. Const and
  /// re-entrant; allocates its own workspace.
  [[nodiscard]] SubcircuitCost evaluate_candidate(const netlist::Subcircuit& sc,
                                                  std::span<const sta::NodeMoments> boundary,
                                                  std::span<const sta::NodeMoments> downstream,
                                                  netlist::GateId center,
                                                  const liberty::Cell& candidate,
                                                  double lambda) const;

  /// Same, reusing @p scratch (one Scratch per thread). The GateId -> member
  /// map inside the scratch is restored on exit, so the reset cost per call
  /// is O(|subcircuit|) rather than O(nodes).
  [[nodiscard]] SubcircuitCost evaluate_candidate(const netlist::Subcircuit& sc,
                                                  std::span<const sta::NodeMoments> boundary,
                                                  std::span<const sta::NodeMoments> downstream,
                                                  netlist::GateId center,
                                                  const liberty::Cell& candidate,
                                                  double lambda, Scratch& scratch) const;

  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  const sta::TimingContext& ctx_;
  EngineOptions options_;
};

}  // namespace statsizer::fassta
