// The max operation on Gaussian random variables (Clark, Operations Research
// 1961) and the paper's fast approximations of it (section 4.3):
//
//   a^2 = sigma_A^2 + sigma_B^2 - 2 rho sigma_A sigma_B
//   alpha = (mu_A - mu_B) / a
//   nu1 = mu_A Phi(alpha) + mu_B Phi(-alpha) + a phi(alpha)            (eq. 1)
//   nu2 = (mu_A^2+sigma_A^2) Phi(alpha) + (mu_B^2+sigma_B^2) Phi(-alpha)
//         + (mu_A+mu_B) a phi(alpha)                                   (eq. 2)
//   Var(max) = nu2 - nu1^2                                             (eq. 3)
//
// The fast path adds two ideas from the paper:
//   * dominance early-outs (eqs. 5/6): |alpha| >= 2.6  =>  the max *is* the
//     dominant input (Phi saturates under the quadratic erf approximation),
//   * the quadratic erf approximation for Phi when no early-out applies.
#pragma once

namespace statsizer::fassta {

/// Gaussian moment pair.
struct Moments {
  double mean = 0.0;
  double var = 0.0;
};

/// Result of a statistical max: moments plus the "tightness" P(A > B) ~=
/// Phi(alpha), which canonical SSTA uses to blend sensitivity coefficients.
struct ClarkResult {
  double mean = 0.0;
  double var = 0.0;
  double tightness = 0.5;
};

/// Dominance test (paper eqs. 5/6): +1 if A dominates (alpha >= threshold),
/// -1 if B dominates (alpha <= -threshold), 0 if neither. a == 0 (both
/// deterministic) falls back to comparing means.
[[nodiscard]] int dominance(double mu_a, double sigma_a, double mu_b, double sigma_b,
                            double threshold = 2.6);

/// Reference-accuracy Clark max using std::erf, with optional correlation
/// rho between A and B.
[[nodiscard]] ClarkResult clark_max_exact(double mu_a, double sigma_a, double mu_b,
                                          double sigma_b, double rho = 0.0);

/// The paper's fast max: dominance early-out, then Clark moments with the
/// quadratic erf approximation. Assumes independence (rho = 0), which is the
/// stated inner-loop tradeoff.
[[nodiscard]] ClarkResult clark_max_fast(double mu_a, double sigma_a, double mu_b,
                                         double sigma_b);

/// Sensitivity of Var(max(A,B)) to mu_A via the paper's forward finite
/// difference (section 4.4): mean step h = h_frac * |mu_A| and a *coupled*
/// sigma step g = c_a * h, because mean and sigma along a path move together
/// (c is the variation model's mean-to-sigma coefficient).
[[nodiscard]] double max_var_sensitivity_mu_a(double mu_a, double sigma_a, double mu_b,
                                              double sigma_b, double h_frac, double c_a,
                                              bool use_fast = true);

}  // namespace statsizer::fassta
