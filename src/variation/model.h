// Process-variation model for gate delays.
//
// Following the paper (which cites Cong'97 and Nassif ISSCC'00), each gate
// delay gets two variation components:
//   * systematic, proportional to the gate's nominal delay and suppressed by
//     device size (Pelgrom: sigma/mu ~ 1/sqrt(W)):
//         sigma_sys = proportional_coeff * delay / drive^size_exponent
//   * unsystematic, a size-independent random floor:
//         sigma_rand = random_floor_ps
// Total sigma is their RSS. The floor is why variance reduction saturates as
// lambda grows (paper, experimental-results discussion); the drive term is
// the mechanism that lets upsizing buy variance reduction.
//
// For correlation-aware engines (canonical SSTA, Monte Carlo) a fraction
// `global_fraction` of the *systematic variance* is attributed to one global
// process variable shared by all gates; the rest is gate-independent.
#pragma once

#include "util/rng.h"

namespace statsizer::variation {

struct VariationParams {
  /// sigma_sys at drive 1 as a fraction of delay. The default is calibrated
  /// so that mean-delay-optimized Table-1 workloads land in the paper's
  /// "original sigma/mu" band (see EXPERIMENTS.md, calibration notes).
  double proportional_coeff = 0.9;
  /// Exponent on drive. The paper: "gate performance variations inversely
  /// proportional to their dimensions" — i.e. 1.0. (0.5 would be the Pelgrom
  /// sqrt-area law; kept as a knob for the ablation bench.)
  double size_exponent = 1.0;
  double random_floor_ps = 2.5;      ///< unsystematic sigma per gate
  double global_fraction = 0.0;      ///< share of systematic variance that is global
  double min_delay_fraction = 0.05;  ///< sampling truncation: delay >= this * nominal
};

/// Maps (nominal delay, drive strength) to delay sigma; samples delays.
class VariationModel {
 public:
  VariationModel() = default;
  explicit VariationModel(VariationParams params);

  [[nodiscard]] const VariationParams& params() const { return params_; }

  /// Systematic (size-suppressed) component.
  [[nodiscard]] double systematic_sigma_ps(double delay_ps, double drive) const;

  /// Unsystematic floor.
  [[nodiscard]] double random_sigma_ps() const { return params_.random_floor_ps; }

  /// Total sigma: RSS of the two components.
  [[nodiscard]] double sigma_ps(double delay_ps, double drive) const;

  /// The paper's coefficient `c` linking a change in mean delay to the
  /// accompanying change in sigma along a path (section 4.4): we use the
  /// systematic proportionality at the given drive.
  [[nodiscard]] double mean_to_sigma_coeff(double drive) const;

  /// Draws one delay sample. @p global_z is the standard-normal draw of the
  /// shared process variable for this sample (ignored if global_fraction = 0);
  /// the gate-local randomness comes from @p rng. Samples are truncated below
  /// at min_delay_fraction * nominal (delays cannot go negative).
  [[nodiscard]] double sample_delay_ps(double delay_ps, double drive, double global_z,
                                       util::Rng& rng) const;

 private:
  VariationParams params_;
};

}  // namespace statsizer::variation
