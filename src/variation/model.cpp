#include "variation/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace statsizer::variation {

VariationModel::VariationModel(VariationParams params) : params_(params) {
  if (params_.proportional_coeff < 0.0 || params_.random_floor_ps < 0.0) {
    throw std::invalid_argument("VariationModel: negative sigma coefficients");
  }
  if (params_.global_fraction < 0.0 || params_.global_fraction > 1.0) {
    throw std::invalid_argument("VariationModel: global_fraction must be in [0,1]");
  }
}

double VariationModel::systematic_sigma_ps(double delay_ps, double drive) const {
  return params_.proportional_coeff * delay_ps / std::pow(drive, params_.size_exponent);
}

double VariationModel::sigma_ps(double delay_ps, double drive) const {
  const double s = systematic_sigma_ps(delay_ps, drive);
  const double r = params_.random_floor_ps;
  return std::sqrt(s * s + r * r);
}

double VariationModel::mean_to_sigma_coeff(double drive) const {
  return params_.proportional_coeff / std::pow(drive, params_.size_exponent);
}

double VariationModel::sample_delay_ps(double delay_ps, double drive, double global_z,
                                       util::Rng& rng) const {
  const double sys = systematic_sigma_ps(delay_ps, drive);
  const double shared = std::sqrt(params_.global_fraction) * sys;
  const double local = std::sqrt(1.0 - params_.global_fraction) * sys;
  const double sample = delay_ps + shared * global_z + local * rng.normal() +
                        params_.random_floor_ps * rng.normal();
  return std::max(sample, params_.min_delay_fraction * delay_ps);
}

}  // namespace statsizer::variation
