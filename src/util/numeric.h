// Numeric building blocks shared across the library:
//  * Gaussian pdf/cdf and the paper's fast quadratic erf approximation,
//  * linear / bilinear interpolation used by NLDM table lookup,
//  * streaming statistics (Welford) used by the Monte-Carlo engine and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace statsizer::util {

/// Standard normal probability density phi(x) = exp(-x^2/2) / sqrt(2 pi).
[[nodiscard]] double normal_pdf(double x);

/// Standard normal CDF Phi(x) computed with std::erf (reference-accuracy path).
[[nodiscard]] double normal_cdf(double x);

/// The paper's quadratic approximation of (1/2) erf(x / sqrt(2)) (section 4.3,
/// attributed to the CRC Concise Encyclopedia of Mathematics), extended to
/// negative arguments using the oddness of erf:
///
///   0.1 * x * (4.4 - x)   for 0   <= x <= 2.2
///   0.49                  for 2.2 <  x <= 2.6
///   0.50                  for x   >  2.6
///
/// Accurate to about two decimal places; the whole point is that it needs one
/// multiply-add instead of a call into libm.
[[nodiscard]] double half_erf_over_sqrt2_fast(double x);

/// Fast standard-normal CDF built on half_erf_over_sqrt2_fast:
/// Phi(x) = 0.5 + (1/2) erf(x / sqrt 2).
[[nodiscard]] double normal_cdf_fast(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, ~1e-9
/// relative accuracy). Used for quantile reporting (e.g. 99th-percentile
/// delay) and for stratified Monte-Carlo sampling.
[[nodiscard]] double normal_inv_cdf(double p);

/// Linear interpolation of y(x) over sorted breakpoints xs (ys same length).
/// Extrapolates linearly beyond the ends (NLDM convention).
[[nodiscard]] double interp1(std::span<const double> xs, std::span<const double> ys, double x);

/// Bilinear interpolation over a row-major grid values[i * xs2.size() + j]
/// with axes xs1 (rows) and xs2 (columns). Extrapolates at the borders.
[[nodiscard]] double interp2(std::span<const double> xs1, std::span<const double> xs2,
                             std::span<const double> values, double x1, double x2);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance (divide by n). Returns 0 for n < 2.
  [[nodiscard]] double variance() const;
  /// Sample variance (divide by n-1). Returns 0 for n < 2.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Merges another accumulator (parallel Welford combine).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample.
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Population variance of a sample.
[[nodiscard]] double variance_of(std::span<const double> xs);

/// Empirical quantile (linear interpolation between order statistics).
/// @p q in [0,1]. The input need not be sorted; a sorted copy is made.
[[nodiscard]] double quantile_of(std::span<const double> xs, double q);

/// True if |a-b| <= atol + rtol * max(|a|,|b|).
[[nodiscard]] bool close(double a, double b, double rtol = 1e-9, double atol = 1e-12);

}  // namespace statsizer::util
