// Minimal JSON value + parser/serializer for the newline-JSON server
// protocol (serve/server.cpp) and its tests. Deliberately small:
//
//   - Objects are std::map (ordered) so dump() output is deterministic and
//     iteration never trips the unordered-iter determinism rule.
//   - Numbers are double (the protocol's ids/counters fit in 2^53).
//   - parse() is a recursive-descent parser with a hard nesting-depth cap —
//     a hostile request must come back as kInvalidArgument, never as a stack
//     overflow.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace statsizer::util {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : value_(nullptr) {}
  // NOLINTNEXTLINE(google-explicit-constructor): value types convert freely.
  Json(std::nullptr_t) : value_(nullptr) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(bool b) : value_(b) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(double d) : value_(d) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(int i) : value_(static_cast<double>(i)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}  // also size_t on LP64
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::string s) : value_(std::move(s)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::string_view s) : value_(std::string(s)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(Array a) : value_(std::move(a)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Preconditions: the matching is_*() holds.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when absent or when this is not an
  /// object. The returned pointer is invalidated by mutation.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Builder access: makes this an object / array if currently null.
  Json& operator[](const std::string& key);
  void push_back(Json v);

  /// Compact serialization (no whitespace), deterministic member order.
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON value; trailing non-whitespace is an error. Errors are
  /// kInvalidArgument with a byte offset.
  [[nodiscard]] static StatusOr<Json> parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace statsizer::util
