#include "util/exec.h"

#include <algorithm>
#include <thread>

namespace statsizer::util {

namespace {
thread_local ExecContext* tls_exec_context = nullptr;
}  // namespace

std::optional<std::chrono::milliseconds> ExecContext::remaining() const {
  if (!deadline.has_value()) return std::nullopt;
  const auto now = std::chrono::steady_clock::now();
  if (now >= *deadline) return std::chrono::milliseconds(0);
  return std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - now);
}

ScopedExecContext::ScopedExecContext(ExecContext& context) : previous_(tls_exec_context) {
  tls_exec_context = &context;
}

ScopedExecContext::~ScopedExecContext() { tls_exec_context = previous_; }

ScopedExecSuspend::ScopedExecSuspend() : previous_(tls_exec_context) {
  tls_exec_context = nullptr;
}

ScopedExecSuspend::~ScopedExecSuspend() { tls_exec_context = previous_; }

ExecContext* current_exec_context() { return tls_exec_context; }

void checkpoint(const char* site) {
  ExecContext* ctx = tls_exec_context;
  if (ctx == nullptr) return;

  if (ctx->faults != nullptr && !ctx->faults->empty()) {
    const std::uint64_t hit = ++ctx->site_hits[site];
    for (const FaultRule& rule : ctx->faults->rules) {
      if (!fault_rule_fires(rule, ctx->faults->seed, site, ctx->fault_scope, hit)) continue;
      if (rule.delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(rule.delay_ms));
      }
      if (rule.fail) {
        std::string message = rule.message.empty()
                                  ? "injected fault at " + std::string(site)
                                  : rule.message;
        throw StatusError(Status::error(std::move(message), rule.code));
      }
    }
  }

  if (ctx->cancel.cancelled()) {
    throw StatusError(Status::cancelled(std::string("cancelled at ") + site));
  }
  if (ctx->deadline.has_value() &&
      std::chrono::steady_clock::now() >= *ctx->deadline) {
    throw StatusError(Status::deadline_exceeded(std::string("deadline exceeded at ") + site));
  }
}

}  // namespace statsizer::util
