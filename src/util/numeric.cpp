#include "util/numeric.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace statsizer::util {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;  // 1 / sqrt(2 pi)
constexpr double kInvSqrt2 = 0.7071067811865476;    // 1 / sqrt(2)
}  // namespace

double normal_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_cdf(double x) { return 0.5 * (1.0 + std::erf(x * kInvSqrt2)); }

double half_erf_over_sqrt2_fast(double x) {
  // Odd extension: erf(-x) = -erf(x).
  const double ax = std::abs(x);
  double v = 0.0;
  if (ax <= 2.2) {
    v = 0.1 * ax * (4.4 - ax);
  } else if (ax <= 2.6) {
    v = 0.49;
  } else {
    v = 0.50;
  }
  return x < 0.0 ? -v : v;
}

double normal_cdf_fast(double x) { return 0.5 + half_erf_over_sqrt2_fast(x); }

double normal_inv_cdf(double p) {
  // Peter Acklam's algorithm. Valid for p in (0,1).
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_inv_cdf: p must be in (0,1)");
  }
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;

  double q = 0.0;
  double r = 0.0;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double interp1(std::span<const double> xs, std::span<const double> ys, double x) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("interp1: axes must be non-empty and equal-sized");
  }
  if (xs.size() == 1) return ys[0];

  // Find the segment; clamp to the outermost segments for extrapolation.
  std::size_t hi = 1;
  while (hi + 1 < xs.size() && xs[hi] < x) ++hi;
  const std::size_t lo = hi - 1;
  const double dx = xs[hi] - xs[lo];
  if (dx == 0.0) return ys[lo];
  const double t = (x - xs[lo]) / dx;
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

double interp2(std::span<const double> xs1, std::span<const double> xs2,
               std::span<const double> values, double x1, double x2) {
  if (xs1.empty() || xs2.empty() || values.size() != xs1.size() * xs2.size()) {
    throw std::invalid_argument("interp2: grid shape mismatch");
  }
  if (xs1.size() == 1) {
    return interp1(xs2, values.subspan(0, xs2.size()), x2);
  }
  if (xs2.size() == 1) {
    std::vector<double> col(xs1.size());
    for (std::size_t i = 0; i < xs1.size(); ++i) col[i] = values[i];
    return interp1(xs1, col, x1);
  }

  std::size_t i1 = 1;
  while (i1 + 1 < xs1.size() && xs1[i1] < x1) ++i1;
  const std::size_t i0 = i1 - 1;
  std::size_t j1 = 1;
  while (j1 + 1 < xs2.size() && xs2[j1] < x2) ++j1;
  const std::size_t j0 = j1 - 1;

  const double t1 = (xs1[i1] == xs1[i0]) ? 0.0 : (x1 - xs1[i0]) / (xs1[i1] - xs1[i0]);
  const double t2 = (xs2[j1] == xs2[j0]) ? 0.0 : (x2 - xs2[j0]) / (xs2[j1] - xs2[j0]);

  const auto at = [&](std::size_t i, std::size_t j) { return values[i * xs2.size() + j]; };
  const double top = at(i0, j0) + t2 * (at(i0, j1) - at(i0, j0));
  const double bot = at(i1, j0) + t2 * (at(i1, j1) - at(i1, j0));
  return top + t1 * (bot - top);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double quantile_of(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile_of: empty sample");
  if (q < 0.0 || q > 1.0) throw std::domain_error("quantile_of: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = pos - static_cast<double>(lo);
  return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

bool close(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace statsizer::util
