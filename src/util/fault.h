// Deterministic fault injection for the serving/robustness test surface.
//
// Production code is sprinkled with named *sites* — every util::checkpoint()
// call is one — and a FaultPlan describes which sites should misbehave:
// throw a structured StatusError, or stall for a fixed delay (to make a
// cooperative deadline trip on the next checkpoint). The layer is compiled
// in always and enabled purely by options: with no plan installed a
// checkpoint is a thread-local pointer read and a branch.
//
// Determinism contract: whether a given checkpoint visit faults is a pure
// function of (plan seed, site name, fault scope, per-scope hit index) — the
// hit index is counted inside the ExecContext that scopes one job, never in
// global state — so a poisoned job faults at exactly the same point of its
// execution regardless of thread count, scheduling, or what sibling jobs are
// doing. This is what lets the isolation tests pin "all sibling results
// bitwise-identical to a fault-free run".
//
// The site registry (every name the library currently publishes) lives in
// docs/ARCHITECTURE.md, "Serving" -> "Fault-injection sites".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace statsizer::util {

/// FNV-1a, the stable site-name hash feeding the fault Bernoulli stream.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Matches any fault scope (FaultRule::scope wildcard).
inline constexpr std::uint64_t kAnyScope = ~0ULL;

/// One injection rule. A rule fires when a checkpoint's site matches, the
/// active scope matches, the per-scope hit count matches, and the
/// deterministic Bernoulli draw (for probability < 1) comes up true.
struct FaultRule {
  /// Site to match: exact name, or a prefix when it ends in '*'
  /// ("serve/job/*" matches every job-runner site).
  std::string site;
  /// Fault scope to match; kAnyScope matches every scope. The job system
  /// scopes each job by its submission sequence number (overridable), so a
  /// single job can be poisoned while its siblings run clean.
  std::uint64_t scope = kAnyScope;
  /// 1-based Nth matching visit within the scope that triggers; 0 = every
  /// visit.
  std::uint64_t hit = 1;
  /// Trigger probability, drawn deterministically from
  /// stream_seed(plan.seed, fnv1a(site) ^ scope ^ hit-index).
  double probability = 1.0;
  /// Stall before (optionally) failing — how deadline tests make a job
  /// reliably overrun its budget at a named point.
  std::uint32_t delay_ms = 0;
  /// When false the rule only delays; when true it throws
  /// StatusError(Status(code, message)).
  bool fail = true;
  StatusCode code = StatusCode::kUnavailable;
  /// Empty = "injected fault at <site>".
  std::string message;
};

/// A seeded set of rules. Installed per execution scope via
/// util::ExecContext (see exec.h); never global mutable state.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }
};

/// Parses a rule from a CLI spec: comma-separated key=value pairs.
///   site=serve/job/start,scope=2,hit=1,p=0.5,delay_ms=50,code=unavailable
/// Keys: site (required), scope (integer or "*"), hit, p, delay_ms,
/// code (invalid_argument|deadline_exceeded|cancelled|resource_exhausted|
/// unavailable|internal), msg, delay_only (flag: fail=false).
/// Returns kInvalidArgument for unknown keys / malformed values.
[[nodiscard]] StatusOr<FaultRule> parse_fault_rule(std::string_view spec);

/// Decides whether @p rule fires on this visit. @p hit_index is the 1-based
/// per-scope visit count of the site. Pure function (the Bernoulli draw is
/// counter-based), exposed for tests.
[[nodiscard]] bool fault_rule_fires(const FaultRule& rule, std::uint64_t plan_seed,
                                    std::string_view site, std::uint64_t scope,
                                    std::uint64_t hit_index);

}  // namespace statsizer::util
