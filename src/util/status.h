// Lightweight error propagation for operations that can fail on user input
// (file parsing, netlist construction from external text, ...).
//
// The library does not throw across its public API; fallible factories return
// StatusOr<T>. Internal contract violations use assertions / logic_error and
// indicate bugs, not bad input.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace statsizer {

/// Outcome of a fallible operation: ok, or an error with a human-readable
/// message (including source location info where available, e.g. "line 12: ...").
class Status {
 public:
  /// Successful status.
  Status() = default;

  /// Failed status carrying @p message.
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// A value or an error. Minimal analogue of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors absl.
  StatusOr(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {}

  [[nodiscard]] bool ok() const { return status_.ok() && value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Precondition: ok().
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }
  [[nodiscard]] T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace statsizer
