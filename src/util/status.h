// Lightweight error propagation for operations that can fail on user input
// (file parsing, netlist construction from external text, ...) and — since
// the serving layer — for structured job failures (cancellation, deadlines,
// admission rejections).
//
// The library does not throw across its public API; fallible factories return
// StatusOr<T>. Internal contract violations use assertions / logic_error and
// indicate bugs, not bad input. The one sanctioned exception type is
// StatusError, which carries a Status across an execution boundary that has a
// structured catch at the top (the job runner in serve/job.cpp): cooperative
// cancellation and fault injection throw it out of deep kernels, and the job
// system converts it back into the job's Status.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace statsizer {

/// Canonical error codes, a minimal subset of the absl/gRPC taxonomy. Codes
/// classify failures for programmatic handling (admission control retries on
/// kResourceExhausted, the job system retries kUnavailable); the message
/// stays the human-readable payload.
enum class StatusCode {
  kOk = 0,
  /// The caller's input is wrong (parse errors, unknown names, bad ranges).
  /// Retrying the identical request cannot succeed.
  kInvalidArgument,
  /// A cooperative deadline expired before the operation finished.
  kDeadlineExceeded,
  /// The operation was cancelled by its owner before completion.
  kCancelled,
  /// Admission control rejected the request (queue depth / in-flight memory
  /// over limit). The condition is load-dependent: retry after backing off.
  kResourceExhausted,
  /// A transient dependency failure (the code deterministic fault injection
  /// uses for "flaky" faults). The job system's retry-with-backoff treats
  /// exactly this code as retryable.
  kUnavailable,
  /// Everything else: an unexpected exception escaping a job, a broken
  /// invariant surfacing as Status instead of a crash.
  kInternal,
};

/// Canonical lower_snake_case name ("invalid_argument", ...), the spelling
/// the newline-JSON server protocol uses on the wire.
[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "internal";
}

/// Outcome of a fallible operation: ok, or an error with a canonical code and
/// a human-readable message (including source location info where available,
/// e.g. "line 12: ...").
class Status {
 public:
  /// Successful status.
  Status() = default;

  /// Failed status carrying @p message. The default code is kInternal —
  /// call sites that know the failure class use the named factories below
  /// (or pass a code explicitly) so callers can branch on code().
  static Status error(std::string message, StatusCode code = StatusCode::kInternal) {
    Status s;
    s.message_ = std::move(message);
    s.code_ = code == StatusCode::kOk ? StatusCode::kInternal : code;
    return s;
  }

  static Status invalid_argument(std::string message) {
    return error(std::move(message), StatusCode::kInvalidArgument);
  }
  static Status deadline_exceeded(std::string message) {
    return error(std::move(message), StatusCode::kDeadlineExceeded);
  }
  static Status cancelled(std::string message) {
    return error(std::move(message), StatusCode::kCancelled);
  }
  static Status resource_exhausted(std::string message) {
    return error(std::move(message), StatusCode::kResourceExhausted);
  }
  static Status unavailable(std::string message) {
    return error(std::move(message), StatusCode::kUnavailable);
  }
  static Status internal(std::string message) {
    return error(std::move(message), StatusCode::kInternal);
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// True for the one code the job system's retry-with-backoff may retry
  /// (kUnavailable). kResourceExhausted is deliberately not transient from
  /// the worker's perspective: admission rejections are retried by the
  /// *client* after the advertised backoff, not by the queue that just shed
  /// them.
  [[nodiscard]] bool transient() const { return code_ == StatusCode::kUnavailable; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The sanctioned exception carrier for structured failures that must unwind
/// out of deep kernels (cooperative cancellation/deadline checkpoints, fault
/// injection). Thrown by util::checkpoint, caught by the job runner, which
/// stores the payload as the job's Status. what() is the status message.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.message()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// A value or an error. Minimal analogue of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors absl.
  StatusOr(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {}

  [[nodiscard]] bool ok() const { return status_.ok() && value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Precondition: ok().
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }
  [[nodiscard]] T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace statsizer
