// Seeded random-number façade. Every stochastic component in the library
// (variation sampling, Monte-Carlo SSTA, random circuit generation) takes an
// explicit seed so that experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace statsizer::util {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Counter-based stream derivation: maps (seed, index) to an independent
/// stream seed through two SplitMix64 rounds. Stream i depends only on
/// (seed, i) — never on which thread or in what order it is drawn — which is
/// what makes the parallel Monte-Carlo engine bitwise-deterministic for any
/// thread count.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index) {
  return splitmix64(splitmix64(seed) ^ splitmix64(index + 0x6a09e667f3bcc909ULL));
}

/// Deterministic RNG wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Standard normal draw.
  [[nodiscard]] double normal() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Uniform draw in [0, 1).
  [[nodiscard]] double uniform() { return uniform_(engine_); }

  /// Uniform draw in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool flip(double p = 0.5) { return uniform() < p; }

  /// Derives an independent child stream (for per-sample / per-gate streams).
  [[nodiscard]] Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  /// Access to the raw engine for std distributions.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace statsizer::util
