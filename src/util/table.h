// ASCII table formatter used by the benchmark harnesses to print paper-style
// tables (Table 1, ablation summaries) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace statsizer::util {

/// Column-aligned ASCII table. Usage:
///   Table t({"Circuit", "Gates", "sigma/mu"});
///   t.add_row({"c432", "203", "0.093"});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator at the current position.
  void add_separator();

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector encodes a separator
};

/// Formats a double with @p digits significant decimals ("%.*f").
[[nodiscard]] std::string fmt(double value, int digits = 3);

/// Formats a signed percentage, e.g. +4.2 %  /  -54.0 %.
[[nodiscard]] std::string fmt_pct(double fraction, int digits = 0);

}  // namespace statsizer::util
