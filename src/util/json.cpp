#include "util/json.h"

#include <cctype>

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace statsizer::util {

namespace {

constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan; null is the least-lying encoding
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> run() {
    auto v = value(0);
    if (!v.ok()) return v.status();
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  Status fail(const std::string& what) const {
    return Status::invalid_argument("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        auto s = string();
        if (!s.ok()) return s.status();
        return Json(*std::move(s));
      }
      case 't':
        if (consume_word("true")) return Json(true);
        return fail("bad literal");
      case 'f':
        if (consume_word("false")) return Json(false);
        return fail("bad literal");
      case 'n':
        if (consume_word("null")) return Json(nullptr);
        return fail("bad literal");
      default: return number();
    }
  }

  StatusOr<Json> object(int depth) {
    ++pos_;  // '{'
    Json::Object out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      auto key = string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      auto v = value(depth + 1);
      if (!v.ok()) return v.status();
      out.insert_or_assign(*std::move(key), *std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(out));
      return fail("expected ',' or '}'");
    }
  }

  StatusOr<Json> array(int depth) {
    ++pos_;  // '['
    Json::Array out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    for (;;) {
      auto v = value(depth + 1);
      if (!v.ok()) return v.status();
      out.push_back(*std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(out));
      return fail("expected ',' or ']'");
    }
  }

  StatusOr<std::string> string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          auto cp = hex4();
          if (!cp.ok()) return cp.status();
          std::uint32_t code = *cp;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half.
            if (!consume('\\') || !consume('u')) return fail("unpaired surrogate");
            auto lo = hex4();
            if (!lo.ok()) return lo.status();
            if (*lo < 0xDC00 || *lo > 0xDFFF) return fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (*lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  StatusOr<std::uint32_t> hex4() {
    if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  StatusOr<Json> number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("unexpected character");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      pos_ = start;
      return fail("bad number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& o = as_object();
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return std::get<Object>(value_)[key];
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(v));
}

std::string Json::dump() const {
  std::string out;
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(double d) const { append_number(out, d); }
    void operator()(const std::string& s) const { append_escaped(out, s); }
    void operator()(const Array& a) const {
      out += '[';
      bool first = true;
      for (const Json& v : a) {
        if (!first) out += ',';
        first = false;
        out += v.dump();
      }
      out += ']';
    }
    void operator()(const Object& o) const {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        out += v.dump();
      }
      out += '}';
    }
  };
  std::visit(Visitor{out}, value_);
  return out;
}

StatusOr<Json> Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace statsizer::util
