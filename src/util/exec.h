// Cooperative execution control: cancellation tokens, deadlines, and the
// checkpoint() calls the long-running kernels are instrumented with.
//
// A job runner (serve::JobManager) builds an ExecContext — cancel token,
// absolute deadline, fault plan + scope — and installs it on the executing
// thread with ScopedExecContext. Library kernels call
// util::checkpoint("site/name") at coarse, value-neutral boundaries
// (wavefront levels, Monte-Carlo sample chunks, sizer iterations); the call
// is a thread-local pointer read when no context is installed, and otherwise
// applies fault-injection rules, then throws StatusError(kCancelled /
// kDeadlineExceeded) when the token or deadline says to stop.
//
// Checkpoints never change computed values — they only abort (by throwing)
// or stall (injected delay) — so instrumented kernels keep their bitwise
// determinism contracts untouched.
//
// Contexts do not propagate into ThreadPool workers: a checkpoint reached on
// a pool worker during a nested parallel_for is a no-op. Jobs that want
// cooperative control of their kernels run them with inner threads = 1 (the
// serving layer and run_monte_carlo_batch already do, to avoid
// oversubscription), in which case every checkpoint executes inline on the
// job's own thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/fault.h"
#include "util/status.h"

namespace statsizer::util {

/// Shared-handle cancellation flag: the controller keeps one copy, the
/// ExecContext another. Copyable; all copies observe the same flag.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  void cancel() { state_->cancelled.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
  };
  std::shared_ptr<State> state_;
};

/// Everything checkpoint() consults. Owned by the job runner for the
/// duration of one job attempt; installed thread-locally via
/// ScopedExecContext.
struct ExecContext {
  CancelToken cancel;
  /// Absolute cooperative deadline; nullopt = none.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Fault plan (not owned; may be nullptr) and the scope this execution
  /// reports to rule matching (the job system uses the job id).
  const FaultPlan* faults = nullptr;
  std::uint64_t fault_scope = 0;

  /// Per-site visit counts within this context. Only maintained while a
  /// non-empty plan is installed (the no-fault hot path never hashes site
  /// names). Lookup-only: never iterated, so the unordered container is
  /// determinism-safe.
  std::unordered_map<std::string, std::uint64_t> site_hits;

  /// Remaining time before the deadline; nullopt when no deadline is set.
  /// Clamped at zero.
  [[nodiscard]] std::optional<std::chrono::milliseconds> remaining() const;
};

/// RAII installer. Nesting is allowed (the previous context is restored on
/// destruction); installation is per-thread and never visible to pool
/// workers.
class ScopedExecContext {
 public:
  explicit ScopedExecContext(ExecContext& context);
  ~ScopedExecContext();

  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext* previous_;
};

/// RAII suppressor: stashes the installed context (if any) and restores it on
/// destruction, so checkpoints in the covered region are no-ops. Recovery
/// paths use this — after a cancellation or deadline abort mid-mutation, the
/// cleanup re-analysis must run to completion even though the token is still
/// cancelled and the deadline still passed.
class ScopedExecSuspend {
 public:
  ScopedExecSuspend();
  ~ScopedExecSuspend();

  ScopedExecSuspend(const ScopedExecSuspend&) = delete;
  ScopedExecSuspend& operator=(const ScopedExecSuspend&) = delete;

 private:
  ExecContext* previous_;
};

/// The context installed on the calling thread, or nullptr.
[[nodiscard]] ExecContext* current_exec_context();

/// The cooperative control point. No-op without an installed context.
/// Otherwise: applies matching fault rules (delay, then structured throw),
/// then throws StatusError(kCancelled) if the token is cancelled, then
/// StatusError(kDeadlineExceeded) if the deadline has passed. @p site names
/// the instrumentation point (see the registry in docs/ARCHITECTURE.md).
void checkpoint(const char* site);

}  // namespace statsizer::util
