#include "util/check.h"

#include <stdexcept>

namespace statsizer::debug {

void check_fail(const char* where, const std::string& what) {
  throw std::logic_error(std::string("paranoid: ") + where + ": " + what);
}

}  // namespace statsizer::debug
