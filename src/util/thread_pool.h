// Work-queue thread pool and a deterministic parallel_for built on it.
//
// parallel_for decomposes [0, total) into fixed-size chunks whose boundaries
// depend only on (total, chunk_size) — never on the thread count — so a
// caller that accumulates per-chunk partial results and merges them in chunk
// order (or writes each index's result to its own slot) gets
// bitwise-identical output for any number of threads. This is the contract
// the parallel Monte-Carlo engine (ssta/monte_carlo.cpp), the batch flow API
// (core::Flow::run_monte_carlo_batch), and StatisticalGreedy's candidate
// scoring (opt/sizer_statistical.cpp) are built on; the rules are written up
// in docs/ARCHITECTURE.md, "Concurrency & determinism contracts".
//
// Exceptions thrown by a chunk body are captured and rethrown on the calling
// thread after all workers have drained (first one wins).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace statsizer::util {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// @p thread_count 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe: any thread, including pool workers, may
  /// submit concurrently. Tasks are responsible for their own error handling:
  /// an exception escaping a task is swallowed by the worker (parallel_for
  /// layers its own capture-and-rethrow on top of this).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Thread-safe,
  /// but must not be called from a pool worker (it would wait for itself).
  void wait_idle();

  /// Thread-safe (immutable after construction).
  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// hardware_concurrency clamped to >= 1.
  [[nodiscard]] static std::size_t default_thread_count();

  /// Lazily-created process-wide pool (default_thread_count workers) that
  /// parallel_for dispatches onto — repeated parallel regions reuse threads
  /// instead of paying spawn/join per call. Thread-safe (C++ static-local
  /// initialization).
  [[nodiscard]] static ThreadPool& shared();

  /// True when the calling thread is a worker of any ThreadPool. Used by
  /// parallel_for to run nested regions inline (a worker waiting on queued
  /// helper tasks could otherwise deadlock the pool). Thread-safe.
  [[nodiscard]] static bool in_worker();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

namespace detail {

/// Chunk geometry shared by the serial and parallel paths: boundaries are a
/// pure function of (total, chunk_size).
[[nodiscard]] inline std::size_t chunk_count(std::size_t total, std::size_t chunk_size) {
  return chunk_size == 0 ? 0 : (total + chunk_size - 1) / chunk_size;
}

}  // namespace detail

/// Runs body(begin, end, chunk_index) over [0, total) split into fixed
/// chunk_size pieces. chunk_index runs 0..chunk_count-1 in geometric order;
/// with threads <= 1, a single chunk, or when called from inside another
/// parallel region, everything executes inline on the calling thread.
/// Otherwise the caller plus up to threads - 1 helper tasks on the shared
/// pool pull chunks from an atomic cursor (actual concurrency is also capped
/// by the shared pool's size). threads == 0 means
/// ThreadPool::default_thread_count(). Returns only after every helper has
/// finished, so the body may capture caller-stack state by reference.
///
/// Thread-safety contract for the body: it may run on the caller's thread or
/// any pool worker, concurrently with other chunks. Shared inputs must be
/// read-only for the duration of the call; mutable state must be per-chunk
/// (created inside the body) or written to slots no other chunk touches.
/// Determinism follows from the fixed chunk geometry: results assembled in
/// chunk order (or per-slot) are identical for any `threads` value.
template <typename Body>
void parallel_for(std::size_t total, std::size_t chunk_size, std::size_t threads,
                  Body&& body) {
  if (total == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  if (threads == 0) threads = ThreadPool::default_thread_count();
  const std::size_t chunks = detail::chunk_count(total, chunk_size);

  if (threads <= 1 || chunks <= 1 || ThreadPool::in_worker()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(total, begin + chunk_size);
      body(begin, end, c);
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable helpers_done;
  std::size_t helpers_finished = 0;

  auto drain = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(total, begin + chunk_size);
      try {
        body(begin, end, c);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t helpers = std::min(threads, chunks) - 1;  // caller drains too
  ThreadPool& pool = ThreadPool::shared();
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([&mutex, &helpers_done, &helpers_finished, drain] {
      drain();
      const std::lock_guard<std::mutex> lock(mutex);
      ++helpers_finished;
      helpers_done.notify_all();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(mutex);
  helpers_done.wait(lock, [&] { return helpers_finished == helpers; });
  if (error) std::rethrow_exception(error);
}

}  // namespace statsizer::util
