// Paranoid invariant-check machinery.
//
// The deep validators (src/debug/validate.h) are always compiled and always
// callable — tests invoke them directly on deliberately corrupted inputs to
// prove each check trips. What STATSIZER_PARANOID controls is whether the
// *hot paths* call them automatically: TimingContext::update() audits its
// levelization and load-term CSR, pdf::sum/max audit normalization and CDF
// monotonicity of every result, the analyzer layer audits speculation-epoch
// discipline. Off (the default) the `if constexpr (debug::kParanoid)` call
// sites compile to nothing; on (cmake -DSTATSIZER_PARANOID=ON, or
// scripts/check.sh --paranoid) every violation fails loudly at the moment of
// corruption instead of ULPs-later.
#pragma once

#include <string>

namespace statsizer::debug {

#if defined(STATSIZER_PARANOID) && STATSIZER_PARANOID
inline constexpr bool kParanoid = true;
#else
inline constexpr bool kParanoid = false;
#endif

/// Runtime spelling of kParanoid, for tests that gate hot-path-trip
/// expectations on the build mode.
[[nodiscard]] constexpr bool paranoid_enabled() { return kParanoid; }

/// Raises the uniform paranoid failure: throws std::logic_error whose message
/// starts with "paranoid: <where>: ". Validators funnel every violation
/// through here so tests can pin the prefix.
[[noreturn]] void check_fail(const char* where, const std::string& what);

}  // namespace statsizer::debug

/// Statement-style check for simple conditions inside validators:
///   STATSIZER_PARANOID_CHECK(cond, "where", "message");
/// Always active when reached (gating on kParanoid happens at the call sites
/// of the validators, not inside them).
#define STATSIZER_PARANOID_CHECK(cond, where, what)      \
  do {                                                   \
    if (!(cond)) ::statsizer::debug::check_fail(where, what); \
  } while (false)
