#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace statsizer::util {

namespace {
thread_local bool tls_in_pool_worker = false;
}  // namespace

std::size_t ThreadPool::default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

bool ThreadPool::in_worker() { return tls_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = default_thread_count();
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  tls_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    try {
      task();
    } catch (...) {
      // Swallowed per the submit() contract; an escaped exception here would
      // std::terminate and a missed --active_ would wedge wait_idle.
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

}  // namespace statsizer::util
