#include "util/fault.h"

#include <charconv>

#include "util/rng.h"

namespace statsizer::util {

namespace {

[[nodiscard]] bool site_matches(std::string_view pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return site.substr(0, pattern.size() - 1) == pattern.substr(0, pattern.size() - 1);
  }
  return pattern == site;
}

[[nodiscard]] StatusOr<std::uint64_t> parse_u64(std::string_view key, std::string_view v) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    return Status::invalid_argument("fault rule: bad integer for '" + std::string(key) +
                                    "': '" + std::string(v) + "'");
  }
  return out;
}

[[nodiscard]] StatusOr<StatusCode> parse_code(std::string_view v) {
  for (const StatusCode c :
       {StatusCode::kInvalidArgument, StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable, StatusCode::kInternal}) {
    if (v == to_string(c)) return c;
  }
  return Status::invalid_argument("fault rule: unknown code '" + std::string(v) + "'");
}

}  // namespace

StatusOr<FaultRule> parse_fault_rule(std::string_view spec) {
  FaultRule rule;
  bool have_site = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = eq == std::string_view::npos ? "" : pair.substr(eq + 1);
    if (key == "site") {
      if (value.empty()) return Status::invalid_argument("fault rule: empty site");
      rule.site = std::string(value);
      have_site = true;
    } else if (key == "scope") {
      if (value == "*") {
        rule.scope = kAnyScope;
      } else {
        auto v = parse_u64(key, value);
        if (!v.ok()) return v.status();
        rule.scope = *v;
      }
    } else if (key == "hit") {
      auto v = parse_u64(key, value);
      if (!v.ok()) return v.status();
      rule.hit = *v;
    } else if (key == "p") {
      // std::from_chars(double) is still spotty across libstdc++ versions;
      // stod on a bounded copy is fine for a CLI flag.
      try {
        std::size_t used = 0;
        rule.probability = std::stod(std::string(value), &used);
        if (used != value.size()) throw std::invalid_argument("trailing junk");
      } catch (const std::exception&) {
        return Status::invalid_argument("fault rule: bad probability '" + std::string(value) +
                                        "'");
      }
      if (rule.probability < 0.0 || rule.probability > 1.0) {
        return Status::invalid_argument("fault rule: probability out of [0,1]");
      }
    } else if (key == "delay_ms") {
      auto v = parse_u64(key, value);
      if (!v.ok()) return v.status();
      rule.delay_ms = static_cast<std::uint32_t>(*v);
    } else if (key == "code") {
      auto c = parse_code(value);
      if (!c.ok()) return c.status();
      rule.code = *c;
    } else if (key == "msg") {
      rule.message = std::string(value);
    } else if (key == "delay_only") {
      rule.fail = false;
    } else {
      return Status::invalid_argument("fault rule: unknown key '" + std::string(key) +
                                      "' (known: site scope hit p delay_ms code msg "
                                      "delay_only)");
    }
  }
  if (!have_site) return Status::invalid_argument("fault rule: missing site=...");
  return rule;
}

bool fault_rule_fires(const FaultRule& rule, std::uint64_t plan_seed, std::string_view site,
                      std::uint64_t scope, std::uint64_t hit_index) {
  if (!site_matches(rule.site, site)) return false;
  if (rule.scope != kAnyScope && rule.scope != scope) return false;
  if (rule.hit != 0 && rule.hit != hit_index) return false;
  if (rule.probability >= 1.0) return true;
  if (rule.probability <= 0.0) return false;
  // Counter-based Bernoulli: the draw depends only on (seed, site, scope,
  // hit) — never on threads or call order elsewhere in the process.
  const std::uint64_t r =
      stream_seed(plan_seed, fnv1a(site) ^ (scope * 0x9e3779b97f4a7c15ULL) ^ hit_index);
  const double u = static_cast<double>(r >> 11) * 0x1.0p-53;
  return u < rule.probability;
}

}  // namespace statsizer::util
