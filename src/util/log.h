// Minimal leveled logger. Benches and examples raise the level to Info;
// library code logs sparingly (optimizer iteration summaries at Debug).
#pragma once

#include <sstream>
#include <string>

namespace statsizer::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Writes one formatted line ("[level] message") to stderr if enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style single-line logger; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace statsizer::util

#define STATSIZER_LOG(level) ::statsizer::util::detail::LogMessage(level)
#define STATSIZER_DEBUG() STATSIZER_LOG(::statsizer::util::LogLevel::kDebug)
#define STATSIZER_INFO() STATSIZER_LOG(::statsizer::util::LogLevel::kInfo)
#define STATSIZER_WARN() STATSIZER_LOG(::statsizer::util::LogLevel::kWarn)
#define STATSIZER_ERROR() STATSIZER_LOG(::statsizer::util::LogLevel::kError)
