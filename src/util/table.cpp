#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace statsizer::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell;
      for (std::size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  emit_row(os, header_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_rule(os);
  return os.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt_pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f %%", digits, fraction * 100.0);
  return buf;
}

}  // namespace statsizer::util
